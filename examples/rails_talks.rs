//! The Talks Rails app end to end: metaprogramming generates methods AND
//! their types (paper Fig. 1), then controller/model bodies statically
//! check at first call while requests flow.
//!
//! Run with: `cargo run -p hb-apps --example rails_talks`

use hb_apps::{build_app, run_workload, talks};
use hummingbird::Mode;

fn main() {
    let spec = talks();
    let mut hb = build_app(&spec, Mode::Full);

    let page = hb
        .eval("$router.dispatch(\"GET\", \"/talks\")")
        .expect("index renders");
    println!("GET /talks:\n{}\n", hb.interp.value_to_s(&page).unwrap());

    run_workload(&spec, &mut hb, 3);

    let s = hb.stats();
    let r = hb.rdl_stats();
    println!("statically checked methods ({}):", s.checked_methods.len());
    for m in &s.checked_methods {
        println!("  {m}");
    }
    println!();
    println!(
        "dynamically generated types: {} ({} used during checking)",
        r.dynamic_generated, r.dynamic_used
    );
    println!(
        "checks: {}  cache hits: {}  dynamic arg checks: {}",
        s.checks_performed, s.cache_hits, s.dyn_arg_checks
    );
}
