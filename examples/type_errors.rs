//! The six historical Talks type errors (paper §5): each introduced in a
//! past version of the app and reported by Hummingbird at the first call
//! of the offending method.
//!
//! Run with: `cargo run -p hb-apps --example type_errors`

use hb_apps::talks_history::{error_versions, run_error_version};

fn main() {
    for v in error_versions() {
        println!("== version {} — {}", v.version, v.description);
        println!("   {}\n", run_error_version(&v));
    }
}
