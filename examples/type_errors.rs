//! The six historical Talks type errors (paper §5), reported through the
//! structured diagnostics surface: each error carries a stable `HBxxxx`
//! code, a blame target (the responsible annotation, cast or missing
//! type), and labeled secondary spans — rendered here both as the
//! human-readable report and as the machine-readable JSON that
//! `hb_lint --json` emits.
//!
//! Run with: `cargo run -p hb-apps --example type_errors`

use hb_apps::talks_history::{error_versions, run_error_version_diag};

fn main() {
    for v in error_versions() {
        let d = run_error_version_diag(&v);
        println!("== version {} — {}", v.version, v.description);
        // The full structured rendering: primary span, blamed annotation,
        // checked method and call site, each labeled.
        for line in d.rendered.lines() {
            println!("   {line}");
        }
        // What a tool sees: the blame target, machine-readably.
        if let Some((at, text)) = &d.blamed_at {
            println!("   blamed annotation source ({at}): {text}");
        }
        println!("   json: {}", d.json);
        println!();
    }
    println!("All six historical errors were reported as structured blame at method entry.");
}
