//! Paper Fig. 3: the programmer writes ordinary Ruby (`Struct.add_types`)
//! that generates type signatures for Struct-created getters/setters, and
//! Hummingbird checks consumers against them.
//!
//! Run with: `cargo run -p hb-apps --example struct_types`

use hb_apps::{build_app, cct};
use hummingbird::{MethodKey, Mode};

fn main() {
    let spec = cct();
    let mut hb = build_app(&spec, Mode::Full);

    // The annotation file already ran Transaction.add_types(...). Inspect
    // what it generated.
    for m in ["kind", "account_name", "amount"] {
        let key = MethodKey::instance("Transaction", m);
        let e = hb.rdl.entry(&key).expect("generated type");
        println!("Transaction#{m} : {}", e.sig);
    }

    hb.eval("cct_run_once(20)").expect("transactions process");
    let s = hb.stats();
    println!(
        "\nprocess_transactions checked against the generated Struct types: {:?}",
        s.checked_methods
            .iter()
            .filter(|m| m.starts_with("ApplicationRunner"))
            .collect::<Vec<_>>()
    );

    // Feed a transaction whose amount violates the generated type — the
    // dynamic half of the system reports it.
    let err = hb
        .eval("t = Transaction.new(\"credit\", \"acct\", 99)\nt.amount.rdl_cast(\"String\")")
        .unwrap_err();
    println!("\nbad data caught dynamically: {err}");
}
