//! Quickstart: annotate a method, call it, and watch Hummingbird check it
//! just in time — then catch a type error at call time.
//!
//! Run with: `cargo run -p hb-apps --example quickstart`

use hummingbird::Hummingbird;

fn main() {
    let mut hb = Hummingbird::builder().build();

    // Type annotations are ordinary code that runs at class-load time.
    hb.eval(
        r#"
class Greeter
  type :greet, "(String) -> String", { "check" => true }
  def greet(name)
    "hello, " + name
  end
end
"#,
    )
    .expect("class loads without checking anything yet");
    println!("after load: {} checks", hb.stats().checks_performed);

    // The first call statically checks the whole body; later calls hit the
    // derivation cache.
    hb.eval("puts Greeter.new.greet(\"hummingbird\")").unwrap();
    hb.eval("Greeter.new.greet(\"again\")").unwrap();
    print!("{}", hb.interp.take_output());
    let s = hb.stats();
    println!(
        "after calls: {} check(s), {} cache hit(s)",
        s.checks_performed, s.cache_hits
    );

    // A body that cannot satisfy its type blames at the first call, not at
    // definition.
    hb.eval(
        r#"
class Greeter
  def greet(name)
    name + 1
  end
end
"#,
    )
    .expect("redefinition is fine until someone calls it");
    let err = hb.eval("Greeter.new.greet(\"boom\")").unwrap_err();
    println!("caught just in time: {err}");
}
