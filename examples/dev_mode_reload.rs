//! Rails development mode (paper §4/§5): live-reload a file, diff method
//! CFGs, invalidate only what changed (plus dependents), and watch which
//! methods re-check.
//!
//! Run with: `cargo run -p hb-apps --example dev_mode_reload`

use hb_apps::talks_history::run_update_experiment;

fn main() {
    println!("Applying 7 versions of the Talks formatter as live updates:\n");
    println!(
        "{:<14} {:>7} {:>6} {:>5} {:>6}",
        "version", "changed", "added", "deps", "chk'd"
    );
    for row in run_update_experiment() {
        println!(
            "{:<14} {:>7} {:>6} {:>5} {:>6}",
            row.version, row.changed, row.added, row.deps, row.checked
        );
    }
    println!("\nUnchanged methods keep their cached derivations across reloads;");
    println!("changed methods invalidate themselves and their dependents.");
}
