//! Embedding API v1 tour: builder-configured runtime, per-method check
//! policies (the canary-deploy scenario), and a cache snapshot carried to
//! a "new process" for a warm boot.
//!
//! Run with `cargo run --example embedding`.

use hummingbird::{
    CacheSnapshot, CheckPolicy, DiagnosticSink, Hummingbird, SharedCache, TypeDiagnostic,
};
use std::rc::Rc;
use std::sync::Arc;

const APP: &str = r#"
class Talk
  type :title_line, "(String) -> String", { "check" => true }
  def title_line(prefix)
    prefix + ": talk"
  end

  type :late?, "(Fixnum) -> %bool", { "check" => true }
  def late?(mins)
    mins + 1
  end
end
"#;

/// A metrics-pipeline stand-in: receives every blame as it happens.
struct Stdout;

impl DiagnosticSink for Stdout {
    fn on_diagnostic(&self, d: &TypeDiagnostic) {
        println!("  [sink] {} {}", d.code, d.message);
    }
}

fn main() {
    // ----- 1. the builder is the single assembly path -----------------------
    let shared = Arc::new(SharedCache::new());
    let mut hb = Hummingbird::builder()
        .shared_cache(shared.clone()) // one tenant of a fleet
        .check_policy(CheckPolicy::Shadow) // canary: observe, don't raise
        .diagnostics_cap(256)
        .diagnostic_sink(Rc::new(Stdout))
        .build();
    hb.eval(APP).unwrap();

    // ----- 2. shadow policy: blame is recorded, traffic survives ------------
    println!("canary request under CheckPolicy::Shadow:");
    let v = hb.eval("Talk.new.late?(5)").unwrap(); // late? has a type bug
    println!("  request completed with {v:?}");
    let stats = hb.stats();
    println!(
        "  shadowed_blames = {}, diagnostics captured = {}",
        stats.shadowed_blames,
        hb.diagnostics().len()
    );
    // Per-method rollout control: pin the buggy method back to Enforce.
    hb.set_method_policy(
        hummingbird::MethodKey::instance("Talk", "late?"),
        CheckPolicy::Enforce,
    );
    let err = hb.eval("Talk.new.late?(5)").unwrap_err();
    println!("  after pinning to Enforce: raises `{:?}`", err.kind);

    // ----- 3. snapshot: the warm start, across processes --------------------
    hb.eval("Talk.new.title_line(\"PLDI\")").unwrap(); // publish a derivation
    let bytes = hb.snapshot().expect("tenant has a shared tier").to_bytes();
    println!("snapshot: {} bytes on disk", bytes.len());

    // "New process": a fresh tier rebuilt from bytes, a fresh tenant.
    let restored = Arc::new(SharedCache::new());
    restored
        .load_snapshot(&CacheSnapshot::from_bytes(&bytes).unwrap())
        .unwrap();
    let mut warm = Hummingbird::builder().shared_cache(restored).build();
    warm.eval(APP).unwrap();
    warm.eval("Talk.new.title_line(\"PLDI\")").unwrap();
    let s = warm.stats();
    println!(
        "warm boot: checks_performed = {} (adopted {} from the snapshot)",
        s.checks_performed, s.shared_hits
    );
    assert_eq!(s.checks_performed, 0, "warm boots never run check_sig");
}
