//! Cross-crate property tests: random RubyLite programs round-trip through
//! the whole front end, and the engine's caching is idempotent on repeated
//! calls for arbitrary generated class shapes.

use hb_il::{collect_method_defs, lower_method};
use hb_syntax::{parse_program, pretty_program};
use hummingbird::Hummingbird;
use proptest::prelude::*;

/// Generates small well-formed RubyLite class sources.
fn arb_class_source() -> impl Strategy<Value = String> {
    let body_stmt = prop_oneof![
        Just("x = x + 1".to_string()),
        Just("x = x * 2".to_string()),
        Just("y = x.to_s".to_string()),
        Just("return x if x > 100".to_string()),
        Just("x = x - 1 unless x < 0".to_string()),
    ];
    (prop::collection::vec(body_stmt, 1..4), 1u8..4).prop_map(|(stmts, n_methods)| {
        let mut src = String::from("class Gen\n");
        for m in 0..n_methods {
            src.push_str(&format!("  def m{m}(x)\n"));
            for s in &stmts {
                src.push_str("    ");
                src.push_str(s);
                src.push('\n');
            }
            src.push_str("    x\n  end\n");
        }
        src.push_str("end\n");
        src
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse → pretty → parse → pretty is a fixpoint, and lowering the
    /// reparsed program matches lowering the original (spans aside).
    #[test]
    fn front_end_round_trips(src in arb_class_source()) {
        let p1 = parse_program(&src, "gen.rb").unwrap();
        let printed = pretty_program(&p1);
        let p2 = parse_program(&printed, "gen.rb").unwrap();
        prop_assert_eq!(pretty_program(&p2), printed);
        let d1 = collect_method_defs(&p1);
        let d2 = collect_method_defs(&p2);
        prop_assert_eq!(d1.len(), d2.len());
        for (a, b) in d1.iter().zip(d2.iter()) {
            let ca = lower_method(&a.def);
            let cb = lower_method(&b.def);
            prop_assert!(ca.same_shape(&cb), "lowering differs for {}", a.name);
        }
    }

    /// For generated programs that type check, repeated calls never
    /// re-check (cache idempotence), and check counts equal method counts.
    #[test]
    fn engine_checks_each_generated_method_once(src in arb_class_source(), calls in 1usize..4) {
        let p = parse_program(&src, "gen.rb").unwrap();
        let n_methods = collect_method_defs(&p).len();
        let mut hb = Hummingbird::builder().build();
        hb.eval(&src).unwrap();
        for m in 0..n_methods {
            hb.eval(&format!(
                "class Gen\n type :m{m}, \"(Fixnum) -> Fixnum\", {{ \"check\" => true }}\nend"
            ))
            .unwrap();
        }
        let mut failed = false;
        for _ in 0..calls {
            for m in 0..n_methods {
                if hb.eval(&format!("Gen.new.m{m}(7)")).is_err() {
                    failed = true;
                }
            }
        }
        if !failed {
            let s = hb.stats();
            prop_assert_eq!(s.checks_performed as usize, n_methods);
            prop_assert_eq!(
                s.cache_hits as usize,
                n_methods * (calls - 1)
            );
        }
    }
}
