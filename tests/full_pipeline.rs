//! Cross-crate integration tests: the full pipeline from source text
//! through parsing, lowering, annotation, execution and just-in-time
//! checking, spanning every workspace crate through public APIs only.

use hb_il::{collect_method_defs, lower_method};
use hb_syntax::parse_program;
use hummingbird::{ErrorKind, Hummingbird, MethodKey, Mode};

#[test]
fn parse_lower_check_run_pipeline() {
    // 1. Front end: parse and lower standalone.
    let src = "def double(x)\n x + x\nend";
    let program = parse_program(src, "pipeline.rb").unwrap();
    let defs = collect_method_defs(&program);
    let cfg = lower_method(&defs[0].def);
    assert_eq!(cfg.params.len(), 1);

    // 2. Full system: same code annotated and executed.
    let mut hb = Hummingbird::builder().build();
    hb.eval(
        "class Math2\n type :double, \"(Fixnum) -> Fixnum\", { \"check\" => true }\n def double(x)\n  x + x\n end\nend\nMath2.new.double(21)",
    )
    .unwrap();
    assert_eq!(hb.stats().checks_performed, 1);
}

#[test]
fn metaprogramming_to_checking_round_trip() {
    // define_method + pre-generated annotation + JIT check + cache, across
    // hb-interp, hb-rdl, hb-check and the engine.
    let mut hb = Hummingbird::builder().build();
    hb.eval(
        r#"
class Widget
  type :base, "() -> Fixnum", { "check" => true }
  def base
    10
  end
end
pre Widget, :make_getter do |n|
  type "get_#{n}", "() -> Fixnum", { "check" => true }
  true
end
class Widget
  def make_getter(n)
    self.class.class_eval do
      define_method("get_#{n}") do
        base + 1
      end
    end
  end
end
type Widget, :make_getter, "(String) -> %any"
w = Widget.new
w.make_getter("size")
w.get_size
w.get_size
"#,
    )
    .unwrap();
    let s = hb.stats();
    assert!(
        s.checked_methods.contains("Widget#get_size"),
        "{:?}",
        s.checked_methods
    );
    assert!(s.cache_hits >= 1);
    // The generated method's annotation exists and is dynamic.
    let e = hb
        .rdl
        .entry(&MethodKey::instance("Widget", "get_size"))
        .unwrap();
    assert_eq!(e.sig.to_string(), "() -> Fixnum");
}

#[test]
fn rails_substrate_composes_with_engine() {
    let mut hb = Hummingbird::builder().build();
    hb_rails::install_rails(&mut hb, true).unwrap();
    hb.eval(
        r#"
DB.create_table("gadgets", { "label" => "String" })
class Gadget < ActiveRecord::Base
  def shout
    label.upcase
  end
end
annotate_model(Gadget)
type Gadget, :shout, "() -> String", { "check" => true }
Gadget.create({ "label" => "live" })
Gadget.find(1).shout
"#,
    )
    .unwrap();
    assert!(hb.stats().checked_methods.contains("Gadget#shout"));
    // Schema-generated getter type was consulted by that check.
    assert!(hb.rdl_stats().dynamic_used >= 1);
}

#[test]
fn blame_propagates_uncaught_through_rescue() {
    let mut hb = Hummingbird::builder().build();
    let err = hb
        .eval(
            r#"
class Fragile
  type :boom, "() -> Fixnum", { "check" => true }
  def boom
    "not a number"
  end
end
result = "nothing"
begin
  Fragile.new.boom
rescue => e
  result = "rescued"
end
result
"#,
        )
        .unwrap_err();
    assert_eq!(err.kind, ErrorKind::TypeBlame);
}

#[test]
fn modes_agree_on_program_results() {
    // The three evaluation modes must compute the same values — checking
    // changes when errors surface, not behaviour of correct programs.
    let program = r#"
class Calc
  type :fib, "(Fixnum) -> Fixnum", { "check" => true }
  def fib(n)
    return n if n < 2
    fib(n - 1) + fib(n - 2)
  end
end
Calc.new.fib(12)
"#;
    let mut results = Vec::new();
    for mode in [Mode::Original, Mode::NoCache, Mode::Full] {
        let mut hb = Hummingbird::builder().mode(mode).build();
        let v = hb.eval(program).unwrap();
        results.push(format!("{v:?}"));
    }
    assert_eq!(results[0], "144");
    assert!(results.iter().all(|r| r == "144"), "{results:?}");
}

#[test]
fn formal_machine_matches_engine_on_caching_story() {
    // The formal calculus and the real engine agree on the core behaviour:
    // one check per method until something changes.
    use hb_formal::{Cls, Config, Expr, MTy, Mth, PreMethod, RunResult, Ty, VarId};
    use std::rc::Rc;

    let a = Cls(0);
    let m = Mth(0);
    let x = VarId(0);
    let decl = Expr::TypeDecl(
        a,
        m,
        MTy {
            dom: Ty::Cls(a),
            rng: Ty::Cls(a),
        },
    );
    let def = Expr::Def(
        a,
        m,
        PreMethod {
            param: x,
            body: Rc::new(Expr::Var(x)),
        },
    );
    let call = Expr::Call(Rc::new(Expr::New(a)), m, Rc::new(Expr::New(a)));
    let p = Expr::Seq(
        Rc::new(decl),
        Rc::new(Expr::Seq(
            Rc::new(def),
            Rc::new(Expr::Seq(Rc::new(call.clone()), Rc::new(call))),
        )),
    );
    let mut cfg = Config::initial(p);
    assert!(matches!(cfg.run(1_000, true), RunResult::Value(_)));
    assert_eq!(cfg.checks_run, 1);
    assert_eq!(cfg.cache_hits, 1);

    let mut hb = Hummingbird::builder().build();
    hb.eval(
        "class A2\n type :m, \"(A2) -> A2\", { \"check\" => true }\n def m(x)\n  x\n end\nend\na = A2.new\na.m(a)\na.m(a)",
    )
    .unwrap();
    assert_eq!(hb.stats().checks_performed, 1);
    assert_eq!(hb.stats().cache_hits, 1);
}

#[test]
fn union_receivers_and_refinement_compose() {
    let mut hb = Hummingbird::builder().build();
    hb.eval(
        r#"
class Cat
  type :speak, "() -> String", { "check" => true }
  def speak
    "meow"
  end
end
class Dog
  type :speak, "() -> String", { "check" => true }
  def speak
    "woof"
  end
end
class Shelter
  type :voice_of, "(Cat or Dog) -> String", { "check" => true }
  type :maybe_voice, "(Cat or nil) -> String", { "check" => true }
  def voice_of(animal)
    animal.speak
  end
  def maybe_voice(animal)
    if animal
      animal.speak
    else
      "silence"
    end
  end
end
s = Shelter.new
r1 = s.voice_of(Cat.new)
r2 = s.voice_of(Dog.new)
r3 = s.maybe_voice(nil)
"#,
    )
    .unwrap();
    assert!(hb.stats().checked_methods.contains("Shelter#voice_of"));
    assert!(hb.stats().checked_methods.contains("Shelter#maybe_voice"));
}
