//! A minimal, offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest's API that the workspace's property
//! tests use: [`strategy::Strategy`] with `prop_map` / `prop_recursive`,
//! [`strategy::Just`], ranges and tuples as strategies,
//! `prop::collection::vec`, `prop::option::of`, [`arbitrary::any`], the
//! [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`] / [`prop_assert_eq!`]
//! macros and [`test_runner::ProptestConfig`].
//!
//! Generation is driven by a deterministic per-case xorshift RNG (seeded
//! from the test name and case index), so failures are reproducible.
//! Shrinking is intentionally not implemented — failing inputs are printed
//! as generated.

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// Generates random values of an associated type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `self` generates leaves, `f` builds
        /// one extra level from the strategy for the level below. `_size`
        /// and `_branch` are accepted for API compatibility; recursion is
        /// bounded by `depth` alone.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _size: u32,
            _branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let base = BoxedStrategy::new(self);
            let mut cur = base.clone();
            for _ in 0..depth {
                let rec = BoxedStrategy::new(f(cur));
                cur = BoxedStrategy::new(LeafOrRecurse {
                    leaf: base.clone(),
                    rec,
                });
            }
            cur
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy::new(self)
        }
    }

    /// A clonable, type-erased strategy.
    pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V> BoxedStrategy<V> {
        /// Erases a concrete strategy.
        pub fn new(s: impl Strategy<Value = V> + 'static) -> BoxedStrategy<V> {
            BoxedStrategy(Rc::new(s))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Picks uniformly among type-erased alternatives (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over the given alternatives (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    struct LeafOrRecurse<V> {
        leaf: BoxedStrategy<V>,
        rec: BoxedStrategy<V>,
    }

    impl<V> Strategy for LeafOrRecurse<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            if rng.below(2) == 0 {
                self.leaf.generate(rng)
            } else {
                self.rec.generate(rng)
            }
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        let lo = self.start as u64;
                        let hi = self.end as u64;
                        assert!(hi > lo, "empty range strategy");
                        (lo + rng.below(hi - lo)) as $t
                    }
                }
            )*
        };
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {
            $(
                impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                    type Value = ($($s::Value,)+);
                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        ($(self.$idx.generate(rng),)+)
                    }
                }
            )*
        };
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Strategy for "any value of `T`" (integer types and bool).
    pub struct Any<T>(PhantomData<T>);

    /// Creates an [`Any`] strategy.
    pub fn any<T>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! any_int {
        ($($t:ty),*) => {
            $(
                impl Strategy for Any<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            )*
        };
    }
    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).
pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// A strategy for vectors with lengths drawn from `size`.
        pub struct VecStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        /// Generates vectors of elements from `elem` with length in `size`.
        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.end - self.size.start).max(1) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    pub mod option {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// A strategy for optional values.
        pub struct OptionStrategy<S>(S);

        /// Generates `Some` from the inner strategy about ¾ of the time.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }
    }
}

pub mod test_runner {
    use std::fmt;

    /// Per-run configuration (only `cases` is meaningful here).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// How many random cases each test runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// A failed property within a test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic xorshift64* RNG, seeded per test case.
    pub struct TestRng(u64);

    impl TestRng {
        /// The RNG for case `case` of test `name`.
        pub fn for_case(name: &str, case: u32) -> TestRng {
            let mut seed = 0xcbf29ce484222325u64; // FNV offset basis
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100000001b3);
            }
            seed ^= (case as u64).wrapping_mul(0x9e3779b97f4a7c15);
            TestRng(if seed == 0 { 1 } else { seed })
        }

        /// The next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        /// A value uniform in `0..n` (`n` must be non-zero).
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::BoxedStrategy::new($arm)),+
        ])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let a = $a;
        let b = $b;
        if !(a == b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let a = $a;
        let b = $b;
        if !(a == b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!("proptest `{}` case {case} failed: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}
