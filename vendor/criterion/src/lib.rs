//! A minimal, offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the API surface the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId::new`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Timings are real (warm-up plus a measured batch, median-of-runs)
//! and are printed one line per benchmark; statistical analysis, plotting
//! and CLI filtering are intentionally out of scope.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
            _marker: std::marker::PhantomData,
        }
    }
}

/// Identifies one parameterised benchmark (`group/function/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark id from a function name and a parameter display value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let stats = run_samples(self.sample_size, || {
            let mut b = Bencher::default();
            f(&mut b);
            b.elapsed_per_iter()
        });
        report(&self.name, id, stats);
        self
    }

    /// Runs one benchmark over an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let stats = run_samples(self.sample_size, || {
            let mut b = Bencher::default();
            f(&mut b, input);
            b.elapsed_per_iter()
        });
        report(&self.name, &id.label, stats);
        self
    }

    /// Ends the group (printing is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

fn run_samples(samples: usize, mut one: impl FnMut() -> Duration) -> Duration {
    // One warm-up sample, then the median of the measured ones.
    let _ = one();
    let mut times: Vec<Duration> = (0..samples.min(10)).map(|_| one()).collect();
    times.sort();
    times[times.len() / 2]
}

fn report(group: &str, id: &str, per_iter: Duration) {
    println!("{group}/{id}: {:.3} µs/iter", per_iter.as_secs_f64() * 1e6);
}

/// Runs the closure under timing.
#[derive(Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`, running it enough times to smooth noise.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // A small fixed batch: the workloads in this repository are
        // milliseconds-scale, so a handful of iterations suffices.
        let batch = 3u64;
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        self.total += start.elapsed();
        self.iters += batch;
    }

    fn elapsed_per_iter(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.total / self.iters as u32
        }
    }
}

/// Opaque value sink preventing the optimiser from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
