//! Cross-thread agreement: the interner is process-global, so N threads
//! interning overlapping name sets must assign every string the same
//! `Sym`, and symbols must resolve correctly on threads that never
//! interned them.

use hb_intern::Sym;
use std::collections::HashMap;
use std::sync::{Arc, Barrier};
use std::thread;

#[test]
fn threads_agree_on_sym_identity() {
    const THREADS: usize = 8;
    const NAMES: usize = 200;
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let barrier = barrier.clone();
            thread::spawn(move || {
                barrier.wait();
                // Overlapping sets, interned in a thread-specific order so
                // insertion races actually happen.
                let mut out: HashMap<String, u32> = HashMap::new();
                for i in 0..NAMES {
                    let i = (i + t * 37) % NAMES;
                    let name = format!("Class{}#method_{}", i % 17, i);
                    let sym = Sym::intern(&name);
                    assert_eq!(sym.as_str(), name, "resolution must round-trip");
                    out.insert(name, sym.index());
                }
                out
            })
        })
        .collect();

    let maps: Vec<HashMap<String, u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for m in &maps[1..] {
        assert_eq!(
            m, &maps[0],
            "every thread must observe identical Sym indices"
        );
    }
}

#[test]
fn syms_cross_threads() {
    let (tx, rx) = std::sync::mpsc::channel::<Sym>();
    let producer = thread::spawn(move || {
        for i in 0..100 {
            tx.send(Sym::intern(&format!("crossing_{i}"))).unwrap();
        }
    });
    for i in 0..100 {
        let sym = rx.recv().unwrap();
        assert_eq!(sym.as_str(), format!("crossing_{i}"));
        // Re-interning on the receiver agrees with the sender's id.
        assert_eq!(Sym::intern(&format!("crossing_{i}")), sym);
    }
    producer.join().unwrap();
}
