//! A string interner providing [`Sym`]: cheap, `Copy`, hash-friendly keys
//! for the dispatch hot path.
//!
//! The Hummingbird engine intercepts *every* call to a checkable method; on
//! the steady-state (cache-hit) path the only work should be a couple of
//! hash probes. Interning class and method names once turns the former
//! String-keyed cache lookups into `u32` comparisons and removes all
//! per-call allocation.
//!
//! The interner is **process-global and thread-safe**: `Sym` indices are
//! stable across every thread in the process, so symbols (and the
//! `MethodKey`s built from them) can key process-wide shared structures —
//! the multi-tenant shared derivation cache in particular — and cross
//! thread boundaries freely (`Sym` is `Send + Sync`). Three tiers keep the
//! hot paths cheap:
//!
//! 1. **Lock-free fast path.** Each thread keeps a private map of the
//!    strings it has already interned; a repeat `intern` takes no lock at
//!    all (this is the dispatch hot path: one thread-local hash probe).
//! 2. **Sharded read path.** A miss in the thread cache probes one of
//!    `NUM_SHARDS` `RwLock`-protected maps under a read lock, so threads
//!    interning disjoint (or even overlapping, already-known) names never
//!    serialise.
//! 3. **Serialised slow path.** Only a genuinely new string takes the
//!    global insertion lock, which assigns the next index and publishes
//!    the string.
//!
//! Resolution (`as_str`) is lock-free: indices address an append-only
//! segmented table of atomic slots, published with release/acquire
//! ordering, so readers never contend with writers.
//!
//! Interned strings are leaked, which bounds memory by the number of
//! *distinct* names ever seen: exactly the class/method names of the
//! program, the same order of memory the method tables themselves retain.
//!
//! # Example
//!
//! ```
//! use hb_intern::Sym;
//!
//! let a = Sym::intern("Talk");
//! let b = Sym::intern("Talk");
//! assert_eq!(a, b);
//! assert_eq!(a.as_str(), "Talk");
//! // Ordering is by string content, so sorted reports stay alphabetical.
//! assert!(Sym::intern("Apple") < Sym::intern("Banana"));
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasher, RandomState};
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};

/// Number of shards in the global string→index map.
const NUM_SHARDS: usize = 16;

/// Capacity of segment 0 of the index→string table; segment `k` holds
/// `FIRST_SEG_CAP << k` slots, so capacity doubles per segment and no slot
/// ever moves once published (resolution stays lock-free).
const FIRST_SEG_CAP: usize = 1 << 10;

/// Number of segments (total capacity ≈ 4 billion symbols — `u32::MAX`).
const NUM_SEGMENTS: usize = 22;

/// A slot holds a pointer to a leaked `&'static str` (a thin pointer to a
/// fat one, so it fits a single atomic word).
type Slot = AtomicPtr<&'static str>;

struct Global {
    /// str → index, sharded by string hash. Reads (already-interned
    /// strings from a thread that hasn't cached them yet) take a read
    /// lock only.
    shards: [RwLock<HashMap<&'static str, u32>>; NUM_SHARDS],
    /// Segment table for index → str. Segments are allocated on demand
    /// under `write` and published with a release store.
    segments: [AtomicPtr<Slot>; NUM_SEGMENTS],
    /// Number of published symbols (diagnostics only).
    len: AtomicUsize,
    /// Serialises insertions: index assignment + slot publication +
    /// shard-map insert happen under this lock, keeping indices dense.
    write: Mutex<()>,
    /// All shard maps and thread caches must agree on the hash, so shard
    /// selection uses one shared `RandomState`.
    hasher: RandomState,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
        segments: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
        len: AtomicUsize::new(0),
        write: Mutex::new(()),
        hasher: RandomState::new(),
    })
}

impl Global {
    fn shard_of(&self, s: &str) -> usize {
        (self.hasher.hash_one(s) as usize) % NUM_SHARDS
    }

    /// Splits an index into (segment, offset). Segment `k` covers indices
    /// `[FIRST_SEG_CAP * (2^k - 1), FIRST_SEG_CAP * (2^(k+1) - 1))`.
    fn locate(id: u32) -> (usize, usize) {
        let q = id as usize / FIRST_SEG_CAP + 1;
        let seg = (usize::BITS - 1 - q.leading_zeros()) as usize;
        let seg_start = FIRST_SEG_CAP * ((1 << seg) - 1);
        (seg, id as usize - seg_start)
    }

    fn seg_cap(seg: usize) -> usize {
        FIRST_SEG_CAP << seg
    }

    /// Lock-free resolve. Sound because an index only escapes after its
    /// slot (and segment) were published with release stores, and any
    /// mechanism that carried the index to this thread established the
    /// happens-before edge.
    fn resolve(&self, id: u32) -> &'static str {
        let (seg, off) = Self::locate(id);
        let base = self.segments[seg].load(Ordering::Acquire);
        assert!(!base.is_null(), "Sym index {id} out of range");
        unsafe {
            let slot = &*base.add(off);
            let p = slot.load(Ordering::Acquire);
            assert!(!p.is_null(), "Sym index {id} not yet published");
            *p
        }
    }

    fn intern(&self, s: &str) -> u32 {
        let shard = self.shard_of(s);
        if let Some(&id) = self.shards[shard].read().unwrap().get(s) {
            return id;
        }
        let _guard = self.write.lock().unwrap();
        // Re-check: another thread may have interned `s` between the read
        // probe and acquiring the insertion lock.
        if let Some(&id) = self.shards[shard].read().unwrap().get(s) {
            return id;
        }
        let id = self.len.load(Ordering::Relaxed);
        assert!(id <= u32::MAX as usize, "interner full");
        let (seg, off) = Self::locate(id as u32);
        assert!(seg < NUM_SEGMENTS, "interner full");
        let mut base = self.segments[seg].load(Ordering::Acquire);
        if base.is_null() {
            let slots: Vec<Slot> = (0..Self::seg_cap(seg))
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect();
            base = Box::leak(slots.into_boxed_slice()).as_mut_ptr();
            self.segments[seg].store(base, Ordering::Release);
        }
        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
        let cell: &'static mut &'static str = Box::leak(Box::new(leaked));
        unsafe { (*base.add(off)).store(cell, Ordering::Release) };
        self.len.store(id + 1, Ordering::Release);
        self.shards[shard]
            .write()
            .unwrap()
            .insert(leaked, id as u32);
        id as u32
    }
}

thread_local! {
    /// Per-thread cache of already-interned strings: the lock-free fast
    /// path. Entries are never invalidated (symbols are append-only).
    static LOCAL: RefCell<HashMap<&'static str, u32>> = RefCell::new(HashMap::new());
}

/// An interned string. Equality and hashing are `u32` operations; ordering
/// compares the underlying strings so sorted collections read
/// alphabetically. Indices are process-global: a `Sym` is `Send + Sync`
/// and resolves to the same string on every thread.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

impl Sym {
    /// Interns `s`, returning its symbol. Repeated calls with the same
    /// content return the same symbol, allocate nothing after the first,
    /// and — once a thread has seen the string — take no lock.
    pub fn intern(s: &str) -> Sym {
        let cached = LOCAL.with(|c| c.borrow().get(s).copied());
        if let Some(id) = cached {
            return Sym(id);
        }
        let g = global();
        let id = g.intern(s);
        LOCAL.with(|c| c.borrow_mut().insert(g.resolve(id), id));
        Sym(id)
    }

    /// The interned string. `'static` because interned strings live for the
    /// process (see module docs). Lock-free.
    pub fn as_str(self) -> &'static str {
        global().resolve(self.0)
    }

    /// The raw interner index (process-globally stable for the process
    /// lifetime; useful for dense side tables shared across threads).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Number of distinct symbols interned so far (diagnostics).
pub fn interned_count() -> usize {
    global().len.load(Ordering::Acquire)
}

/// Identifies a method: class name, instance/class level, method name.
/// Interned and `Copy` — the engine's cache key, the type table's index,
/// and the identity that structured diagnostics blame. Lives in the
/// interner crate (the workspace's root) so every layer — including the
/// diagnostics machinery in `hb-syntax` — can name methods without
/// depending on the annotation table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodKey {
    pub class: Sym,
    pub class_level: bool,
    pub method: Sym,
}

impl MethodKey {
    /// An instance-method key.
    pub fn instance(class: impl AsRef<str>, method: impl AsRef<str>) -> MethodKey {
        MethodKey {
            class: Sym::intern(class.as_ref()),
            class_level: false,
            method: Sym::intern(method.as_ref()),
        }
    }

    /// A class-level-method key.
    pub fn class_level(class: impl AsRef<str>, method: impl AsRef<str>) -> MethodKey {
        MethodKey {
            class: Sym::intern(class.as_ref()),
            class_level: true,
            method: Sym::intern(method.as_ref()),
        }
    }

    /// Renders as `Class#method` / `Class.method` (the `Display` form).
    pub fn display(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for MethodKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.class_level {
            write!(f, "{}.{}", self.class, self.method)
        } else {
            write!(f, "{}#{}", self.class, self.method)
        }
    }
}

/// One-shot 64-bit structural fingerprint with a fixed, process-stable
/// hasher. Every fingerprint that feeds the multi-tenant shared derivation
/// tier (signature contents, body identity, table/hierarchy epochs) MUST
/// come through this single helper: adoption compares fingerprints
/// produced at different sites, so a site switching to a differently
/// seeded hasher would silently break the cross-tenant fast path.
///
/// The hasher is additionally stable across *processes of the same build*
/// (`DefaultHasher::new()` is unkeyed), which is what lets serialized
/// cache snapshots carry fingerprints between processes. Inputs must not
/// include [`Sym::index`] values — raw indices depend on process-local
/// interning order; hash the string contents instead.
pub fn fingerprint64(x: impl std::hash::Hash) -> u64 {
    use std::hash::Hasher;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    x.hash(&mut h);
    h.finish()
}

// ----- fast hashing for interned keys ----------------------------------------

/// FNV-1a with a splitmix64 finalizer — a fast, non-cryptographic hasher
/// for maps keyed by interned values ([`Sym`], [`MethodKey`]): the keys
/// are tiny (a few machine words of already-uniqued indices), attacker-
/// controlled collisions are not a concern for in-process caches, and the
/// steady-state dispatch path performs several such lookups per call, so
/// SipHash's per-lookup setup cost is measurable. Not process-stable:
/// never use it for fingerprints (see [`fingerprint64`]).
#[derive(Default)]
pub struct FastHasher(u64);

impl std::hash::Hasher for FastHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.0 = (self.0 ^ u64::from(v)).wrapping_mul(0x0100_0000_01b3);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.0 = (self.0 ^ u64::from(v)).wrapping_mul(0x0100_0000_01b3);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x0100_0000_01b3);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // splitmix64 finalizer: FNV alone mixes low bits poorly and
        // `HashMap` indexes by the low bits of the hash.
        let mut z = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = std::hash::BuildHasherDefault<FastHasher>;

/// A `HashMap` over interned keys using [`FastHasher`] — the container
/// for every map on the steady-state dispatch path.
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

// ----- stable symbol serialization -------------------------------------------
//
// `Sym` indices are assigned in process-local interning order, so they can
// NEVER be written to disk raw: a fresh process that interned anything
// else first would resolve them to different strings. Snapshots instead
// ship a *dictionary* — the distinct strings, densely numbered in first-use
// order — and every serialized `Sym` becomes a dictionary id. Loading
// re-interns each dictionary string in the consuming process, mapping
// dictionary ids back to that process's own (possibly different) indices.

/// Builds the symbol dictionary for a serialized artifact: maps each
/// distinct [`Sym`] to a dense, process-independent dictionary id and
/// collects the backing strings in id order.
#[derive(Default)]
pub struct SymDictWriter {
    ids: HashMap<Sym, u32>,
    strings: Vec<&'static str>,
}

impl SymDictWriter {
    /// An empty dictionary.
    pub fn new() -> SymDictWriter {
        SymDictWriter::default()
    }

    /// The dictionary id for `sym`, assigning the next dense id on first
    /// use.
    pub fn id(&mut self, sym: Sym) -> u32 {
        if let Some(&id) = self.ids.get(&sym) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(sym.as_str());
        self.ids.insert(sym, id);
        id
    }

    /// The collected strings, indexed by dictionary id.
    pub fn strings(&self) -> &[&'static str] {
        &self.strings
    }
}

/// Resolves dictionary ids back to [`Sym`]s in the consuming process,
/// re-interning every dictionary string once up front.
pub struct SymDictReader {
    syms: Vec<Sym>,
}

impl SymDictReader {
    /// Interns every dictionary string, in id order.
    pub fn new<'a>(strings: impl IntoIterator<Item = &'a str>) -> SymDictReader {
        SymDictReader {
            syms: strings.into_iter().map(Sym::intern).collect(),
        }
    }

    /// The symbol for dictionary id `id`, or `None` when the id is out of
    /// range (a malformed artifact).
    pub fn sym(&self, id: u32) -> Option<Sym> {
        self.syms.get(id as usize).copied()
    }

    /// Number of dictionary entries.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// True when the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Sym) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Sym) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

// Both Display and Debug render the interned text (Debug without quotes —
// symbols are identifiers, not data).
impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::intern(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::intern(&s)
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Sym {
        Sym::intern(s)
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups() {
        let a = Sym::intern("hello");
        let b = Sym::intern("hello");
        let c = Sym::intern("world");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.index(), b.index());
        assert_eq!(a.as_str(), "hello");
    }

    #[test]
    fn ordering_is_by_content() {
        let z = Sym::intern("zzz");
        let a = Sym::intern("aaa");
        assert!(a < z, "content order, not interning order");
        let mut v = [z, a, Sym::intern("mmm")];
        v.sort();
        let strs: Vec<&str> = v.iter().map(|s| s.as_str()).collect();
        assert_eq!(strs, vec!["aaa", "mmm", "zzz"]);
    }

    #[test]
    fn display_and_debug() {
        let s = Sym::intern("Talk#owner?");
        assert_eq!(format!("{s}"), "Talk#owner?");
        assert_eq!(format!("{s:?}"), "Talk#owner?");
    }

    #[test]
    fn conversions() {
        let a: Sym = "abc".into();
        let b: Sym = String::from("abc").into();
        assert_eq!(a, b);
        assert_eq!(a, "abc");
        assert_eq!(a.as_ref(), "abc");
    }

    #[test]
    fn segment_arithmetic_is_dense_and_in_bounds() {
        // Every index maps to a unique (segment, offset) with offset in
        // range, and boundaries land at the start of the next segment.
        let mut expected_start = 0usize;
        for seg in 0..6 {
            let cap = Global::seg_cap(seg);
            assert_eq!(Global::locate(expected_start as u32), (seg, 0));
            assert_eq!(
                Global::locate((expected_start + cap - 1) as u32),
                (seg, cap - 1)
            );
            expected_start += cap;
        }
    }

    #[test]
    fn sym_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Sym>();
    }

    #[test]
    fn sym_dict_round_trips_in_first_use_order() {
        let a = Sym::intern("Talk");
        let b = Sym::intern("owner?");
        let mut w = SymDictWriter::new();
        assert_eq!(w.id(a), 0);
        assert_eq!(w.id(b), 1);
        assert_eq!(w.id(a), 0, "repeat syms reuse their id");
        assert_eq!(w.strings(), &["Talk", "owner?"]);
        let r = SymDictReader::new(w.strings().iter().copied());
        assert_eq!(r.sym(0), Some(a));
        assert_eq!(r.sym(1), Some(b));
        assert_eq!(r.sym(2), None, "out-of-range ids are malformed, not UB");
        assert_eq!(r.len(), 2);
    }
}
