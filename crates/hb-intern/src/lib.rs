//! A string interner providing [`Sym`]: cheap, `Copy`, hash-friendly keys
//! for the dispatch hot path.
//!
//! The Hummingbird engine intercepts *every* call to a checkable method; on
//! the steady-state (cache-hit) path the only work should be a couple of
//! hash probes. Interning class and method names once turns the former
//! String-keyed cache lookups into `u32` comparisons and removes all
//! per-call allocation.
//!
//! The interner is process-wide and thread-local (the interpreter itself is
//! single-threaded by construction — `Rc` throughout). Interned strings are
//! leaked, which bounds memory by the number of *distinct* names ever seen:
//! exactly the class/method names of the program, the same order of memory
//! the method tables themselves retain.
//!
//! # Example
//!
//! ```
//! use hb_intern::Sym;
//!
//! let a = Sym::intern("Talk");
//! let b = Sym::intern("Talk");
//! assert_eq!(a, b);
//! assert_eq!(a.as_str(), "Talk");
//! // Ordering is by string content, so sorted reports stay alphabetical.
//! assert!(Sym::intern("Apple") < Sym::intern("Banana"));
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;

thread_local! {
    static INTERNER: RefCell<Interner> = RefCell::new(Interner::new());
}

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

impl Interner {
    fn new() -> Interner {
        Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        }
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
        let id = self.strings.len() as u32;
        self.strings.push(leaked);
        self.map.insert(leaked, id);
        id
    }

    fn resolve(&self, id: u32) -> &'static str {
        self.strings[id as usize]
    }
}

/// An interned string. Equality and hashing are `u32` operations; ordering
/// compares the underlying strings so sorted collections read
/// alphabetically.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

impl Sym {
    /// Interns `s`, returning its symbol. Repeated calls with the same
    /// content return the same symbol and allocate nothing after the first.
    pub fn intern(s: &str) -> Sym {
        INTERNER.with(|i| Sym(i.borrow_mut().intern(s)))
    }

    /// The interned string. `'static` because interned strings live for the
    /// process (see module docs).
    pub fn as_str(self) -> &'static str {
        INTERNER.with(|i| i.borrow().resolve(self.0))
    }

    /// The raw interner index (stable within a thread for the process
    /// lifetime; useful for dense side tables).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Sym) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Sym) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

// Both Display and Debug render the interned text (Debug without quotes —
// symbols are identifiers, not data).
impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::intern(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::intern(&s)
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Sym {
        Sym::intern(s)
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups() {
        let a = Sym::intern("hello");
        let b = Sym::intern("hello");
        let c = Sym::intern("world");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.index(), b.index());
        assert_eq!(a.as_str(), "hello");
    }

    #[test]
    fn ordering_is_by_content() {
        let z = Sym::intern("zzz");
        let a = Sym::intern("aaa");
        assert!(a < z, "content order, not interning order");
        let mut v = [z, a, Sym::intern("mmm")];
        v.sort();
        let strs: Vec<&str> = v.iter().map(|s| s.as_str()).collect();
        assert_eq!(strs, vec!["aaa", "mmm", "zzz"]);
    }

    #[test]
    fn display_and_debug() {
        let s = Sym::intern("Talk#owner?");
        assert_eq!(format!("{s}"), "Talk#owner?");
        assert_eq!(format!("{s:?}"), "Talk#owner?");
    }

    #[test]
    fn conversions() {
        let a: Sym = "abc".into();
        let b: Sym = String::from("abc").into();
        assert_eq!(a, b);
        assert_eq!(a, "abc");
        assert_eq!(a.as_ref(), "abc");
    }
}
