//! RubyLite front-end for the Hummingbird reproduction.
//!
//! RubyLite is a Ruby-like dynamic language: classes, modules and mixins,
//! re-openable classes, instance/class/global variables, blocks and procs,
//! metaprogramming (`define_method`, `send`, `class_eval`, `method_missing`),
//! string interpolation and paren-less "command" calls. This crate provides
//! the lexer, abstract syntax tree, recursive-descent parser, pretty-printer
//! and source-location/diagnostic machinery shared by the rest of the
//! workspace.
//!
//! # Example
//!
//! ```
//! use hb_syntax::parse_program;
//!
//! let src = r#"
//! class Talk
//!   def owner?(user)
//!     return owner == user
//!   end
//! end
//! "#;
//! let program = parse_program(src, "talk.rb").unwrap();
//! assert_eq!(program.body.len(), 1);
//! ```

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;

pub use ast::{Arg, BlockArg, Expr, ExprKind, Lhs, Param, ParamKind, Program, StrPart};
pub use diag::{
    BlameTarget, DiagCode, DiagLabel, Diagnostic, LabelRole, ParseError, Severity, TypeDiagnostic,
};
pub use parser::{parse_expr, parse_in, parse_program, parse_with_file};
pub use pretty::pretty_program;
pub use span::{FileId, SourceFile, SourceMap, Span};
