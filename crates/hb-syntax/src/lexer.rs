//! The RubyLite lexer.
//!
//! Newline handling follows Ruby's rule of thumb: a newline ends a statement
//! unless the previous token makes continuation unavoidable (binary operator,
//! comma, open bracket, `.` and so on). Consecutive significant newlines are
//! collapsed into one [`TokenKind::Newline`].

use crate::diag::ParseError;
use crate::span::{FileId, Span};
use crate::token::{StrTokenPart, Token, TokenKind};

/// Lexes `src` (belonging to `file`) into a token stream ending in `Eof`.
///
/// # Errors
///
/// Returns a [`ParseError`] on unterminated strings or unexpected characters.
pub fn lex(src: &str, file: FileId) -> Result<Vec<Token>, ParseError> {
    Lexer::new(src, file).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    text: &'a str,
    pos: usize,
    file: FileId,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str, file: FileId) -> Lexer<'a> {
        Lexer {
            src: text.as_bytes(),
            text,
            pos: 0,
            file,
            tokens: Vec::new(),
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn peek3(&self) -> u8 {
        *self.src.get(self.pos + 2).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        c
    }

    fn span_from(&self, lo: usize) -> Span {
        Span::new(self.file, lo as u32, self.pos as u32)
    }

    fn err(&self, lo: usize, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg.into(), self.span_from(lo))
    }

    fn push(&mut self, kind: TokenKind, lo: usize) {
        let span = self.span_from(lo);
        self.tokens.push(Token { kind, span });
    }

    fn last_kind(&self) -> Option<&TokenKind> {
        self.tokens.last().map(|t| &t.kind)
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        while self.pos < self.src.len() {
            let lo = self.pos;
            let c = self.peek();
            match c {
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                }
                b'#' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.pos += 1;
                    }
                }
                b'\n' => {
                    self.pos += 1;
                    let suppress = match self.last_kind() {
                        None => true,
                        Some(k) => k.suppresses_newline(),
                    };
                    if !suppress {
                        self.push(TokenKind::Newline, lo);
                    }
                }
                b'0'..=b'9' => self.lex_number(lo)?,
                b'"' => self.lex_dquote(lo)?,
                b'\'' => self.lex_squote(lo)?,
                b':' => self.lex_colon(lo)?,
                b'@' => self.lex_at(lo)?,
                b'$' => {
                    self.pos += 1;
                    let name = self.lex_name_raw();
                    if name.is_empty() {
                        return Err(self.err(lo, "expected global variable name after `$`"));
                    }
                    self.push(TokenKind::GVar(name), lo);
                }
                b'a'..=b'z' | b'_' => self.lex_ident(lo)?,
                b'A'..=b'Z' => {
                    let name = self.lex_name_raw();
                    self.push(TokenKind::Const(name), lo);
                }
                _ => self.lex_op(lo)?,
            }
        }
        let lo = self.pos;
        self.push(TokenKind::Eof, lo);
        Ok(self.tokens)
    }

    /// Consumes `[A-Za-z0-9_]*` from the current position.
    fn lex_name_raw(&mut self) -> String {
        let start = self.pos;
        while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
            self.pos += 1;
        }
        self.text[start..self.pos].to_string()
    }

    fn lex_number(&mut self, lo: usize) -> Result<(), ParseError> {
        while self.peek().is_ascii_digit() || self.peek() == b'_' {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == b'.' && self.peek2().is_ascii_digit() {
            is_float = true;
            self.pos += 1;
            while self.peek().is_ascii_digit() || self.peek() == b'_' {
                self.pos += 1;
            }
        }
        let raw: String = self.text[lo..self.pos]
            .chars()
            .filter(|c| *c != '_')
            .collect();
        if is_float {
            let v: f64 = raw
                .parse()
                .map_err(|_| self.err(lo, format!("invalid float literal `{raw}`")))?;
            self.push(TokenKind::Float(v), lo);
        } else {
            let v: i64 = raw
                .parse()
                .map_err(|_| self.err(lo, format!("integer literal `{raw}` out of range")))?;
            self.push(TokenKind::Int(v), lo);
        }
        Ok(())
    }

    fn lex_dquote(&mut self, lo: usize) -> Result<(), ParseError> {
        self.pos += 1; // opening quote
        let mut parts: Vec<StrTokenPart> = Vec::new();
        let mut lit = String::new();
        loop {
            if self.pos >= self.src.len() {
                return Err(self.err(lo, "unterminated string literal"));
            }
            match self.peek() {
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\\' => {
                    self.pos += 1;
                    let e = self.bump();
                    lit.push(match e {
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        b'0' => '\0',
                        b'\\' => '\\',
                        b'"' => '"',
                        b'\'' => '\'',
                        b'#' => '#',
                        other => other as char,
                    });
                }
                b'#' if self.peek2() == b'{' => {
                    if !lit.is_empty() {
                        parts.push(StrTokenPart::Lit(std::mem::take(&mut lit)));
                    }
                    self.pos += 2; // `#{`
                    let body = self.scan_interp(lo)?;
                    parts.push(StrTokenPart::Interp(body));
                }
                _ => {
                    // Push whole UTF-8 characters, not bytes.
                    let ch_start = self.pos;
                    let ch = self.text[ch_start..].chars().next().unwrap();
                    self.pos += ch.len_utf8();
                    lit.push(ch);
                }
            }
        }
        if !lit.is_empty() || parts.is_empty() {
            parts.push(StrTokenPart::Lit(lit));
        }
        self.push(TokenKind::Str(parts), lo);
        Ok(())
    }

    /// Scans the body of a `#{...}` interpolation up to the matching `}`,
    /// tracking nested braces and skipping over nested string literals.
    fn scan_interp(&mut self, lo: usize) -> Result<String, ParseError> {
        let start = self.pos;
        let mut depth = 1usize;
        while self.pos < self.src.len() {
            match self.peek() {
                b'{' => {
                    depth += 1;
                    self.pos += 1;
                }
                b'}' => {
                    depth -= 1;
                    self.pos += 1;
                    if depth == 0 {
                        return Ok(self.text[start..self.pos - 1].to_string());
                    }
                }
                q @ (b'"' | b'\'') => {
                    self.pos += 1;
                    while self.pos < self.src.len() && self.peek() != q {
                        if self.peek() == b'\\' {
                            self.pos += 1;
                        }
                        self.pos += 1;
                    }
                    self.pos += 1; // closing quote
                }
                _ => self.pos += 1,
            }
        }
        Err(self.err(lo, "unterminated `#{` interpolation"))
    }

    fn lex_squote(&mut self, lo: usize) -> Result<(), ParseError> {
        self.pos += 1;
        let mut lit = String::new();
        loop {
            if self.pos >= self.src.len() {
                return Err(self.err(lo, "unterminated string literal"));
            }
            match self.peek() {
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                b'\\' if matches!(self.peek2(), b'\'' | b'\\') => {
                    self.pos += 1;
                    lit.push(self.bump() as char);
                }
                _ => {
                    let ch = self.text[self.pos..].chars().next().unwrap();
                    self.pos += ch.len_utf8();
                    lit.push(ch);
                }
            }
        }
        self.push(TokenKind::Str(vec![StrTokenPart::Lit(lit)]), lo);
        Ok(())
    }

    fn lex_colon(&mut self, lo: usize) -> Result<(), ParseError> {
        if self.peek2() == b':' {
            self.pos += 2;
            self.push(TokenKind::ColonColon, lo);
            return Ok(());
        }
        self.pos += 1;
        // Symbol literal: `:name`, `:name?`, `:name=`, `:[]`, `:[]=`, `:+`,
        // `:@ivar`, `:$gvar` ...
        match self.peek() {
            b'@' => {
                self.pos += 1;
                let mut prefix = "@".to_string();
                if self.peek() == b'@' {
                    self.pos += 1;
                    prefix.push('@');
                }
                let name = self.lex_name_raw();
                if name.is_empty() {
                    return Err(self.err(lo, "invalid symbol literal"));
                }
                self.push(TokenKind::Symbol(format!("{prefix}{name}")), lo);
            }
            b'$' => {
                self.pos += 1;
                let name = self.lex_name_raw();
                if name.is_empty() {
                    return Err(self.err(lo, "invalid symbol literal"));
                }
                self.push(TokenKind::Symbol(format!("${name}")), lo);
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let mut name = self.lex_name_raw();
                match self.peek() {
                    b'?' | b'!' => {
                        name.push(self.bump() as char);
                    }
                    b'=' if self.peek2() != b'=' && self.peek2() != b'>' => {
                        name.push(self.bump() as char);
                    }
                    _ => {}
                }
                self.push(TokenKind::Symbol(name), lo);
            }
            b'[' => {
                self.pos += 1;
                if self.peek() != b']' {
                    return Err(self.err(lo, "invalid symbol literal"));
                }
                self.pos += 1;
                let mut name = "[]".to_string();
                if self.peek() == b'=' {
                    self.pos += 1;
                    name.push('=');
                }
                self.push(TokenKind::Symbol(name), lo);
            }
            b'"' => {
                // `:"string"` symbol (no interpolation).
                self.pos += 1;
                let start = self.pos;
                while self.pos < self.src.len() && self.peek() != b'"' {
                    self.pos += 1;
                }
                if self.pos >= self.src.len() {
                    return Err(self.err(lo, "unterminated symbol literal"));
                }
                let name = self.text[start..self.pos].to_string();
                self.pos += 1;
                self.push(TokenKind::Symbol(name), lo);
            }
            _ => {
                // Operator symbols.
                for op in [
                    "<=>", "===", "==", "!=", "<=", ">=", "<<", "**", "+", "-", "*", "/", "%", "<",
                    ">", "!",
                ] {
                    if self.text[self.pos..].starts_with(op) {
                        self.pos += op.len();
                        self.push(TokenKind::Symbol(op.to_string()), lo);
                        return Ok(());
                    }
                }
                self.push(TokenKind::Colon, lo);
            }
        }
        Ok(())
    }

    fn lex_at(&mut self, lo: usize) -> Result<(), ParseError> {
        self.pos += 1;
        if self.peek() == b'@' {
            self.pos += 1;
            let name = self.lex_name_raw();
            if name.is_empty() {
                return Err(self.err(lo, "expected class variable name after `@@`"));
            }
            self.push(TokenKind::CVar(name), lo);
        } else {
            let name = self.lex_name_raw();
            if name.is_empty() {
                return Err(self.err(lo, "expected instance variable name after `@`"));
            }
            self.push(TokenKind::IVar(name), lo);
        }
        Ok(())
    }

    fn lex_ident(&mut self, lo: usize) -> Result<(), ParseError> {
        let mut name = self.lex_name_raw();
        match self.peek() {
            b'?' => {
                name.push('?');
                self.pos += 1;
            }
            b'!' if self.peek2() != b'=' => {
                name.push('!');
                self.pos += 1;
            }
            _ => {}
        }
        // A hash label: identifier immediately followed by `:` (not `::`).
        if self.peek() == b':' && self.peek2() != b':' && !name.ends_with(['?', '!']) {
            self.pos += 1;
            self.push(TokenKind::Label(name), lo);
            return Ok(());
        }
        match TokenKind::keyword(&name) {
            Some(kw) => self.push(kw, lo),
            None => self.push(TokenKind::Ident(name), lo),
        }
        Ok(())
    }

    fn lex_op(&mut self, lo: usize) -> Result<(), ParseError> {
        use TokenKind::*;
        let three = &self.text[self.pos..self.text.len().min(self.pos + 3)];
        let two = &self.text[self.pos..self.text.len().min(self.pos + 2)];
        let (kind, len) = if three == "<=>" {
            (Spaceship, 3)
        } else if three == "..." {
            (DotDotDot, 3)
        } else if three == "**=" {
            return Err(self.err(lo, "`**=` is not supported"));
        } else {
            match two {
                "==" => (EqEq, 2),
                "!=" => (NotEq, 2),
                "<=" => (LtEq, 2),
                ">=" => (GtEq, 2),
                "&&" => {
                    if self.peek3() == b'=' {
                        (AndAndAssign, 3)
                    } else {
                        (AndAnd, 2)
                    }
                }
                "||" => {
                    if self.peek3() == b'=' {
                        (OrOrAssign, 3)
                    } else {
                        (OrOr, 2)
                    }
                }
                "+=" => (PlusAssign, 2),
                "-=" => (MinusAssign, 2),
                "*=" => (StarAssign, 2),
                "/=" => (SlashAssign, 2),
                "%=" => (PercentAssign, 2),
                "<<" => (ShiftL, 2),
                ">>" => (ShiftR, 2),
                "**" => (StarStar, 2),
                "=>" => (FatArrow, 2),
                ".." => (DotDot, 2),
                _ => match self.peek() {
                    b'+' => (Plus, 1),
                    b'-' => (Minus, 1),
                    b'*' => (Star, 1),
                    b'/' => (Slash, 1),
                    b'%' => (Percent, 1),
                    b'<' => (Lt, 1),
                    b'>' => (Gt, 1),
                    b'=' => (Assign, 1),
                    b'!' => (Bang, 1),
                    b'?' => (Question, 1),
                    b'.' => (Dot, 1),
                    b',' => (Comma, 1),
                    b'(' => (LParen, 1),
                    b')' => (RParen, 1),
                    b'[' => (LBracket, 1),
                    b']' => (RBracket, 1),
                    b'{' => (LBrace, 1),
                    b'}' => (RBrace, 1),
                    b'|' => (Pipe, 1),
                    b'&' => (Amp, 1),
                    b';' => (Semi, 1),
                    other => {
                        return Err(
                            self.err(lo, format!("unexpected character `{}`", other as char))
                        )
                    }
                },
            }
        };
        self.pos += len;
        self.push(kind, lo);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::StrTokenPart as P;
    use TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src, FileId(0))
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_simple_assignment() {
        assert_eq!(
            kinds("x = 1 + 2"),
            vec![Ident("x".into()), Assign, Int(1), Plus, Int(2), Eof]
        );
    }

    #[test]
    fn lexes_floats_and_underscored_ints() {
        assert_eq!(kinds("1_000 3.25"), vec![Int(1000), Float(3.25), Eof]);
    }

    #[test]
    fn int_followed_by_range_is_not_float() {
        assert_eq!(kinds("1..5"), vec![Int(1), DotDot, Int(5), Eof]);
        assert_eq!(kinds("1...5"), vec![Int(1), DotDotDot, Int(5), Eof]);
    }

    #[test]
    fn lexes_keywords_and_method_ish_idents() {
        assert_eq!(
            kinds("def owner?(user) end"),
            vec![
                KwDef,
                Ident("owner?".into()),
                LParen,
                Ident("user".into()),
                RParen,
                KwEnd,
                Eof
            ]
        );
    }

    #[test]
    fn bang_ident_vs_not_equal() {
        assert_eq!(
            kinds("save! a != b"),
            vec![
                Ident("save!".into()),
                Ident("a".into()),
                NotEq,
                Ident("b".into()),
                Eof
            ]
        );
    }

    #[test]
    fn lexes_symbols() {
        assert_eq!(
            kinds(":owner :class_name :[] :[]= :+ :owner?"),
            vec![
                Symbol("owner".into()),
                Symbol("class_name".into()),
                Symbol("[]".into()),
                Symbol("[]=".into()),
                Symbol("+".into()),
                Symbol("owner?".into()),
                Eof
            ]
        );
    }

    #[test]
    fn lexes_setter_symbol() {
        assert_eq!(kinds(":name="), vec![Symbol("name=".into()), Eof]);
    }

    #[test]
    fn lexes_labels_vs_symbols_vs_ternary() {
        assert_eq!(
            kinds("{ name: 1 }"),
            vec![LBrace, Label("name".into()), Int(1), RBrace, Eof]
        );
        // Spaced colon stays a ternary colon.
        assert_eq!(
            kinds("a ? b : c"),
            vec![
                Ident("a".into()),
                Question,
                Ident("b".into()),
                Colon,
                Ident("c".into()),
                Eof
            ]
        );
    }

    #[test]
    fn lexes_ivars_cvars_gvars() {
        assert_eq!(
            kinds("@x @@cache $stderr"),
            vec![
                IVar("x".into()),
                CVar("cache".into()),
                GVar("stderr".into()),
                Eof
            ]
        );
    }

    #[test]
    fn lexes_plain_string() {
        assert_eq!(
            kinds(r#""hello""#),
            vec![Str(vec![P::Lit("hello".into())]), Eof]
        );
    }

    #[test]
    fn lexes_interpolated_string() {
        assert_eq!(
            kinds(r#""is_#{role_name}?""#),
            vec![
                Str(vec![
                    P::Lit("is_".into()),
                    P::Interp("role_name".into()),
                    P::Lit("?".into())
                ]),
                Eof
            ]
        );
    }

    #[test]
    fn interpolation_with_nested_braces_and_strings() {
        assert_eq!(
            kinds(r#""x#{h["}"]}y""#),
            vec![
                Str(vec![
                    P::Lit("x".into()),
                    P::Interp(r#"h["}"]"#.into()),
                    P::Lit("y".into())
                ]),
                Eof
            ]
        );
    }

    #[test]
    fn lexes_escapes() {
        assert_eq!(
            kinds(r#""a\nb\"c""#),
            vec![Str(vec![P::Lit("a\nb\"c".into())]), Eof]
        );
    }

    #[test]
    fn single_quoted_is_raw() {
        assert_eq!(
            kinds(r#"'a#{x}b'"#),
            vec![Str(vec![P::Lit("a#{x}b".into())]), Eof]
        );
    }

    #[test]
    fn newline_rules() {
        // Newline after operator is suppressed; after operand it is kept.
        assert_eq!(
            kinds("x = 1 +\n2\ny"),
            vec![
                Ident("x".into()),
                Assign,
                Int(1),
                Plus,
                Int(2),
                Newline,
                Ident("y".into()),
                Eof
            ]
        );
    }

    #[test]
    fn consecutive_newlines_collapse() {
        assert_eq!(
            kinds("a\n\n\nb"),
            vec![Ident("a".into()), Newline, Ident("b".into()), Eof]
        );
    }

    #[test]
    fn leading_newlines_skipped() {
        assert_eq!(kinds("\n\n a"), vec![Ident("a".into()), Eof]);
    }

    #[test]
    fn comments_ignored() {
        assert_eq!(
            kinds("a # comment\nb"),
            vec![Ident("a".into()), Newline, Ident("b".into()), Eof]
        );
    }

    #[test]
    fn op_assign_tokens() {
        assert_eq!(
            kinds("a ||= 1; b += 2"),
            vec![
                Ident("a".into()),
                OrOrAssign,
                Int(1),
                Semi,
                Ident("b".into()),
                PlusAssign,
                Int(2),
                Eof
            ]
        );
    }

    #[test]
    fn shovel_and_compare() {
        assert_eq!(
            kinds("a << b <=> c"),
            vec![
                Ident("a".into()),
                ShiftL,
                Ident("b".into()),
                Spaceship,
                Ident("c".into()),
                Eof
            ]
        );
    }

    #[test]
    fn const_path() {
        assert_eq!(
            kinds("ActiveRecord::Base"),
            vec![
                Const("ActiveRecord".into()),
                ColonColon,
                Const("Base".into()),
                Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"abc", FileId(0)).is_err());
        assert!(lex("'abc", FileId(0)).is_err());
        assert!(lex("\"a#{b", FileId(0)).is_err());
    }

    #[test]
    fn unexpected_char_errors() {
        assert!(lex("a ^ b", FileId(0)).is_err());
    }

    #[test]
    fn fat_arrow_and_hash_rocket() {
        assert_eq!(
            kinds(":a => 1"),
            vec![Symbol("a".into()), FatArrow, Int(1), Eof]
        );
    }

    #[test]
    fn spans_are_tracked() {
        let toks = lex("ab + cd", FileId(3)).unwrap();
        assert_eq!(toks[0].span, Span::new(FileId(3), 0, 2));
        assert_eq!(toks[1].span, Span::new(FileId(3), 3, 4));
        assert_eq!(toks[2].span, Span::new(FileId(3), 5, 7));
    }
}
