//! The RubyLite abstract syntax tree.
//!
//! Everything in RubyLite is an expression, as in Ruby: class bodies, method
//! definitions and control flow all produce values. A [`Program`] is simply a
//! sequence of top-level expressions.

use crate::span::Span;
use std::rc::Rc;

/// A parsed source file.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub body: Vec<Expr>,
}

/// An expression with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
}

impl Expr {
    /// Wraps `kind` with `span`.
    pub fn new(kind: ExprKind, span: Span) -> Expr {
        Expr { kind, span }
    }

    /// A `nil` literal with a dummy span, for synthesised nodes.
    pub fn nil() -> Expr {
        Expr::new(ExprKind::Nil, Span::dummy())
    }
}

/// One piece of an interpolated string.
#[derive(Debug, Clone, PartialEq)]
pub enum StrPart {
    Lit(String),
    Interp(Box<Expr>),
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum Lhs {
    /// A local variable.
    Local(String),
    /// `@ivar`
    IVar(String),
    /// `@@cvar`
    CVar(String),
    /// `$gvar`
    GVar(String),
    /// A constant path such as `A::B`.
    Const(Vec<String>),
    /// `recv[args] = value` (sugar for a `[]=` call).
    Index(Box<Expr>, Vec<Expr>),
    /// `recv.name = value` (sugar for a `name=` call).
    Attr(Box<Expr>, String),
}

/// A positional or special argument at a call site.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    Pos(Expr),
    /// `*expr`
    Splat(Expr),
    /// `&expr` — pass `expr` (a proc or symbol) as the call's block.
    BlockPass(Expr),
}

/// A literal block (`do |x| ... end` or `{ |x| ... }`) attached to a call.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockArg {
    pub params: Vec<Param>,
    pub body: Rc<Vec<Expr>>,
    pub span: Span,
}

/// How a formal parameter binds.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamKind {
    Required,
    /// `name = default`
    Optional(Box<Expr>),
    /// `*rest`
    Rest,
    /// `&blk`
    Block,
}

/// A formal parameter of a method or block.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub name: String,
    pub kind: ParamKind,
}

impl Param {
    /// A required positional parameter.
    pub fn required(name: impl Into<String>) -> Param {
        Param {
            name: name.into(),
            kind: ParamKind::Required,
        }
    }
}

/// The body of an expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    Nil,
    True,
    False,
    SelfExpr,
    Int(i64),
    Float(f64),
    Str(Vec<StrPart>),
    Sym(String),
    Array(Vec<Expr>),
    /// `{ k => v, key: v }`
    Hash(Vec<(Expr, Expr)>),
    /// `lo..hi` (`exclusive` for `...`).
    Range {
        lo: Box<Expr>,
        hi: Box<Expr>,
        exclusive: bool,
    },

    /// A local variable read (the parser resolved the identifier to a local
    /// assigned earlier in scope, following Ruby's lexical rule).
    Local(String),
    IVar(String),
    CVar(String),
    GVar(String),
    /// A constant path `A::B::C`.
    Const(Vec<String>),

    Assign {
        target: Lhs,
        value: Box<Expr>,
    },
    /// `target op= value`; `op` is the binary method name (`+`, `*`, ...) or
    /// `"||"`/`"&&"` for the short-circuiting forms.
    OpAssign {
        target: Lhs,
        op: String,
        value: Box<Expr>,
    },

    /// A method call. `recv == None` means an implicit-self call.
    Call {
        recv: Option<Box<Expr>>,
        name: String,
        args: Vec<Arg>,
        block: Option<BlockArg>,
    },
    Yield(Vec<Expr>),
    /// `super` / `super(args)`. `args == None` forwards the current method's
    /// arguments (zsuper).
    Super {
        args: Option<Vec<Expr>>,
    },

    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),

    If {
        cond: Box<Expr>,
        then_body: Vec<Expr>,
        else_body: Vec<Expr>,
    },
    While {
        cond: Box<Expr>,
        body: Vec<Expr>,
    },
    Case {
        scrutinee: Option<Box<Expr>>,
        whens: Vec<(Vec<Expr>, Vec<Expr>)>,
        else_body: Vec<Expr>,
    },
    Begin {
        body: Vec<Expr>,
        rescues: Vec<Rescue>,
        ensure_body: Vec<Expr>,
    },

    Return(Option<Box<Expr>>),
    Break(Option<Box<Expr>>),
    Next(Option<Box<Expr>>),

    ClassDef {
        path: Vec<String>,
        superclass: Option<Box<Expr>>,
        body: Rc<Vec<Expr>>,
    },
    ModuleDef {
        path: Vec<String>,
        body: Rc<Vec<Expr>>,
    },
    MethodDef(Rc<MethodDefNode>),
}

/// A `rescue` clause of a `begin` expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Rescue {
    /// Exception class constants to match; empty means "match anything".
    pub classes: Vec<Expr>,
    /// `rescue E => name`
    pub var: Option<String>,
    pub body: Vec<Expr>,
}

/// A `def` node. Reference-counted because the interpreter stores it in the
/// method table and the lowering pipeline shares it with the checker.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDefNode {
    /// `def self.name` defines a class-level (singleton) method.
    pub self_method: bool,
    pub name: String,
    pub params: Vec<Param>,
    pub body: Vec<Expr>,
    pub span: Span,
}

impl ExprKind {
    /// True for expressions that never need a trailing statement separator
    /// issue when pretty-printed inline.
    pub fn is_literal(&self) -> bool {
        matches!(
            self,
            ExprKind::Nil
                | ExprKind::True
                | ExprKind::False
                | ExprKind::Int(_)
                | ExprKind::Float(_)
                | ExprKind::Str(_)
                | ExprKind::Sym(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_classification() {
        assert!(ExprKind::Int(3).is_literal());
        assert!(ExprKind::Sym("a".into()).is_literal());
        assert!(!ExprKind::Local("a".into()).is_literal());
    }

    #[test]
    fn synthesised_nil() {
        let e = Expr::nil();
        assert_eq!(e.kind, ExprKind::Nil);
        assert_eq!(e.span, Span::dummy());
    }
}
