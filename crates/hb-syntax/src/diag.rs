//! Parse errors, generic diagnostics, and the structured blame surface.
//!
//! [`TypeDiagnostic`] is the workspace's first-class error value for
//! just-in-time check failures (the paper's *blame*): a stable `HBxxxx`
//! code, a primary span, labeled secondary spans (the blamed annotation,
//! the triggering call site, the cast site) and a structured
//! [`BlameTarget`] saying *which annotation or cast is responsible* —
//! machine-readably, not as a flattened string.

use crate::span::{SourceMap, Span};
use hb_intern::MethodKey;
use std::error::Error;
use std::fmt;

/// An error produced while lexing or parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub span: Span,
}

impl ParseError {
    /// Creates a parse error at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> ParseError {
        ParseError {
            message: message.into(),
            span,
        }
    }

    /// Renders the error with a resolved source position.
    pub fn render(&self, map: &SourceMap) -> String {
        format!("{}: parse error: {}", map.describe(self.span), self.message)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl Error for ParseError {}

/// Severity of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    Error,
    Warning,
    Note,
}

/// A general diagnostic used by downstream phases (the checker reuses this
/// shape for type errors so every tool renders locations uniformly).
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub severity: Severity,
    pub message: String,
    pub span: Span,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
        }
    }

    /// Renders the diagnostic with a resolved source position.
    pub fn render(&self, map: &SourceMap) -> String {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        };
        format!("{}: {}: {}", map.describe(self.span), sev, self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        };
        write!(f, "{sev}: {}", self.message)
    }
}

/// Stable diagnostic codes for type-check and contract failures. The
/// numeric form (`HB0001`, …) is the public contract: tools, tests and CI
/// gates match on it, so variants are append-only and never renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DiagCode {
    /// HB0001 — a call's arity matches no arm of the callee's signature.
    ArityMismatch,
    /// HB0002 — an argument's static type matches no arm.
    ArgumentType,
    /// HB0003 — the callee has no type annotation at all.
    NoMethodType,
    /// HB0004 — an ivar/cvar/gvar assignment violates its declared type.
    VarAssign,
    /// HB0005 — an `rdl_cast` failed (at run time) or its type is invalid.
    CastFailure,
    /// HB0006 — the checker's fixpoint did not converge.
    NonConvergence,
    /// HB0007 — the body (or an explicit return) does not match the
    /// declared return type.
    ReturnType,
    /// HB0008 — block incompatibility: a block passed to a blockless
    /// type, a block body's type mismatch, or `yield` without a declared
    /// block.
    BlockIncompatible,
    /// HB0009 — a `pre` contract rejected the call.
    PreconditionFailed,
    /// HB0010 — a dynamic argument check (unchecked caller) failed.
    DynamicArgCheck,
    /// HB0011 — a scheduled check task panicked on a worker thread; the
    /// panic was contained to the task and surfaced as this diagnostic.
    CheckerPanic,
    /// HB1001 — a local variable is read before any assignment can have
    /// reached it (definite use-before-assignment; the read yields `nil`).
    UseBeforeAssign,
    /// HB1002 — code that no path from the method entry can reach
    /// (after `return`/`raise`, or in a branch dead under narrowing).
    UnreachableCode,
    /// HB1003 — a local is assigned a pure value that is overwritten or
    /// falls out of scope before any read (dead store).
    DeadStore,
    /// HB1004 — a local is assigned but never read anywhere in the method.
    UnusedLocal,
    /// HB1005 — an annotated method is unreachable from every program
    /// entry point: the annotation is stale (it will never be checked).
    StaleAnnotation,
    /// HB1006 — dynamic-check residue: an annotated method is reached
    /// from unchecked callers, so its guarded prologue (per-call dynamic
    /// argument checks) survives elision.
    DynCheckResidue,
    /// HB2001 — inferable signature: the inference pass produced a
    /// plausible candidate signature for an unannotated method, but the
    /// checker refuted it (`check_sig` failed), so it was *not* adopted.
    /// The diagnostic carries the candidate as a ready-to-review `type`
    /// suggestion.
    InferableSignature,
}

impl DiagCode {
    /// The stable `HBxxxx` string.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::ArityMismatch => "HB0001",
            DiagCode::ArgumentType => "HB0002",
            DiagCode::NoMethodType => "HB0003",
            DiagCode::VarAssign => "HB0004",
            DiagCode::CastFailure => "HB0005",
            DiagCode::NonConvergence => "HB0006",
            DiagCode::ReturnType => "HB0007",
            DiagCode::BlockIncompatible => "HB0008",
            DiagCode::PreconditionFailed => "HB0009",
            DiagCode::DynamicArgCheck => "HB0010",
            DiagCode::CheckerPanic => "HB0011",
            DiagCode::UseBeforeAssign => "HB1001",
            DiagCode::UnreachableCode => "HB1002",
            DiagCode::DeadStore => "HB1003",
            DiagCode::UnusedLocal => "HB1004",
            DiagCode::StaleAnnotation => "HB1005",
            DiagCode::DynCheckResidue => "HB1006",
            DiagCode::InferableSignature => "HB2001",
        }
    }

    /// True for the `HB1xxx` static-analysis warning series (emitted by
    /// `hb-analyze` passes, never by the just-in-time checker). The
    /// `HB2xxx` inference-suggestion series is deliberately excluded: a
    /// suggestion is neither a checker error nor a defect warning.
    pub fn is_lint(self) -> bool {
        self.as_str().starts_with("HB1")
    }

    /// True for the `HB2xxx` inference-suggestion series.
    pub fn is_suggestion(self) -> bool {
        self.as_str().starts_with("HB2")
    }

    /// Parses an `HBxxxx` string back to its code.
    pub fn parse(s: &str) -> Option<DiagCode> {
        Some(match s {
            "HB0001" => DiagCode::ArityMismatch,
            "HB0002" => DiagCode::ArgumentType,
            "HB0003" => DiagCode::NoMethodType,
            "HB0004" => DiagCode::VarAssign,
            "HB0005" => DiagCode::CastFailure,
            "HB0006" => DiagCode::NonConvergence,
            "HB0007" => DiagCode::ReturnType,
            "HB0008" => DiagCode::BlockIncompatible,
            "HB0009" => DiagCode::PreconditionFailed,
            "HB0010" => DiagCode::DynamicArgCheck,
            "HB0011" => DiagCode::CheckerPanic,
            "HB1001" => DiagCode::UseBeforeAssign,
            "HB1002" => DiagCode::UnreachableCode,
            "HB1003" => DiagCode::DeadStore,
            "HB1004" => DiagCode::UnusedLocal,
            "HB1005" => DiagCode::StaleAnnotation,
            "HB1006" => DiagCode::DynCheckResidue,
            "HB2001" => DiagCode::InferableSignature,
            _ => return None,
        })
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What a diagnostic blames — the annotation, cast or declaration that is
/// responsible for the failure (paper §2/§5: blame names the exact
/// annotation, not just the failing expression).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlameTarget {
    /// A method type annotation: the signature the failing code disagrees
    /// with.
    Annotation(MethodKey),
    /// An `rdl_cast` the program asserted and the value (or type string)
    /// violated.
    Cast,
    /// An ivar/cvar/gvar type declaration (`var_type`).
    VarDecl {
        /// The variable name including its sigil (`@count`, `@@n`, `$x`).
        name: String,
    },
    /// No annotation exists for this method anywhere along the receiver's
    /// chain — the fix is to *add* a type (or fix the call).
    MissingType(MethodKey),
    /// A static-analysis finding: nothing is *blamed* in the paper's sense
    /// — the pass name says which analysis produced the warning.
    Lint {
        /// The analysis pass that produced the finding (`"use-before-assign"`,
        /// `"residue"`, …).
        pass: &'static str,
    },
}

impl BlameTarget {
    /// The machine-readable kind tag used in JSON output.
    pub fn kind(&self) -> &'static str {
        match self {
            BlameTarget::Annotation(_) => "annotation",
            BlameTarget::Cast => "cast",
            BlameTarget::VarDecl { .. } => "var-decl",
            BlameTarget::MissingType(_) => "missing-type",
            BlameTarget::Lint { .. } => "lint",
        }
    }
}

/// The role a secondary span plays in a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelRole {
    /// The blamed annotation's registration site.
    BlamedAnnotation,
    /// The dynamic call that triggered the just-in-time check.
    CallSite,
    /// The `rdl_cast` site.
    CastSite,
    /// The method being checked (its own annotation site).
    CheckedMethod,
    /// Free-form secondary note.
    Note,
}

impl LabelRole {
    /// The machine-readable tag (also used in JSON output).
    pub fn as_str(self) -> &'static str {
        match self {
            LabelRole::BlamedAnnotation => "blamed-annotation",
            LabelRole::CallSite => "call-site",
            LabelRole::CastSite => "cast-site",
            LabelRole::CheckedMethod => "checked-method",
            LabelRole::Note => "note",
        }
    }
}

/// A labeled secondary span attached to a [`TypeDiagnostic`].
#[derive(Debug, Clone, PartialEq)]
pub struct DiagLabel {
    pub role: LabelRole,
    pub message: String,
    pub span: Span,
    /// The method the label refers to (e.g. the blamed annotation's key).
    pub method: Option<MethodKey>,
}

impl DiagLabel {
    /// A label of `role` at `span`.
    pub fn new(role: LabelRole, message: impl Into<String>, span: Span) -> DiagLabel {
        DiagLabel {
            role,
            message: message.into(),
            span,
            method: None,
        }
    }

    /// Attaches the method key the label refers to.
    pub fn with_method(mut self, key: MethodKey) -> DiagLabel {
        self.method = Some(key);
        self
    }
}

/// A structured type-check/contract diagnostic — the first-class form of
/// the paper's *blame*. Carries everything a tool needs machine-readably:
/// stable code, primary span, labeled secondary spans and the blamed
/// target, with both human ([`TypeDiagnostic::render`]) and JSON
/// ([`TypeDiagnostic::to_json`]) output.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeDiagnostic {
    pub code: DiagCode,
    pub severity: Severity,
    /// The primary, human-readable message (no location information —
    /// spans carry that).
    pub message: String,
    /// The primary span: where the offending code is.
    pub span: Span,
    /// Labeled secondary spans (blamed annotation, call site, …).
    pub labels: Vec<DiagLabel>,
    /// What the diagnostic blames.
    pub blame: BlameTarget,
    /// The method that was being checked when the failure surfaced.
    pub method: Option<MethodKey>,
}

impl TypeDiagnostic {
    /// An error-severity diagnostic with no labels yet.
    pub fn error(
        code: DiagCode,
        message: impl Into<String>,
        span: Span,
        blame: BlameTarget,
    ) -> TypeDiagnostic {
        TypeDiagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            span,
            labels: Vec::new(),
            blame,
            method: None,
        }
    }

    /// A warning-severity diagnostic with no labels yet (the `HB1xxx`
    /// static-analysis series).
    pub fn warning(
        code: DiagCode,
        message: impl Into<String>,
        span: Span,
        blame: BlameTarget,
    ) -> TypeDiagnostic {
        TypeDiagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
            span,
            labels: Vec::new(),
            blame,
            method: None,
        }
    }

    /// Appends a label (builder style).
    pub fn with_label(mut self, label: DiagLabel) -> TypeDiagnostic {
        self.labels.push(label);
        self
    }

    /// Records the method being checked.
    pub fn with_method(mut self, key: MethodKey) -> TypeDiagnostic {
        self.method = Some(key);
        self
    }

    /// The first label with `role`, if any.
    pub fn label(&self, role: LabelRole) -> Option<&DiagLabel> {
        self.labels.iter().find(|l| l.role == role)
    }

    /// Renders the diagnostic with resolved source positions, one line for
    /// the primary message and one indented line per label:
    ///
    /// ```text
    /// error[HB0002]: argument type mismatch ... at talks/buggy.rb:5:13
    ///   blamed-annotation: `(Symbol) -> Array<Talk>` declared at talks/types.rb:3:3 (User#subscribed_talks)
    ///   call-site: checked just-in-time from app.rb:9:1
    /// ```
    pub fn render(&self, map: &SourceMap) -> String {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        };
        let mut out = format!(
            "{sev}[{}]: {} at {}",
            self.code,
            self.message,
            describe_or_unknown(map, self.span)
        );
        for l in &self.labels {
            out.push_str(&format!(
                "\n  {}: {} at {}",
                l.role.as_str(),
                l.message,
                describe_or_unknown(map, l.span)
            ));
            if let Some(m) = l.method {
                out.push_str(&format!(" ({m})"));
            }
        }
        out
    }

    /// Serialises to a single-line JSON object (hand-rolled — the
    /// workspace is serde-free). Spans resolve through `map` to
    /// `{"file","line","col"}`; dummy spans serialise as `null`.
    pub fn to_json(&self, map: &SourceMap) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        out.push_str(&format!("\"code\":\"{}\"", self.code));
        // Append-only JSON contract: error diagnostics keep their original
        // shape; non-error severities add an explicit tag.
        match self.severity {
            Severity::Error => {}
            Severity::Warning => out.push_str(",\"severity\":\"warning\""),
            Severity::Note => out.push_str(",\"severity\":\"note\""),
        }
        out.push_str(&format!(",\"message\":\"{}\"", json_escape(&self.message)));
        out.push_str(",\"span\":");
        push_span_json(&mut out, map, self.span);
        out.push_str(",\"blame\":{");
        out.push_str(&format!("\"kind\":\"{}\"", self.blame.kind()));
        match &self.blame {
            BlameTarget::Annotation(k) | BlameTarget::MissingType(k) => {
                out.push_str(&format!(",\"method\":\"{}\"", json_escape(&k.display())));
            }
            BlameTarget::VarDecl { name } => {
                out.push_str(&format!(",\"name\":\"{}\"", json_escape(name)));
            }
            BlameTarget::Lint { pass } => {
                out.push_str(&format!(",\"pass\":\"{}\"", json_escape(pass)));
            }
            BlameTarget::Cast => {}
        }
        out.push('}');
        if let Some(m) = self.method {
            out.push_str(&format!(",\"method\":\"{}\"", json_escape(&m.display())));
        }
        out.push_str(",\"labels\":[");
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            out.push_str(&format!("\"role\":\"{}\"", l.role.as_str()));
            out.push_str(&format!(",\"message\":\"{}\"", json_escape(&l.message)));
            out.push_str(",\"span\":");
            push_span_json(&mut out, map, l.span);
            if let Some(m) = l.method {
                out.push_str(&format!(",\"method\":\"{}\"", json_escape(&m.display())));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for TypeDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        };
        write!(f, "{sev}[{}]: {}", self.code, self.message)
    }
}

fn describe_or_unknown(map: &SourceMap, span: Span) -> String {
    if span == Span::dummy() {
        "<synthesized>".to_string()
    } else {
        map.describe(span)
    }
}

fn push_span_json(out: &mut String, map: &SourceMap, span: Span) {
    if span == Span::dummy() {
        out.push_str("null");
        return;
    }
    match map.file(span.file) {
        Some(f) => {
            let (line, col) = f.line_col(span.lo);
            out.push_str(&format!(
                "{{\"file\":\"{}\",\"line\":{line},\"col\":{col}}}",
                json_escape(&f.name)
            ));
        }
        None => out.push_str("null"),
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_with_position() {
        let mut sm = SourceMap::new();
        let f = sm.add_file("x.rb", "a\nbb ccc\n");
        let e = ParseError::new("boom", Span::new(f, 5, 8));
        assert_eq!(e.render(&sm), "x.rb:2:4: parse error: boom");
    }

    #[test]
    fn diagnostic_display() {
        let d = Diagnostic::error("no type for Talk#owner", Span::dummy());
        assert_eq!(d.to_string(), "error: no type for Talk#owner");
        let w = Diagnostic::warning("unused", Span::dummy());
        assert_eq!(w.to_string(), "warning: unused");
    }

    #[test]
    fn diag_codes_are_stable_and_parse_back() {
        let all = [
            DiagCode::ArityMismatch,
            DiagCode::ArgumentType,
            DiagCode::NoMethodType,
            DiagCode::VarAssign,
            DiagCode::CastFailure,
            DiagCode::NonConvergence,
            DiagCode::ReturnType,
            DiagCode::BlockIncompatible,
            DiagCode::PreconditionFailed,
            DiagCode::DynamicArgCheck,
        ];
        for (i, c) in all.iter().enumerate() {
            assert_eq!(c.as_str(), format!("HB{:04}", i + 1));
            assert_eq!(DiagCode::parse(c.as_str()), Some(*c));
        }
        let lints = [
            DiagCode::UseBeforeAssign,
            DiagCode::UnreachableCode,
            DiagCode::DeadStore,
            DiagCode::UnusedLocal,
            DiagCode::StaleAnnotation,
            DiagCode::DynCheckResidue,
        ];
        for (i, c) in lints.iter().enumerate() {
            assert_eq!(c.as_str(), format!("HB{:04}", 1001 + i));
            assert_eq!(DiagCode::parse(c.as_str()), Some(*c));
            assert!(c.is_lint());
        }
        assert!(!DiagCode::ArityMismatch.is_lint());
        assert_eq!(DiagCode::InferableSignature.as_str(), "HB2001");
        assert_eq!(
            DiagCode::parse("HB2001"),
            Some(DiagCode::InferableSignature)
        );
        assert!(DiagCode::InferableSignature.is_suggestion());
        assert!(!DiagCode::InferableSignature.is_lint());
        assert!(!DiagCode::DynCheckResidue.is_suggestion());
        assert_eq!(DiagCode::parse("HB9999"), None);
    }

    #[test]
    fn warning_constructor_and_json_severity_tag() {
        let d = TypeDiagnostic::warning(
            DiagCode::UnusedLocal,
            "local `x` is never read",
            Span::dummy(),
            BlameTarget::Lint { pass: "liveness" },
        );
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.to_string(), "warning[HB1004]: local `x` is never read");
        let sm = SourceMap::new();
        assert_eq!(
            d.to_json(&sm),
            "{\"code\":\"HB1004\",\"severity\":\"warning\",\
             \"message\":\"local `x` is never read\",\"span\":null,\
             \"blame\":{\"kind\":\"lint\",\"pass\":\"liveness\"},\"labels\":[]}"
        );
    }

    #[test]
    fn type_diagnostic_renders_labels_golden() {
        let mut sm = SourceMap::new();
        let app = sm.add_file("app.rb", "x = 1\nuser.subscribed_talks(true)\n");
        let types = sm.add_file(
            "types.rb",
            "type :subscribed_talks, \"(Symbol) -> Array\"\n",
        );
        let key = MethodKey::instance("User", "subscribed_talks");
        let d = TypeDiagnostic::error(
            DiagCode::ArgumentType,
            "argument type mismatch calling User#subscribed_talks",
            Span::new(app, 6, 33),
            BlameTarget::Annotation(key),
        )
        .with_method(MethodKey::instance("ListsController", "subscribed"))
        .with_label(
            DiagLabel::new(
                LabelRole::BlamedAnnotation,
                "annotation declared here",
                Span::new(types, 0, 44),
            )
            .with_method(key),
        )
        .with_label(DiagLabel::new(
            LabelRole::CallSite,
            "checked just-in-time at this call",
            Span::new(app, 6, 33),
        ));
        assert_eq!(
            d.render(&sm),
            "error[HB0002]: argument type mismatch calling User#subscribed_talks at app.rb:2:1\n  \
             blamed-annotation: annotation declared here at types.rb:1:1 (User#subscribed_talks)\n  \
             call-site: checked just-in-time at this call at app.rb:2:1"
        );
    }

    #[test]
    fn type_diagnostic_json_golden() {
        let mut sm = SourceMap::new();
        let f = sm.add_file("t.rb", "a\nbb \"x\"\n");
        let key = MethodKey::instance("Talk", "owner");
        let d = TypeDiagnostic::error(
            DiagCode::NoMethodType,
            "Hummingbird: no type for Talk#owner",
            Span::new(f, 2, 4),
            BlameTarget::MissingType(key),
        )
        .with_label(DiagLabel::new(
            LabelRole::Note,
            "a \"quoted\" note",
            Span::dummy(),
        ));
        assert_eq!(
            d.to_json(&sm),
            "{\"code\":\"HB0003\",\"message\":\"Hummingbird: no type for Talk#owner\",\
             \"span\":{\"file\":\"t.rb\",\"line\":2,\"col\":1},\
             \"blame\":{\"kind\":\"missing-type\",\"method\":\"Talk#owner\"},\
             \"labels\":[{\"role\":\"note\",\"message\":\"a \\\"quoted\\\" note\",\"span\":null}]}"
        );
    }

    #[test]
    fn json_escape_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
