//! Parse errors and generic diagnostics.

use crate::span::{SourceMap, Span};
use std::error::Error;
use std::fmt;

/// An error produced while lexing or parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub span: Span,
}

impl ParseError {
    /// Creates a parse error at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> ParseError {
        ParseError {
            message: message.into(),
            span,
        }
    }

    /// Renders the error with a resolved source position.
    pub fn render(&self, map: &SourceMap) -> String {
        format!("{}: parse error: {}", map.describe(self.span), self.message)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl Error for ParseError {}

/// Severity of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    Error,
    Warning,
    Note,
}

/// A general diagnostic used by downstream phases (the checker reuses this
/// shape for type errors so every tool renders locations uniformly).
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub severity: Severity,
    pub message: String,
    pub span: Span,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
        }
    }

    /// Renders the diagnostic with a resolved source position.
    pub fn render(&self, map: &SourceMap) -> String {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        };
        format!("{}: {}: {}", map.describe(self.span), sev, self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        };
        write!(f, "{sev}: {}", self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_with_position() {
        let mut sm = SourceMap::new();
        let f = sm.add_file("x.rb", "a\nbb ccc\n");
        let e = ParseError::new("boom", Span::new(f, 5, 8));
        assert_eq!(e.render(&sm), "x.rb:2:4: parse error: boom");
    }

    #[test]
    fn diagnostic_display() {
        let d = Diagnostic::error("no type for Talk#owner", Span::dummy());
        assert_eq!(d.to_string(), "error: no type for Talk#owner");
        let w = Diagnostic::warning("unused", Span::dummy());
        assert_eq!(w.to_string(), "warning: unused");
    }
}
