//! Pretty-printer for RubyLite ASTs.
//!
//! Prints a canonical form: every call uses parentheses, every block uses
//! `do ... end`, and string interpolations are re-emitted as `#{...}`. The
//! canonical form re-parses to an equivalent AST, which the property tests
//! rely on.

use crate::ast::*;

/// Pretty-prints a whole program.
pub fn pretty_program(p: &Program) -> String {
    let mut out = String::new();
    for e in &p.body {
        write_expr(&mut out, e, 0);
        out.push('\n');
    }
    out
}

/// Pretty-prints a single expression.
pub fn pretty_expr(e: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, e, 0);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_body(out: &mut String, body: &[Expr], level: usize) {
    for e in body {
        indent(out, level);
        write_expr(out, e, level);
        out.push('\n');
    }
}

fn escape_str(s: &str) -> String {
    let mut out = String::new();
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '#' => out.push_str("\\#"),
            c => out.push(c),
        }
    }
    out
}

fn write_lhs(out: &mut String, lhs: &Lhs, level: usize) {
    match lhs {
        Lhs::Local(n) => out.push_str(n),
        Lhs::IVar(n) => {
            out.push('@');
            out.push_str(n);
        }
        Lhs::CVar(n) => {
            out.push_str("@@");
            out.push_str(n);
        }
        Lhs::GVar(n) => {
            out.push('$');
            out.push_str(n);
        }
        Lhs::Const(path) => out.push_str(&path.join("::")),
        Lhs::Index(recv, idx) => {
            write_paren(out, recv, level);
            out.push('[');
            for (i, e) in idx.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, e, level);
            }
            out.push(']');
        }
        Lhs::Attr(recv, name) => {
            write_paren(out, recv, level);
            out.push('.');
            out.push_str(name);
        }
    }
}

/// Writes an expression, parenthesising compound forms so precedence is
/// preserved on re-parse.
fn write_paren(out: &mut String, e: &Expr, level: usize) {
    let atomic = matches!(
        e.kind,
        ExprKind::Nil
            | ExprKind::True
            | ExprKind::False
            | ExprKind::SelfExpr
            | ExprKind::Int(_)
            | ExprKind::Float(_)
            | ExprKind::Str(_)
            | ExprKind::Sym(_)
            | ExprKind::Array(_)
            | ExprKind::Hash(_)
            | ExprKind::Local(_)
            | ExprKind::IVar(_)
            | ExprKind::CVar(_)
            | ExprKind::GVar(_)
            | ExprKind::Const(_)
            | ExprKind::Call { .. }
            | ExprKind::Yield(_)
    );
    if atomic {
        write_expr(out, e, level);
    } else {
        out.push('(');
        write_expr(out, e, level);
        out.push(')');
    }
}

fn write_args(out: &mut String, args: &[Arg], level: usize) {
    out.push('(');
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match a {
            Arg::Pos(e) => write_expr(out, e, level),
            Arg::Splat(e) => {
                out.push('*');
                write_expr(out, e, level);
            }
            Arg::BlockPass(e) => {
                out.push('&');
                write_expr(out, e, level);
            }
        }
    }
    out.push(')');
}

fn write_block(out: &mut String, b: &BlockArg, level: usize) {
    out.push_str(" do");
    if !b.params.is_empty() {
        out.push_str(" |");
        for (i, p) in b.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_param(out, p, level);
        }
        out.push('|');
    }
    out.push('\n');
    write_body(out, &b.body, level + 1);
    indent(out, level);
    out.push_str("end");
}

fn write_param(out: &mut String, p: &Param, level: usize) {
    match &p.kind {
        ParamKind::Required => out.push_str(&p.name),
        ParamKind::Optional(d) => {
            out.push_str(&p.name);
            out.push_str(" = ");
            write_expr(out, d, level);
        }
        ParamKind::Rest => {
            out.push('*');
            out.push_str(&p.name);
        }
        ParamKind::Block => {
            out.push('&');
            out.push_str(&p.name);
        }
    }
}

fn write_expr(out: &mut String, e: &Expr, level: usize) {
    match &e.kind {
        ExprKind::Nil => out.push_str("nil"),
        ExprKind::True => out.push_str("true"),
        ExprKind::False => out.push_str("false"),
        ExprKind::SelfExpr => out.push_str("self"),
        ExprKind::Int(n) => out.push_str(&n.to_string()),
        ExprKind::Float(x) => {
            let s = format!("{x}");
            out.push_str(&s);
            if !s.contains('.') && !s.contains('e') {
                out.push_str(".0");
            }
        }
        ExprKind::Str(parts) => {
            out.push('"');
            for p in parts {
                match p {
                    StrPart::Lit(s) => out.push_str(&escape_str(s)),
                    StrPart::Interp(e) => {
                        out.push_str("#{");
                        write_expr(out, e, level);
                        out.push('}');
                    }
                }
            }
            out.push('"');
        }
        ExprKind::Sym(s) => {
            out.push(':');
            out.push_str(s);
        }
        ExprKind::Array(elems) => {
            out.push('[');
            for (i, el) in elems.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, el, level);
            }
            out.push(']');
        }
        ExprKind::Hash(pairs) => {
            out.push_str("{ ");
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, k, level);
                out.push_str(" => ");
                write_expr(out, v, level);
            }
            out.push_str(" }");
        }
        ExprKind::Range { lo, hi, exclusive } => {
            write_paren(out, lo, level);
            out.push_str(if *exclusive { "..." } else { ".." });
            write_paren(out, hi, level);
        }
        ExprKind::Local(n) => out.push_str(n),
        ExprKind::IVar(n) => {
            out.push('@');
            out.push_str(n);
        }
        ExprKind::CVar(n) => {
            out.push_str("@@");
            out.push_str(n);
        }
        ExprKind::GVar(n) => {
            out.push('$');
            out.push_str(n);
        }
        ExprKind::Const(path) => out.push_str(&path.join("::")),
        ExprKind::Assign { target, value } => {
            write_lhs(out, target, level);
            out.push_str(" = ");
            write_expr(out, value, level);
        }
        ExprKind::OpAssign { target, op, value } => {
            write_lhs(out, target, level);
            out.push(' ');
            out.push_str(op);
            out.push_str("= ");
            write_expr(out, value, level);
        }
        ExprKind::Call {
            recv,
            name,
            args,
            block,
        } => {
            // Operator calls print in operator form when unambiguous.
            let is_op = matches!(
                name.as_str(),
                "+" | "-"
                    | "*"
                    | "/"
                    | "%"
                    | "**"
                    | "=="
                    | "!="
                    | "<"
                    | ">"
                    | "<="
                    | ">="
                    | "<=>"
                    | "<<"
                    | ">>"
            );
            if let (Some(r), true, 1, None) = (recv, is_op, args.len(), block.as_ref()) {
                if let Arg::Pos(rhs) = &args[0] {
                    out.push('(');
                    write_paren(out, r, level);
                    out.push(' ');
                    out.push_str(name);
                    out.push(' ');
                    write_paren(out, rhs, level);
                    out.push(')');
                    return;
                }
            }
            if name == "[]" && recv.is_some() && block.is_none() {
                write_paren(out, recv.as_ref().unwrap(), level);
                out.push('[');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    if let Arg::Pos(e) = a {
                        write_expr(out, e, level);
                    }
                }
                out.push(']');
                return;
            }
            if name == "-@" && recv.is_some() && args.is_empty() {
                out.push_str("-(");
                write_expr(out, recv.as_ref().unwrap(), level);
                out.push(')');
                return;
            }
            if let Some(r) = recv {
                write_paren(out, r, level);
                out.push('.');
            }
            out.push_str(name);
            write_args(out, args, level);
            if let Some(b) = block {
                write_block(out, b, level);
            }
        }
        ExprKind::Yield(args) => {
            out.push_str("yield");
            if !args.is_empty() {
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_expr(out, a, level);
                }
                out.push(')');
            }
        }
        ExprKind::Super { args } => {
            out.push_str("super");
            if let Some(args) = args {
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_expr(out, a, level);
                }
                out.push(')');
            }
        }
        ExprKind::And(l, r) => {
            write_paren(out, l, level);
            out.push_str(" && ");
            write_paren(out, r, level);
        }
        ExprKind::Or(l, r) => {
            write_paren(out, l, level);
            out.push_str(" || ");
            write_paren(out, r, level);
        }
        ExprKind::Not(e) => {
            out.push('!');
            write_paren(out, e, level);
        }
        ExprKind::If {
            cond,
            then_body,
            else_body,
        } => {
            out.push_str("if ");
            write_expr(out, cond, level);
            out.push('\n');
            write_body(out, then_body, level + 1);
            if !else_body.is_empty() {
                indent(out, level);
                out.push_str("else\n");
                write_body(out, else_body, level + 1);
            }
            indent(out, level);
            out.push_str("end");
        }
        ExprKind::While { cond, body } => {
            out.push_str("while ");
            write_expr(out, cond, level);
            out.push('\n');
            write_body(out, body, level + 1);
            indent(out, level);
            out.push_str("end");
        }
        ExprKind::Case {
            scrutinee,
            whens,
            else_body,
        } => {
            out.push_str("case");
            if let Some(s) = scrutinee {
                out.push(' ');
                write_expr(out, s, level);
            }
            out.push('\n');
            for (pats, body) in whens {
                indent(out, level);
                out.push_str("when ");
                for (i, p) in pats.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_expr(out, p, level);
                }
                out.push('\n');
                write_body(out, body, level + 1);
            }
            if !else_body.is_empty() {
                indent(out, level);
                out.push_str("else\n");
                write_body(out, else_body, level + 1);
            }
            indent(out, level);
            out.push_str("end");
        }
        ExprKind::Begin {
            body,
            rescues,
            ensure_body,
        } => {
            out.push_str("begin\n");
            write_body(out, body, level + 1);
            for r in rescues {
                indent(out, level);
                out.push_str("rescue");
                for (i, c) in r.classes.iter().enumerate() {
                    out.push_str(if i == 0 { " " } else { ", " });
                    write_expr(out, c, level);
                }
                if let Some(v) = &r.var {
                    out.push_str(" => ");
                    out.push_str(v);
                }
                out.push('\n');
                write_body(out, &r.body, level + 1);
            }
            if !ensure_body.is_empty() {
                indent(out, level);
                out.push_str("ensure\n");
                write_body(out, ensure_body, level + 1);
            }
            indent(out, level);
            out.push_str("end");
        }
        ExprKind::Return(v) => {
            out.push_str("return");
            if let Some(v) = v {
                out.push(' ');
                write_expr(out, v, level);
            }
        }
        ExprKind::Break(v) => {
            out.push_str("break");
            if let Some(v) = v {
                out.push(' ');
                write_expr(out, v, level);
            }
        }
        ExprKind::Next(v) => {
            out.push_str("next");
            if let Some(v) = v {
                out.push(' ');
                write_expr(out, v, level);
            }
        }
        ExprKind::ClassDef {
            path,
            superclass,
            body,
        } => {
            out.push_str("class ");
            out.push_str(&path.join("::"));
            if let Some(s) = superclass {
                out.push_str(" < ");
                write_expr(out, s, level);
            }
            out.push('\n');
            write_body(out, body, level + 1);
            indent(out, level);
            out.push_str("end");
        }
        ExprKind::ModuleDef { path, body } => {
            out.push_str("module ");
            out.push_str(&path.join("::"));
            out.push('\n');
            write_body(out, body, level + 1);
            indent(out, level);
            out.push_str("end");
        }
        ExprKind::MethodDef(d) => {
            out.push_str("def ");
            if d.self_method {
                out.push_str("self.");
            }
            out.push_str(&d.name);
            out.push('(');
            for (i, p) in d.params.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_param(out, p, level);
            }
            out.push_str(")\n");
            write_body(out, &d.body, level + 1);
            indent(out, level);
            out.push_str("end");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    /// Parses, prints, re-parses, re-prints; both prints must agree.
    fn roundtrip(src: &str) {
        let p1 = parse_program(src, "t.rb").unwrap_or_else(|e| panic!("parse 1 ({src:?}): {e}"));
        let s1 = pretty_program(&p1);
        let p2 = parse_program(&s1, "t.rb").unwrap_or_else(|e| panic!("parse 2 ({s1:?}): {e}"));
        let s2 = pretty_program(&p2);
        assert_eq!(s1, s2, "pretty-print not stable for {src:?}");
    }

    #[test]
    fn roundtrips_core_forms() {
        roundtrip("x = 1 + 2 * 3");
        roundtrip("a.b(1).c { |x| x }");
        roundtrip("h = { :a => 1, \"b\" => 2 }");
        roundtrip("if a\n b\nelse\n c\nend");
        roundtrip("while x < 10\n x += 1\nend");
        roundtrip("def m(a, b = 1, *rest, &blk)\n yield(a)\nend");
        roundtrip("class A < B\n def m(x)\n  x\n end\nend");
        roundtrip("module M::N\n def f\n  1\n end\nend");
        roundtrip("\"is_#{role}_ok?\"");
        roundtrip("begin\n a\nrescue E => e\n b\nensure\n c\nend");
        roundtrip("case x\nwhen 1, 2\n a\nelse\n b\nend");
        roundtrip("return 1 if done");
        roundtrip("xs.map { |t| t.name }");
        roundtrip("@x ||= [1, 2, 3]");
        roundtrip("a[1] = b.c");
        roundtrip("-x() ** 2");
        roundtrip("1..10");
        roundtrip("super(1, 2)");
    }

    #[test]
    fn operator_calls_print_infix() {
        let e = parse_expr("a() + b()").unwrap();
        assert_eq!(pretty_expr(&e), "(a() + b())");
    }

    #[test]
    fn escapes_survive() {
        roundtrip(r#"s = "line\nwith \"quotes\" and \#{not interp}""#);
    }

    #[test]
    fn float_formatting_reparses() {
        roundtrip("x = 2.0");
        roundtrip("x = 0.5");
    }
}
