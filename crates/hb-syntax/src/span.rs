//! Source locations, spans and the source map.

use std::fmt;

/// Identifies a source file registered in a [`SourceMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FileId(pub u32);

/// A half-open byte range `[lo, hi)` within a single source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    pub file: FileId,
    pub lo: u32,
    pub hi: u32,
}

impl Span {
    /// Creates a span covering `[lo, hi)` in `file`.
    pub fn new(file: FileId, lo: u32, hi: u32) -> Span {
        Span { file, lo, hi }
    }

    /// A zero-width placeholder span (used for synthesised nodes).
    pub fn dummy() -> Span {
        Span::default()
    }

    /// The smallest span covering both `self` and `other`.
    ///
    /// Both spans must refer to the same file; if they do not, `self`'s file
    /// wins (this only happens for synthesised nodes).
    pub fn to(self, other: Span) -> Span {
        Span {
            file: self.file,
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

/// A registered source file: name plus full text.
#[derive(Debug, Clone)]
pub struct SourceFile {
    pub name: String,
    pub text: String,
    /// Byte offsets of the start of each line.
    line_starts: Vec<u32>,
    /// Hash of `text`, computed once at registration. A span's
    /// `(content_hash, lo, hi)` triple identifies the exact source text of
    /// a definition, independent of which process parsed it — the
    /// multi-tenant shared derivation tier keys method bodies by it.
    content_hash: u64,
}

impl SourceFile {
    fn new(name: String, text: String) -> SourceFile {
        let mut line_starts = vec![0u32];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        let content_hash = hb_intern::fingerprint64(&text);
        SourceFile {
            name,
            text,
            line_starts,
            content_hash,
        }
    }

    /// Hash of the file's full text (see the field docs).
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// 1-based (line, column) of a byte offset.
    pub fn line_col(&self, offset: u32) -> (u32, u32) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(l) => l,
            Err(l) => l - 1,
        };
        (line as u32 + 1, offset - self.line_starts[line] + 1)
    }

    /// The 1-based line number of a byte offset.
    pub fn line(&self, offset: u32) -> u32 {
        self.line_col(offset).0
    }
}

/// Registry of all source files seen by the front-end, used to render
/// human-readable positions in diagnostics.
#[derive(Debug, Default)]
pub struct SourceMap {
    files: Vec<SourceFile>,
}

impl SourceMap {
    /// Creates an empty source map.
    pub fn new() -> SourceMap {
        SourceMap::default()
    }

    /// Registers a file and returns its id.
    pub fn add_file(&mut self, name: impl Into<String>, text: impl Into<String>) -> FileId {
        let id = FileId(self.files.len() as u32);
        self.files.push(SourceFile::new(name.into(), text.into()));
        id
    }

    /// Looks up a registered file.
    pub fn file(&self, id: FileId) -> Option<&SourceFile> {
        self.files.get(id.0 as usize)
    }

    /// Iterates every registered file with its id, in registration order.
    /// Whole-program tools (the `hb-analyze` root collector) re-parse the
    /// loaded sources through this.
    pub fn files(&self) -> impl Iterator<Item = (FileId, &SourceFile)> {
        self.files
            .iter()
            .enumerate()
            .map(|(i, f)| (FileId(i as u32), f))
    }

    /// Renders `span` as `name:line:col` if the file is known.
    pub fn describe(&self, span: Span) -> String {
        match self.file(span.file) {
            Some(f) => {
                let (l, c) = f.line_col(span.lo);
                format!("{}:{}:{}", f.name, l, c)
            }
            None => "<unknown>".to_string(),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_takes_extremes() {
        let a = Span::new(FileId(0), 4, 9);
        let b = Span::new(FileId(0), 2, 6);
        let j = a.to(b);
        assert_eq!((j.lo, j.hi), (2, 9));
    }

    #[test]
    fn line_col_lookup() {
        let f = SourceFile::new("t.rb".into(), "ab\ncd\nef".into());
        assert_eq!(f.line_col(0), (1, 1));
        assert_eq!(f.line_col(1), (1, 2));
        assert_eq!(f.line_col(3), (2, 1));
        assert_eq!(f.line_col(7), (3, 2));
    }

    #[test]
    fn line_col_at_newline_boundary() {
        let f = SourceFile::new("t.rb".into(), "ab\ncd".into());
        // The newline itself belongs to line 1.
        assert_eq!(f.line_col(2), (1, 3));
    }

    #[test]
    fn source_map_describe() {
        let mut sm = SourceMap::new();
        let id = sm.add_file("app.rb", "x = 1\ny = 2\n");
        let sp = Span::new(id, 6, 7);
        assert_eq!(sm.describe(sp), "app.rb:2:1");
    }

    #[test]
    fn describe_unknown_file() {
        let sm = SourceMap::new();
        assert_eq!(sm.describe(Span::dummy()), "<unknown>");
    }
}
