//! Recursive-descent parser for RubyLite.
//!
//! The parser resolves bare identifiers to either local-variable reads or
//! implicit-`self` method calls using Ruby's lexical rule: an identifier is a
//! local if and only if an assignment to it has been *parsed* earlier in the
//! current scope. Method and class bodies open fresh scopes; blocks open
//! child scopes that can read enclosing locals. String interpolations are
//! parsed within the enclosing scope, so `"is_#{role_name}?"` sees the
//! surrounding `role_name` local.

use crate::ast::*;
use crate::diag::ParseError;
use crate::lexer::lex;
use crate::span::{FileId, SourceMap, Span};
use crate::token::{StrTokenPart, Token, TokenKind};
use std::collections::HashSet;
use std::rc::Rc;

/// Parses a full program from `src`, registering it in `map` under `name`.
///
/// # Errors
///
/// Returns the first lexing or parsing error encountered.
pub fn parse_in(map: &mut SourceMap, name: &str, src: &str) -> Result<Program, ParseError> {
    let file = map.add_file(name, src);
    parse_with_file(src, file)
}

/// Parses a full program using a throwaway source map.
///
/// # Errors
///
/// Returns the first lexing or parsing error encountered.
pub fn parse_program(src: &str, _name: &str) -> Result<Program, ParseError> {
    parse_with_file(src, FileId(0))
}

/// Parses a program whose tokens carry the given file id.
///
/// # Errors
///
/// Returns the first lexing or parsing error encountered.
pub fn parse_with_file(src: &str, file: FileId) -> Result<Program, ParseError> {
    let tokens = lex(src, file)?;
    let mut p = Parser::new(tokens, file);
    let body = p.parse_body(&[TokenKind::Eof])?;
    p.expect(&TokenKind::Eof)?;
    Ok(Program { body })
}

/// Parses a single expression (used by tests and the REPL-style helpers).
///
/// # Errors
///
/// Returns the first lexing or parsing error encountered.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src, FileId(0))?;
    let mut p = Parser::new(tokens, FileId(0));
    p.skip_terms();
    let e = p.parse_stmt()?;
    p.skip_terms();
    p.expect(&TokenKind::Eof)?;
    Ok(e)
}

struct Scope {
    vars: HashSet<String>,
    /// Barrier scopes (methods, class bodies) cannot read enclosing locals.
    barrier: bool,
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    file: FileId,
    scopes: Vec<Scope>,
    /// When non-zero, `do` blocks must not attach to calls (used while
    /// parsing `while`/`until` conditions).
    no_do_depth: u32,
}

impl Parser {
    fn new(tokens: Vec<Token>, file: FileId) -> Parser {
        Parser {
            tokens,
            pos: 0,
            file,
            scopes: vec![Scope {
                vars: HashSet::new(),
                barrier: true,
            }],
            no_do_depth: 0,
        }
    }

    // ----- token plumbing -------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_n(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1).min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        if self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(self.error(format!("expected `{}`, found `{}`", kind, self.peek())))
        }
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.peek_span())
    }

    /// Skips statement terminators (newlines and semicolons).
    fn skip_terms(&mut self) {
        while matches!(self.peek(), TokenKind::Newline | TokenKind::Semi) {
            self.bump();
        }
    }

    /// Skips only newlines (inside bracketed constructs).
    fn skip_newlines(&mut self) {
        while matches!(self.peek(), TokenKind::Newline) {
            self.bump();
        }
    }

    // ----- scope handling -------------------------------------------------

    fn push_scope(&mut self, barrier: bool) {
        self.scopes.push(Scope {
            vars: HashSet::new(),
            barrier,
        });
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn declare_local(&mut self, name: &str) {
        if let Some(s) = self.scopes.last_mut() {
            s.vars.insert(name.to_string());
        }
    }

    fn is_local(&self, name: &str) -> bool {
        for s in self.scopes.iter().rev() {
            if s.vars.contains(name) {
                return true;
            }
            if s.barrier {
                return false;
            }
        }
        false
    }

    // ----- statements -----------------------------------------------------

    /// Parses statements until one of `terminators` is the current token.
    fn parse_body(&mut self, terminators: &[TokenKind]) -> Result<Vec<Expr>, ParseError> {
        let mut body = Vec::new();
        loop {
            self.skip_terms();
            if terminators.contains(self.peek()) || matches!(self.peek(), TokenKind::Eof) {
                break;
            }
            body.push(self.parse_stmt()?);
            // A statement must be followed by a terminator or a closer.
            if !matches!(
                self.peek(),
                TokenKind::Newline | TokenKind::Semi | TokenKind::Eof
            ) && !terminators.contains(self.peek())
            {
                return Err(self.error(format!("unexpected `{}` after statement", self.peek())));
            }
        }
        Ok(body)
    }

    fn parse_stmt(&mut self) -> Result<Expr, ParseError> {
        let mut e = match self.peek().clone() {
            TokenKind::KwReturn => {
                let sp = self.bump().span;
                let val = if self.stmt_continues() {
                    Some(Box::new(self.parse_expr()?))
                } else {
                    None
                };
                Expr::new(ExprKind::Return(val), sp.to(self.prev_span()))
            }
            TokenKind::KwBreak => {
                let sp = self.bump().span;
                let val = if self.stmt_continues() {
                    Some(Box::new(self.parse_expr()?))
                } else {
                    None
                };
                Expr::new(ExprKind::Break(val), sp.to(self.prev_span()))
            }
            TokenKind::KwNext => {
                let sp = self.bump().span;
                let val = if self.stmt_continues() {
                    Some(Box::new(self.parse_expr()?))
                } else {
                    None
                };
                Expr::new(ExprKind::Next(val), sp.to(self.prev_span()))
            }
            _ => self.parse_expr()?,
        };
        // Postfix `if` / `unless` modifiers.
        loop {
            match self.peek() {
                TokenKind::KwIf => {
                    self.bump();
                    let cond = self.parse_expr()?;
                    let span = e.span.to(cond.span);
                    e = Expr::new(
                        ExprKind::If {
                            cond: Box::new(cond),
                            then_body: vec![e],
                            else_body: vec![],
                        },
                        span,
                    );
                }
                TokenKind::KwUnless => {
                    self.bump();
                    let cond = self.parse_expr()?;
                    let span = e.span.to(cond.span);
                    let cond_span = cond.span;
                    e = Expr::new(
                        ExprKind::If {
                            cond: Box::new(Expr::new(ExprKind::Not(Box::new(cond)), cond_span)),
                            then_body: vec![e],
                            else_body: vec![],
                        },
                        span,
                    );
                }
                TokenKind::KwWhile => {
                    self.bump();
                    let cond = self.parse_expr()?;
                    let span = e.span.to(cond.span);
                    e = Expr::new(
                        ExprKind::While {
                            cond: Box::new(cond),
                            body: vec![e],
                        },
                        span,
                    );
                }
                _ => break,
            }
        }
        Ok(e)
    }

    /// True if the current token can begin a `return`/`break`/`next` value.
    fn stmt_continues(&self) -> bool {
        !matches!(
            self.peek(),
            TokenKind::Newline
                | TokenKind::Semi
                | TokenKind::Eof
                | TokenKind::KwEnd
                | TokenKind::KwIf
                | TokenKind::KwUnless
                | TokenKind::KwWhile
                | TokenKind::RParen
                | TokenKind::RBrace
                | TokenKind::RBracket
        )
    }

    // ----- expression precedence ladder ------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_and_or()
    }

    fn parse_and_or(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&TokenKind::KwNot) {
            let e = self.parse_and_or()?;
            let span = e.span;
            return Ok(Expr::new(ExprKind::Not(Box::new(e)), span));
        }
        let mut l = self.parse_assign()?;
        loop {
            let is_and = match self.peek() {
                TokenKind::KwAnd => true,
                TokenKind::KwOr => false,
                _ => break,
            };
            self.bump();
            let r = self.parse_assign()?;
            let span = l.span.to(r.span);
            l = Expr::new(
                if is_and {
                    ExprKind::And(Box::new(l), Box::new(r))
                } else {
                    ExprKind::Or(Box::new(l), Box::new(r))
                },
                span,
            );
        }
        Ok(l)
    }

    fn parse_assign(&mut self) -> Result<Expr, ParseError> {
        let e = self.parse_ternary()?;
        let op = match self.peek() {
            TokenKind::Assign => None,
            TokenKind::PlusAssign => Some("+"),
            TokenKind::MinusAssign => Some("-"),
            TokenKind::StarAssign => Some("*"),
            TokenKind::SlashAssign => Some("/"),
            TokenKind::PercentAssign => Some("%"),
            TokenKind::OrOrAssign => Some("||"),
            TokenKind::AndAndAssign => Some("&&"),
            _ => return Ok(e),
        };
        let target = match self.expr_to_lhs(&e) {
            Some(t) => t,
            None => return Err(self.error("invalid assignment target")),
        };
        self.bump();
        if let Lhs::Local(name) = &target {
            self.declare_local(name);
        }
        self.skip_newlines();
        let value = self.parse_assign()?;
        let span = e.span.to(value.span);
        Ok(match op {
            None => Expr::new(
                ExprKind::Assign {
                    target,
                    value: Box::new(value),
                },
                span,
            ),
            Some(op) => Expr::new(
                ExprKind::OpAssign {
                    target,
                    op: op.to_string(),
                    value: Box::new(value),
                },
                span,
            ),
        })
    }

    /// Converts an already-parsed expression into an assignment target.
    fn expr_to_lhs(&self, e: &Expr) -> Option<Lhs> {
        match &e.kind {
            ExprKind::Local(n) => Some(Lhs::Local(n.clone())),
            ExprKind::IVar(n) => Some(Lhs::IVar(n.clone())),
            ExprKind::CVar(n) => Some(Lhs::CVar(n.clone())),
            ExprKind::GVar(n) => Some(Lhs::GVar(n.clone())),
            ExprKind::Const(p) => Some(Lhs::Const(p.clone())),
            ExprKind::Call {
                recv: None,
                name,
                args,
                block: None,
            } if args.is_empty() => Some(Lhs::Local(name.clone())),
            ExprKind::Call {
                recv: Some(r),
                name,
                args,
                block: None,
            } if name == "[]" => {
                let idx = args
                    .iter()
                    .map(|a| match a {
                        Arg::Pos(e) => Some(e.clone()),
                        _ => None,
                    })
                    .collect::<Option<Vec<_>>>()?;
                Some(Lhs::Index(r.clone(), idx))
            }
            ExprKind::Call {
                recv: Some(r),
                name,
                args,
                block: None,
            } if args.is_empty() => Some(Lhs::Attr(r.clone(), name.clone())),
            _ => None,
        }
    }

    fn parse_ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.parse_range()?;
        if self.eat(&TokenKind::Question) {
            self.skip_newlines();
            let t = self.parse_ternary()?;
            self.skip_newlines();
            self.expect(&TokenKind::Colon)?;
            self.skip_newlines();
            let f = self.parse_ternary()?;
            let span = cond.span.to(f.span);
            return Ok(Expr::new(
                ExprKind::If {
                    cond: Box::new(cond),
                    then_body: vec![t],
                    else_body: vec![f],
                },
                span,
            ));
        }
        Ok(cond)
    }

    fn parse_range(&mut self) -> Result<Expr, ParseError> {
        let lo = self.parse_oror()?;
        let exclusive = match self.peek() {
            TokenKind::DotDot => false,
            TokenKind::DotDotDot => true,
            _ => return Ok(lo),
        };
        self.bump();
        let hi = self.parse_oror()?;
        let span = lo.span.to(hi.span);
        Ok(Expr::new(
            ExprKind::Range {
                lo: Box::new(lo),
                hi: Box::new(hi),
                exclusive,
            },
            span,
        ))
    }

    fn parse_oror(&mut self) -> Result<Expr, ParseError> {
        let mut l = self.parse_andand()?;
        while self.eat(&TokenKind::OrOr) {
            self.skip_newlines();
            let r = self.parse_andand()?;
            let span = l.span.to(r.span);
            l = Expr::new(ExprKind::Or(Box::new(l), Box::new(r)), span);
        }
        Ok(l)
    }

    fn parse_andand(&mut self) -> Result<Expr, ParseError> {
        let mut l = self.parse_equality()?;
        while self.eat(&TokenKind::AndAnd) {
            self.skip_newlines();
            let r = self.parse_equality()?;
            let span = l.span.to(r.span);
            l = Expr::new(ExprKind::And(Box::new(l), Box::new(r)), span);
        }
        Ok(l)
    }

    fn binop(l: Expr, name: &str, r: Expr) -> Expr {
        let span = l.span.to(r.span);
        Expr::new(
            ExprKind::Call {
                recv: Some(Box::new(l)),
                name: name.to_string(),
                args: vec![Arg::Pos(r)],
                block: None,
            },
            span,
        )
    }

    fn parse_equality(&mut self) -> Result<Expr, ParseError> {
        let mut l = self.parse_comparison()?;
        loop {
            let name = match self.peek() {
                TokenKind::EqEq => "==",
                TokenKind::NotEq => "!=",
                TokenKind::Spaceship => "<=>",
                _ => break,
            };
            self.bump();
            self.skip_newlines();
            let r = self.parse_comparison()?;
            l = Self::binop(l, name, r);
        }
        Ok(l)
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let mut l = self.parse_shift()?;
        loop {
            let name = match self.peek() {
                TokenKind::Lt => "<",
                TokenKind::Gt => ">",
                TokenKind::LtEq => "<=",
                TokenKind::GtEq => ">=",
                _ => break,
            };
            self.bump();
            self.skip_newlines();
            let r = self.parse_shift()?;
            l = Self::binop(l, name, r);
        }
        Ok(l)
    }

    fn parse_shift(&mut self) -> Result<Expr, ParseError> {
        let mut l = self.parse_additive()?;
        loop {
            let name = match self.peek() {
                TokenKind::ShiftL => "<<",
                TokenKind::ShiftR => ">>",
                _ => break,
            };
            self.bump();
            self.skip_newlines();
            let r = self.parse_additive()?;
            l = Self::binop(l, name, r);
        }
        Ok(l)
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut l = self.parse_multiplicative()?;
        loop {
            let name = match self.peek() {
                TokenKind::Plus => "+",
                TokenKind::Minus => "-",
                _ => break,
            };
            self.bump();
            self.skip_newlines();
            let r = self.parse_multiplicative()?;
            l = Self::binop(l, name, r);
        }
        Ok(l)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut l = self.parse_unary()?;
        loop {
            let name = match self.peek() {
                TokenKind::Star => "*",
                TokenKind::Slash => "/",
                TokenKind::Percent => "%",
                _ => break,
            };
            self.bump();
            self.skip_newlines();
            let r = self.parse_unary()?;
            l = Self::binop(l, name, r);
        }
        Ok(l)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            TokenKind::Minus => {
                let sp = self.bump().span;
                let e = self.parse_unary()?;
                let span = sp.to(e.span);
                Ok(match e.kind {
                    ExprKind::Int(n) => Expr::new(ExprKind::Int(-n), span),
                    ExprKind::Float(x) => Expr::new(ExprKind::Float(-x), span),
                    _ => Expr::new(
                        ExprKind::Call {
                            recv: Some(Box::new(e)),
                            name: "-@".to_string(),
                            args: vec![],
                            block: None,
                        },
                        span,
                    ),
                })
            }
            TokenKind::Bang => {
                let sp = self.bump().span;
                let e = self.parse_unary()?;
                let span = sp.to(e.span);
                Ok(Expr::new(ExprKind::Not(Box::new(e)), span))
            }
            _ => self.parse_pow(),
        }
    }

    fn parse_pow(&mut self) -> Result<Expr, ParseError> {
        let l = self.parse_postfix()?;
        if self.eat(&TokenKind::StarStar) {
            self.skip_newlines();
            let r = self.parse_unary()?; // right-associative
            return Ok(Self::binop(l, "**", r));
        }
        Ok(l)
    }

    // ----- postfix: method calls, indexing, const paths, blocks ------------

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_primary()?;
        loop {
            match self.peek() {
                TokenKind::Dot => {
                    self.bump();
                    self.skip_newlines();
                    let name = self.parse_method_name()?;
                    let (args, block) = self.parse_call_tail(true)?;
                    let span = e.span.to(self.prev_span());
                    e = Expr::new(
                        ExprKind::Call {
                            recv: Some(Box::new(e)),
                            name,
                            args,
                            block,
                        },
                        span,
                    );
                }
                TokenKind::ColonColon => {
                    // Extend a constant path; anything else is unsupported.
                    if let ExprKind::Const(path) = &e.kind {
                        if let TokenKind::Const(_) = self.peek_n(1) {
                            self.bump();
                            let t = self.bump();
                            let seg = match t.kind {
                                TokenKind::Const(s) => s,
                                _ => unreachable!(),
                            };
                            let mut path = path.clone();
                            path.push(seg);
                            let span = e.span.to(t.span);
                            e = Expr::new(ExprKind::Const(path), span);
                            continue;
                        }
                    }
                    return Err(self.error("`::` is only supported in constant paths"));
                }
                TokenKind::LBracket => {
                    if self.peek_span().lo > self.prev_span().hi {
                        // Separated `[` is not an index (see
                        // starts_command_arg).
                        break;
                    }
                    self.bump();
                    self.skip_newlines();
                    let mut args = Vec::new();
                    while !matches!(self.peek(), TokenKind::RBracket) {
                        args.push(self.parse_expr()?);
                        self.skip_newlines();
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                        self.skip_newlines();
                    }
                    let close = self.expect(&TokenKind::RBracket)?;
                    let span = e.span.to(close.span);
                    e = Expr::new(
                        ExprKind::Call {
                            recv: Some(Box::new(e)),
                            name: "[]".to_string(),
                            args: args.into_iter().map(Arg::Pos).collect(),
                            block: None,
                        },
                        span,
                    );
                }
                TokenKind::LBrace | TokenKind::KwDo => {
                    // A block can only attach to a call.
                    let attachable = matches!(e.kind, ExprKind::Call { ref block, .. } if block.is_none())
                        || matches!(e.kind, ExprKind::Super { .. } | ExprKind::Yield(_));
                    if !attachable {
                        break;
                    }
                    if matches!(self.peek(), TokenKind::KwDo) && self.no_do_depth > 0 {
                        break;
                    }
                    let blk = self.parse_block_literal()?;
                    if let ExprKind::Call { block, .. } = &mut e.kind {
                        e.span = e.span.to(blk.span);
                        *block = Some(blk);
                    } else {
                        return Err(self.error("blocks may only be passed to method calls"));
                    }
                }
                _ => break,
            }
        }
        Ok(e)
    }

    /// Parses a method name after `.` or `def` (identifiers, keywords,
    /// setters like `name=`, and operator names).
    fn parse_method_name(&mut self) -> Result<String, ParseError> {
        let t = self.bump();
        let mut name = match t.kind {
            TokenKind::Ident(s) => s,
            TokenKind::Const(s) => s,
            TokenKind::KwClass => "class".to_string(),
            k => {
                if let Some(n) = k.keyword_name() {
                    n.to_string()
                } else {
                    let op = match k {
                        TokenKind::EqEq => "==",
                        TokenKind::NotEq => "!=",
                        TokenKind::Spaceship => "<=>",
                        TokenKind::Lt => "<",
                        TokenKind::Gt => ">",
                        TokenKind::LtEq => "<=",
                        TokenKind::GtEq => ">=",
                        TokenKind::Plus => "+",
                        TokenKind::Minus => "-",
                        TokenKind::Star => "*",
                        TokenKind::StarStar => "**",
                        TokenKind::Slash => "/",
                        TokenKind::Percent => "%",
                        TokenKind::ShiftL => "<<",
                        TokenKind::LBracket => {
                            self.expect(&TokenKind::RBracket)?;
                            if self.eat(&TokenKind::Assign) {
                                return Ok("[]=".to_string());
                            }
                            return Ok("[]".to_string());
                        }
                        other => {
                            return Err(ParseError::new(
                                format!("expected method name, found `{other}`"),
                                t.span,
                            ))
                        }
                    };
                    op.to_string()
                }
            }
        };
        // Setter method names in `def name=(v)` position.
        if matches!(self.peek(), TokenKind::Assign)
            && matches!(self.peek_n(1), TokenKind::LParen)
            && !name.ends_with(['?', '!'])
        {
            self.bump();
            name.push('=');
        }
        Ok(name)
    }

    /// Parses the argument list (and optional trailing block) of a call whose
    /// name has just been consumed. `allow_command` permits paren-less args.
    fn parse_call_tail(
        &mut self,
        allow_command: bool,
    ) -> Result<(Vec<Arg>, Option<BlockArg>), ParseError> {
        let mut args = Vec::new();
        if matches!(self.peek(), TokenKind::LParen) {
            self.bump();
            self.skip_newlines();
            args = self.parse_args(&TokenKind::RParen)?;
            self.expect(&TokenKind::RParen)?;
        } else if allow_command && self.starts_command_arg() {
            args = self.parse_args(&TokenKind::Newline)?;
        }
        // Blocks are attached by `parse_postfix`; returning None here keeps
        // attachment in one place.
        Ok((args, None))
    }

    /// True if the current token can begin a paren-less command argument.
    ///
    /// Ruby disambiguates `f *x` (splat) from `a * b` (product) and
    /// `puts [1]` (array argument) from `h[1]` (index) by spacing; we follow
    /// the same heuristic using token spans.
    fn starts_command_arg(&self) -> bool {
        match self.peek() {
            TokenKind::Int(_)
            | TokenKind::Float(_)
            | TokenKind::Str(_)
            | TokenKind::Symbol(_)
            | TokenKind::Ident(_)
            | TokenKind::Const(_)
            | TokenKind::IVar(_)
            | TokenKind::CVar(_)
            | TokenKind::GVar(_)
            | TokenKind::Label(_)
            | TokenKind::KwNil
            | TokenKind::KwTrue
            | TokenKind::KwFalse
            | TokenKind::KwSelf => true,
            // `*`/`&` start a splat/block-pass only when written like a
            // prefix: a space before and none after (`f *args`, `f &blk`).
            TokenKind::Star | TokenKind::Amp => {
                let spaced_before = self.peek_span().lo > self.prev_span().hi;
                let tight_after =
                    self.peek_n(1) != &TokenKind::Eof && self.span_n(1).lo == self.peek_span().hi;
                spaced_before && tight_after
            }
            // `[` starts an array argument only when separated by a space
            // (`puts [1, 2]`); adjacent `[` is indexing (`params[:id]`).
            TokenKind::LBracket => self.peek_span().lo > self.prev_span().hi,
            _ => false,
        }
    }

    fn span_n(&self, n: usize) -> Span {
        self.tokens[(self.pos + n).min(self.tokens.len() - 1)].span
    }

    /// Parses call arguments up to (not consuming) `closer`, handling splats,
    /// block-pass arguments and trailing hash sugar (`k => v` / `key: v`).
    fn parse_args(&mut self, closer: &TokenKind) -> Result<Vec<Arg>, ParseError> {
        // Command (paren-less) argument lists are terminated by a newline, so
        // newlines must not be skipped around arguments in that mode.
        let command = matches!(closer, TokenKind::Newline);
        let mut args: Vec<Arg> = Vec::new();
        let mut hash_pairs: Vec<(Expr, Expr)> = Vec::new();
        let mut hash_span = Span::dummy();
        if self.peek() == closer {
            return Ok(args);
        }
        loop {
            if !command {
                self.skip_newlines();
            }
            match self.peek().clone() {
                TokenKind::Star => {
                    self.bump();
                    let e = self.parse_expr()?;
                    args.push(Arg::Splat(e));
                }
                TokenKind::Amp => {
                    self.bump();
                    let e = self.parse_expr()?;
                    args.push(Arg::BlockPass(e));
                }
                TokenKind::Label(name) => {
                    let sp = self.bump().span;
                    self.skip_newlines();
                    let v = self.parse_expr()?;
                    if hash_pairs.is_empty() {
                        hash_span = sp;
                    }
                    hash_span = hash_span.to(v.span);
                    hash_pairs.push((Expr::new(ExprKind::Sym(name), sp), v));
                }
                _ => {
                    let e = self.parse_expr()?;
                    if self.eat(&TokenKind::FatArrow) {
                        self.skip_newlines();
                        let v = self.parse_expr()?;
                        if hash_pairs.is_empty() {
                            hash_span = e.span;
                        }
                        hash_span = hash_span.to(v.span);
                        hash_pairs.push((e, v));
                    } else {
                        if !hash_pairs.is_empty() {
                            return Err(
                                self.error("positional argument may not follow keyword arguments")
                            );
                        }
                        args.push(Arg::Pos(e));
                    }
                }
            }
            if !command {
                self.skip_newlines();
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        if !hash_pairs.is_empty() {
            args.push(Arg::Pos(Expr::new(ExprKind::Hash(hash_pairs), hash_span)));
        }
        Ok(args)
    }

    fn parse_block_literal(&mut self) -> Result<BlockArg, ParseError> {
        let (open, closer) = if self.eat(&TokenKind::LBrace) {
            (self.prev_span(), TokenKind::RBrace)
        } else {
            self.expect(&TokenKind::KwDo)?;
            (self.prev_span(), TokenKind::KwEnd)
        };
        self.push_scope(false);
        self.skip_newlines();
        let mut params = Vec::new();
        if self.eat(&TokenKind::Pipe) {
            while !matches!(self.peek(), TokenKind::Pipe) {
                params.push(self.parse_param()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::Pipe)?;
        }
        for p in &params {
            self.declare_local(&p.name);
        }
        let body = self.parse_body(std::slice::from_ref(&closer))?;
        let close = self.expect(&closer)?;
        self.pop_scope();
        Ok(BlockArg {
            params,
            body: Rc::new(body),
            span: open.to(close.span),
        })
    }

    fn parse_param(&mut self) -> Result<Param, ParseError> {
        match self.peek().clone() {
            TokenKind::Star => {
                self.bump();
                let t = self.bump();
                match t.kind {
                    TokenKind::Ident(name) => Ok(Param {
                        name,
                        kind: ParamKind::Rest,
                    }),
                    other => Err(ParseError::new(
                        format!("expected parameter name after `*`, found `{other}`"),
                        t.span,
                    )),
                }
            }
            TokenKind::Amp => {
                self.bump();
                let t = self.bump();
                match t.kind {
                    TokenKind::Ident(name) => Ok(Param {
                        name,
                        kind: ParamKind::Block,
                    }),
                    other => Err(ParseError::new(
                        format!("expected parameter name after `&`, found `{other}`"),
                        t.span,
                    )),
                }
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::Assign) {
                    let default = self.parse_expr()?;
                    Ok(Param {
                        name,
                        kind: ParamKind::Optional(Box::new(default)),
                    })
                } else {
                    Ok(Param {
                        name,
                        kind: ParamKind::Required,
                    })
                }
            }
            other => Err(self.error(format!("expected parameter, found `{other}`"))),
        }
    }

    // ----- primaries --------------------------------------------------------

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek_span();
        match self.peek().clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::new(ExprKind::Int(n), span))
            }
            TokenKind::Float(x) => {
                self.bump();
                Ok(Expr::new(ExprKind::Float(x), span))
            }
            TokenKind::KwNil => {
                self.bump();
                Ok(Expr::new(ExprKind::Nil, span))
            }
            TokenKind::KwTrue => {
                self.bump();
                Ok(Expr::new(ExprKind::True, span))
            }
            TokenKind::KwFalse => {
                self.bump();
                Ok(Expr::new(ExprKind::False, span))
            }
            TokenKind::KwSelf => {
                self.bump();
                Ok(Expr::new(ExprKind::SelfExpr, span))
            }
            TokenKind::Symbol(s) => {
                self.bump();
                Ok(Expr::new(ExprKind::Sym(s), span))
            }
            TokenKind::Str(parts) => {
                self.bump();
                self.parse_string(parts, span)
            }
            TokenKind::IVar(n) => {
                self.bump();
                Ok(Expr::new(ExprKind::IVar(n), span))
            }
            TokenKind::CVar(n) => {
                self.bump();
                Ok(Expr::new(ExprKind::CVar(n), span))
            }
            TokenKind::GVar(n) => {
                self.bump();
                Ok(Expr::new(ExprKind::GVar(n), span))
            }
            TokenKind::Const(c) => {
                self.bump();
                Ok(Expr::new(ExprKind::Const(vec![c]), span))
            }
            TokenKind::Ident(name) => {
                self.bump();
                self.parse_ident_use(name, span)
            }
            TokenKind::LParen => {
                self.bump();
                self.skip_newlines();
                let e = self.parse_stmt()?;
                self.skip_newlines();
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::LBracket => {
                self.bump();
                self.skip_newlines();
                let mut elems = Vec::new();
                while !matches!(self.peek(), TokenKind::RBracket) {
                    elems.push(self.parse_expr()?);
                    self.skip_newlines();
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                    self.skip_newlines();
                }
                let close = self.expect(&TokenKind::RBracket)?;
                Ok(Expr::new(ExprKind::Array(elems), span.to(close.span)))
            }
            TokenKind::LBrace => {
                self.bump();
                self.skip_newlines();
                let mut pairs = Vec::new();
                while !matches!(self.peek(), TokenKind::RBrace) {
                    if let TokenKind::Label(name) = self.peek().clone() {
                        let sp = self.bump().span;
                        self.skip_newlines();
                        let v = self.parse_expr()?;
                        pairs.push((Expr::new(ExprKind::Sym(name), sp), v));
                    } else {
                        let k = self.parse_expr()?;
                        self.skip_newlines();
                        self.expect(&TokenKind::FatArrow)?;
                        self.skip_newlines();
                        let v = self.parse_expr()?;
                        pairs.push((k, v));
                    }
                    self.skip_newlines();
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                    self.skip_newlines();
                }
                let close = self.expect(&TokenKind::RBrace)?;
                Ok(Expr::new(ExprKind::Hash(pairs), span.to(close.span)))
            }
            TokenKind::KwIf => self.parse_if(false),
            TokenKind::KwUnless => self.parse_if(true),
            TokenKind::KwWhile => self.parse_while(false),
            TokenKind::KwUntil => self.parse_while(true),
            TokenKind::KwCase => self.parse_case(),
            TokenKind::KwBegin => self.parse_begin(),
            TokenKind::KwDef => self.parse_def(),
            TokenKind::KwClass => self.parse_class(),
            TokenKind::KwModule => self.parse_module(),
            TokenKind::KwYield => {
                self.bump();
                let mut args = Vec::new();
                if self.eat(&TokenKind::LParen) {
                    self.skip_newlines();
                    while !matches!(self.peek(), TokenKind::RParen) {
                        args.push(self.parse_expr()?);
                        self.skip_newlines();
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                        self.skip_newlines();
                    }
                    self.expect(&TokenKind::RParen)?;
                } else if self.starts_command_arg() {
                    loop {
                        args.push(self.parse_expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                        self.skip_newlines();
                    }
                }
                Ok(Expr::new(ExprKind::Yield(args), span.to(self.prev_span())))
            }
            TokenKind::KwSuper => {
                self.bump();
                let args = if self.eat(&TokenKind::LParen) {
                    self.skip_newlines();
                    let mut args = Vec::new();
                    while !matches!(self.peek(), TokenKind::RParen) {
                        args.push(self.parse_expr()?);
                        self.skip_newlines();
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                        self.skip_newlines();
                    }
                    self.expect(&TokenKind::RParen)?;
                    Some(args)
                } else {
                    None
                };
                Ok(Expr::new(
                    ExprKind::Super { args },
                    span.to(self.prev_span()),
                ))
            }
            other => Err(self.error(format!("unexpected `{other}`"))),
        }
    }

    /// Resolves a bare identifier: local read, call with parens, paren-less
    /// command call, or zero-argument implicit-self call.
    fn parse_ident_use(&mut self, name: String, span: Span) -> Result<Expr, ParseError> {
        if self.is_local(&name) && !matches!(self.peek(), TokenKind::LParen) {
            return Ok(Expr::new(ExprKind::Local(name), span));
        }
        let (args, _) = self.parse_call_tail(true)?;
        Ok(Expr::new(
            ExprKind::Call {
                recv: None,
                name,
                args,
                block: None,
            },
            span.to(self.prev_span()),
        ))
    }

    fn parse_string(&mut self, parts: Vec<StrTokenPart>, span: Span) -> Result<Expr, ParseError> {
        let mut out = Vec::new();
        for p in parts {
            match p {
                StrTokenPart::Lit(s) => out.push(StrPart::Lit(s)),
                StrTokenPart::Interp(raw) => {
                    let e = self.parse_interp_fragment(&raw, span)?;
                    out.push(StrPart::Interp(Box::new(e)));
                }
            }
        }
        Ok(Expr::new(ExprKind::Str(out), span))
    }

    /// Parses an interpolation fragment in the *current* scope by temporarily
    /// swapping the token stream.
    fn parse_interp_fragment(&mut self, raw: &str, span: Span) -> Result<Expr, ParseError> {
        let toks = lex(raw, self.file).map_err(|e| ParseError::new(e.message, span))?;
        let saved_tokens = std::mem::replace(&mut self.tokens, toks);
        let saved_pos = std::mem::replace(&mut self.pos, 0);
        let result = (|| {
            self.skip_terms();
            let e = self.parse_stmt()?;
            self.skip_terms();
            self.expect(&TokenKind::Eof)?;
            Ok(e)
        })();
        self.tokens = saved_tokens;
        self.pos = saved_pos;
        result.map_err(|e: ParseError| {
            ParseError::new(format!("in interpolation: {}", e.message), span)
        })
    }

    // ----- compound statements ----------------------------------------------

    fn parse_if(&mut self, negate: bool) -> Result<Expr, ParseError> {
        let open = self.bump().span; // if / unless
        let cond = self.parse_stmt_cond()?;
        self.eat(&TokenKind::KwThen);
        let then_body =
            self.parse_body(&[TokenKind::KwElsif, TokenKind::KwElse, TokenKind::KwEnd])?;
        let else_body = self.parse_else_chain()?;
        let close = self.prev_span();
        let cond_span = cond.span;
        let cond = if negate {
            Expr::new(ExprKind::Not(Box::new(cond)), cond_span)
        } else {
            cond
        };
        Ok(Expr::new(
            ExprKind::If {
                cond: Box::new(cond),
                then_body,
                else_body,
            },
            open.to(close),
        ))
    }

    fn parse_else_chain(&mut self) -> Result<Vec<Expr>, ParseError> {
        match self.peek() {
            TokenKind::KwElsif => {
                let open = self.bump().span;
                let cond = self.parse_stmt_cond()?;
                self.eat(&TokenKind::KwThen);
                let then_body =
                    self.parse_body(&[TokenKind::KwElsif, TokenKind::KwElse, TokenKind::KwEnd])?;
                let else_body = self.parse_else_chain()?;
                let close = self.prev_span();
                Ok(vec![Expr::new(
                    ExprKind::If {
                        cond: Box::new(cond),
                        then_body,
                        else_body,
                    },
                    open.to(close),
                )])
            }
            TokenKind::KwElse => {
                self.bump();
                let body = self.parse_body(&[TokenKind::KwEnd])?;
                self.expect(&TokenKind::KwEnd)?;
                Ok(body)
            }
            TokenKind::KwEnd => {
                self.bump();
                Ok(vec![])
            }
            other => Err(self.error(format!(
                "expected `elsif`, `else` or `end`, found `{other}`"
            ))),
        }
    }

    /// Parses a condition expression (assignments allowed, `do` blocks not).
    fn parse_stmt_cond(&mut self) -> Result<Expr, ParseError> {
        self.no_do_depth += 1;
        let r = self.parse_expr();
        self.no_do_depth -= 1;
        r
    }

    fn parse_while(&mut self, negate: bool) -> Result<Expr, ParseError> {
        let open = self.bump().span;
        let cond = self.parse_stmt_cond()?;
        self.eat(&TokenKind::KwDo);
        let body = self.parse_body(&[TokenKind::KwEnd])?;
        let close = self.expect(&TokenKind::KwEnd)?.span;
        let cond_span = cond.span;
        let cond = if negate {
            Expr::new(ExprKind::Not(Box::new(cond)), cond_span)
        } else {
            cond
        };
        Ok(Expr::new(
            ExprKind::While {
                cond: Box::new(cond),
                body,
            },
            open.to(close),
        ))
    }

    fn parse_case(&mut self) -> Result<Expr, ParseError> {
        let open = self.bump().span;
        let scrutinee = if matches!(self.peek(), TokenKind::Newline | TokenKind::KwWhen) {
            None
        } else {
            Some(Box::new(self.parse_expr()?))
        };
        self.skip_terms();
        let mut whens = Vec::new();
        while self.eat(&TokenKind::KwWhen) {
            let mut pats = vec![self.parse_expr()?];
            while self.eat(&TokenKind::Comma) {
                self.skip_newlines();
                pats.push(self.parse_expr()?);
            }
            self.eat(&TokenKind::KwThen);
            let body =
                self.parse_body(&[TokenKind::KwWhen, TokenKind::KwElse, TokenKind::KwEnd])?;
            whens.push((pats, body));
        }
        let else_body = if self.eat(&TokenKind::KwElse) {
            self.parse_body(&[TokenKind::KwEnd])?
        } else {
            vec![]
        };
        let close = self.expect(&TokenKind::KwEnd)?.span;
        Ok(Expr::new(
            ExprKind::Case {
                scrutinee,
                whens,
                else_body,
            },
            open.to(close),
        ))
    }

    fn parse_begin(&mut self) -> Result<Expr, ParseError> {
        let open = self.bump().span;
        let body =
            self.parse_body(&[TokenKind::KwRescue, TokenKind::KwEnsure, TokenKind::KwEnd])?;
        let mut rescues = Vec::new();
        while self.eat(&TokenKind::KwRescue) {
            let mut classes = Vec::new();
            if let TokenKind::Const(_) = self.peek() {
                classes.push(self.parse_postfix()?);
                while self.eat(&TokenKind::Comma) {
                    classes.push(self.parse_postfix()?);
                }
            }
            let var = if self.eat(&TokenKind::FatArrow) {
                let t = self.bump();
                match t.kind {
                    TokenKind::Ident(n) => {
                        self.declare_local(&n);
                        Some(n)
                    }
                    other => {
                        return Err(ParseError::new(
                            format!("expected rescue variable, found `{other}`"),
                            t.span,
                        ))
                    }
                }
            } else {
                None
            };
            self.eat(&TokenKind::KwThen);
            let rbody =
                self.parse_body(&[TokenKind::KwRescue, TokenKind::KwEnsure, TokenKind::KwEnd])?;
            rescues.push(Rescue {
                classes,
                var,
                body: rbody,
            });
        }
        let ensure_body = if self.eat(&TokenKind::KwEnsure) {
            self.parse_body(&[TokenKind::KwEnd])?
        } else {
            vec![]
        };
        let close = self.expect(&TokenKind::KwEnd)?.span;
        Ok(Expr::new(
            ExprKind::Begin {
                body,
                rescues,
                ensure_body,
            },
            open.to(close),
        ))
    }

    fn parse_def(&mut self) -> Result<Expr, ParseError> {
        let open = self.bump().span;
        let self_method = if matches!(self.peek(), TokenKind::KwSelf)
            && matches!(self.peek_n(1), TokenKind::Dot)
        {
            self.bump();
            self.bump();
            true
        } else {
            false
        };
        let name = self.parse_def_name()?;
        self.push_scope(true);
        let mut params = Vec::new();
        if self.eat(&TokenKind::LParen) {
            self.skip_newlines();
            while !matches!(self.peek(), TokenKind::RParen) {
                params.push(self.parse_param()?);
                self.skip_newlines();
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
                self.skip_newlines();
            }
            self.expect(&TokenKind::RParen)?;
        }
        for p in &params {
            self.declare_local(&p.name);
        }
        let body = self.parse_body(&[TokenKind::KwEnd])?;
        let close = self.expect(&TokenKind::KwEnd)?.span;
        self.pop_scope();
        let span = open.to(close);
        Ok(Expr::new(
            ExprKind::MethodDef(Rc::new(MethodDefNode {
                self_method,
                name,
                params,
                body,
                span,
            })),
            span,
        ))
    }

    /// Parses the name position of `def`, accepting setter (`name=`) and
    /// operator names.
    fn parse_def_name(&mut self) -> Result<String, ParseError> {
        // `def name=(v)` — the lexer produced Ident, Assign, LParen.
        if let TokenKind::Ident(n) = self.peek().clone() {
            if matches!(self.peek_n(1), TokenKind::Assign)
                && matches!(self.peek_n(2), TokenKind::LParen)
            {
                self.bump();
                self.bump();
                return Ok(format!("{n}="));
            }
        }
        self.parse_method_name()
    }

    fn parse_const_path(&mut self) -> Result<Vec<String>, ParseError> {
        let t = self.bump();
        let mut path = match t.kind {
            TokenKind::Const(c) => vec![c],
            other => {
                return Err(ParseError::new(
                    format!("expected constant name, found `{other}`"),
                    t.span,
                ))
            }
        };
        while matches!(self.peek(), TokenKind::ColonColon) {
            self.bump();
            let t = self.bump();
            match t.kind {
                TokenKind::Const(c) => path.push(c),
                other => {
                    return Err(ParseError::new(
                        format!("expected constant name after `::`, found `{other}`"),
                        t.span,
                    ))
                }
            }
        }
        Ok(path)
    }

    fn parse_class(&mut self) -> Result<Expr, ParseError> {
        let open = self.bump().span;
        if matches!(self.peek(), TokenKind::ShiftL) {
            return Err(self.error("`class << self` is not supported; use `def self.name`"));
        }
        let path = self.parse_const_path()?;
        let superclass = if self.eat(&TokenKind::Lt) {
            Some(Box::new(self.parse_postfix()?))
        } else {
            None
        };
        self.push_scope(true);
        let body = self.parse_body(&[TokenKind::KwEnd])?;
        let close = self.expect(&TokenKind::KwEnd)?.span;
        self.pop_scope();
        Ok(Expr::new(
            ExprKind::ClassDef {
                path,
                superclass,
                body: Rc::new(body),
            },
            open.to(close),
        ))
    }

    fn parse_module(&mut self) -> Result<Expr, ParseError> {
        let open = self.bump().span;
        let path = self.parse_const_path()?;
        self.push_scope(true);
        let body = self.parse_body(&[TokenKind::KwEnd])?;
        let close = self.expect(&TokenKind::KwEnd)?.span;
        self.pop_scope();
        Ok(Expr::new(
            ExprKind::ModuleDef {
                path,
                body: Rc::new(body),
            },
            open.to(close),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: &str) -> Expr {
        parse_expr(src).unwrap_or_else(|e| panic!("parse failed for {src:?}: {e}"))
    }

    fn prog(src: &str) -> Program {
        parse_program(src, "test.rb").unwrap_or_else(|e| panic!("parse failed: {e}"))
    }

    fn call_name(e: &Expr) -> &str {
        match &e.kind {
            ExprKind::Call { name, .. } => name,
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn literal_primaries() {
        assert_eq!(p("42").kind, ExprKind::Int(42));
        assert_eq!(p("3.5").kind, ExprKind::Float(3.5));
        assert_eq!(p("nil").kind, ExprKind::Nil);
        assert_eq!(p("true").kind, ExprKind::True);
        assert_eq!(p(":sym").kind, ExprKind::Sym("sym".into()));
    }

    #[test]
    fn binop_becomes_call() {
        let e = p("1 + 2 * 3");
        // `+` at top with `*` nested right.
        match &e.kind {
            ExprKind::Call {
                recv, name, args, ..
            } => {
                assert_eq!(name, "+");
                assert_eq!(recv.as_ref().unwrap().kind, ExprKind::Int(1));
                match &args[0] {
                    Arg::Pos(r) => assert_eq!(call_name(r), "*"),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unary_minus_folds_literals() {
        assert_eq!(p("-5").kind, ExprKind::Int(-5));
        assert_eq!(call_name(&p("-x()")), "-@");
    }

    #[test]
    fn assignment_declares_local() {
        let program = prog("x = 1\nx");
        assert_eq!(program.body.len(), 2);
        assert_eq!(program.body[1].kind, ExprKind::Local("x".into()));
    }

    #[test]
    fn unassigned_ident_is_self_call() {
        let program = prog("owner");
        match &program.body[0].kind {
            ExprKind::Call {
                recv: None,
                name,
                args,
                ..
            } => {
                assert_eq!(name, "owner");
                assert!(args.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn locals_do_not_leak_out_of_blocks() {
        let program = prog("xs.each do |t|\n  y = t\nend\ny");
        // `y` after the block is a self-call, not a local.
        match &program.body[1].kind {
            ExprKind::Call {
                recv: None, name, ..
            } => assert_eq!(name, "y"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn blocks_read_enclosing_locals() {
        let program = prog("t = 1\nxs.each do |x|\n  t\nend");
        match &program.body[1].kind {
            ExprKind::Call { block: Some(b), .. } => {
                assert_eq!(b.body[0].kind, ExprKind::Local("t".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn method_scope_is_a_barrier() {
        let program = prog("t = 1\ndef m\n  t\nend");
        match &program.body[1].kind {
            ExprKind::MethodDef(d) => match &d.body[0].kind {
                ExprKind::Call {
                    recv: None, name, ..
                } => assert_eq!(name, "t"),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn interpolation_sees_enclosing_scope() {
        let program = prog("role = \"admin\"\n\"is_#{role}?\"");
        match &program.body[1].kind {
            ExprKind::Str(parts) => match &parts[1] {
                StrPart::Interp(e) => assert_eq!(e.kind, ExprKind::Local("role".into())),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn command_call_with_symbol_and_hash_sugar() {
        let e = p(r#"belongs_to :owner, :class_name => "User""#);
        match &e.kind {
            ExprKind::Call {
                recv: None,
                name,
                args,
                ..
            } => {
                assert_eq!(name, "belongs_to");
                assert_eq!(args.len(), 2);
                match &args[1] {
                    Arg::Pos(h) => assert!(matches!(h.kind, ExprKind::Hash(_))),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn label_hash_sugar_in_args() {
        let e = p("render text: \"hi\", status: 200");
        match &e.kind {
            ExprKind::Call { args, .. } => {
                assert_eq!(args.len(), 1);
                match &args[0] {
                    Arg::Pos(h) => match &h.kind {
                        ExprKind::Hash(pairs) => assert_eq!(pairs.len(), 2),
                        other => panic!("{other:?}"),
                    },
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn splat_and_block_pass_args() {
        let e = p("m(*args, &blk)");
        match &e.kind {
            ExprKind::Call { args, .. } => {
                assert!(matches!(args[0], Arg::Splat(_)));
                assert!(matches!(args[1], Arg::BlockPass(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn do_block_with_params() {
        let e = p("xs.each do |a, b|\n a + b\nend");
        match &e.kind {
            ExprKind::Call {
                name,
                block: Some(b),
                ..
            } => {
                assert_eq!(name, "each");
                assert_eq!(b.params.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn brace_block_on_command_receiver_call() {
        let e = p("members.zip(types).each {|name, t| name }");
        match &e.kind {
            ExprKind::Call {
                name,
                block: Some(b),
                ..
            } => {
                assert_eq!(name, "each");
                assert_eq!(b.params.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hash_literal_vs_block() {
        assert!(matches!(p("{ :a => 1 }").kind, ExprKind::Hash(_)));
        assert!(matches!(p("{ a: 1 }").kind, ExprKind::Hash(_)));
        match &p("f { 1 }").kind {
            ExprKind::Call { block: Some(_), .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn index_read_and_write() {
        assert_eq!(call_name(&p("h[:k]")), "[]");
        let e = p("h[:k] = 1");
        match &e.kind {
            ExprKind::Assign {
                target: Lhs::Index(_, idx),
                ..
            } => assert_eq!(idx.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn attr_write_and_op_assign() {
        let e = p("o.name = \"x\"");
        assert!(matches!(&e.kind, ExprKind::Assign { target: Lhs::Attr(_, n), .. } if n == "name"));
        let e = p("@@cache ||= 1");
        assert!(
            matches!(&e.kind, ExprKind::OpAssign { target: Lhs::CVar(n), op, .. } if n == "cache" && op == "||")
        );
    }

    #[test]
    fn ternary() {
        let e = p("cn ? cn : hm");
        assert!(matches!(e.kind, ExprKind::If { .. }));
    }

    #[test]
    fn postfix_if_and_unless() {
        let e = p("x = 1 if ready");
        assert!(matches!(e.kind, ExprKind::If { .. }));
        let e = p("x = 1 unless done");
        match &e.kind {
            ExprKind::If { cond, .. } => assert!(matches!(cond.kind, ExprKind::Not(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_elsif_else_chain() {
        let e = p("if a\n 1\nelsif b\n 2\nelse\n 3\nend");
        match &e.kind {
            ExprKind::If { else_body, .. } => {
                assert!(matches!(else_body[0].kind, ExprKind::If { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn while_and_until() {
        assert!(matches!(p("while x\n y\nend").kind, ExprKind::While { .. }));
        match &p("until x\n y\nend").kind {
            ExprKind::While { cond, .. } => assert!(matches!(cond.kind, ExprKind::Not(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn case_when() {
        let e = p("case x\nwhen 1, 2 then \"a\"\nwhen 3\n \"b\"\nelse\n \"c\"\nend");
        match &e.kind {
            ExprKind::Case {
                whens, else_body, ..
            } => {
                assert_eq!(whens.len(), 2);
                assert_eq!(whens[0].0.len(), 2);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn begin_rescue_ensure() {
        let e = p("begin\n work\nrescue ArgumentError => e\n handle(e)\nensure\n done\nend");
        match &e.kind {
            ExprKind::Begin {
                rescues,
                ensure_body,
                ..
            } => {
                assert_eq!(rescues.len(), 1);
                assert_eq!(rescues[0].var.as_deref(), Some("e"));
                assert_eq!(ensure_body.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn def_forms() {
        let e = p("def owner?(user)\n owner == user\nend");
        match &e.kind {
            ExprKind::MethodDef(d) => {
                assert_eq!(d.name, "owner?");
                assert!(!d.self_method);
                assert_eq!(d.params.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        let e = p("def self.add_types(*types)\nend");
        match &e.kind {
            ExprKind::MethodDef(d) => {
                assert!(d.self_method);
                assert_eq!(d.params[0].kind, ParamKind::Rest);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn def_setter_and_operator_names() {
        match &p("def name=(v)\n @name = v\nend").kind {
            ExprKind::MethodDef(d) => assert_eq!(d.name, "name="),
            other => panic!("{other:?}"),
        }
        match &p("def ==(other)\n true\nend").kind {
            ExprKind::MethodDef(d) => assert_eq!(d.name, "=="),
            other => panic!("{other:?}"),
        }
        match &p("def [](i)\n i\nend").kind {
            ExprKind::MethodDef(d) => assert_eq!(d.name, "[]"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn def_with_default_params() {
        match &p("def m(a, b = 2)\nend").kind {
            ExprKind::MethodDef(d) => {
                assert!(matches!(d.params[1].kind, ParamKind::Optional(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn class_with_superclass_path() {
        let e = p("class Talk < ActiveRecord::Base\nend");
        match &e.kind {
            ExprKind::ClassDef {
                path, superclass, ..
            } => {
                assert_eq!(path, &vec!["Talk".to_string()]);
                let sup = superclass.as_ref().unwrap();
                assert_eq!(
                    sup.kind,
                    ExprKind::Const(vec!["ActiveRecord".into(), "Base".into()])
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn module_with_nested_path() {
        let e = p("module ActiveRecord::Associations::ClassMethods\nend");
        match &e.kind {
            ExprKind::ModuleDef { path, .. } => assert_eq!(path.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn const_assignment() {
        let e = p("Transaction = Struct.new(:type)");
        assert!(
            matches!(&e.kind, ExprKind::Assign { target: Lhs::Const(p), .. } if p == &vec!["Transaction".to_string()])
        );
    }

    #[test]
    fn yield_and_super() {
        assert!(matches!(p("yield(1, 2)").kind, ExprKind::Yield(args) if args.len() == 2));
        assert!(matches!(p("yield 1").kind, ExprKind::Yield(args) if args.len() == 1));
        assert!(matches!(p("super").kind, ExprKind::Super { args: None }));
        assert!(matches!(p("super(1)").kind, ExprKind::Super { args: Some(a) } if a.len() == 1));
    }

    #[test]
    fn and_or_not_keywords() {
        assert!(matches!(p("a and b").kind, ExprKind::And(_, _)));
        assert!(matches!(p("a or b").kind, ExprKind::Or(_, _)));
        assert!(matches!(p("not a").kind, ExprKind::Not(_)));
        assert!(matches!(p("a && b || c").kind, ExprKind::Or(_, _)));
    }

    #[test]
    fn figure1_style_pre_block() {
        let src = r##"
pre :belongs_to do |*args|
  hmi = args[0]
  options = args[1]
  hm = hmi.to_s
  cn = options[:class_name] if options
  hmu = cn ? cn : hm.singularize.camelize
  type hm.singularize, "() -> #{hmu}"
  type "#{hm.singularize}=", "(#{hmu}) -> #{hmu}"
  true
end
"##;
        let program = prog(src);
        match &program.body[0].kind {
            ExprKind::Call {
                name,
                args,
                block: Some(b),
                ..
            } => {
                assert_eq!(name, "pre");
                assert_eq!(args.len(), 1);
                assert_eq!(b.params.len(), 1);
                assert_eq!(b.params[0].kind, ParamKind::Rest);
                assert_eq!(b.body.len(), 8);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn figure3_style_struct() {
        let src = r##"
class Struct
  def self.add_types(*types)
    members.zip(types).each {|name, t|
      self.class_eval do
        type name, "() -> #{t}"
        type "#{name}=", "(#{t}) -> #{t}"
      end
    }
  end
end
Transaction.add_types("String", "String", "String")
"##;
        let program = prog(src);
        assert_eq!(program.body.len(), 2);
    }

    #[test]
    fn range_expr() {
        assert!(matches!(
            p("1..5").kind,
            ExprKind::Range {
                exclusive: false,
                ..
            }
        ));
        assert!(matches!(
            p("1...5").kind,
            ExprKind::Range {
                exclusive: true,
                ..
            }
        ));
    }

    #[test]
    fn paren_grouping_allows_stmt() {
        let e = p("(x = 1)");
        assert!(matches!(e.kind, ExprKind::Assign { .. }));
    }

    #[test]
    fn chained_calls_over_newline_suppression() {
        let e = p("a.b(1).c(2)");
        assert_eq!(call_name(&e), "c");
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_expr("def").is_err());
        assert!(parse_expr("class end").is_err());
        assert!(parse_expr("1 +").is_err());
        assert!(parse_expr("x = ").is_err());
        assert!(parse_program("if x\n 1\n", "t.rb").is_err());
    }

    #[test]
    fn class_shift_self_rejected() {
        assert!(parse_expr("class << self\nend").is_err());
    }

    #[test]
    fn local_call_with_parens_is_call() {
        // Even when `f` is a local, `f(1)` is a method call (Ruby rule).
        let program = prog("f = 1\nf(2)");
        match &program.body[1].kind {
            ExprKind::Call {
                recv: None, name, ..
            } => assert_eq!(name, "f"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn params_hash_indexing() {
        // `params` is a method, so `params[:id]` must parse as call-then-index.
        let e = p("params[:id]");
        match &e.kind {
            ExprKind::Call {
                recv: Some(r),
                name,
                ..
            } => {
                assert_eq!(name, "[]");
                assert_eq!(call_name(r), "params");
            }
            other => panic!("{other:?}"),
        }
    }
}
