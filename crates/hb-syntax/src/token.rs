//! Token definitions for the RubyLite lexer.

use crate::span::Span;
use std::fmt;

/// A lexed token together with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

/// One fragment of a (possibly interpolated) string literal.
///
/// Interpolation bodies are kept as raw source text; the parser re-lexes and
/// parses them on demand so the lexer stays non-recursive.
#[derive(Debug, Clone, PartialEq)]
pub enum StrTokenPart {
    Lit(String),
    /// The raw source between `#{` and the matching `}`.
    Interp(String),
}

/// The kinds of RubyLite tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals
    Int(i64),
    Float(f64),
    /// Double-quoted string, possibly containing interpolations.
    Str(Vec<StrTokenPart>),
    /// A symbol literal such as `:owner`, `:[]=` or `:+`.
    Symbol(String),

    // Names
    /// Lower-case identifier, possibly ending in `?` or `!`.
    Ident(String),
    /// Upper-case (constant/class) identifier.
    Const(String),
    /// `@ivar`
    IVar(String),
    /// `@@cvar`
    CVar(String),
    /// `$gvar`
    GVar(String),
    /// `name:` — a hash-label (identifier immediately followed by `:`).
    Label(String),

    // Keywords
    KwClass,
    KwModule,
    KwDef,
    KwEnd,
    KwIf,
    KwElsif,
    KwElse,
    KwUnless,
    KwWhile,
    KwUntil,
    KwCase,
    KwWhen,
    KwThen,
    KwDo,
    KwReturn,
    KwBreak,
    KwNext,
    KwNil,
    KwTrue,
    KwFalse,
    KwSelf,
    KwAnd,
    KwOr,
    KwNot,
    KwBegin,
    KwRescue,
    KwEnsure,
    KwYield,
    KwSuper,

    // Operators & punctuation
    Plus,
    Minus,
    Star,
    StarStar,
    Slash,
    Percent,
    EqEq,
    NotEq,
    Spaceship,
    Lt,
    Gt,
    LtEq,
    GtEq,
    AndAnd,
    OrOr,
    Bang,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    OrOrAssign,
    AndAndAssign,
    ShiftL,
    ShiftR,
    Question,
    Colon,
    ColonColon,
    Dot,
    Comma,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Pipe,
    Amp,
    FatArrow,
    DotDot,
    DotDotDot,
    Semi,
    Newline,
    Eof,
}

impl TokenKind {
    /// True for tokens after which a newline is insignificant (the expression
    /// must continue on the next line).
    pub fn suppresses_newline(&self) -> bool {
        use TokenKind::*;
        matches!(
            self,
            Plus | Minus
                | Star
                | StarStar
                | Slash
                | Percent
                | EqEq
                | NotEq
                | Spaceship
                | Lt
                | Gt
                | LtEq
                | GtEq
                | AndAnd
                | OrOr
                | Assign
                | PlusAssign
                | MinusAssign
                | StarAssign
                | SlashAssign
                | PercentAssign
                | OrOrAssign
                | AndAndAssign
                | ShiftL
                | ShiftR
                | Question
                | ColonColon
                | Dot
                | Comma
                | LParen
                | LBracket
                | FatArrow
                | DotDot
                | DotDotDot
                | Pipe
                | KwAnd
                | KwOr
                | KwNot
                | KwIf
                | KwElsif
                | KwElse
                | KwUnless
                | KwWhile
                | KwUntil
                | KwWhen
                | KwCase
                | KwThen
                | KwDo
                | KwBegin
                | KwRescue
                | Semi
                | Newline
                | Label(_)
        )
    }

    /// Returns the keyword kind for a raw identifier, if it is one.
    pub fn keyword(name: &str) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match name {
            "class" => KwClass,
            "module" => KwModule,
            "def" => KwDef,
            "end" => KwEnd,
            "if" => KwIf,
            "elsif" => KwElsif,
            "else" => KwElse,
            "unless" => KwUnless,
            "while" => KwWhile,
            "until" => KwUntil,
            "case" => KwCase,
            "when" => KwWhen,
            "then" => KwThen,
            "do" => KwDo,
            "return" => KwReturn,
            "break" => KwBreak,
            "next" => KwNext,
            "nil" => KwNil,
            "true" => KwTrue,
            "false" => KwFalse,
            "self" => KwSelf,
            "and" => KwAnd,
            "or" => KwOr,
            "not" => KwNot,
            "begin" => KwBegin,
            "rescue" => KwRescue,
            "ensure" => KwEnsure,
            "yield" => KwYield,
            "super" => KwSuper,
            _ => return None,
        })
    }

    /// The method-name spelling of a keyword (keywords may be used as method
    /// names after `.` or `def`).
    pub fn keyword_name(&self) -> Option<&'static str> {
        use TokenKind::*;
        Some(match self {
            KwClass => "class",
            KwModule => "module",
            KwDef => "def",
            KwEnd => "end",
            KwIf => "if",
            KwElsif => "elsif",
            KwElse => "else",
            KwUnless => "unless",
            KwWhile => "while",
            KwUntil => "until",
            KwCase => "case",
            KwWhen => "when",
            KwThen => "then",
            KwDo => "do",
            KwReturn => "return",
            KwBreak => "break",
            KwNext => "next",
            KwNil => "nil",
            KwTrue => "true",
            KwFalse => "false",
            KwSelf => "self",
            KwAnd => "and",
            KwOr => "or",
            KwNot => "not",
            KwBegin => "begin",
            KwRescue => "rescue",
            KwEnsure => "ensure",
            KwYield => "yield",
            KwSuper => "super",
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Int(n) => write!(f, "{n}"),
            Float(x) => write!(f, "{x}"),
            Str(_) => write!(f, "string literal"),
            Symbol(s) => write!(f, ":{s}"),
            Ident(s) | Const(s) => write!(f, "{s}"),
            IVar(s) => write!(f, "@{s}"),
            CVar(s) => write!(f, "@@{s}"),
            GVar(s) => write!(f, "${s}"),
            Label(s) => write!(f, "{s}:"),
            Newline => write!(f, "newline"),
            Eof => write!(f, "end of input"),
            k => {
                if let Some(n) = k.keyword_name() {
                    return write!(f, "{n}");
                }
                let s = match k {
                    Plus => "+",
                    Minus => "-",
                    Star => "*",
                    StarStar => "**",
                    Slash => "/",
                    Percent => "%",
                    EqEq => "==",
                    NotEq => "!=",
                    Spaceship => "<=>",
                    Lt => "<",
                    Gt => ">",
                    LtEq => "<=",
                    GtEq => ">=",
                    AndAnd => "&&",
                    OrOr => "||",
                    Bang => "!",
                    Assign => "=",
                    PlusAssign => "+=",
                    MinusAssign => "-=",
                    StarAssign => "*=",
                    SlashAssign => "/=",
                    PercentAssign => "%=",
                    OrOrAssign => "||=",
                    AndAndAssign => "&&=",
                    ShiftL => "<<",
                    ShiftR => ">>",
                    Question => "?",
                    Colon => ":",
                    ColonColon => "::",
                    Dot => ".",
                    Comma => ",",
                    LParen => "(",
                    RParen => ")",
                    LBracket => "[",
                    RBracket => "]",
                    LBrace => "{",
                    RBrace => "}",
                    Pipe => "|",
                    Amp => "&",
                    FatArrow => "=>",
                    DotDot => "..",
                    DotDotDot => "...",
                    Semi => ";",
                    _ => "?",
                };
                write!(f, "{s}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_roundtrip() {
        for name in ["class", "def", "end", "yield", "super", "rescue"] {
            let k = TokenKind::keyword(name).unwrap();
            assert_eq!(k.keyword_name(), Some(name));
        }
        assert!(TokenKind::keyword("frobnicate").is_none());
    }

    #[test]
    fn newline_suppression_classes() {
        assert!(TokenKind::Plus.suppresses_newline());
        assert!(TokenKind::Comma.suppresses_newline());
        assert!(TokenKind::Dot.suppresses_newline());
        assert!(!TokenKind::RParen.suppresses_newline());
        assert!(!TokenKind::Ident("x".into()).suppresses_newline());
        assert!(!TokenKind::KwEnd.suppresses_newline());
    }

    #[test]
    fn display_of_common_tokens() {
        assert_eq!(TokenKind::FatArrow.to_string(), "=>");
        assert_eq!(TokenKind::Symbol("owner".into()).to_string(), ":owner");
        assert_eq!(TokenKind::KwDef.to_string(), "def");
        assert_eq!(TokenKind::Label("name".into()).to_string(), "name:");
    }
}
