//! A small Rails-style inflector: the string transformations
//! "convention over configuration" relies on (`belongs_to :owner` →
//! `Owner`, `Talk` → `talks`, ...), exposed to RubyLite as `String`
//! methods by [`crate::install_rails`].

/// `"talks"` → `"talk"`, `"categories"` → `"category"`, `"statuses"` →
/// `"status"`.
pub fn singularize(s: &str) -> String {
    if let Some(stem) = s.strip_suffix("ies") {
        return format!("{stem}y");
    }
    for suffix in ["sses", "shes", "ches", "xes"] {
        if let Some(stem) = s.strip_suffix(suffix) {
            return format!("{stem}{}", &suffix[..suffix.len() - 2]);
        }
    }
    if let Some(stem) = s.strip_suffix("ses") {
        return format!("{stem}s");
    }
    if s.ends_with("ss") {
        return s.to_string();
    }
    s.strip_suffix('s')
        .map(str::to_string)
        .unwrap_or_else(|| s.to_string())
}

/// `"talk"` → `"talks"`, `"category"` → `"categories"`, `"status"` →
/// `"statuses"`.
pub fn pluralize(s: &str) -> String {
    if s.ends_with('y') && !s.ends_with("ay") && !s.ends_with("ey") && !s.ends_with("oy") {
        return format!("{}ies", &s[..s.len() - 1]);
    }
    if s.ends_with('s') || s.ends_with('x') || s.ends_with("ch") || s.ends_with("sh") {
        return format!("{s}es");
    }
    format!("{s}s")
}

/// `"talk_list"` → `"TalkList"`.
pub fn camelize(s: &str) -> String {
    s.split('_')
        .filter(|p| !p.is_empty())
        .map(|p| {
            let mut cs = p.chars();
            match cs.next() {
                Some(c) => c.to_uppercase().collect::<String>() + cs.as_str(),
                None => String::new(),
            }
        })
        .collect()
}

/// `"TalkList"` → `"talk_list"`; `::` becomes `/` as in Rails.
pub fn underscore(s: &str) -> String {
    let mut out = String::new();
    let mut prev_lower = false;
    for c in s.chars() {
        if c == ':' {
            if !out.ends_with('/') {
                out.push('/');
            }
            prev_lower = false;
        } else if c.is_uppercase() {
            if prev_lower {
                out.push('_');
            }
            out.extend(c.to_lowercase());
            prev_lower = false;
        } else {
            out.push(c);
            prev_lower = c.is_lowercase() || c.is_ascii_digit();
        }
    }
    out
}

/// `"Talk"` → `"talks"` (the model's database table, Rails convention).
pub fn tableize(s: &str) -> String {
    pluralize(&underscore(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singularize_rules() {
        assert_eq!(singularize("talks"), "talk");
        assert_eq!(singularize("users"), "user");
        assert_eq!(singularize("categories"), "category");
        assert_eq!(singularize("statuses"), "status");
        assert_eq!(singularize("boxes"), "box");
        assert_eq!(singularize("branches"), "branch");
        assert_eq!(singularize("classes"), "class");
        assert_eq!(singularize("address"), "address");
        assert_eq!(singularize("owner"), "owner");
    }

    #[test]
    fn pluralize_rules() {
        assert_eq!(pluralize("talk"), "talks");
        assert_eq!(pluralize("category"), "categories");
        assert_eq!(pluralize("status"), "statuses");
        assert_eq!(pluralize("box"), "boxes");
        assert_eq!(pluralize("branch"), "branches");
        assert_eq!(pluralize("day"), "days");
    }

    #[test]
    fn roundtrip_common_nouns() {
        for n in ["talk", "user", "publication", "folder", "country", "role"] {
            assert_eq!(singularize(&pluralize(n)), n, "{n}");
        }
    }

    #[test]
    fn camelize_and_underscore() {
        assert_eq!(camelize("talk_list"), "TalkList");
        assert_eq!(camelize("owner"), "Owner");
        assert_eq!(underscore("TalkList"), "talk_list");
        assert_eq!(underscore("Talk"), "talk");
        assert_eq!(underscore("ABCWidget"), "abcwidget");
        assert_eq!(camelize(&underscore("TalkList")), "TalkList");
    }

    #[test]
    fn tableize_models() {
        assert_eq!(tableize("Talk"), "talks");
        assert_eq!(tableize("User"), "users");
        assert_eq!(tableize("Category"), "categories");
        assert_eq!(tableize("FileEntry"), "file_entries");
    }
}
