//! The in-memory relational database substrate behind `ActiveRecord`.
//!
//! Stands in for the SQL database of the paper's Rails apps: typed schemas
//! (which drive dynamic type generation for model attribute methods),
//! auto-increment ids, and the handful of query shapes the framework needs.

use hb_interp::Value;
use std::collections::HashMap;

/// A table: column schema plus rows.
#[derive(Default)]
pub struct TableData {
    /// Column name → RDL type name (e.g. `"title" → "String"`).
    pub schema: Vec<(String, String)>,
    pub rows: Vec<HashMap<String, Value>>,
    next_id: i64,
}

/// The database: a set of named tables.
#[derive(Default)]
pub struct Database {
    tables: HashMap<String, TableData>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Creates (or replaces) a table with the given column schema. An `id`
    /// column is always present.
    pub fn create_table(&mut self, name: &str, schema: Vec<(String, String)>) {
        let mut full = vec![("id".to_string(), "Fixnum".to_string())];
        full.extend(schema.into_iter().filter(|(c, _)| c != "id"));
        self.tables.insert(
            name.to_string(),
            TableData {
                schema: full,
                rows: Vec::new(),
                next_id: 1,
            },
        );
    }

    /// The schema of a table (empty if unknown).
    pub fn columns(&self, table: &str) -> Vec<(String, String)> {
        self.tables
            .get(table)
            .map(|t| t.schema.clone())
            .unwrap_or_default()
    }

    /// True if the table exists.
    pub fn has_table(&self, table: &str) -> bool {
        self.tables.contains_key(table)
    }

    /// Inserts a row, assigning and returning its id.
    pub fn insert(&mut self, table: &str, mut attrs: HashMap<String, Value>) -> Option<i64> {
        let t = self.tables.get_mut(table)?;
        let id = t.next_id;
        t.next_id += 1;
        attrs.insert("id".to_string(), Value::Int(id));
        // Missing columns default to nil.
        for (c, _) in &t.schema {
            attrs.entry(c.clone()).or_insert(Value::Nil);
        }
        t.rows.push(attrs);
        Some(id)
    }

    /// Replaces the non-id attributes of the row with this id.
    pub fn update(&mut self, table: &str, id: i64, attrs: &HashMap<String, Value>) -> bool {
        let Some(t) = self.tables.get_mut(table) else {
            return false;
        };
        for row in &mut t.rows {
            if matches!(row.get("id"), Some(Value::Int(n)) if *n == id) {
                for (k, v) in attrs {
                    if k != "id" {
                        row.insert(k.clone(), v.clone());
                    }
                }
                return true;
            }
        }
        false
    }

    /// Deletes the row with this id.
    pub fn delete(&mut self, table: &str, id: i64) -> bool {
        let Some(t) = self.tables.get_mut(table) else {
            return false;
        };
        let before = t.rows.len();
        t.rows
            .retain(|r| !matches!(r.get("id"), Some(Value::Int(n)) if *n == id));
        t.rows.len() != before
    }

    /// The row with this id.
    pub fn find(&self, table: &str, id: i64) -> Option<HashMap<String, Value>> {
        self.tables.get(table)?.rows.iter().find_map(|r| {
            if matches!(r.get("id"), Some(Value::Int(n)) if *n == id) {
                Some(r.clone())
            } else {
                None
            }
        })
    }

    /// All rows.
    pub fn all(&self, table: &str) -> Vec<HashMap<String, Value>> {
        self.tables
            .get(table)
            .map(|t| t.rows.clone())
            .unwrap_or_default()
    }

    /// Rows whose `column` equals `value` (structural equality).
    pub fn where_eq(
        &self,
        table: &str,
        column: &str,
        value: &Value,
    ) -> Vec<HashMap<String, Value>> {
        self.tables
            .get(table)
            .map(|t| {
                t.rows
                    .iter()
                    .filter(|r| r.get(column).is_some_and(|v| v.raw_eq(value)))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Number of rows.
    pub fn count(&self, table: &str) -> usize {
        self.tables.get(table).map(|t| t.rows.len()).unwrap_or(0)
    }

    /// Empties every table (workload resets between benchmark runs),
    /// keeping schemas.
    pub fn clear_rows(&mut self) {
        for t in self.tables.values_mut() {
            t.rows.clear();
            t.next_id = 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(pairs: &[(&str, Value)]) -> HashMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    fn talks_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "talks",
            vec![
                ("title".to_string(), "String".to_string()),
                ("owner_id".to_string(), "Fixnum".to_string()),
            ],
        );
        db
    }

    #[test]
    fn schema_includes_id() {
        let db = talks_db();
        let cols = db.columns("talks");
        assert_eq!(cols[0].0, "id");
        assert_eq!(cols.len(), 3);
        assert!(db.has_table("talks"));
        assert!(!db.has_table("nope"));
    }

    #[test]
    fn insert_assigns_sequential_ids_and_defaults() {
        let mut db = talks_db();
        let id1 = db
            .insert("talks", attrs(&[("title", Value::str("a"))]))
            .unwrap();
        let id2 = db
            .insert("talks", attrs(&[("title", Value::str("b"))]))
            .unwrap();
        assert_eq!((id1, id2), (1, 2));
        let row = db.find("talks", 1).unwrap();
        assert!(row.get("owner_id").unwrap().raw_eq(&Value::Nil));
    }

    #[test]
    fn find_update_delete() {
        let mut db = talks_db();
        let id = db
            .insert("talks", attrs(&[("title", Value::str("a"))]))
            .unwrap();
        assert!(db.update("talks", id, &attrs(&[("title", Value::str("b"))])));
        assert!(db.find("talks", id).unwrap()["title"].raw_eq(&Value::str("b")));
        assert!(db.delete("talks", id));
        assert!(db.find("talks", id).is_none());
        assert!(!db.delete("talks", id));
    }

    #[test]
    fn where_and_count() {
        let mut db = talks_db();
        db.insert("talks", attrs(&[("owner_id", Value::Int(1))]));
        db.insert("talks", attrs(&[("owner_id", Value::Int(2))]));
        db.insert("talks", attrs(&[("owner_id", Value::Int(1))]));
        assert_eq!(db.where_eq("talks", "owner_id", &Value::Int(1)).len(), 2);
        assert_eq!(db.count("talks"), 3);
        db.clear_rows();
        assert_eq!(db.count("talks"), 0);
        // ids restart after clear.
        let id = db.insert("talks", attrs(&[])).unwrap();
        assert_eq!(id, 1);
    }
}
