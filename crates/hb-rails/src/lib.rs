//! Mini-Rails substrate for the Hummingbird evaluation: an in-memory
//! database, a Rails-style inflector, and an ActiveRecord/ActionController
//! framework written *in RubyLite* whose metaprogramming (association and
//! finder generation) exercises exactly the paths the paper's Fig. 1
//! pre-hooks were designed for.
//!
//! # Example
//!
//! ```
//! use hummingbird::Hummingbird;
//! use hb_rails::install_rails;
//!
//! let mut hb = Hummingbird::builder().build();
//! install_rails(&mut hb, true).unwrap();
//! hb.eval(r#"
//! DB.create_table("talks", { "title" => "String" })
//! class Talk < ActiveRecord::Base
//! end
//! Talk.create({ "title" => "JIT checking" })
//! Talk.find(1).title
//! "#)
//! .unwrap();
//! ```

pub mod db;
pub mod inflector;

pub use db::{Database, TableData};

use hb_interp::{ErrorKind, Flow, HbError, Interp, Value};
use hb_syntax::Span;
use hummingbird::Hummingbird;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// The ActiveRecord framework source (RubyLite).
pub const ACTIVE_RECORD_SOURCE: &str = include_str!("../framework/active_record.rb");
/// The ActionController + Router framework source (RubyLite).
pub const ACTION_CONTROLLER_SOURCE: &str = include_str!("../framework/action_controller.rb");
/// Framework type annotations and the Fig. 1 association pre-hooks.
pub const RAILS_ANNOTATIONS: &str = include_str!("../framework/annotations.rb");

/// Shared handle to the database (stored as an interpreter extension).
pub struct DbHandle {
    pub db: RefCell<Database>,
}

/// Installs the whole Rails substrate into a Hummingbird system.
///
/// `with_annotations` controls loading the framework annotation file (off
/// for the paper's "Orig" mode, which runs without Hummingbird).
///
/// # Errors
///
/// Fails only if a framework source fails to load — a build defect.
pub fn install_rails(hb: &mut Hummingbird, with_annotations: bool) -> Result<(), HbError> {
    install_inflections(&mut hb.interp);
    install_db(&mut hb.interp);
    install_const_get(&mut hb.interp);
    hb.load_file("<rails/active_record.rb>", ACTIVE_RECORD_SOURCE)?;
    hb.load_file("<rails/action_controller.rb>", ACTION_CONTROLLER_SOURCE)?;
    if with_annotations {
        hb.load_file("<rails/annotations.rb>", RAILS_ANNOTATIONS)?;
    }
    Ok(())
}

/// Fetches the installed database handle.
///
/// # Panics
///
/// Panics if [`install_rails`] has not run.
pub fn db_handle(interp: &Interp) -> Rc<DbHandle> {
    interp
        .extension::<DbHandle>()
        .expect("install_rails must run first")
}

/// Registers the inflection methods on `String`.
pub fn install_inflections(interp: &mut Interp) {
    let string = interp.registry.lookup("String").expect("String exists");
    #[allow(clippy::type_complexity)]
    let fns: Vec<(&str, fn(&str) -> String)> = vec![
        ("singularize", inflector::singularize),
        ("pluralize", inflector::pluralize),
        ("camelize", inflector::camelize),
        ("underscore", inflector::underscore),
        ("tableize", inflector::tableize),
    ];
    for (name, f) in fns {
        interp.define_builtin(
            string,
            name,
            false,
            Rc::new(move |_i, recv, _args, _b| match &recv {
                Value::Str(s) => Ok(Value::str(f(s))),
                other => Err(Flow::Error(HbError::new(
                    ErrorKind::TypeError,
                    format!("inflection on non-string {other:?}"),
                    Span::dummy(),
                ))),
            }),
        );
    }
}

fn str_arg(args: &[Value], i: usize, what: &str) -> Result<String, Flow> {
    match args.get(i) {
        Some(Value::Str(s)) => Ok(s.to_string()),
        Some(Value::Sym(s)) => Ok(s.to_string()),
        other => Err(Flow::Error(HbError::new(
            ErrorKind::ArgumentError,
            format!("{what}: expected string argument, got {other:?}"),
            Span::dummy(),
        ))),
    }
}

fn int_arg(args: &[Value], i: usize, what: &str) -> Result<i64, Flow> {
    match args.get(i) {
        Some(Value::Int(n)) => Ok(*n),
        other => Err(Flow::Error(HbError::new(
            ErrorKind::ArgumentError,
            format!("{what}: expected integer id, got {other:?}"),
            Span::dummy(),
        ))),
    }
}

fn row_to_hash(row: HashMap<String, Value>) -> Value {
    let mut pairs: Vec<(Value, Value)> = row.into_iter().map(|(k, v)| (Value::str(k), v)).collect();
    pairs.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
    Value::hash_from(pairs)
}

fn hash_to_row(v: &Value, what: &str) -> Result<HashMap<String, Value>, Flow> {
    match v {
        Value::Hash(h) => {
            let mut out = HashMap::new();
            for (k, val) in h.borrow().iter() {
                let key = match k {
                    Value::Str(s) => s.to_string(),
                    Value::Sym(s) => s.to_string(),
                    other => {
                        return Err(Flow::Error(HbError::new(
                            ErrorKind::ArgumentError,
                            format!("{what}: attribute keys must be strings, got {other:?}"),
                            Span::dummy(),
                        )))
                    }
                };
                out.insert(key, val.clone());
            }
            Ok(out)
        }
        Value::Nil => Ok(HashMap::new()),
        other => Err(Flow::Error(HbError::new(
            ErrorKind::ArgumentError,
            format!("{what}: expected attributes hash, got {other:?}"),
            Span::dummy(),
        ))),
    }
}

/// Registers the `DB` class with its native query methods.
pub fn install_db(interp: &mut Interp) {
    let handle = Rc::new(DbHandle {
        db: RefCell::new(Database::new()),
    });
    interp.set_extension(handle.clone());
    let db_class = interp.define_class("DB", None);

    let h = handle.clone();
    interp.define_builtin(
        db_class,
        "create_table",
        true,
        Rc::new(move |_i, _recv, args, _b| {
            let name = str_arg(&args, 0, "DB.create_table")?;
            let schema_hash = hash_to_row(args.get(1).unwrap_or(&Value::Nil), "DB.create_table")?;
            let mut schema: Vec<(String, String)> = schema_hash
                .into_iter()
                .map(|(k, v)| {
                    let t = match v {
                        Value::Str(s) => s.to_string(),
                        other => format!("{other:?}"),
                    };
                    (k, t)
                })
                .collect();
            schema.sort();
            h.db.borrow_mut().create_table(&name, schema);
            Ok(Value::Nil)
        }),
    );
    let h = handle.clone();
    interp.define_builtin(
        db_class,
        "columns",
        true,
        Rc::new(move |_i, _recv, args, _b| {
            let name = str_arg(&args, 0, "DB.columns")?;
            let cols = h.db.borrow().columns(&name);
            Ok(Value::hash_from(
                cols.into_iter()
                    .map(|(c, t)| (Value::str(c), Value::str(t)))
                    .collect(),
            ))
        }),
    );
    let h = handle.clone();
    interp.define_builtin(
        db_class,
        "insert",
        true,
        Rc::new(move |_i, _recv, args, _b| {
            let name = str_arg(&args, 0, "DB.insert")?;
            let row = hash_to_row(args.get(1).unwrap_or(&Value::Nil), "DB.insert")?;
            match h.db.borrow_mut().insert(&name, row) {
                Some(id) => Ok(Value::Int(id)),
                None => Err(Flow::Error(HbError::new(
                    ErrorKind::ArgumentError,
                    format!("DB.insert: no table {name}"),
                    Span::dummy(),
                ))),
            }
        }),
    );
    let h = handle.clone();
    interp.define_builtin(
        db_class,
        "update",
        true,
        Rc::new(move |_i, _recv, args, _b| {
            let name = str_arg(&args, 0, "DB.update")?;
            let id = int_arg(&args, 1, "DB.update")?;
            let row = hash_to_row(args.get(2).unwrap_or(&Value::Nil), "DB.update")?;
            Ok(Value::Bool(h.db.borrow_mut().update(&name, id, &row)))
        }),
    );
    let h = handle.clone();
    interp.define_builtin(
        db_class,
        "delete",
        true,
        Rc::new(move |_i, _recv, args, _b| {
            let name = str_arg(&args, 0, "DB.delete")?;
            let id = int_arg(&args, 1, "DB.delete")?;
            Ok(Value::Bool(h.db.borrow_mut().delete(&name, id)))
        }),
    );
    let h = handle.clone();
    interp.define_builtin(
        db_class,
        "find",
        true,
        Rc::new(move |_i, _recv, args, _b| {
            let name = str_arg(&args, 0, "DB.find")?;
            let id = int_arg(&args, 1, "DB.find")?;
            Ok(match h.db.borrow().find(&name, id) {
                Some(row) => row_to_hash(row),
                None => Value::Nil,
            })
        }),
    );
    let h = handle.clone();
    interp.define_builtin(
        db_class,
        "all",
        true,
        Rc::new(move |_i, _recv, args, _b| {
            let name = str_arg(&args, 0, "DB.all")?;
            Ok(Value::array(
                h.db.borrow()
                    .all(&name)
                    .into_iter()
                    .map(row_to_hash)
                    .collect(),
            ))
        }),
    );
    let h = handle.clone();
    interp.define_builtin(
        db_class,
        "where",
        true,
        Rc::new(move |_i, _recv, args, _b| {
            let name = str_arg(&args, 0, "DB.where")?;
            let col = str_arg(&args, 1, "DB.where")?;
            let val = args.get(2).cloned().unwrap_or(Value::Nil);
            Ok(Value::array(
                h.db.borrow()
                    .where_eq(&name, &col, &val)
                    .into_iter()
                    .map(row_to_hash)
                    .collect(),
            ))
        }),
    );
    let h = handle.clone();
    interp.define_builtin(
        db_class,
        "count",
        true,
        Rc::new(move |_i, _recv, args, _b| {
            let name = str_arg(&args, 0, "DB.count")?;
            Ok(Value::Int(h.db.borrow().count(&name) as i64))
        }),
    );
    let h = handle;
    interp.define_builtin(
        db_class,
        "clear",
        true,
        Rc::new(move |_i, _recv, _args, _b| {
            h.db.borrow_mut().clear_rows();
            Ok(Value::Nil)
        }),
    );
}

/// Registers `Object.const_get` (used by generated association methods).
pub fn install_const_get(interp: &mut Interp) {
    let object = interp.registry.object();
    interp.define_builtin(
        object,
        "const_get",
        true,
        Rc::new(|i, _recv, args, _b| {
            let name = str_arg(&args, 0, "const_get")?;
            i.constant(&name).ok_or_else(|| {
                Flow::Error(HbError::new(
                    ErrorKind::NameError,
                    format!("uninitialized constant {name}"),
                    Span::dummy(),
                ))
            })
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rails_hb() -> Hummingbird {
        let mut hb = Hummingbird::builder().build();
        install_rails(&mut hb, true).unwrap();
        hb
    }

    fn eval_s(hb: &mut Hummingbird, src: &str) -> String {
        match hb.eval(src).unwrap_or_else(|e| panic!("{e}")) {
            Value::Str(s) => s.to_string(),
            other => panic!("expected string, got {other:?}"),
        }
    }

    #[test]
    fn model_crud_roundtrip() {
        let mut hb = rails_hb();
        hb.eval(
            r#"
DB.create_table("talks", { "title" => "String", "owner_id" => "Fixnum" })
class Talk < ActiveRecord::Base
end
t = Talk.new({ "title" => "JIT" })
t.save
"#,
        )
        .unwrap();
        assert_eq!(eval_s(&mut hb, "Talk.find(1).title"), "JIT");
        hb.eval("Talk.find(1).update_attribute(\"title\", \"JIT2\")")
            .unwrap();
        assert_eq!(eval_s(&mut hb, "Talk.first.title"), "JIT2");
        hb.eval("Talk.find(1).destroy").unwrap();
        let err = hb.eval("Talk.find(1)").unwrap_err();
        assert_eq!(err.class_name(), "RecordNotFound");
    }

    #[test]
    fn attribute_methods_come_from_schema() {
        let mut hb = rails_hb();
        hb.eval(
            r#"
DB.create_table("users", { "email" => "String" })
class User < ActiveRecord::Base
end
u = User.create({ "email" => "a@b.c" })
u.email = "x@y.z"
u.save
"#,
        )
        .unwrap();
        assert_eq!(eval_s(&mut hb, "User.find(1).email"), "x@y.z");
    }

    #[test]
    fn belongs_to_and_has_many_associations() {
        let mut hb = rails_hb();
        hb.eval(
            r#"
DB.create_table("users", { "name" => "String" })
DB.create_table("talks", { "title" => "String", "owner_id" => "Fixnum" })
class User < ActiveRecord::Base
  has_many :talks, { :class_name => "Talk" }
end
class Talk < ActiveRecord::Base
  belongs_to :owner, { :class_name => "User" }
end
u = User.create({ "name" => "alice" })
t = Talk.create({ "title" => "one", "owner_id" => 1 })
"#,
        )
        .unwrap();
        assert_eq!(eval_s(&mut hb, "Talk.find(1).owner.name"), "alice");
        // has_many uses the owning class's foreign key (user_id), so wire
        // one up explicitly for the reverse direction.
        hb.eval(
            r#"
DB.create_table("posts", { "body" => "String", "user_id" => "Fixnum" })
class Post < ActiveRecord::Base
end
class User < ActiveRecord::Base
  has_many :posts
end
Post.create({ "body" => "hi", "user_id" => 1 })
"#,
        )
        .unwrap();
        assert_eq!(eval_s(&mut hb, "User.find(1).posts.first.body"), "hi");
    }

    #[test]
    fn dynamic_finders_via_method_missing() {
        let mut hb = rails_hb();
        hb.eval(
            r#"
DB.create_table("users", { "name" => "String" })
class User < ActiveRecord::Base
end
User.create({ "name" => "alice" })
User.create({ "name" => "bob" })
"#,
        )
        .unwrap();
        assert_eq!(eval_s(&mut hb, "User.find_by_name(\"bob\").name"), "bob");
        match hb.eval("User.find_all_by_name(\"alice\").size").unwrap() {
            Value::Int(1) => {}
            other => panic!("{other:?}"),
        }
        let err = hb.eval("User.find_by_name(\"nobody\")").unwrap_err();
        assert_eq!(err.class_name(), "RecordNotFound");
    }

    #[test]
    fn fig1_pre_hook_generates_association_types() {
        let mut hb = rails_hb();
        hb.eval(
            r#"
DB.create_table("users", { "name" => "String" })
DB.create_table("talks", { "title" => "String", "owner_id" => "Fixnum" })
class User < ActiveRecord::Base
end
class Talk < ActiveRecord::Base
  belongs_to :owner, { :class_name => "User" }
end
"#,
        )
        .unwrap();
        // The Fig. 1 pre-hook generated Talk#owner : () -> User.
        let key = hummingbird::MethodKey::instance("Talk", "owner");
        let entry = hb.rdl.entry(&key).expect("owner type generated");
        assert_eq!(entry.sig.to_string(), "() -> User");
        let setter = hummingbird::MethodKey::instance("Talk", "owner=");
        assert_eq!(
            hb.rdl.entry(&setter).unwrap().sig.to_string(),
            "(User) -> User"
        );
        // And they are dynamically generated in the paper's sense.
        assert!(hb.rdl_stats().dynamic_generated >= 2);
    }

    #[test]
    fn fig1_owner_check_end_to_end() {
        // The paper's Fig. 1: Talk#owner? statically checks against the
        // dynamically generated type of Talk#owner.
        let mut hb = rails_hb();
        hb.eval(
            r#"
DB.create_table("users", { "name" => "String" })
DB.create_table("talks", { "title" => "String", "owner_id" => "Fixnum" })
class User < ActiveRecord::Base
end
class Talk < ActiveRecord::Base
  belongs_to :owner, { :class_name => "User" }
  type :owner?, "(User) -> %bool", { "check" => true }
  def owner?(user)
    return owner == user
  end
end
annotate_model(User)
annotate_model(Talk)
u = User.create({ "name" => "alice" })
t = Talk.create({ "title" => "x", "owner_id" => 1 })
t.owner?(u)
"#,
        )
        .unwrap();
        assert!(hb.stats().checked_methods.contains("Talk#owner?"));
        // The result is true (owner is alice).
        match hb.eval("Talk.find(1).owner?(User.find(1))").unwrap() {
            Value::Bool(true) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn annotate_model_generates_schema_types() {
        let mut hb = rails_hb();
        hb.eval(
            r#"
DB.create_table("talks", { "title" => "String", "owner_id" => "Fixnum" })
class Talk < ActiveRecord::Base
end
annotate_model(Talk)
"#,
        )
        .unwrap();
        let title = hummingbird::MethodKey::instance("Talk", "title");
        assert_eq!(
            hb.rdl.entry(&title).unwrap().sig.to_string(),
            "() -> String"
        );
        let find = hummingbird::MethodKey::class_level("Talk", "find");
        assert_eq!(
            hb.rdl.entry(&find).unwrap().sig.to_string(),
            "(Fixnum) -> Talk"
        );
        let finder = hummingbird::MethodKey::class_level("Talk", "find_by_title");
        assert_eq!(
            hb.rdl.entry(&finder).unwrap().sig.to_string(),
            "(String) -> Talk"
        );
    }

    #[test]
    fn controllers_and_router_dispatch() {
        let mut hb = rails_hb();
        hb.eval(
            r#"
DB.create_table("talks", { "title" => "String" })
class Talk < ActiveRecord::Base
end
Talk.create({ "title" => "first" })
class TalksController < ActionController::Base
  def index
    names = Talk.all.map { |t| t.title }
    render(names.join(","))
  end
  def show
    t = Talk.find(params[:id])
    render(t.title)
  end
end
$router = Router.new
$router.draw("GET", "/talks", TalksController, :index)
$router.draw("GET", "/talks/show", TalksController, :show)
"#,
        )
        .unwrap();
        assert_eq!(
            eval_s(&mut hb, "$router.dispatch(\"GET\", \"/talks\")"),
            "first"
        );
        assert_eq!(
            eval_s(
                &mut hb,
                "$router.dispatch(\"GET\", \"/talks/show\", { :id => 1 })"
            ),
            "first"
        );
        let err = hb.eval("$router.dispatch(\"GET\", \"/nope\")").unwrap_err();
        assert_eq!(err.class_name(), "RecordNotFound");
    }

    #[test]
    fn db_clear_resets_between_runs() {
        let mut hb = rails_hb();
        hb.eval(
            r#"
DB.create_table("talks", { "title" => "String" })
class Talk < ActiveRecord::Base
end
Talk.create({ "title" => "a" })
DB.clear
"#,
        )
        .unwrap();
        match hb.eval("Talk.count").unwrap() {
            Value::Int(0) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn original_mode_runs_framework_without_annotations() {
        let mut hb = Hummingbird::builder()
            .mode(hummingbird::Mode::Original)
            .build();
        install_rails(&mut hb, false).unwrap();
        hb.eval(
            r#"
DB.create_table("talks", { "title" => "String" })
class Talk < ActiveRecord::Base
  belongs_to :owner
end
Talk.create({ "title" => "x" })
"#,
        )
        .unwrap();
        assert_eq!(hb.stats().checks_performed, 0);
        assert_eq!(hb.rdl_stats().total, 0);
    }
}
