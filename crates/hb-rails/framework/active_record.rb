# ActiveRecord, written in RubyLite over the native DB substrate. The
# metaprogramming here — schema-driven attribute methods, association
# generation, method_missing finders — is exactly what the paper's Fig. 1
# pre-hooks annotate at run time.

module ActiveRecord
end

class ActiveRecord::Base
  def self.inherited(subclass)
    subclass.define_attribute_methods
  end

  def self.table_name
    name.tableize
  end

  # Generates a getter and setter per schema column (Rails' attribute
  # methods). Runs when a model class is first defined.
  def self.define_attribute_methods
    cols = DB.columns(table_name)
    cols.each do |col, t|
      define_method(col) do
        @attributes[col]
      end
      define_method("#{col}=") do |value|
        @attributes[col] = value
      end
    end
  end

  def initialize(attrs = {})
    @attributes = attrs
  end

  def attributes
    @attributes
  end

  def set_attributes(row)
    @attributes = row
  end

  def id
    @attributes["id"]
  end

  def ==(other)
    if other.nil?
      false
    else
      other.is_a?(self.class) && id == other.id
    end
  end

  def save
    if @attributes["id"]
      DB.update(self.class.table_name, @attributes["id"], @attributes)
    else
      new_id = DB.insert(self.class.table_name, @attributes)
      @attributes["id"] = new_id
      true
    end
  end

  def update_attribute(name, value)
    @attributes[name] = value
    save
  end

  def destroy
    DB.delete(self.class.table_name, @attributes["id"])
  end

  def self.from_row(row)
    record = new({})
    record.set_attributes(row)
    record
  end

  def self.create(attrs = {})
    record = new(attrs)
    record.save
    record
  end

  def self.find(id)
    row = DB.find(table_name, id)
    raise RecordNotFound, "no #{name} with id #{id}" if row.nil?
    from_row(row)
  end

  def self.all
    DB.all(table_name).map { |row| from_row(row) }
  end

  def self.first
    all.first
  end

  def self.count
    DB.count(table_name)
  end

  def self.where(column, value)
    DB.where(table_name, column, value).map { |row| from_row(row) }
  end

  # belongs_to :owner, { :class_name => "User" } — generates owner/owner=
  # reading through the association's foreign key. The framework annotation
  # file attaches the Fig. 1 pre-hook that types these at generation time.
  def self.belongs_to(assoc, options = {})
    assoc_name = assoc.to_s
    fk = "#{assoc_name}_id"
    target = options[:class_name]
    target = assoc_name.camelize if target.nil?
    define_method(assoc_name) do
      Object.const_get(target).find(@attributes[fk])
    end
    define_method("#{assoc_name}=") do |other|
      @attributes[fk] = other.id
      other
    end
  end

  # has_many :posts — the collection reader queries by the owning class's
  # foreign key (user_id for User).
  def self.has_many(assoc, options = {})
    assoc_name = assoc.to_s
    target = options[:class_name]
    target = assoc_name.singularize.camelize if target.nil?
    fk = options[:foreign_key]
    fk = "#{name.underscore}_id" if fk.nil?
    define_method(assoc_name) do
      Object.const_get(target).where(fk, @attributes["id"])
    end
  end

  # Rails 3-era dynamic finders: find_by_<col> / find_all_by_<col>.
  def self.method_missing(name, *args)
    n = name.to_s
    if n.start_with?("find_all_by_")
      column = n.sub("find_all_by_", "")
      where(column, args[0])
    elsif n.start_with?("find_by_")
      column = n.sub("find_by_", "")
      matches = where(column, args[0])
      raise RecordNotFound, "no #{self.name} with #{column}" if matches.empty?
      matches.first
    else
      raise NoMethodError, "undefined method `#{n}` for #{self.name}"
    end
  end
end
