# Framework type annotations: static types for the Rails substrate plus the
# paper's Fig. 1 pre-hooks, which generate types for association methods at
# the moment the metaprogramming creates them.

# --- ActionController / Router ----------------------------------------------
type ActionController::Base, "set_params", "(Hash<Symbol, %any>) -> Hash<Symbol, %any>"
# The Rails params exception (paper Section 4): always dynamically checked.
type ActionController::Base, "params", "() -> Hash<Symbol, %any>", { "dyn" => true }
type ActionController::Base, "render", "(String) -> String"
type ActionController::Base, "redirect_to", "(String) -> String"
type ActionController::Base, "response", "() -> String"
type Router, "draw", "(String, String, %any, Symbol) -> %any"
type Router, "dispatch", "(String, String, ?Hash<Symbol, %any>) -> String"

# --- ActiveRecord ------------------------------------------------------------
type ActiveRecord::Base, "id", "() -> Fixnum"
type ActiveRecord::Base, "==", "(%any) -> %bool"
type ActiveRecord::Base, "save", "() -> %bool"
type ActiveRecord::Base, "update_attribute", "(String, %any) -> %bool"
type ActiveRecord::Base, "destroy", "() -> %bool"
type ActiveRecord::Base, "attributes", "() -> Hash<String, %any>"
type ActiveRecord::Base, "set_attributes", "(Hash<String, %any>) -> Hash<String, %any>"
type ActiveRecord::Base, "self.table_name", "() -> String"
type ActiveRecord::Base, "self.belongs_to", "(Symbol, ?Hash<Symbol, String>) -> %any"
type ActiveRecord::Base, "self.has_many", "(Symbol, ?Hash<Symbol, String>) -> %any"
type ActiveRecord::Base, "self.count", "() -> Fixnum"

# --- inflections (native methods on String) ----------------------------------
type String, "singularize", "() -> String"
type String, "pluralize", "() -> String"
type String, "camelize", "() -> String"
type String, "underscore", "() -> String"
type String, "tableize", "() -> String"

# --- Fig. 1: pre-hooks typing generated association methods ------------------
# The hook body runs with `self` rebound to the model class receiving the
# belongs_to/has_many call, so the `type` calls inside target that model.
pre ActiveRecord::Base, "self.belongs_to" do |*args|
  hmi = args[0]
  options = args[1]
  hm = hmi.to_s
  cn = options[:class_name] if options
  hmu = cn ? cn : hm.camelize
  type hm, "() -> #{hmu}"
  type "#{hm}=", "(#{hmu}) -> #{hmu}"
  true
end

pre ActiveRecord::Base, "self.has_many" do |*args|
  hmi = args[0]
  options = args[1]
  hm = hmi.to_s
  cn = options[:class_name] if options
  hmu = cn ? cn : hm.singularize.camelize
  type hm, "() -> Array<#{hmu}>"
  true
end

# annotate_model(Model): reads the live schema and generates types for the
# attribute methods and finders that define_attribute_methods and
# method_missing provide — the schema-loop analogue of Fig. 1.
def annotate_model(cls)
  cols = DB.columns(cls.table_name)
  cn = cls.name
  cols.each do |col, t|
    type cls, col, "() -> #{t}"
    type cls, "#{col}=", "(#{t}) -> #{t}"
    type cls, "self.find_by_#{col}", "(#{t}) -> #{cn}"
    type cls, "self.find_all_by_#{col}", "(#{t}) -> Array<#{cn}>"
  end
  type cls, "self.find", "(Fixnum) -> #{cn}"
  type cls, "self.first", "() -> #{cn}"
  type cls, "self.all", "() -> Array<#{cn}>"
  type cls, "self.where", "(String, %any) -> Array<#{cn}>"
  type cls, "self.create", "(?Hash<String, %any>) -> #{cn}"
  type cls, "self.from_row", "(Hash<String, %any>) -> #{cn}"
  cls
end
