# ActionController and the router, written in RubyLite. Controller actions
# are ordinary methods dispatched by name, so Hummingbird's hook intercepts
# them like any other call.

module ActionController
end

class ActionController::Base
  def set_params(p)
    @params = p
  end

  def params
    @params
  end

  def render(text)
    @response = text
    text
  end

  def redirect_to(path)
    @response = "redirect:" + path
    @response
  end

  def response
    @response
  end
end

class Router
  def initialize
    @routes = {}
  end

  def draw(method, path, controller, action)
    @routes["#{method} #{path}"] = [controller, action]
  end

  def dispatch(method, path, params = {})
    route = @routes["#{method} #{path}"]
    raise RecordNotFound, "no route matches #{method} #{path}" if route.nil?
    controller = route[0].new
    controller.set_params(params)
    controller.send(route[1])
    controller.response
  end
end
