//! `hb_lint` command-line contract: usage errors exit 2, lint outcomes
//! exit 0/1 — so CI scripts fail loudly on a typo'd invocation instead
//! of silently linting the wrong thing.

use std::process::Command;

fn run(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_hb_lint"))
        .args(args)
        .output()
        .expect("spawn hb_lint");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn unknown_flag_exits_2() {
    let (code, _, err) = run(&["--no-such-flag"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("unknown flag"), "stderr: {err}");
}

#[test]
fn misspelled_flag_exits_2_even_with_valid_targets() {
    let (code, _, err) = run(&["CCT", "--jsn"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--jsn"), "stderr: {err}");
}

#[test]
fn bad_policy_value_exits_2() {
    let (code, _, err) = run(&["--policy", "sometimes"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--policy"), "stderr: {err}");
}

#[test]
fn missing_policy_value_exits_2() {
    let (code, _, err) = run(&["--policy"]);
    assert_eq!(code, 2, "stderr: {err}");
}

#[test]
fn bad_jobs_value_exits_2() {
    let (code, _, err) = run(&["--jobs", "many"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--jobs"), "stderr: {err}");
}

#[test]
fn unknown_app_name_exits_2() {
    let (code, _, err) = run(&["NoSuchApp"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("no app matches"), "stderr: {err}");
}

#[test]
fn deny_warnings_without_analyze_exits_2() {
    let (code, _, err) = run(&["--deny-warnings"]);
    assert_eq!(code, 2, "stderr: {err}");
}

#[test]
fn analyze_with_errors_flag_exits_2() {
    let (code, _, err) = run(&["--analyze", "--errors"]);
    assert_eq!(code, 2, "stderr: {err}");
}

#[test]
fn clean_app_lints_at_exit_0() {
    let (code, out, err) = run(&["CCT"]);
    assert_eq!(code, 0, "stdout: {out}\nstderr: {err}");
    assert!(out.contains("0 diagnostic(s)"), "stdout: {out}");
}

#[test]
fn analyze_reports_warnings_but_exits_0_by_default() {
    let (code, out, err) = run(&["--analyze", "CCT"]);
    assert_eq!(code, 0, "stdout: {out}\nstderr: {err}");
    assert!(out.contains("HB1005"), "stdout: {out}");
    assert!(out.contains("residue:"), "stdout: {out}");
}

#[test]
fn analyze_deny_warnings_gates_at_exit_1() {
    // CCT has two genuinely stale annotations, so --deny-warnings trips.
    let (code, out, _) = run(&["--analyze", "--deny-warnings", "CCT"]);
    assert_eq!(code, 1, "stdout: {out}");
}

#[test]
fn analyze_json_emits_residue_object() {
    let (code, out, err) = run(&["--analyze", "--json", "Countries"]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(
        out.contains("\"residue\":{\"elided_edges\":"),
        "stdout: {out}"
    );
    assert!(out.contains("\"severity\":\"warning\""), "stdout: {out}");
}
