//! `hb_lint` — the CI-linter workload: eager whole-program type checking
//! over the bundled subject apps, built on `Hummingbird::check_all`.
//!
//! Where the engine's normal mode checks a method just in time at its
//! first call, `hb_lint` walks *every* annotated, checkable method and
//! checks it immediately — no request required — and reports the failures
//! as structured `TypeDiagnostic`s with stable `HBxxxx` codes, blame
//! targets and labeled spans.
//!
//! ```text
//! hb_lint [--json] [--errors] [--smoke] [--analyze] [--infer]
//!         [--infer-apply] [--deny-warnings] [--policy P] [--jobs N]
//!         [APP ...]
//!
//!   (default)   lint the six clean subject apps (expected: 0 findings)
//!   APP ...     lint only the named apps (Talks, Boxroom, Pubs, Rolify,
//!               CCT, Countries)
//!   --errors    lint the six historical Talks error versions instead
//!               (expected: exactly one finding each)
//!   --infer     run checker-verified whole-program type inference
//!               (`Hummingbird::infer`) after type checking: candidate
//!               signatures for unannotated reachable methods are
//!               verified through the real checker and adopted as
//!               Inferred annotations; refuted candidates report as
//!               HB2001 suggestions. Prints the residue audit before and
//!               after so the elision gain is visible. With --smoke,
//!               gates CI: zero type errors before *and after* adoption,
//!               at least one adoption per app with the unannotated edge
//!               count strictly below the pre-inference baseline, and
//!               byte-identical serial/--jobs output.
//!   --infer-apply  with --infer: also print each adopted signature as a
//!               ready-to-paste `type` annotation line
//!   --analyze   run the whole-program dataflow lint suite (HB1001-HB1006)
//!               after type checking: use-before-assign, unreachable code,
//!               dead stores, unused locals, stale annotations and the
//!               dynamic-check-residue audit. Warnings never gate (exit 0)
//!               unless --deny-warnings is given. With --smoke, gates CI:
//!               the six apps must analyze with 0 type errors and
//!               byte-identical serial/parallel warning sets, and every
//!               seeded-defect corpus case must be caught by its exact
//!               code.
//!   --deny-warnings  with --analyze: exit 1 if any warning is reported
//!   --json      emit one JSON object per target on stdout
//!   --jobs N    fan the whole-program check across N scheduler workers
//!               (`Hummingbird::check_all_parallel`). Output is
//!               byte-identical to the serial path — diagnostics are
//!               sorted by (file, span, code) on both — so every mode,
//!               including --smoke's gates, composes with it.
//!   --policy P  lint the APP targets under a global check policy
//!               (enforce/shadow/deferred/off). Shadow reports findings
//!               but always exits 0 — the scriptable canary run that
//!               observes without gating; off skips every check (0
//!               findings by construction). Incompatible with
//!               --errors/--smoke, whose exactly-one-finding semantics
//!               presume Enforce: the combination exits 2 rather than
//!               silently ignoring the flag.
//!   --smoke     CI gate: assert the clean apps lint at zero diagnostics
//!               AND the six error versions yield exactly six diagnostics
//!               with their expected codes; exit 1 on any mismatch
//! ```
//!
//! Exit status: 0 when every target matched expectations (no findings for
//! clean targets, or any findings under `--policy shadow`), 1 otherwise —
//! so the bin gates CI directly. Usage errors — an unknown flag, a bad
//! `--policy`/`--jobs` value, an incompatible combination — exit 2.

use hb_apps::talks_history::{error_versions, lint_error_version_with_jobs};
use hb_apps::{
    all_apps, analyze_case, build_app_with, corpus_cases, infer_case, infer_cases, AppSpec,
};
use hummingbird::{CheckPolicy, Hummingbird, Mode, ResidueSummary, TypeDiagnostic};

struct LintTarget {
    /// "app:Talks" or "error-version:1/8/12-4".
    label: String,
    diagnostics: Vec<String>, // pre-rendered (text or JSON)
    count: usize,
    codes: Vec<String>,
}

fn lint_app(spec: &AppSpec, json: bool, policy: CheckPolicy, jobs: usize) -> LintTarget {
    let builder = Hummingbird::builder().mode(Mode::Full).check_policy(policy);
    let mut hb = build_app_with(spec, builder);
    let diags: Vec<TypeDiagnostic> = hb.check_all_parallel(jobs);
    let map = hb.source_map();
    LintTarget {
        label: format!("app:{}", spec.name),
        count: diags.len(),
        codes: diags.iter().map(|d| d.code.to_string()).collect(),
        diagnostics: diags
            .iter()
            .map(|d| if json { d.to_json(map) } else { d.render(map) })
            .collect(),
    }
}

struct AnalyzeTarget {
    target: LintTarget,
    /// Type errors found by the eager check pass (expected 0).
    errors: usize,
    summary: ResidueSummary,
}

fn summary_json(s: &ResidueSummary) -> String {
    format!(
        "{{\"elided_edges\":{},\"elided_inferred_edges\":{},\"residual_edges\":{},\"unannotated_edges\":{},\"dynamic_def_edges\":{},\"reachable_methods\":{},\"stale_annotations\":{},\"predicted_fast_entries\":{}}}",
        s.elided_edges,
        s.elided_inferred_edges,
        s.residual_edges,
        s.unannotated_edges,
        s.dynamic_def_edges,
        s.reachable_methods,
        s.stale_annotations,
        s.predicted_fast_entries.len()
    )
}

/// Builds one app, type-checks it eagerly, then runs the whole-program
/// analysis with the workload call declared as an entry point.
fn analyze_app(spec: &AppSpec, json: bool, jobs: usize) -> AnalyzeTarget {
    let builder = Hummingbird::builder().mode(Mode::Full);
    let mut hb = build_app_with(spec, builder);
    let errors = hb.check_all_parallel(jobs).len();
    let workload = (spec.workload_call)(1);
    let report = hb.analyze_with_entries(jobs, &[("<workload>", &workload)]);
    let map = hb.source_map();
    AnalyzeTarget {
        target: LintTarget {
            label: format!("analyze:{}", spec.name),
            count: report.diagnostics.len(),
            codes: report
                .diagnostics
                .iter()
                .map(|d| d.code.to_string())
                .collect(),
            diagnostics: report
                .diagnostics
                .iter()
                .map(|d| if json { d.to_json(map) } else { d.render(map) })
                .collect(),
        },
        errors,
        summary: report.summary,
    }
}

struct InferTarget {
    target: LintTarget,
    /// Type errors before inference / after adoption (both expected 0:
    /// adoption must never regress a green program).
    errors_before: usize,
    errors_after: usize,
    candidates: usize,
    /// Ready-to-paste annotation lines for every verified signature.
    adopted: Vec<String>,
    rejected: usize,
    before: ResidueSummary,
    after: ResidueSummary,
}

/// Builds one app, type-checks it eagerly, audits the residue, runs the
/// inference pass, then re-checks and re-audits — so the target carries
/// the before/after pair the elision story is about.
fn infer_app(spec: &AppSpec, json: bool, jobs: usize) -> InferTarget {
    let builder = Hummingbird::builder().mode(Mode::Full);
    let mut hb = build_app_with(spec, builder);
    let errors_before = hb.check_all_parallel(jobs).len();
    let workload = (spec.workload_call)(1);
    let entries: &[(&str, &str)] = &[("<workload>", &workload)];
    let before = hb.analyze_with_entries(jobs, entries).summary;
    let report = hb.infer_with_entries(jobs, entries);
    let errors_after = hb.check_all_parallel(jobs).len();
    let after = hb.analyze_with_entries(jobs, entries).summary;
    let map = hb.source_map();
    InferTarget {
        target: LintTarget {
            label: format!("infer:{}", spec.name),
            count: report.diagnostics.len(),
            codes: report
                .diagnostics
                .iter()
                .map(|d| d.code.to_string())
                .collect(),
            diagnostics: report
                .diagnostics
                .iter()
                .map(|d| if json { d.to_json(map) } else { d.render(map) })
                .collect(),
        },
        errors_before,
        errors_after,
        candidates: report.candidates,
        adopted: report
            .adopted
            .iter()
            .map(|(_, line)| line.clone())
            .collect(),
        rejected: report.rejected,
        before,
        after,
    }
}

fn print_infer_target(t: &InferTarget, json: bool, apply: bool) {
    if json {
        let diags = t.target.diagnostics.join(",");
        let adopted: Vec<String> = t.adopted.iter().map(|l| format!("{l:?}")).collect();
        println!(
            "{{\"schema_version\":1,\"target\":\"{}\",\"errors_before\":{},\"errors_after\":{},\"candidates\":{},\"adopted\":[{}],\"rejected\":{},\"diagnostics\":[{diags}],\"residue_before\":{},\"residue_after\":{}}}",
            t.target.label,
            t.errors_before,
            t.errors_after,
            t.candidates,
            adopted.join(","),
            t.rejected,
            summary_json(&t.before),
            summary_json(&t.after)
        );
    } else {
        println!(
            "== {} — {} candidate(s): {} adopted, {} refuted; {} error(s) before, {} after",
            t.target.label,
            t.candidates,
            t.adopted.len(),
            t.rejected,
            t.errors_before,
            t.errors_after
        );
        if apply {
            for line in &t.adopted {
                println!("   {line}");
            }
        }
        for d in &t.target.diagnostics {
            for line in d.lines() {
                println!("   {line}");
            }
        }
        println!("   residue before: {}", t.before.render());
        println!("   residue after:  {}", t.after.render());
    }
}

fn print_analyze_target(t: &AnalyzeTarget, json: bool) {
    if json {
        let diags = t.target.diagnostics.join(",");
        println!(
            "{{\"schema_version\":1,\"target\":\"{}\",\"errors\":{},\"count\":{},\"diagnostics\":[{diags}],\"residue\":{}}}",
            t.target.label,
            t.errors,
            t.target.count,
            summary_json(&t.summary)
        );
    } else {
        println!(
            "== {} — {} error(s), {} warning(s)",
            t.target.label, t.errors, t.target.count
        );
        for d in &t.target.diagnostics {
            for line in d.lines() {
                println!("   {line}");
            }
        }
        println!("   residue: {}", t.summary.render());
    }
}

fn lint_errors(json: bool, jobs: usize) -> Vec<LintTarget> {
    error_versions()
        .iter()
        .map(|v| {
            let diags = lint_error_version_with_jobs(v, jobs);
            LintTarget {
                label: format!("error-version:{}", v.version),
                count: diags.len(),
                codes: diags
                    .iter()
                    .map(|d| d.diagnostic.code.to_string())
                    .collect(),
                diagnostics: diags
                    .iter()
                    .map(|d| {
                        if json {
                            d.json.clone()
                        } else {
                            d.rendered.clone()
                        }
                    })
                    .collect(),
            }
        })
        .collect()
}

fn print_target(t: &LintTarget, json: bool) {
    if json {
        let diags = t.diagnostics.join(",");
        println!(
            "{{\"schema_version\":1,\"target\":\"{}\",\"count\":{},\"diagnostics\":[{diags}]}}",
            t.label, t.count
        );
    } else {
        println!("== {} — {} diagnostic(s)", t.label, t.count);
        for d in &t.diagnostics {
            for line in d.lines() {
                println!("   {line}");
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Strict parsing: every argument is either a known flag (with its
    // value, where it takes one) or an app name. Anything else — an
    // unknown flag, a missing or malformed value — is a usage error and
    // exits 2, so CI scripts fail loudly instead of silently linting the
    // wrong targets.
    let mut json = false;
    let mut errors = false;
    let mut smoke = false;
    let mut analyze = false;
    let mut infer = false;
    let mut infer_apply = false;
    let mut deny_warnings = false;
    let mut policy = CheckPolicy::Enforce;
    let mut policy_set = false;
    let mut jobs = 1usize;
    let mut names: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--errors" => errors = true,
            "--smoke" => smoke = true,
            "--analyze" => analyze = true,
            "--infer" => infer = true,
            "--infer-apply" => infer_apply = true,
            "--deny-warnings" => deny_warnings = true,
            "--policy" => {
                let name = it.next().map(String::as_str).unwrap_or("");
                policy = CheckPolicy::parse(name).unwrap_or_else(|| {
                    eprintln!("--policy: expected enforce/shadow/deferred/off, got {name:?}");
                    std::process::exit(2);
                });
                policy_set = true;
            }
            "--jobs" => {
                let arg = it.next().map(String::as_str).unwrap_or("");
                jobs = arg.parse::<usize>().unwrap_or_else(|_| {
                    eprintln!("--jobs: expected a worker count, got {arg:?}");
                    std::process::exit(2);
                });
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag:?} (see the doc comment for usage)");
                std::process::exit(2);
            }
            name => names.push(name.to_string()),
        }
    }
    if (errors || smoke) && policy != CheckPolicy::Enforce {
        eprintln!(
            "--policy {policy} cannot be combined with --errors/--smoke \
             (their expected-finding gates presume enforce)"
        );
        std::process::exit(2);
    }
    if analyze && (errors || policy_set) {
        eprintln!("--analyze cannot be combined with --errors or --policy");
        std::process::exit(2);
    }
    if infer && (errors || policy_set || analyze) {
        eprintln!("--infer cannot be combined with --errors, --policy or --analyze");
        std::process::exit(2);
    }
    if infer_apply && !infer {
        eprintln!("--infer-apply only makes sense with --infer");
        std::process::exit(2);
    }
    if deny_warnings && !analyze {
        eprintln!("--deny-warnings only makes sense with --analyze");
        std::process::exit(2);
    }

    if infer && smoke {
        infer_smoke_gate(json, jobs);
        return;
    }
    if infer {
        let specs = select_specs(&names);
        let mut type_errors = 0usize;
        for spec in &specs {
            let t = infer_app(spec, json, jobs);
            type_errors += t.errors_before + t.errors_after;
            print_infer_target(&t, json, infer_apply);
        }
        std::process::exit(if type_errors != 0 { 1 } else { 0 });
    }

    if analyze && smoke {
        analyze_smoke_gate(json, jobs);
        return;
    }
    if analyze {
        let specs = select_specs(&names);
        let mut warnings = 0usize;
        let mut type_errors = 0usize;
        for spec in &specs {
            let t = analyze_app(spec, json, jobs);
            warnings += t.target.count;
            type_errors += t.errors;
            print_analyze_target(&t, json);
        }
        let gate = type_errors != 0 || (deny_warnings && warnings != 0);
        std::process::exit(if gate { 1 } else { 0 });
    }

    if smoke {
        // CI gate: clean apps must lint clean; the six historical error
        // versions must yield exactly six diagnostics with their
        // expected codes.
        let mut failures = 0usize;
        for spec in all_apps() {
            let t = lint_app(&spec, json, CheckPolicy::Enforce, jobs);
            if t.count != 0 {
                eprintln!(
                    "SMOKE FAIL: {} expected 0 diagnostics, got {}",
                    t.label, t.count
                );
                failures += 1;
            }
            print_target(&t, json);
        }
        let mut total = 0usize;
        for (t, v) in lint_errors(json, jobs).iter().zip(error_versions()) {
            total += t.count;
            if t.count != 1 || t.codes[0] != v.expected_code {
                eprintln!(
                    "SMOKE FAIL: {} expected 1 diagnostic with {}, got {} {:?}",
                    t.label, v.expected_code, t.count, t.codes
                );
                failures += 1;
            }
            print_target(t, json);
        }
        if total != 6 {
            eprintln!("SMOKE FAIL: expected exactly 6 error-version diagnostics, got {total}");
            failures += 1;
        }
        if failures > 0 {
            eprintln!("hb_lint --smoke: {failures} failure(s)");
            std::process::exit(1);
        }
        println!("hb_lint --smoke: clean apps lint clean; all 6 historical errors caught eagerly");
        return;
    }

    if errors {
        // The error versions are *expected* to blame: success means each
        // yields exactly one finding with its documented code.
        let mut mismatches = 0usize;
        for (t, v) in lint_errors(json, jobs).iter().zip(error_versions()) {
            if t.count != 1 || t.codes[0] != v.expected_code {
                eprintln!(
                    "{} expected 1 diagnostic with {}, got {} {:?}",
                    t.label, v.expected_code, t.count, t.codes
                );
                mismatches += 1;
            }
            print_target(t, json);
        }
        std::process::exit(if mismatches == 0 { 0 } else { 1 });
    }
    let specs = select_specs(&names);
    let mut findings = 0usize;
    for spec in &specs {
        let t = lint_app(spec, json, policy, jobs);
        findings += t.count;
        print_target(&t, json);
    }
    // Shadow observes without gating: findings are reported, exit stays 0.
    let gate = findings != 0 && policy != CheckPolicy::Shadow;
    std::process::exit(if gate { 1 } else { 0 });
}

/// Resolves app-name filters to specs; an unmatched filter exits 2.
fn select_specs(names: &[String]) -> Vec<AppSpec> {
    let specs: Vec<AppSpec> = all_apps()
        .into_iter()
        .filter(|s| names.is_empty() || names.iter().any(|n| n.eq_ignore_ascii_case(s.name)))
        .collect();
    if specs.is_empty() {
        eprintln!("no app matches {names:?} (known: Talks, Boxroom, Pubs, Rolify, CCT, Countries)");
        std::process::exit(2);
    }
    specs
}

/// The `--infer --smoke` CI gate: on each of the six subject apps,
/// inference must (a) leave the program at zero type errors before *and*
/// after adoption, (b) adopt at least one verified signature, pushing the
/// unannotated edge count strictly below the pre-inference baseline, and
/// (c) produce byte-identical output serially and under `--jobs`.
fn infer_smoke_gate(json: bool, jobs: usize) {
    let mut failures = 0usize;
    for spec in all_apps() {
        let serial = infer_app(&spec, json, 1);
        if serial.errors_before != 0 || serial.errors_after != 0 {
            eprintln!(
                "INFER SMOKE FAIL: {} expected 0 type errors, got {} before / {} after adoption",
                serial.target.label, serial.errors_before, serial.errors_after
            );
            failures += 1;
        }
        if serial.adopted.is_empty() {
            eprintln!(
                "INFER SMOKE FAIL: {} adopted no signatures",
                serial.target.label
            );
            failures += 1;
        }
        if serial.after.unannotated_edges >= serial.before.unannotated_edges {
            eprintln!(
                "INFER SMOKE FAIL: {} unannotated edges did not decrease ({} -> {})",
                serial.target.label,
                serial.before.unannotated_edges,
                serial.after.unannotated_edges
            );
            failures += 1;
        }
        let par_jobs = if jobs > 1 { jobs } else { 4 };
        let parallel = infer_app(&spec, json, par_jobs);
        if serial.target.diagnostics != parallel.target.diagnostics
            || serial.adopted != parallel.adopted
            || serial.after != parallel.after
        {
            eprintln!(
                "INFER SMOKE FAIL: {} serial and --jobs {} outputs differ",
                serial.target.label, par_jobs
            );
            failures += 1;
        }
        print_infer_target(&serial, json, true);
    }
    for case in infer_cases() {
        let (_, report) = infer_case(&case);
        let adopted: Vec<&str> = report.adopted.iter().map(|(_, l)| l.as_str()).collect();
        if adopted != case.expect_adopted || report.rejected != case.expect_rejected {
            eprintln!(
                "INFER SMOKE FAIL: corpus case {} expected {:?} adopted / {} refuted, \
                 got {adopted:?} / {}",
                case.name, case.expect_adopted, case.expect_rejected, report.rejected
            );
            failures += 1;
        } else {
            println!(
                "infer-corpus:{} — {} adopted, {} refuted",
                case.name,
                adopted.len(),
                report.rejected
            );
        }
    }
    if failures > 0 {
        eprintln!("hb_lint --infer --smoke: {failures} failure(s)");
        std::process::exit(1);
    }
    println!(
        "hb_lint --infer --smoke: six apps adopt verified signatures at zero errors; \
         unannotated residue strictly decreased; serial == parallel; \
         corpus behaviors exact"
    );
}

/// The `--analyze --smoke` CI gate: the six subject apps must analyze
/// with zero type errors and byte-identical serial/parallel warning
/// sets, and every seeded-defect corpus case must be caught by its
/// exact code.
fn analyze_smoke_gate(json: bool, jobs: usize) {
    let mut failures = 0usize;
    for spec in all_apps() {
        let serial = analyze_app(&spec, json, 1);
        if serial.errors != 0 {
            eprintln!(
                "ANALYZE SMOKE FAIL: {} expected 0 type errors, got {}",
                serial.target.label, serial.errors
            );
            failures += 1;
        }
        let par_jobs = if jobs > 1 { jobs } else { 4 };
        let parallel = analyze_app(&spec, json, par_jobs);
        if serial.target.diagnostics != parallel.target.diagnostics {
            eprintln!(
                "ANALYZE SMOKE FAIL: {} serial and --jobs {} outputs differ",
                serial.target.label, par_jobs
            );
            failures += 1;
        }
        print_analyze_target(&serial, json);
    }
    for case in corpus_cases() {
        let report = analyze_case(&case);
        let hit = report
            .diagnostics
            .iter()
            .any(|d| d.code.to_string() == case.expected_code);
        if !hit {
            let codes: Vec<String> = report
                .diagnostics
                .iter()
                .map(|d| d.code.to_string())
                .collect();
            eprintln!(
                "ANALYZE SMOKE FAIL: corpus case {} expected {}, got {:?}",
                case.name, case.expected_code, codes
            );
            failures += 1;
        } else {
            println!("corpus:{} caught by {}", case.name, case.expected_code);
        }
    }
    if failures > 0 {
        eprintln!("hb_lint --analyze --smoke: {failures} failure(s)");
        std::process::exit(1);
    }
    println!(
        "hb_lint --analyze --smoke: six apps analyze clean; serial == parallel; \
         all corpus defects caught by exact code"
    );
}
