//! `hb_lint` — the CI-linter workload: eager whole-program type checking
//! over the bundled subject apps, built on `Hummingbird::check_all`.
//!
//! Where the engine's normal mode checks a method just in time at its
//! first call, `hb_lint` walks *every* annotated, checkable method and
//! checks it immediately — no request required — and reports the failures
//! as structured `TypeDiagnostic`s with stable `HBxxxx` codes, blame
//! targets and labeled spans.
//!
//! ```text
//! hb_lint [--json] [--errors] [--smoke] [--policy P] [--jobs N] [APP ...]
//!
//!   (default)   lint the six clean subject apps (expected: 0 findings)
//!   APP ...     lint only the named apps (Talks, Boxroom, Pubs, Rolify,
//!               CCT, Countries)
//!   --errors    lint the six historical Talks error versions instead
//!               (expected: exactly one finding each)
//!   --json      emit one JSON object per target on stdout
//!   --jobs N    fan the whole-program check across N scheduler workers
//!               (`Hummingbird::check_all_parallel`). Output is
//!               byte-identical to the serial path — diagnostics are
//!               sorted by (file, span, code) on both — so every mode,
//!               including --smoke's gates, composes with it.
//!   --policy P  lint the APP targets under a global check policy
//!               (enforce/shadow/deferred/off). Shadow reports findings
//!               but always exits 0 — the scriptable canary run that
//!               observes without gating; off skips every check (0
//!               findings by construction). Incompatible with
//!               --errors/--smoke, whose exactly-one-finding semantics
//!               presume Enforce: the combination exits 2 rather than
//!               silently ignoring the flag.
//!   --smoke     CI gate: assert the clean apps lint at zero diagnostics
//!               AND the six error versions yield exactly six diagnostics
//!               with their expected codes; exit 1 on any mismatch
//! ```
//!
//! Exit status: 0 when every target matched expectations (no findings for
//! clean targets, or any findings under `--policy shadow`), 1 otherwise —
//! so the bin gates CI directly.

use hb_apps::talks_history::{error_versions, lint_error_version_with_jobs};
use hb_apps::{all_apps, build_app_with, AppSpec};
use hummingbird::{CheckPolicy, Hummingbird, Mode, TypeDiagnostic};

struct LintTarget {
    /// "app:Talks" or "error-version:1/8/12-4".
    label: String,
    diagnostics: Vec<String>, // pre-rendered (text or JSON)
    count: usize,
    codes: Vec<String>,
}

fn lint_app(spec: &AppSpec, json: bool, policy: CheckPolicy, jobs: usize) -> LintTarget {
    let builder = Hummingbird::builder().mode(Mode::Full).check_policy(policy);
    let mut hb = build_app_with(spec, builder);
    let diags: Vec<TypeDiagnostic> = hb.check_all_parallel(jobs);
    let map = hb.source_map();
    LintTarget {
        label: format!("app:{}", spec.name),
        count: diags.len(),
        codes: diags.iter().map(|d| d.code.to_string()).collect(),
        diagnostics: diags
            .iter()
            .map(|d| if json { d.to_json(map) } else { d.render(map) })
            .collect(),
    }
}

fn lint_errors(json: bool, jobs: usize) -> Vec<LintTarget> {
    error_versions()
        .iter()
        .map(|v| {
            let diags = lint_error_version_with_jobs(v, jobs);
            LintTarget {
                label: format!("error-version:{}", v.version),
                count: diags.len(),
                codes: diags
                    .iter()
                    .map(|d| d.diagnostic.code.to_string())
                    .collect(),
                diagnostics: diags
                    .iter()
                    .map(|d| {
                        if json {
                            d.json.clone()
                        } else {
                            d.rendered.clone()
                        }
                    })
                    .collect(),
            }
        })
        .collect()
}

fn print_target(t: &LintTarget, json: bool) {
    if json {
        let diags = t.diagnostics.join(",");
        println!(
            "{{\"target\":\"{}\",\"count\":{},\"diagnostics\":[{diags}]}}",
            t.label, t.count
        );
    } else {
        println!("== {} — {} diagnostic(s)", t.label, t.count);
        for d in &t.diagnostics {
            for line in d.lines() {
                println!("   {line}");
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let errors = args.iter().any(|a| a == "--errors");
    let smoke = args.iter().any(|a| a == "--smoke");
    let policy = match args.iter().position(|a| a == "--policy") {
        Some(i) => {
            let name = args.get(i + 1).map(String::as_str).unwrap_or("");
            CheckPolicy::parse(name).unwrap_or_else(|| {
                eprintln!("--policy: expected enforce/shadow/deferred/off, got {name:?}");
                std::process::exit(2);
            })
        }
        None => CheckPolicy::Enforce,
    };
    let jobs = match args.iter().position(|a| a == "--jobs") {
        Some(i) => {
            let arg = args.get(i + 1).map(String::as_str).unwrap_or("");
            arg.parse::<usize>().unwrap_or_else(|_| {
                eprintln!("--jobs: expected a worker count, got {arg:?}");
                std::process::exit(2);
            })
        }
        None => 1,
    };
    if (errors || smoke) && policy != CheckPolicy::Enforce {
        eprintln!(
            "--policy {policy} cannot be combined with --errors/--smoke \
             (their expected-finding gates presume enforce)"
        );
        std::process::exit(2);
    }
    let names: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && !matches!(args.get(i.wrapping_sub(1)),
                             Some(prev) if prev == "--policy" || prev == "--jobs")
        })
        .map(|(_, a)| a)
        .collect();

    if smoke {
        // CI gate: clean apps must lint clean; the six historical error
        // versions must yield exactly six diagnostics with their
        // expected codes.
        let mut failures = 0usize;
        for spec in all_apps() {
            let t = lint_app(&spec, json, CheckPolicy::Enforce, jobs);
            if t.count != 0 {
                eprintln!(
                    "SMOKE FAIL: {} expected 0 diagnostics, got {}",
                    t.label, t.count
                );
                failures += 1;
            }
            print_target(&t, json);
        }
        let mut total = 0usize;
        for (t, v) in lint_errors(json, jobs).iter().zip(error_versions()) {
            total += t.count;
            if t.count != 1 || t.codes[0] != v.expected_code {
                eprintln!(
                    "SMOKE FAIL: {} expected 1 diagnostic with {}, got {} {:?}",
                    t.label, v.expected_code, t.count, t.codes
                );
                failures += 1;
            }
            print_target(t, json);
        }
        if total != 6 {
            eprintln!("SMOKE FAIL: expected exactly 6 error-version diagnostics, got {total}");
            failures += 1;
        }
        if failures > 0 {
            eprintln!("hb_lint --smoke: {failures} failure(s)");
            std::process::exit(1);
        }
        println!("hb_lint --smoke: clean apps lint clean; all 6 historical errors caught eagerly");
        return;
    }

    if errors {
        // The error versions are *expected* to blame: success means each
        // yields exactly one finding with its documented code.
        let mut mismatches = 0usize;
        for (t, v) in lint_errors(json, jobs).iter().zip(error_versions()) {
            if t.count != 1 || t.codes[0] != v.expected_code {
                eprintln!(
                    "{} expected 1 diagnostic with {}, got {} {:?}",
                    t.label, v.expected_code, t.count, t.codes
                );
                mismatches += 1;
            }
            print_target(t, json);
        }
        std::process::exit(if mismatches == 0 { 0 } else { 1 });
    }
    let specs: Vec<AppSpec> = all_apps()
        .into_iter()
        .filter(|s| names.is_empty() || names.iter().any(|n| n.eq_ignore_ascii_case(s.name)))
        .collect();
    if specs.is_empty() {
        eprintln!("no app matches {names:?} (known: Talks, Boxroom, Pubs, Rolify, CCT, Countries)");
        std::process::exit(2);
    }
    let mut findings = 0usize;
    for spec in &specs {
        let t = lint_app(spec, json, policy, jobs);
        findings += t.count;
        print_target(&t, json);
    }
    // Shadow observes without gating: findings are reported, exit stays 0.
    let gate = findings != 0 && policy != CheckPolicy::Shadow;
    std::process::exit(if gate { 1 } else { 0 });
}
