//! Multi-tenant scaling probe: T tenant threads × the six subject apps
//! against one process-wide shared derivation tier.
//!
//! Each tenant is an independent interpreter stack (six `Hummingbird`
//! instances, one per app) on its own OS thread; all tenants share one
//! `SharedCache`. The probe records, per fleet size T:
//!
//! * wall time for the whole fleet and per-tenant build/serve splits,
//! * fleet throughput (tenant-boots per second) and its speedup over the
//!   T=1 baseline,
//! * the warm-hit rate for tenants 2..N — the fraction of their
//!   first-call checks answered by adopting another tenant's derivation
//!   instead of running `check_sig`.
//!
//! Prints JSON (BENCH_multitenant.json is this output committed).
//! `--smoke` runs a reduced fleet as a CI regression gate: it asserts
//! that later tenants warm-start from the shared tier.
//!
//! # Snapshot modes (cross-process warm boot)
//!
//! * `--snapshot-smoke` — CI gate: boot one cold tenant, serialize the
//!   shared tier ([`hummingbird::CacheSnapshot`]), then spawn a **fresh
//!   process** (this same binary with `--snapshot-load`) that rebuilds
//!   the tier from the file and boots the six apps. The child asserts
//!   ≥90% of its first calls resolve by adoption — no `check_sig` — and
//!   the parent propagates its exit status.
//! * `--snapshot-bench` — same shape, best-of-R, printing the cold-vs-
//!   warm-boot comparison recorded in `BENCH_snapshot.json`.
//! * `--snapshot-load <path>` — internal child mode.

use hb_apps::{fleet_snapshot, run_tenant, TenantRun};
use hummingbird::{CacheSnapshot, SharedCache};
use std::sync::Arc;
use std::time::Instant;

struct FleetResult {
    tenants: usize,
    wall_ns: u64,
    runs: Vec<TenantRun>,
}

impl FleetResult {
    /// Tenant-boots (build + first-request storm + workload) per second of
    /// wall time. On a many-core host this scales with parallelism; it is
    /// reported for context.
    fn boot_throughput(&self) -> f64 {
        self.tenants as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// First-call check throughput: first calls resolved per second of
    /// check-path time (derivation or adoption), summed over the fleet.
    /// This is the quantity the shared tier targets — the per-tenant
    /// check storm is the only work that does *not* replicate with
    /// tenant count — and it is parallelism-independent, so the probe
    /// measures amortisation, not core count.
    fn first_call_throughput(&self) -> f64 {
        let calls: u64 = self.runs.iter().map(|r| r.first_calls()).sum();
        let ns: u64 = self.runs.iter().map(|r| r.first_call_ns()).sum();
        if ns == 0 {
            return 0.0;
        }
        calls as f64 / (ns as f64 / 1e9)
    }

    /// Mean warm-hit rate over tenants 2..N (1.0 = every first call
    /// adopted a shared derivation; undefined for T=1 fleets).
    fn warm_hit_rate(&self) -> Option<f64> {
        let later: Vec<&TenantRun> = self.runs.iter().filter(|r| r.tenant > 0).collect();
        if later.is_empty() {
            return None;
        }
        Some(later.iter().map(|r| r.warm_hit_rate()).sum::<f64>() / later.len() as f64)
    }
}

/// Runs a fleet of `t` tenants against one fresh shared tier. Tenant 0
/// starts first; later tenants boot staggered (a rolling deploy), which is
/// both the realistic arrival pattern and what lets a 1-CPU host still
/// demonstrate amortisation rather than timeslice thrash.
fn run_fleet(t: usize, iters: usize, stagger_ms: u64) -> FleetResult {
    let shared = Arc::new(SharedCache::new());
    let start = Instant::now();
    let handles: Vec<_> = (0..t)
        .map(|i| {
            let shared = shared.clone();
            std::thread::spawn(move || {
                if i > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(stagger_ms * i as u64));
                }
                run_tenant(i, &shared, iters)
            })
        })
        .collect();
    let mut runs: Vec<TenantRun> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let wall_ns = start.elapsed().as_nanos() as u64;
    runs.sort_by_key(|r| r.tenant);
    FleetResult {
        tenants: t,
        wall_ns,
        runs,
    }
}

fn json_runs(runs: &[TenantRun]) -> String {
    let items: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{{\"tenant\": {}, \"build_ms\": {:.1}, \"serve_ms\": {:.1}, \
                 \"checks_performed\": {}, \"shared_hits\": {}, \"cache_hits\": {}, \
                 \"check_ms\": {:.2}, \"adopt_ms\": {:.2}, \"warm_hit_rate\": {:.4}, \
                 \"sched_tasks_enqueued\": {}, \"sched_tasks_completed\": {}, \
                 \"sched_tasks_stale\": {}, \"deferred_admissions\": {}, \
                 \"bytecode_compiled\": {}, \"fast_entries_patched\": {}, \
                 \"deopts\": {}}}",
                r.tenant,
                r.build_ns as f64 / 1e6,
                r.serve_ns as f64 / 1e6,
                r.checks_performed,
                r.shared_hits,
                r.cache_hits,
                r.check_ns as f64 / 1e6,
                r.shared_adopt_ns as f64 / 1e6,
                r.warm_hit_rate(),
                r.sched_tasks_enqueued,
                r.sched_tasks_completed,
                r.sched_tasks_stale,
                r.deferred_admissions,
                r.bytecode_compiled,
                r.fast_entries_patched,
                r.deopts,
            )
        })
        .collect();
    format!("[{}]", items.join(", "))
}

fn tenant_json(label: &str, r: &TenantRun, snapshot_bytes: Option<usize>) -> String {
    let extra = snapshot_bytes
        .map(|b| format!(", \"snapshot_bytes\": {b}"))
        .unwrap_or_default();
    format!(
        "{{\"label\": \"{label}\", \"build_ms\": {:.1}, \"serve_ms\": {:.1}, \
         \"first_calls\": {}, \"checks_performed\": {}, \"shared_hits\": {}, \
         \"check_ms\": {:.2}, \"adopt_ms\": {:.2}, \
         \"first_call_throughput_per_sec\": {:.0}, \"warm_hit_rate\": {:.4}{extra}}}",
        r.build_ns as f64 / 1e6,
        r.serve_ns as f64 / 1e6,
        r.first_calls(),
        r.checks_performed,
        r.shared_hits,
        r.check_ns as f64 / 1e6,
        r.shared_adopt_ns as f64 / 1e6,
        if r.first_call_ns() == 0 {
            0.0
        } else {
            r.first_calls() as f64 / (r.first_call_ns() as f64 / 1e9)
        },
        r.warm_hit_rate(),
    )
}

/// Child mode: rebuild the shared tier from a snapshot file in THIS fresh
/// process (fresh interner, fresh source maps — nothing shared with the
/// writer but the bytes) and boot the six apps against it.
fn snapshot_load_main(path: &str) -> ! {
    let bytes = std::fs::read(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let snap = CacheSnapshot::from_bytes(&bytes).unwrap_or_else(|e| panic!("parse {path}: {e}"));
    let shared = Arc::new(SharedCache::new());
    let loaded = shared.load_snapshot(&snap).expect("snapshot must load");
    let run = run_tenant(0, &shared, 1);
    println!(
        "{{\"loaded_derivations\": {loaded}, \"boot\": {}}}",
        tenant_json("boot-from-snapshot", &run, Some(bytes.len()))
    );
    let rate = run.warm_hit_rate();
    assert!(
        rate >= 0.9,
        "boot-from-snapshot must resolve >= 90% of first calls by adoption \
         (got {rate:.3}: {} adopted, {} re-derived)",
        run.shared_hits,
        run.checks_performed
    );
    std::process::exit(0);
}

/// Writes the snapshot of one cold boot and re-runs this binary in a
/// fresh process against it. Returns the child's parsed stdout.
fn spawn_warm_boot(snapshot: &CacheSnapshot) -> String {
    let path = std::env::temp_dir().join(format!("hb_snapshot_{}.bin", std::process::id()));
    std::fs::write(&path, snapshot.to_bytes()).expect("write snapshot");
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::process::Command::new(exe)
        .arg("--snapshot-load")
        .arg(&path)
        .output()
        .expect("spawn warm-boot child");
    let _ = std::fs::remove_file(&path);
    if !out.status.success() {
        eprint!("{}", String::from_utf8_lossy(&out.stderr));
        eprintln!("snapshot warm-boot child failed ({})", out.status);
        std::process::exit(1);
    }
    String::from_utf8_lossy(&out.stdout).trim().to_string()
}

fn snapshot_main(bench: bool) -> ! {
    // Warm-up (discarded): fault in the binary and app sources.
    let _ = fleet_snapshot(1);
    let reps = if bench { 3 } else { 1 };
    let (snapshot, cold) = (0..reps)
        .map(|_| fleet_snapshot(1))
        .max_by(|a, b| {
            let thr = |r: &TenantRun| {
                if r.first_call_ns() == 0 {
                    0.0
                } else {
                    r.first_calls() as f64 / r.first_call_ns() as f64
                }
            };
            thr(&a.1).total_cmp(&thr(&b.1))
        })
        .unwrap();
    let child_json = spawn_warm_boot(&snapshot);
    println!(
        "{{\"mode\": \"{}\", \"entries\": {}, \"snapshot_bytes\": {}, \
         \"cold_boot\": {}, \"warm_boot\": {child_json}}}",
        if bench {
            "snapshot-bench"
        } else {
            "snapshot-smoke"
        },
        snapshot.entry_count(),
        snapshot.to_bytes().len(),
        tenant_json("cold-boot", &cold, None),
    );
    eprintln!("snapshot warm boot OK: fresh process adopted >= 90% of first calls from disk");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--snapshot-load") {
        let path = args.get(i + 1).expect("--snapshot-load <path>");
        snapshot_load_main(path);
    }
    if args.iter().any(|a| a == "--snapshot-smoke") {
        snapshot_main(false);
    }
    if args.iter().any(|a| a == "--snapshot-bench") {
        snapshot_main(true);
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let iters: usize = args
        .iter()
        .rfind(|a| !a.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 1 } else { 2 });
    let fleet_sizes: Vec<usize> = if smoke { vec![1, 2] } else { vec![1, 2, 4, 8] };
    let stagger_ms: u64 = 30;

    // Warm-up fleet (discarded): faults in the binary, the allocator and
    // the six apps' sources so the measured T=1 baseline isn't inflated
    // by first-run effects.
    let _ = run_fleet(1, iters, stagger_ms);

    // Best-of-R per fleet size: scheduling noise on small hosts swings
    // individual runs; the best run is the reproducible capability.
    let reps = if smoke { 2 } else { 3 };
    let mut fleets = Vec::new();
    for &t in &fleet_sizes {
        let best = (0..reps)
            .map(|_| run_fleet(t, iters, stagger_ms))
            .max_by(|a, b| {
                a.first_call_throughput()
                    .total_cmp(&b.first_call_throughput())
            })
            .unwrap();
        fleets.push(best);
    }
    let boot_base = fleets[0].boot_throughput();
    let fc_base = fleets[0].first_call_throughput();

    let fleet_json: Vec<String> = fleets
        .iter()
        .map(|f| {
            format!(
                "{{\"tenants\": {}, \"wall_ms\": {:.1}, \
                 \"boot_throughput_tenants_per_sec\": {:.3}, \"boot_speedup_vs_t1\": {:.2}, \
                 \"first_call_throughput_per_sec\": {:.0}, \"first_call_speedup_vs_t1\": {:.2}, \
                 \"warm_hit_rate_tenants_2plus\": {}, \"runs\": {}}}",
                f.tenants,
                f.wall_ns as f64 / 1e6,
                f.boot_throughput(),
                f.boot_throughput() / boot_base,
                f.first_call_throughput(),
                f.first_call_throughput() / fc_base,
                f.warm_hit_rate()
                    .map_or("null".to_string(), |r| format!("{r:.4}")),
                json_runs(&f.runs)
            )
        })
        .collect();
    println!(
        "{{\"iters_per_app\": {iters}, \"stagger_ms\": {stagger_ms}, \"smoke\": {smoke}, \
         \"fleets\": [{}]}}",
        fleet_json.join(", ")
    );

    // Regression gates (CI runs --smoke): tenant 2 must warm-start.
    for f in &fleets {
        if let Some(rate) = f.warm_hit_rate() {
            assert!(
                rate >= 0.9,
                "tenants 2..N must get >= 90% of first-call checks from the shared tier \
                 (fleet of {}: {rate:.3})",
                f.tenants
            );
        }
    }
}
