//! Multi-tenant scaling probe: T tenant threads × the six subject apps
//! against one process-wide shared derivation tier.
//!
//! Each tenant is an independent interpreter stack (six `Hummingbird`
//! instances, one per app) on its own OS thread; all tenants share one
//! `SharedCache`. The probe records, per fleet size T:
//!
//! * wall time for the whole fleet and per-tenant build/serve splits,
//! * fleet throughput (tenant-boots per second) and its speedup over the
//!   T=1 baseline,
//! * the warm-hit rate for tenants 2..N — the fraction of their
//!   first-call checks answered by adopting another tenant's derivation
//!   instead of running `check_sig`.
//!
//! Prints JSON (BENCH_multitenant.json is this output committed).
//! `--smoke` runs a reduced fleet as a CI regression gate: it asserts
//! that later tenants warm-start from the shared tier.
//!
//! # Snapshot modes (cross-process warm boot)
//!
//! * `--snapshot-smoke` — CI gate: boot one cold tenant, serialize the
//!   shared tier ([`hummingbird::CacheSnapshot`]), then spawn a **fresh
//!   process** (this same binary with `--snapshot-load`) that rebuilds
//!   the tier from the file and boots the six apps. The child asserts
//!   ≥90% of its first calls resolve by adoption — no `check_sig` — and
//!   the parent propagates its exit status.
//! * `--snapshot-bench` — same shape, best-of-R, printing the cold-vs-
//!   warm-boot comparison recorded in `BENCH_snapshot.json`.
//! * `--snapshot-load <path>` — internal child mode.
//!
//! # Fleet modes (daemon-served warm boot, `hb-fleetd`)
//!
//! * `--fleet-smoke` — CI gate: start an in-process `hb-fleetd` server,
//!   warm it from one cold fleet-attached tenant (six apps publish every
//!   derivation over the socket), then spawn a **fresh process** (this
//!   binary with `--fleet-boot`) that boots over the UDS and asserts
//!   100% first-call adoption with zero `check_sig`. A second fetch
//!   asserts the steady-state delta transfers zero entries, and a
//!   one-method redefinition asserts the delta transfers only the
//!   affected derivations.
//! * `--fleet-bench` — same shape plus the cold vs file-snapshot vs
//!   daemon-fetch vs delta-fetch comparison recorded in
//!   `BENCH_fleet.json`.
//! * `--fleet-boot <socket>` — internal child mode.

use hb_apps::{all_apps, fleet_snapshot, run_tenant, run_tenant_fleet, run_workload, TenantRun};
use hb_fleetd::{DaemonConfig, FleetDaemon, FleetServer};
use hummingbird::{
    validate_json, CacheSnapshot, FleetClient, FleetWatermark, Hummingbird, MethodKey, Mode,
    ObsLevel, SharedCache,
};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

struct FleetResult {
    tenants: usize,
    wall_ns: u64,
    runs: Vec<TenantRun>,
}

impl FleetResult {
    /// Tenant-boots (build + first-request storm + workload) per second of
    /// wall time. On a many-core host this scales with parallelism; it is
    /// reported for context.
    fn boot_throughput(&self) -> f64 {
        self.tenants as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// First-call check throughput: first calls resolved per second of
    /// check-path time (derivation or adoption), summed over the fleet.
    /// This is the quantity the shared tier targets — the per-tenant
    /// check storm is the only work that does *not* replicate with
    /// tenant count — and it is parallelism-independent, so the probe
    /// measures amortisation, not core count.
    fn first_call_throughput(&self) -> f64 {
        let calls: u64 = self.runs.iter().map(|r| r.first_calls()).sum();
        let ns: u64 = self.runs.iter().map(|r| r.first_call_ns()).sum();
        if ns == 0 {
            return 0.0;
        }
        calls as f64 / (ns as f64 / 1e9)
    }

    /// Mean warm-hit rate over tenants 2..N (1.0 = every first call
    /// adopted a shared derivation; undefined for T=1 fleets).
    fn warm_hit_rate(&self) -> Option<f64> {
        let later: Vec<&TenantRun> = self.runs.iter().filter(|r| r.tenant > 0).collect();
        if later.is_empty() {
            return None;
        }
        Some(later.iter().map(|r| r.warm_hit_rate()).sum::<f64>() / later.len() as f64)
    }
}

/// Runs a fleet of `t` tenants against one fresh shared tier. Tenant 0
/// starts first; later tenants boot staggered (a rolling deploy), which is
/// both the realistic arrival pattern and what lets a 1-CPU host still
/// demonstrate amortisation rather than timeslice thrash.
fn run_fleet(t: usize, iters: usize, stagger_ms: u64) -> FleetResult {
    let shared = Arc::new(SharedCache::new());
    let start = Instant::now();
    let handles: Vec<_> = (0..t)
        .map(|i| {
            let shared = shared.clone();
            std::thread::spawn(move || {
                if i > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(stagger_ms * i as u64));
                }
                run_tenant(i, &shared, iters)
            })
        })
        .collect();
    let mut runs: Vec<TenantRun> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let wall_ns = start.elapsed().as_nanos() as u64;
    runs.sort_by_key(|r| r.tenant);
    FleetResult {
        tenants: t,
        wall_ns,
        runs,
    }
}

fn json_runs(runs: &[TenantRun]) -> String {
    let items: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{{\"tenant\": {}, \"build_ms\": {:.1}, \"serve_ms\": {:.1}, \
                 \"checks_performed\": {}, \"shared_hits\": {}, \"cache_hits\": {}, \
                 \"check_ms\": {:.2}, \"adopt_ms\": {:.2}, \"warm_hit_rate\": {:.4}, \
                 \"sched_tasks_enqueued\": {}, \"sched_tasks_completed\": {}, \
                 \"sched_tasks_stale\": {}, \"deferred_admissions\": {}, \
                 \"bytecode_compiled\": {}, \"fast_entries_patched\": {}, \
                 \"deopts\": {}}}",
                r.tenant,
                r.build_ns as f64 / 1e6,
                r.serve_ns as f64 / 1e6,
                r.checks_performed,
                r.shared_hits,
                r.cache_hits,
                r.check_ns as f64 / 1e6,
                r.shared_adopt_ns as f64 / 1e6,
                r.warm_hit_rate(),
                r.sched_tasks_enqueued,
                r.sched_tasks_completed,
                r.sched_tasks_stale,
                r.deferred_admissions,
                r.bytecode_compiled,
                r.fast_entries_patched,
                r.deopts,
            )
        })
        .collect();
    format!("[{}]", items.join(", "))
}

fn tenant_json(label: &str, r: &TenantRun, snapshot_bytes: Option<usize>) -> String {
    let extra = snapshot_bytes
        .map(|b| format!(", \"snapshot_bytes\": {b}"))
        .unwrap_or_default();
    format!(
        "{{\"label\": \"{label}\", \"build_ms\": {:.1}, \"serve_ms\": {:.1}, \
         \"first_calls\": {}, \"checks_performed\": {}, \"shared_hits\": {}, \
         \"check_ms\": {:.2}, \"adopt_ms\": {:.2}, \
         \"first_call_throughput_per_sec\": {:.0}, \"warm_hit_rate\": {:.4}{extra}}}",
        r.build_ns as f64 / 1e6,
        r.serve_ns as f64 / 1e6,
        r.first_calls(),
        r.checks_performed,
        r.shared_hits,
        r.check_ns as f64 / 1e6,
        r.shared_adopt_ns as f64 / 1e6,
        if r.first_call_ns() == 0 {
            0.0
        } else {
            r.first_calls() as f64 / (r.first_call_ns() as f64 / 1e9)
        },
        r.warm_hit_rate(),
    )
}

/// Child mode: rebuild the shared tier from a snapshot file in THIS fresh
/// process (fresh interner, fresh source maps — nothing shared with the
/// writer but the bytes) and boot the six apps against it.
fn snapshot_load_main(path: &str) -> ! {
    let bytes = std::fs::read(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let snap = CacheSnapshot::from_bytes(&bytes).unwrap_or_else(|e| panic!("parse {path}: {e}"));
    let shared = Arc::new(SharedCache::new());
    let loaded = shared.load_snapshot(&snap).expect("snapshot must load");
    let run = run_tenant(0, &shared, 1);
    println!(
        "{{\"schema_version\": 1, \"loaded_derivations\": {loaded}, \"boot\": {}}}",
        tenant_json("boot-from-snapshot", &run, Some(bytes.len()))
    );
    let rate = run.warm_hit_rate();
    assert!(
        rate >= 0.9,
        "boot-from-snapshot must resolve >= 90% of first calls by adoption \
         (got {rate:.3}: {} adopted, {} re-derived)",
        run.shared_hits,
        run.checks_performed
    );
    std::process::exit(0);
}

/// Writes the snapshot of one cold boot and re-runs this binary in a
/// fresh process against it. Returns the child's parsed stdout.
fn spawn_warm_boot(snapshot: &CacheSnapshot) -> String {
    let path = std::env::temp_dir().join(format!("hb_snapshot_{}.bin", std::process::id()));
    std::fs::write(&path, snapshot.to_bytes()).expect("write snapshot");
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::process::Command::new(exe)
        .arg("--snapshot-load")
        .arg(&path)
        .output()
        .expect("spawn warm-boot child");
    let _ = std::fs::remove_file(&path);
    if !out.status.success() {
        eprint!("{}", String::from_utf8_lossy(&out.stderr));
        eprintln!("snapshot warm-boot child failed ({})", out.status);
        std::process::exit(1);
    }
    String::from_utf8_lossy(&out.stdout).trim().to_string()
}

fn snapshot_main(bench: bool) -> ! {
    let host_cores = host_cores_banner();
    // Warm-up (discarded): fault in the binary and app sources.
    let _ = fleet_snapshot(1);
    let reps = if bench { 3 } else { 1 };
    let (snapshot, cold) = (0..reps)
        .map(|_| fleet_snapshot(1))
        .max_by(|a, b| {
            let thr = |r: &TenantRun| {
                if r.first_call_ns() == 0 {
                    0.0
                } else {
                    r.first_calls() as f64 / r.first_call_ns() as f64
                }
            };
            thr(&a.1).total_cmp(&thr(&b.1))
        })
        .unwrap();
    let child_json = spawn_warm_boot(&snapshot);
    println!(
        "{{\"mode\": \"{}\", \"schema_version\": 1, \"host_cores\": {host_cores}, \"entries\": {}, \
         \"snapshot_bytes\": {}, \"cold_boot\": {}, \"warm_boot\": {child_json}}}",
        if bench {
            "snapshot-bench"
        } else {
            "snapshot-smoke"
        },
        snapshot.entry_count(),
        snapshot.to_bytes().len(),
        tenant_json("cold-boot", &cold, None),
    );
    eprintln!("snapshot warm boot OK: fresh process adopted >= 90% of first calls from disk");
    std::process::exit(0);
}

/// This probe's clause for the shared [`hb_bench::host_cores_banner`].
const SMALL_HOST_CAVEAT: &str = "Fleet/scaling columns on this host \
     measure shared-tier amortisation under timeslicing, not parallel speedup; \
     compare throughput ratios, not wall times.";

fn host_cores_banner() -> usize {
    hb_bench::host_cores_banner(SMALL_HOST_CAVEAT)
}

/// Minimal Prometheus text-format parser for the smoke gate: every
/// non-comment line must be `series value` with a numeric value.
/// Returns the parsed series (bucket lines keyed with their label part).
fn parse_prometheus(text: &str) -> std::collections::HashMap<String, f64> {
    let mut series = std::collections::HashMap::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("unparseable metrics line: {line:?}"));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric value in metrics line: {line:?}"));
        series.insert(name.to_string(), value);
    }
    series
}

/// Observability mode (`--metrics` / `--metrics-smoke`): boot the six
/// apps with full tracing on, serve one workload iteration each, and
/// report the check-duration and first-request latency distributions
/// from both export surfaces (JSON and Prometheus). Smoke mode gates CI:
/// both exports must parse, the required series must be present and
/// non-zero for every app, and the chrome://tracing export must
/// round-trip as valid JSON.
fn metrics_main(smoke: bool) -> ! {
    let host_cores = host_cores_banner();
    let mut apps_json = Vec::new();
    for spec in all_apps() {
        let mut hb = hb_apps::build_app_with(
            &spec,
            Hummingbird::builder()
                .mode(Mode::Full)
                .observability(ObsLevel::Trace),
        );
        run_workload(&spec, &mut hb, 1);
        let obs = hb.engine.obs().expect("observability is on");
        let check = obs.check_duration.summary();
        let first = obs.first_request.summary();
        let trace = hb.trace_json();
        let trace_events = obs.ring_snapshot().len();
        if smoke {
            let json = hb.metrics();
            validate_json(&json).unwrap_or_else(|e| panic!("{}: bad metrics JSON: {e}", spec.name));
            for series in ["hb_check_duration_ns", "hb_first_request_ns"] {
                assert!(
                    json.contains(&format!("\"{series}\"")),
                    "{}: metrics JSON must carry {series}",
                    spec.name
                );
            }
            let prom = parse_prometheus(&hb.metrics_prometheus());
            for series in [
                "hb_checks_observed_total",
                "hb_check_duration_ns_count",
                "hb_first_request_ns_count",
                "hb_engine_checks_performed",
            ] {
                let v = prom
                    .get(series)
                    .unwrap_or_else(|| panic!("{}: missing series {series}", spec.name));
                assert!(*v > 0.0, "{}: series {series} must be non-zero", spec.name);
            }
            validate_json(&trace).unwrap_or_else(|e| panic!("{}: bad trace JSON: {e}", spec.name));
            assert!(
                trace.contains("traceEvents") && trace_events > 0,
                "{}: trace export must carry the recorded events",
                spec.name
            );
        }
        apps_json.push(format!(
            "{{\"app\": \"{}\", \"checks_observed\": {}, \
             \"check_duration_ns\": {{\"count\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}}}, \
             \"first_request_ns\": {{\"count\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}}}, \
             \"trace_events\": {trace_events}}}",
            spec.name,
            obs.checks_observed.get(),
            check.count,
            check.p50,
            check.p99,
            check.max,
            first.count,
            first.p50,
            first.p99,
            first.max,
        ));
    }
    println!(
        "{{\"mode\": \"{}\", \"schema_version\": 1, \"host_cores\": {host_cores}, \
         \"apps\": [{}]}}",
        if smoke { "metrics-smoke" } else { "metrics" },
        apps_json.join(", "),
    );
    if smoke {
        eprintln!(
            "metrics smoke OK: six apps exported parseable Prometheus text, \
             non-zero check-duration and first-request histograms, and valid trace JSON"
        );
    }
    std::process::exit(0);
}

/// The two-method fixture for the redefinition-delta assertion: after
/// `Pair#right` is redefined, only *its* derivation may travel on the
/// next delta fetch — `Pair#left` stays put.
const PAIR_RB: &str = r#"
class Pair
  type :left, "() -> Fixnum", { "check" => true }
  def left
    1
  end
  type :right, "() -> Fixnum", { "check" => true }
  def right
    2
  end
end
"#;

const PAIR_REDEF_RB: &str = r#"
class Pair
  def right
    3
  end
end
"#;

/// Child mode: attach to a live fleet daemon from THIS fresh process
/// (nothing shared with the parent but the socket) and boot the six
/// apps over it. The gate is strict: 100% adoption, zero `check_sig`.
fn fleet_boot_main(socket: &str) -> ! {
    let (run, report) = run_tenant_fleet(0, Path::new(socket), 1);
    let report = report.expect("fleet boot child must stay attached through sync");
    println!(
        "{{\"schema_version\": 1, \"boot\": {}, \"post_boot_sync\": {{\"published\": {}, \
         \"fetched_entries\": {}, \"delta\": {}}}}}",
        tenant_json("boot-from-daemon", &run, None),
        report.published,
        report.fetched_entries,
        report.delta,
    );
    assert_eq!(
        run.checks_performed, 0,
        "daemon warm boot must run zero check_sig ({} adopted)",
        run.shared_hits
    );
    assert_eq!(
        run.warm_hit_rate(),
        1.0,
        "daemon warm boot must adopt 100% of first calls"
    );
    std::process::exit(0);
}

/// Re-runs this binary as a fresh `--fleet-boot` process against a live
/// socket and returns its stdout JSON.
fn spawn_fleet_boot(socket: &Path) -> String {
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::process::Command::new(exe)
        .arg("--fleet-boot")
        .arg(socket)
        .output()
        .expect("spawn fleet-boot child");
    if !out.status.success() {
        eprint!("{}", String::from_utf8_lossy(&out.stderr));
        eprintln!("fleet warm-boot child failed ({})", out.status);
        std::process::exit(1);
    }
    String::from_utf8_lossy(&out.stdout).trim().to_string()
}

fn resp_keys(snapshot_bytes: &[u8]) -> Vec<MethodKey> {
    CacheSnapshot::from_bytes(snapshot_bytes)
        .expect("parse fetched snapshot")
        .entry_versions()
        .expect("entry versions")
        .into_iter()
        .map(|(key, _, _, _)| key)
        .collect()
}

/// After the six-app smoke: publish a two-method world, redefine one
/// method, and assert the next delta carries only the affected family.
/// Returns (delta_entries, delta_tombstones) for the JSON record.
fn redefinition_delta(socket: &Path, client: &mut FleetClient) -> (usize, usize) {
    let mut publisher = Hummingbird::builder().fleet_socket(socket).build();
    assert!(publisher.fleet_attached(), "{:?}", publisher.fleet_error());
    publisher.load_file("pair.rb", PAIR_RB).unwrap();
    publisher.eval("p = Pair.new\np.left\np.right").unwrap();
    let seeded = publisher.fleet_sync().expect("publish Pair world");
    assert!(
        seeded.published >= 2,
        "both Pair methods published: {seeded:?}"
    );

    let before = client.fetch_full().expect("pre-redefinition watermark");
    let watermark = FleetWatermark {
        seq: before.seq,
        epochs: before.epochs,
    };
    let tier_entries = resp_keys(&before.snapshot).len();

    // One method redefinition: `Pair#right` gets a new body.
    publisher.load_file("pair_v2.rb", PAIR_REDEF_RB).unwrap();
    publisher.eval("Pair.new.right").unwrap();
    publisher
        .fleet_sync()
        .expect("publish redefined derivation");

    let delta = client
        .fetch_delta(watermark)
        .expect("post-redefinition delta");
    assert!(delta.delta, "watermark honoured as a delta");
    let keys = resp_keys(&delta.snapshot);
    let right = MethodKey::instance("Pair", "right");
    let left = MethodKey::instance("Pair", "left");
    assert!(
        keys.contains(&right),
        "the redefined method's new derivation travels: {keys:?}"
    );
    assert!(
        !keys.contains(&left),
        "the untouched sibling does NOT travel: {keys:?}"
    );
    assert!(
        keys.len() < tier_entries,
        "delta ({} entries) transfers only the affected derivations, \
         not the {tier_entries}-entry tier",
        keys.len()
    );
    (keys.len(), delta.tombstones.len())
}

fn fleet_main(bench: bool) -> ! {
    let host_cores = host_cores_banner();
    let socket = std::env::temp_dir().join(format!("hb_fleet_{}.sock", std::process::id()));
    let (daemon, warning) = FleetDaemon::new(DaemonConfig::default());
    assert!(warning.is_none(), "{warning:?}");
    let server = FleetServer::bind(daemon.clone(), &socket).expect("bind fleet socket");

    // Warm-up (discarded): fault in the binary and app sources.
    let _ = fleet_snapshot(1);

    // One cold fleet-attached tenant warms the daemon: every derivation
    // its six apps produce is published over the socket.
    let t0 = Instant::now();
    let (cold, cold_report) = run_tenant_fleet(0, &socket, 1);
    let cold_wall_ns = t0.elapsed().as_nanos() as u64;
    let cold_report = cold_report.expect("cold tenant must stay attached");
    assert!(
        cold_report.published >= 1,
        "the cold tenant publishes its check storm: {cold_report:?}"
    );
    let entries = daemon.cache().len();
    assert!(entries >= 1);

    // A genuinely fresh process boots the six apps over the UDS.
    let child_json = spawn_fleet_boot(&socket);

    // Second fetch: the fleet is quiet, so the delta is empty.
    let mut client = FleetClient::connect(&socket).expect("connect probe client");
    let full = client.fetch_full().expect("full fetch");
    let full_bytes = full.snapshot.len();
    let t1 = Instant::now();
    let quiet = client
        .fetch_delta(FleetWatermark {
            seq: full.seq,
            epochs: full.epochs,
        })
        .expect("steady-state delta");
    let delta_fetch_ns = t1.elapsed().as_nanos() as u64;
    assert!(quiet.delta, "current watermark honoured as a delta");
    let quiet_entries = resp_keys(&quiet.snapshot).len();
    assert_eq!(
        quiet_entries, 0,
        "steady-state delta transfers zero entries"
    );

    // Redefine one method; only the affected derivations travel.
    let (redef_entries, redef_tombstones) = redefinition_delta(&socket, &mut client);

    // Bench mode adds the file-snapshot boot lane for the four-way
    // comparison: cold vs file vs daemon vs delta.
    let file_boot_json = if bench {
        let snap = CacheSnapshot::from_bytes(&full.snapshot).expect("parse tier");
        format!(", \"file_boot\": {}", spawn_warm_boot(&snap))
    } else {
        String::new()
    };

    let stats = client.daemon_stats().expect("daemon stats");
    println!(
        "{{\"mode\": \"{}\", \"schema_version\": 1, \"host_cores\": {host_cores}, \"entries\": {entries}, \
         \"snapshot_bytes\": {full_bytes}, \
         \"cold_boot\": {}, \"cold_wall_ms\": {:.1}, \
         \"daemon_boot\": {child_json}{file_boot_json}, \
         \"delta_fetch\": {{\"entries\": {quiet_entries}, \"bytes\": {}, \"wall_ms\": {:.3}}}, \
         \"redefinition_delta\": {{\"entries\": {redef_entries}, \
         \"tombstones\": {redef_tombstones}}}, \
         \"daemon\": {{\"seq\": {}, \"fetches\": {}, \"deltas\": {}, \"publishes\": {}, \
         \"evictions\": {}}}}}",
        if bench { "fleet-bench" } else { "fleet-smoke" },
        tenant_json("cold-boot-publishing", &cold, None),
        cold_wall_ns as f64 / 1e6,
        quiet.snapshot.len(),
        delta_fetch_ns as f64 / 1e6,
        stats.seq,
        stats.fetches,
        stats.deltas,
        stats.publishes,
        stats.evictions,
    );
    drop(server);
    eprintln!(
        "fleet warm boot OK: fresh process adopted 100% of first calls over the socket; \
         steady-state delta carried 0 entries; redefinition delta carried \
         {redef_entries} (tier: {entries})"
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--snapshot-load") {
        let path = args.get(i + 1).expect("--snapshot-load <path>");
        snapshot_load_main(path);
    }
    if let Some(i) = args.iter().position(|a| a == "--fleet-boot") {
        let socket = args.get(i + 1).expect("--fleet-boot <socket>");
        fleet_boot_main(socket);
    }
    if args.iter().any(|a| a == "--snapshot-smoke") {
        snapshot_main(false);
    }
    if args.iter().any(|a| a == "--snapshot-bench") {
        snapshot_main(true);
    }
    if args.iter().any(|a| a == "--fleet-smoke") {
        fleet_main(false);
    }
    if args.iter().any(|a| a == "--fleet-bench") {
        fleet_main(true);
    }
    if args.iter().any(|a| a == "--metrics-smoke") {
        metrics_main(true);
    }
    if args.iter().any(|a| a == "--metrics") {
        metrics_main(false);
    }
    let host_cores = host_cores_banner();
    let smoke = args.iter().any(|a| a == "--smoke");
    let iters: usize = args
        .iter()
        .rfind(|a| !a.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 1 } else { 2 });
    let fleet_sizes: Vec<usize> = if smoke { vec![1, 2] } else { vec![1, 2, 4, 8] };
    let stagger_ms: u64 = 30;

    // Warm-up fleet (discarded): faults in the binary, the allocator and
    // the six apps' sources so the measured T=1 baseline isn't inflated
    // by first-run effects.
    let _ = run_fleet(1, iters, stagger_ms);

    // Best-of-R per fleet size: scheduling noise on small hosts swings
    // individual runs; the best run is the reproducible capability.
    let reps = if smoke { 2 } else { 3 };
    let mut fleets = Vec::new();
    for &t in &fleet_sizes {
        let best = (0..reps)
            .map(|_| run_fleet(t, iters, stagger_ms))
            .max_by(|a, b| {
                a.first_call_throughput()
                    .total_cmp(&b.first_call_throughput())
            })
            .unwrap();
        fleets.push(best);
    }
    let boot_base = fleets[0].boot_throughput();
    let fc_base = fleets[0].first_call_throughput();

    let fleet_json: Vec<String> = fleets
        .iter()
        .map(|f| {
            format!(
                "{{\"tenants\": {}, \"wall_ms\": {:.1}, \
                 \"boot_throughput_tenants_per_sec\": {:.3}, \"boot_speedup_vs_t1\": {:.2}, \
                 \"first_call_throughput_per_sec\": {:.0}, \"first_call_speedup_vs_t1\": {:.2}, \
                 \"warm_hit_rate_tenants_2plus\": {}, \"runs\": {}}}",
                f.tenants,
                f.wall_ns as f64 / 1e6,
                f.boot_throughput(),
                f.boot_throughput() / boot_base,
                f.first_call_throughput(),
                f.first_call_throughput() / fc_base,
                f.warm_hit_rate()
                    .map_or("null".to_string(), |r| format!("{r:.4}")),
                json_runs(&f.runs)
            )
        })
        .collect();
    println!(
        "{{\"schema_version\": 1, \"host_cores\": {host_cores}, \"iters_per_app\": {iters}, \
         \"stagger_ms\": {stagger_ms}, \"smoke\": {smoke}, \"fleets\": [{}]}}",
        fleet_json.join(", ")
    );

    // Regression gates (CI runs --smoke): tenant 2 must warm-start.
    for f in &fleets {
        if let Some(rate) = f.warm_hit_rate() {
            assert!(
                rate >= 0.9,
                "tenants 2..N must get >= 90% of first-call checks from the shared tier \
                 (fleet of {}: {rate:.3})",
                f.tenants
            );
        }
    }
}
