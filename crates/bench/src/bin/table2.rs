//! Regenerates paper Table 2: the Talks live-update experiment in
//! development mode — changed/added methods, dependent invalidations, and
//! methods re-checked after each update.

use hb_apps::talks_history::run_update_experiment;

fn main() {
    println!("Table 2 reproduction: Talks updates in development mode");
    println!(
        "{:<14} {:>7} {:>6} {:>8} {:>5} {:>6}",
        "Version", "ΔMeth", "Added", "Removed", "Deps", "Chk'd"
    );
    for row in run_update_experiment() {
        println!(
            "{:<14} {:>7} {:>6} {:>8} {:>5} {:>6}",
            row.version, row.changed, row.added, row.removed, row.deps, row.checked
        );
    }
    println!();
    println!("ΔMeth = methods whose bodies changed; Deps = dependent cached checks");
    println!("invalidated (Definition 1); Chk'd = methods (re)checked by the replayed");
    println!("request script. Unchanged methods keep their cached derivations.");
}
