//! Regenerates paper Table 1: type checking results and overhead for the
//! six subject apps, in three modes (Orig / No$ / Hum).
//!
//! Absolute times are host- and interpreter-specific; the shapes that must
//! match the paper are (a) every app type checks, (b) Hum is far faster
//! than No$, (c) metaprogramming apps need generated types, and (d) ratios
//! stay within small multiples of Orig.

use hb_apps::{all_apps, measure_app};
use hb_bench::{format_table1_row, table1_header};

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let repeats: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    println!("Table 1 reproduction (workload iters={iters}, repeats={repeats})");
    println!("{}", table1_header());
    for spec in all_apps() {
        let row = measure_app(&spec, iters, repeats);
        println!("{}", format_table1_row(&row));
    }
    println!();
    println!("Columns: LoC | static types (Chk'd/App/All) | dynamic types (Gen'd/Used) |");
    println!("Casts/Phs | wall-clock per mode and Hum/Orig ratio | static checks run in No$/Hum.");
}
