//! Measures steady-state (cache-hit) dispatch cost through the engine
//! hook, isolated from parsing/eval overhead, across the execution-tier
//! ablation: tree-walk, bytecode, and bytecode with derivation-driven
//! check elision.
//!
//! Two shapes per configuration:
//!
//! * **top-level dispatch** — a Rust-side loop calling an annotated,
//!   already-checked method via `Interp::call_method`. The caller is
//!   unchecked, so every call takes the guarded entry (hook probe +
//!   dynamic argument checks); `hook_overhead` is this minus the same
//!   dispatch with the engine disabled (`Mode::Original`).
//! * **checked dispatch** — a statically checked `driver(n)` looping a
//!   checked `idm(i)` call, measured as `driver(n)` minus `empty_driver(n)`
//!   (the same loop without the call) over `n`. Checked→checked calls are
//!   where elision patches the fast prologue and the hook probe is
//!   compiled out; `checked_overhead_ns` is this minus the identical
//!   figure under `Mode::Original`.
//!
//! Prints JSON (BENCH_dispatch.json is this output committed). `--smoke`
//! runs a reduced iteration count as a CI regression gate on both tiers.

use hummingbird::{ExecTier, Hummingbird, Mode, Value};
use std::time::Instant;

const PROGRAM: &str = r#"
class Probe
  type :idm, "(Fixnum) -> Fixnum", { "check" => true }
  type :driver, "(Fixnum) -> Fixnum", { "check" => true }
  type :empty_driver, "(Fixnum) -> Fixnum", { "check" => true }
  def idm(x)
    x
  end
  def driver(n)
    i = 0
    while i < n
      idm(i)
      i = i + 1
    end
    i
  end
  def empty_driver(n)
    i = 0
    while i < n
      i = i + 1
    end
    i
  end
end
Probe.new.idm(1)
"#;

/// Measurement repetitions; the minimum is reported (scheduling noise
/// only ever adds time).
const REPS: usize = 5;

/// Per-call nanoseconds of a top-level (unchecked-caller) dispatch,
/// best of [`REPS`] runs.
fn measure(hb: &mut Hummingbird, iters: u64) -> f64 {
    let recv = hb.eval("Probe.new").expect("receiver");
    let span = hb_syntax::Span::dummy();
    // Warm: first call performs (or skips) the static check.
    hb.interp
        .call_method(recv.clone(), "idm", vec![Value::Int(0)], None, span)
        .expect("warm call");
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        for i in 0..iters {
            let r = hb
                .interp
                .call_method(recv.clone(), "idm", vec![Value::Int(i as i64)], None, span)
                .expect("hot call");
            std::hint::black_box(r);
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// Per-call nanoseconds of a checked→checked dispatch: `driver(n)` minus
/// `empty_driver(n)`, the loop scaffolding subtracted out; each side is
/// the best of [`REPS`] runs.
fn measure_checked(hb: &mut Hummingbird, n: u64) -> f64 {
    let recv = hb.eval("Probe.new").expect("receiver");
    let span = hb_syntax::Span::dummy();
    let mut run = |name: &str| {
        // Warm: checks run, fast entries patch.
        hb.interp
            .call_method(recv.clone(), name, vec![Value::Int(64)], None, span)
            .expect("warm driver");
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let start = Instant::now();
            let r = hb
                .interp
                .call_method(recv.clone(), name, vec![Value::Int(n as i64)], None, span)
                .expect("driver run");
            let ns = start.elapsed().as_nanos() as f64;
            std::hint::black_box(r);
            best = best.min(ns);
        }
        best
    };
    let driver_ns = run("driver");
    let empty_ns = run("empty_driver");
    (driver_ns - empty_ns) / n as f64
}

struct Config {
    label: &'static str,
    tier: ExecTier,
    elision: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let iters: u64 = args
        .iter()
        .rfind(|a| !a.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 20_000 } else { 300_000 });

    let configs = [
        Config {
            label: "tree_walk",
            tier: ExecTier::TreeWalk,
            elision: false,
        },
        Config {
            label: "bytecode",
            tier: ExecTier::Bytecode,
            elision: false,
        },
        Config {
            label: "bytecode_elision",
            tier: ExecTier::Bytecode,
            elision: true,
        },
    ];

    let mut sections = Vec::new();
    for cfg in &configs {
        let mut full = Hummingbird::builder().exec_tier(cfg.tier).build();
        full.interp.tier.set_elision(cfg.elision);
        full.eval(PROGRAM).expect("program loads");
        let hot_ns = measure(&mut full, iters);
        let checked_ns = measure_checked(&mut full, iters);
        let stats = full.stats();
        assert!(stats.cache_hits >= iters, "loop must hit the cache");
        assert_eq!(
            stats.checks_performed, 3,
            "idm, driver and empty_driver each check exactly once"
        );
        if cfg.elision {
            assert!(
                stats.fast_entries_patched >= 1,
                "steady state must patch the fast prologue: {stats:?}"
            );
        } else {
            assert_eq!(stats.fast_entries_patched, 0, "elision is off");
        }

        let mut orig = Hummingbird::builder()
            .mode(Mode::Original)
            .exec_tier(cfg.tier)
            .build();
        orig.eval(PROGRAM).expect("program loads");
        let base_ns = measure(&mut orig, iters);
        let checked_base_ns = measure_checked(&mut orig, iters);

        sections.push(format!(
            "\"{}\": {{\"cache_hit_ns_per_call\": {hot_ns:.1}, \
             \"no_hook_ns_per_call\": {base_ns:.1}, \"hook_overhead_ns\": {:.1}, \
             \"checked_dispatch_ns\": {checked_ns:.1}, \
             \"checked_dispatch_no_hook_ns\": {checked_base_ns:.1}, \
             \"checked_overhead_ns\": {:.1}}}",
            cfg.label,
            hot_ns - base_ns,
            checked_ns - checked_base_ns,
        ));
    }
    println!(
        "{{\"schema_version\": 1, \"iters\": {iters}, \"smoke\": {smoke}, {}}}",
        sections.join(", ")
    );
}
