//! Measures steady-state (cache-hit) dispatch cost through the engine
//! hook, isolated from parsing/eval overhead: a Rust-side loop calling an
//! annotated, already-checked method directly via `Interp::call_method`.
//!
//! Prints JSON so the interning ablation (BENCH_dispatch.json) can record
//! before/after numbers mechanically. The `hook_overhead` figure is the
//! per-call cost attributable to Hummingbird: hot-path time minus the same
//! dispatch with the engine disabled.

use hummingbird::{Hummingbird, Mode, Value};
use std::time::Instant;

const PROGRAM: &str = r#"
class Probe
  type :idm, "(Fixnum) -> Fixnum", { "check" => true }
  def idm(x)
    x
  end
end
Probe.new.idm(1)
"#;

fn measure(hb: &mut Hummingbird, iters: u64) -> f64 {
    let recv = hb.eval("Probe.new").expect("receiver");
    let span = hb_syntax::Span::dummy();
    // Warm: first call performs (or skips) the static check.
    hb.interp
        .call_method(recv.clone(), "idm", vec![Value::Int(0)], None, span)
        .expect("warm call");
    let start = Instant::now();
    for i in 0..iters {
        let r = hb
            .interp
            .call_method(recv.clone(), "idm", vec![Value::Int(i as i64)], None, span)
            .expect("hot call");
        std::hint::black_box(r);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let iters: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300_000);

    let mut full = Hummingbird::builder().build();
    full.eval(PROGRAM).expect("program loads");
    let hot_ns = measure(&mut full, iters);
    let stats = full.stats();
    assert!(stats.cache_hits >= iters, "loop must hit the cache");
    assert_eq!(stats.checks_performed, 1, "exactly one static check");

    let mut orig = Hummingbird::builder().mode(Mode::Original).build();
    orig.eval(PROGRAM).expect("program loads");
    let base_ns = measure(&mut orig, iters);

    println!(
        "{{\"iters\": {iters}, \"cache_hit_ns_per_call\": {hot_ns:.1}, \
         \"no_hook_ns_per_call\": {base_ns:.1}, \
         \"hook_overhead_ns\": {:.1}}}",
        hot_ns - base_ns
    );
}
