//! Concurrent-scheduler probe: parallel whole-program checking scaling
//! and deferred-admission first-call latency, over the six subject apps.
//!
//! Two experiments (JSON on stdout; `BENCH_parallel.json` is this output
//! committed):
//!
//! 1. **`check_all` scaling** — boot the six apps, clear the derivation
//!    cache, and time `check_all_parallel(jobs)` for jobs ∈ {1, 2, 4, 8}
//!    (jobs = 1 is exactly the serial `check_all`). Best-of-R per level;
//!    the speedup column is serial-best / parallel-best. Diagnostic
//!    output is asserted byte-identical to serial at every level.
//! 2. **Deferred admission** — serve the Talks first-request storm cold
//!    under `Enforce` (checks inline on the caller) vs
//!    `CheckPolicy::Deferred` (checks enqueued, calls admitted under
//!    dynamic checks), reporting the first-iteration serve time and the
//!    background quiesce time.
//!
//! `--smoke` runs a reduced matrix as a CI regression gate: it asserts
//! parallel output identity, full adoption (no stale results, no
//! re-derivation in the sweep) and deferred-admission soundness, without
//! gating on machine-dependent speedups.

use hb_apps::{all_apps, build_app, run_workload, talks};
use hummingbird::{CheckPolicy, HistogramSummary, Hummingbird, Mode, ObsLevel, Scheduler};
use std::sync::Arc;
use std::time::Instant;

/// Boots the six apps once (build cost excluded from every measurement).
fn boot_suite() -> Vec<(hb_apps::AppSpec, Hummingbird)> {
    all_apps()
        .into_iter()
        .map(|spec| {
            let hb = build_app(&spec, Mode::Full);
            (spec, hb)
        })
        .collect()
}

/// One timed whole-suite check pass at `jobs` workers, from a cleared
/// cache. Returns (wall_ns, rendered diagnostics, checks re-derived).
/// The worker pool is a long-lived resource (attached outside the timed
/// region, as a production deployment holds it), so the measurement is
/// checking throughput, not thread spawn.
fn timed_check_all(
    suite: &mut [(hb_apps::AppSpec, Hummingbird)],
    pool: &Arc<Scheduler>,
    jobs: usize,
) -> (u64, Vec<String>, u64) {
    let mut rendered = Vec::new();
    let mut checks = 0u64;
    for (_, hb) in suite.iter_mut() {
        hb.engine.set_scheduler(pool.clone());
        hb.engine.clear_cache();
    }
    let t0 = Instant::now();
    for (_, hb) in suite.iter_mut() {
        let before = hb.stats().checks_performed;
        let diags = hb.check_all_parallel(jobs);
        checks += hb.stats().checks_performed - before;
        let map = hb.source_map();
        rendered.extend(diags.iter().map(|d| d.render(map)));
    }
    (t0.elapsed().as_nanos() as u64, rendered, checks)
}

struct ScalePoint {
    jobs: usize,
    best_ns: u64,
    checks: u64,
}

fn run_scaling(jobs_levels: &[usize], reps: usize) -> (Vec<ScalePoint>, Vec<String>) {
    let mut suite = boot_suite();
    // Warm-up pass: fault in lowering (CFGs are cached across passes, so
    // every measured level pays the same lowering cost: none).
    let warm_pool = Arc::new(Scheduler::new(1));
    let (_, baseline_diags, _) = timed_check_all(&mut suite, &warm_pool, 1);
    let mut points = Vec::new();
    for &jobs in jobs_levels {
        let pool = Arc::new(Scheduler::new(jobs));
        let mut best: Option<(u64, u64)> = None;
        for _ in 0..reps {
            let (ns, rendered, checks) = timed_check_all(&mut suite, &pool, jobs);
            assert_eq!(
                rendered, baseline_diags,
                "parallel output must be byte-identical to serial at jobs={jobs}"
            );
            if best.is_none_or(|(b, _)| ns < b) {
                best = Some((ns, checks));
            }
        }
        let (best_ns, checks) = best.unwrap();
        points.push(ScalePoint {
            jobs,
            best_ns,
            checks,
        });
    }
    (points, baseline_diags)
}

struct DeferredRun {
    first_serve_ns: u64,
    quiesce_ns: u64,
    /// Derivations landed by the end of quiesce. Under `Deferred` these
    /// ran on workers (and were harvested opportunistically mid-storm or
    /// at the quiesce barrier); under `Enforce` they ran inline on the
    /// caller, inside the serve window.
    checks_landed: u64,
    deferred_admissions: u64,
    diagnostics: usize,
    /// Check-duration distribution over the storm (PR 10 observability).
    check_duration: HistogramSummary,
    /// Queue-wait distribution of the deferred tasks (empty under
    /// `Enforce`: nothing is enqueued).
    sched_queue: HistogramSummary,
}

/// Serves the Talks first-request storm cold under `policy`.
fn deferred_probe(policy: CheckPolicy) -> DeferredRun {
    let spec = talks();
    let mut hb = hb_apps::build_app_with(
        &spec,
        Hummingbird::builder()
            .mode(Mode::Full)
            .check_policy(policy)
            .observability(ObsLevel::Metrics)
            .worker_threads(4),
    );
    // Boot-time checks (seed/driver) are not the measured storm.
    hb.sched_quiesce();
    hb.engine.clear_cache();
    hb.engine.reset_stats();
    let t0 = Instant::now();
    run_workload(&spec, &mut hb, 1);
    let first_serve_ns = t0.elapsed().as_nanos() as u64;
    let t1 = Instant::now();
    hb.sched_quiesce();
    let quiesce_ns = t1.elapsed().as_nanos() as u64;
    let s = hb.stats();
    let obs = hb.engine.obs().expect("observability is on");
    DeferredRun {
        first_serve_ns,
        quiesce_ns,
        checks_landed: s.checks_performed,
        deferred_admissions: s.deferred_admissions,
        diagnostics: hb.diagnostics().len(),
        check_duration: obs.check_duration.summary(),
        sched_queue: obs.sched_queue.summary(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let jobs_levels: Vec<usize> = if smoke { vec![1, 4] } else { vec![1, 2, 4, 8] };
    let reps = if smoke { 2 } else { 5 };

    let (points, diags) = run_scaling(&jobs_levels, reps);
    let serial_ns = points[0].best_ns;
    let scaling_json: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"jobs\": {}, \"check_all_ms\": {:.2}, \"speedup_vs_serial\": {:.2}, \
                 \"derivations\": {}}}",
                p.jobs,
                p.best_ns as f64 / 1e6,
                serial_ns as f64 / p.best_ns as f64,
                p.checks
            )
        })
        .collect();

    let enforce = deferred_probe(CheckPolicy::Enforce);
    let deferred = deferred_probe(CheckPolicy::Deferred);
    let deferred_json = |label: &str, r: &DeferredRun| {
        format!(
            "{{\"policy\": \"{label}\", \"first_request_ms\": {:.2}, \"quiesce_ms\": {:.2}, \
             \"checks_landed\": {}, \"deferred_admissions\": {}, \"diagnostics\": {}, \
             \"check_duration_ns\": {{\"count\": {}, \"p50\": {}, \"p99\": {}}}, \
             \"sched_queue_ns\": {{\"count\": {}, \"p50\": {}, \"p99\": {}}}}}",
            r.first_serve_ns as f64 / 1e6,
            r.quiesce_ns as f64 / 1e6,
            r.checks_landed,
            r.deferred_admissions,
            r.diagnostics,
            r.check_duration.count,
            r.check_duration.p50,
            r.check_duration.p99,
            r.sched_queue.count,
            r.sched_queue.p50,
            r.sched_queue.p99,
        )
    };
    let host_cores = hb_bench::host_cores_banner(
        "The check_all scaling columns on \
         this host measure scheduling overhead under timeslicing, not parallel \
         speedup; speedups require host_cores >= jobs.",
    );
    let note = if host_cores < 8 {
        "small host (host_cores < 8): scaling levels above host_cores measure \
         scheduling overhead only; speedups require host_cores >= jobs"
    } else {
        "speedup_vs_serial = serial-best / parallel-best, long-lived pool, best-of-R"
    };
    println!(
        "{{\"schema_version\": 1, \"smoke\": {smoke}, \"host_cores\": {host_cores}, \"note\": \"{note}\", \
         \"six_app_diagnostics\": {}, \"check_all_scaling\": [{}], \
         \"deferred_first_call\": [{}, {}]}}",
        diags.len(),
        scaling_json.join(", "),
        deferred_json("enforce", &enforce),
        deferred_json("deferred", &deferred),
    );

    // Regression gates.
    assert_eq!(diags.len(), 0, "the six clean apps lint at 0 diagnostics");
    for p in &points {
        assert_eq!(
            p.checks, points[0].checks,
            "every level derives the same method set (jobs={})",
            p.jobs
        );
    }
    assert!(
        deferred.deferred_admissions > 0,
        "cold first calls were admitted without waiting for their checks"
    );
    assert_eq!(
        enforce.deferred_admissions, 0,
        "enforce admits nothing asynchronously"
    );
    assert_eq!(
        deferred.diagnostics, 0,
        "the clean Talks storm produces no deferred blame"
    );
    assert!(
        deferred.checks_landed > 0,
        "the deferred checks completed on the workers and were adopted"
    );
    assert!(enforce.checks_landed > 0, "enforce checks inline");
    assert!(
        deferred.check_duration.count > 0 && enforce.check_duration.count > 0,
        "the check-duration histogram saw the storm under both policies"
    );
    assert_eq!(
        enforce.sched_queue.count, 0,
        "enforce enqueues nothing, so the queue histogram stays empty"
    );
    if smoke {
        eprintln!(
            "sched_probe --smoke OK: parallel lint byte-identical at jobs={jobs_levels:?}, \
             deferred admission sound ({} admissions, {} background derivations landed)",
            deferred.deferred_admissions, deferred.checks_landed
        );
    }
}
