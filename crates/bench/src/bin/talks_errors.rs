//! Reproduces the paper's "Type Errors in Talks" experiment: six
//! historical versions of Talks, each with an error that Hummingbird
//! reports at the first call of the offending method.

use hb_apps::talks_history::{error_versions, run_error_version};

fn main() {
    println!("Historical Talks type errors (paper Section 5)");
    println!();
    for v in error_versions() {
        let msg = run_error_version(&v);
        println!("version {:<10} {}", v.version, v.description);
        println!("  -> {msg}");
        println!();
    }
    println!("All six historical errors were reported as blame at method entry.");
}
