//! Shared rendering helpers for the evaluation harness binaries.

use hb_apps::Table1Row;

/// Detected core count, with the ROADMAP-item-5 caveat banner the
/// scaling probes share: numbers measured on a small host must not be
/// read as parallel speedup. `caveat` is the probe-specific clause
/// printed after the core count.
pub fn host_cores_banner(caveat: &str) -> usize {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if host_cores < 8 {
        eprintln!("CAVEAT: host_cores = {host_cores} (< 8). {caveat}");
    }
    host_cores
}

/// Formats a Table 1 row in the paper's column order.
pub fn format_table1_row(r: &Table1Row) -> String {
    format!(
        "{:<10} {:>5} | {:>5} {:>4} {:>4} | {:>5} {:>4} | {:>5} {:>3} | {:>9.1} {:>9.1} {:>9.1} {:>6.1}x | {:>7} {:>5}",
        r.name,
        r.loc,
        r.counts.checked,
        r.counts.app,
        r.counts.all,
        r.counts.generated,
        r.counts.used,
        r.counts.casts,
        r.counts.phases,
        r.orig_ms,
        r.nocache_ms,
        r.hum_ms,
        r.ratio(),
        r.checks_nocache,
        r.checks_hum,
    )
}

/// The Table 1 header line.
pub fn table1_header() -> String {
    format!(
        "{:<10} {:>5} | {:>5} {:>4} {:>4} | {:>5} {:>4} | {:>5} {:>3} | {:>9} {:>9} {:>9} {:>7} | {:>7} {:>5}",
        "App", "LoC", "Chk'd", "App", "All", "Gen'd", "Used", "Casts", "Phs", "Orig(ms)",
        "No$(ms)", "Hum(ms)", "Ratio", "Chk:No$", "Hum"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_apps::AppCounts;

    #[test]
    fn row_formatting_is_stable() {
        let r = Table1Row {
            name: "Talks".to_string(),
            loc: 123,
            counts: AppCounts::default(),
            orig_ms: 10.0,
            nocache_ms: 100.0,
            hum_ms: 20.0,
            checks_nocache: 500,
            checks_hum: 25,
        };
        let s = format_table1_row(&r);
        assert!(s.contains("Talks"));
        assert!(s.contains("2.0x"));
        assert_eq!(table1_header().split('|').count(), s.split('|').count());
    }
}
