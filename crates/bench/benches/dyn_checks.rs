//! The §4 "Eliminating Dynamic Checks" optimisation: a checked-to-checked
//! call chain with dynamic argument checks enabled vs disabled.

use criterion::{criterion_group, criterion_main, Criterion};
use hummingbird::Hummingbird;

const CHAIN: &str = r#"
class Chain
  type :a, "(Fixnum) -> Fixnum", { "check" => true }
  type :b, "(Fixnum) -> Fixnum", { "check" => true }
  type :c, "(Fixnum) -> Fixnum", { "check" => true }
  def a(x)
    b(x + 1)
  end
  def b(x)
    c(x + 1)
  end
  def c(x)
    x + 1
  end
end
$chain = Chain.new
$chain.a(0)
def drive_chain(n)
  i = 0
  while i < n
    $chain.a(i)
    i += 1
  end
  nil
end
"#;

fn bench_dyn_checks(c: &mut Criterion) {
    let mut group = c.benchmark_group("dyn_checks");
    group.sample_size(10);
    group.bench_function("elided_from_checked_callers", |b| {
        let mut hb = Hummingbird::builder().build();
        hb.eval(CHAIN).unwrap();
        b.iter(|| hb.eval("drive_chain(200)").unwrap());
    });
    group.bench_function("forced_everywhere", |b| {
        let mut hb = Hummingbird::builder().build();
        hb.eval(CHAIN).unwrap();
        // Disable the optimisation: every annotated call dynamically
        // checks its arguments even from checked callers.
        let mut cfg = hb.engine.config();
        cfg.dyn_arg_checks = true;
        hb.engine.set_config(cfg);
        hb.eval(
            "class Chain\n type :b, \"(Fixnum) -> Fixnum\", { \"dyn\" => true }\n type :c, \"(Fixnum) -> Fixnum\", { \"dyn\" => true }\nend",
        )
        .unwrap();
        b.iter(|| hb.eval("drive_chain(200)").unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_dyn_checks);
criterion_main!(benches);
