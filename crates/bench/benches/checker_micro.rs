//! Micro-benchmarks of the pipeline stages: parsing, lowering, one static
//! check, and cache-hit dispatch.

use criterion::{criterion_group, criterion_main, Criterion};
use hb_il::{collect_method_defs, lower_method};
use hb_syntax::parse_program;
use hummingbird::Hummingbird;

const METHOD: &str = r##"
def classify(xs, limit)
  small = []
  big = []
  xs.each do |x|
    if x < limit
      small << x
    else
      big << x
    end
  end
  "#{small.size} small, #{big.size} big"
end
"##;

fn bench_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker_micro");
    group.bench_function("parse_method", |b| {
        b.iter(|| parse_program(METHOD, "m.rb").unwrap());
    });
    group.bench_function("lower_method", |b| {
        let p = parse_program(METHOD, "m.rb").unwrap();
        let defs = collect_method_defs(&p);
        b.iter(|| lower_method(&defs[0].def));
    });
    group.bench_function("jit_check_once", |b| {
        b.iter(|| {
            let mut hb = Hummingbird::builder().build();
            hb.eval(
                "class M\n type :classify, \"(Array<Fixnum>, Fixnum) -> String\", { \"check\" => true }\n def classify(xs, limit)\n  small = []\n  big = []\n  xs.each do |x|\n   if x < limit\n    small << x\n   else\n    big << x\n   end\n  end\n  \"#{small.size} small\"\n end\nend\nM.new.classify([1, 5], 3)",
            )
            .unwrap();
        });
    });
    group.bench_function("cache_hit_call", |b| {
        let mut hb = Hummingbird::builder().build();
        hb.eval(
            "class M\n type :idm, \"(Fixnum) -> Fixnum\", { \"check\" => true }\n def idm(x)\n  x\n end\nend\n$m = M.new\n$m.idm(1)\ndef hits(n)\n i = 0\n while i < n\n  $m.idm(i)\n  i += 1\n end\n nil\nend",
        )
        .unwrap();
        b.iter(|| hb.eval("hits(100)").unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
