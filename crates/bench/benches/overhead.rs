//! Criterion version of Table 1's timing columns: each subject app's
//! workload under the three modes (Orig / No$ / Hum).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hb_apps::{all_apps, build_app, run_workload};
use hummingbird::Mode;

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_overhead");
    group.sample_size(10);
    for spec in all_apps() {
        for (label, mode) in [
            ("orig", Mode::Original),
            ("nocache", Mode::NoCache),
            ("hum", Mode::Full),
        ] {
            group.bench_with_input(BenchmarkId::new(label, spec.name), &mode, |b, &mode| {
                // Build once; the workload is what Table 1 times.
                let mut hb = build_app(&spec, mode);
                run_workload(&spec, &mut hb, 1); // warm caches/defs
                b.iter(|| run_workload(&spec, &mut hb, 2));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
