//! The caching ablation (paper §5 "Performance", the pubs no-cache
//! anecdote): the same Pubs workload with the derivation cache on and off,
//! plus cold-vs-warm single checks.

use criterion::{criterion_group, criterion_main, Criterion};
use hb_apps::{build_app, pubs, run_workload};
use hummingbird::Mode;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_ablation");
    group.sample_size(10);
    let spec = pubs();
    group.bench_function("pubs_cached", |b| {
        let mut hb = build_app(&spec, Mode::Full);
        run_workload(&spec, &mut hb, 1);
        b.iter(|| run_workload(&spec, &mut hb, 1));
    });
    group.bench_function("pubs_uncached", |b| {
        let mut hb = build_app(&spec, Mode::NoCache);
        run_workload(&spec, &mut hb, 1);
        b.iter(|| run_workload(&spec, &mut hb, 1));
    });
    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
