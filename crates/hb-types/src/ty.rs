//! Type representation: value types, method types and intersection
//! signatures.

use std::collections::HashMap;
use std::fmt;

/// A RubyLite value type.
///
/// Unions are kept in a canonical form (flattened, deduplicated, sorted by
/// display) so that structural equality coincides with semantic equality for
/// the fragments the checker produces.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `%any` — the dynamic type, compatible in both directions.
    Any,
    /// `%bool` — `true` or `false`.
    Bool,
    /// `nil` — the type of `nil`; a subtype of every type (paper §3).
    Nil,
    /// A class or module name, e.g. `User`.
    Nominal(String),
    /// A generic instantiation, e.g. `Array<Fixnum>`, `Hash<String, %any>`.
    Generic(String, Vec<Type>),
    /// A union, e.g. `Fixnum or Float`. Invariant: at least two arms, no
    /// nested unions, no duplicates.
    Union(Vec<Type>),
    /// A type variable (lowercase identifier such as `t`).
    Var(String),
    /// The class object itself (the type of the constant `User`), written
    /// `Class<User>`.
    ClassObj(String),
}

impl Type {
    /// The `nil` type.
    pub fn nil() -> Type {
        Type::Nil
    }

    /// A nominal type from a class name.
    pub fn nominal(name: impl Into<String>) -> Type {
        Type::Nominal(name.into())
    }

    /// Builds a canonical union of `arms`: flattens nested unions, removes
    /// duplicates, collapses to the single arm when only one remains, and
    /// collapses to `%any` when any arm is `%any`.
    pub fn union_of(arms: Vec<Type>) -> Type {
        let mut flat: Vec<Type> = Vec::new();
        let mut stack = arms;
        stack.reverse();
        while let Some(t) = stack.pop() {
            match t {
                Type::Union(inner) => {
                    for x in inner.into_iter().rev() {
                        stack.push(x);
                    }
                }
                Type::Any => return Type::Any,
                t => {
                    if !flat.contains(&t) {
                        flat.push(t);
                    }
                }
            }
        }
        // nil is absorbed by any other arm only through `lub`, not here:
        // `Fixnum or nil` is a meaningful optional type.
        flat.sort_by_key(|t| t.to_string());
        match flat.len() {
            0 => Type::Nil,
            1 => flat.pop().unwrap(),
            _ => Type::Union(flat),
        }
    }

    /// True if this is `%any`.
    pub fn is_any(&self) -> bool {
        matches!(self, Type::Any)
    }

    /// True if `nil` inhabits this type (it is `nil`, `%any`, or a union
    /// containing `nil`).
    pub fn admits_nil(&self) -> bool {
        match self {
            Type::Nil | Type::Any => true,
            Type::Union(arms) => arms.iter().any(|a| a.admits_nil()),
            _ => false,
        }
    }

    /// Removes `nil` arms from a union (used by the truthiness refinement in
    /// the checker). `nil` itself refines to `nil` (the branch is dead but we
    /// keep checking it).
    pub fn without_nil(&self) -> Type {
        match self {
            Type::Union(arms) => {
                let kept: Vec<Type> = arms.iter().filter(|a| **a != Type::Nil).cloned().collect();
                Type::union_of(kept)
            }
            t => t.clone(),
        }
    }

    /// Substitutes type variables using `map`; unmapped variables are left
    /// in place.
    pub fn subst(&self, map: &HashMap<String, Type>) -> Type {
        match self {
            Type::Var(v) => map.get(v).cloned().unwrap_or_else(|| self.clone()),
            Type::Generic(n, args) => {
                Type::Generic(n.clone(), args.iter().map(|a| a.subst(map)).collect())
            }
            Type::Union(arms) => Type::union_of(arms.iter().map(|a| a.subst(map)).collect()),
            t => t.clone(),
        }
    }

    /// Replaces every remaining type variable with `%any` (used when a
    /// generic class is used "raw", per paper §4 "Type Casts").
    pub fn erase_vars(&self) -> Type {
        match self {
            Type::Var(_) => Type::Any,
            Type::Generic(n, args) => {
                Type::Generic(n.clone(), args.iter().map(Type::erase_vars).collect())
            }
            Type::Union(arms) => Type::union_of(arms.iter().map(Type::erase_vars).collect()),
            t => t.clone(),
        }
    }

    /// True if any type variable occurs anywhere in this type. Callers
    /// that would `erase_vars` can skip the rebuild (and its clone) when
    /// this is false — the common case for concrete annotations.
    pub fn has_vars(&self) -> bool {
        match self {
            Type::Var(_) => true,
            Type::Generic(_, args) => args.iter().any(Type::has_vars),
            Type::Union(arms) => arms.iter().any(Type::has_vars),
            _ => false,
        }
    }

    /// The underlying class name for method lookup, if any.
    pub fn base_name(&self) -> Option<&str> {
        match self {
            Type::Nominal(n) | Type::Generic(n, _) => Some(n),
            Type::Bool => Some("Boolean"),
            Type::Nil => Some("NilClass"),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Any => write!(f, "%any"),
            Type::Bool => write!(f, "%bool"),
            Type::Nil => write!(f, "nil"),
            Type::Nominal(n) => write!(f, "{n}"),
            Type::Generic(n, args) => {
                write!(f, "{n}<")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ">")
            }
            Type::Union(arms) => {
                for (i, a) in arms.iter().enumerate() {
                    if i > 0 {
                        write!(f, " or ")?;
                    }
                    write!(f, "{a}")?;
                }
                Ok(())
            }
            Type::Var(v) => write!(f, "{v}"),
            Type::ClassObj(n) => write!(f, "Class<{n}>"),
        }
    }
}

/// How a method-type parameter binds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamMode {
    Required,
    /// `?T` — may be omitted.
    Optional,
    /// `*T` — zero or more.
    Rest,
}

/// One parameter of a [`MethodType`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ParamType {
    pub ty: Type,
    pub mode: ParamMode,
}

impl ParamType {
    /// A required parameter of type `ty`.
    pub fn required(ty: Type) -> ParamType {
        ParamType {
            ty,
            mode: ParamMode::Required,
        }
    }
}

/// A method type `(T1, ?T2, *T3) { blk } -> R`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MethodType {
    pub params: Vec<ParamType>,
    /// The type of the code-block argument, if the method takes one.
    pub block: Option<Box<MethodType>>,
    pub ret: Type,
}

impl MethodType {
    /// A simple method type with required parameters only and no block.
    pub fn simple(params: Vec<Type>, ret: Type) -> MethodType {
        MethodType {
            params: params.into_iter().map(ParamType::required).collect(),
            block: None,
            ret,
        }
    }

    /// `(min, max)` positional arity; `max == None` when a rest parameter is
    /// present.
    pub fn arity(&self) -> (usize, Option<usize>) {
        let mut min = 0;
        let mut max = Some(0usize);
        for p in &self.params {
            match p.mode {
                ParamMode::Required => {
                    min += 1;
                    max = max.map(|m| m + 1);
                }
                ParamMode::Optional => {
                    max = max.map(|m| m + 1);
                }
                ParamMode::Rest => {
                    max = None;
                }
            }
        }
        (min, max)
    }

    /// True if `n` positional arguments are acceptable.
    pub fn accepts_arity(&self, n: usize) -> bool {
        let (min, max) = self.arity();
        n >= min && max.is_none_or(|m| n <= m)
    }

    /// The declared type of the `i`-th positional argument (rest parameters
    /// absorb all following positions).
    pub fn param_at(&self, i: usize) -> Option<&Type> {
        let mut idx = 0;
        for p in &self.params {
            match p.mode {
                ParamMode::Required | ParamMode::Optional => {
                    if idx == i {
                        return Some(&p.ty);
                    }
                    idx += 1;
                }
                ParamMode::Rest => return Some(&p.ty),
            }
        }
        None
    }

    /// Substitutes type variables throughout the method type.
    pub fn subst(&self, map: &HashMap<String, Type>) -> MethodType {
        MethodType {
            params: self
                .params
                .iter()
                .map(|p| ParamType {
                    ty: p.ty.subst(map),
                    mode: p.mode,
                })
                .collect(),
            block: self.block.as_ref().map(|b| Box::new(b.subst(map))),
            ret: self.ret.subst(map),
        }
    }

    /// Replaces every remaining type variable with `%any`.
    pub fn erase_vars(&self) -> MethodType {
        MethodType {
            params: self
                .params
                .iter()
                .map(|p| ParamType {
                    ty: p.ty.erase_vars(),
                    mode: p.mode,
                })
                .collect(),
            block: self.block.as_ref().map(|b| Box::new(b.erase_vars())),
            ret: self.ret.erase_vars(),
        }
    }
}

impl fmt::Display for MethodType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match p.mode {
                ParamMode::Required => write!(f, "{}", p.ty)?,
                ParamMode::Optional => write!(f, "?{}", p.ty)?,
                ParamMode::Rest => write!(f, "*{}", p.ty)?,
            }
        }
        write!(f, ")")?;
        if let Some(b) = &self.block {
            write!(f, " {{ {b} }}")?;
        }
        write!(f, " -> {}", self.ret)
    }
}

/// A method signature: an intersection of one or more [`MethodType`] arms,
/// built up by repeated `type` calls on the same method (paper §4 "Cache
/// Invalidation").
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct MethodSig {
    pub arms: Vec<MethodType>,
}

impl MethodSig {
    /// A signature with a single arm.
    pub fn single(mt: MethodType) -> MethodSig {
        MethodSig { arms: vec![mt] }
    }

    /// Adds an intersection arm (deduplicating exact repeats, which the
    /// paper notes are harmless).
    pub fn add_arm(&mut self, mt: MethodType) {
        if !self.arms.contains(&mt) {
            self.arms.push(mt);
        }
    }

    /// True if any arm declares a block parameter.
    pub fn takes_block(&self) -> bool {
        self.arms.iter().any(|a| a.block.is_some())
    }
}

impl fmt::Display for MethodSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.arms.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_canonicalisation() {
        let u = Type::union_of(vec![
            Type::nominal("B"),
            Type::nominal("A"),
            Type::nominal("B"),
        ]);
        assert_eq!(u.to_string(), "A or B");
        // Nested unions flatten.
        let v = Type::union_of(vec![u.clone(), Type::nominal("C")]);
        assert_eq!(v.to_string(), "A or B or C");
        // Any absorbs.
        assert_eq!(
            Type::union_of(vec![Type::Any, Type::nominal("A")]),
            Type::Any
        );
        // Singleton collapses.
        assert_eq!(Type::union_of(vec![Type::Bool]), Type::Bool);
        assert_eq!(Type::union_of(vec![]), Type::Nil);
    }

    #[test]
    fn admits_and_strips_nil() {
        let opt = Type::union_of(vec![Type::nominal("User"), Type::Nil]);
        assert!(opt.admits_nil());
        assert_eq!(opt.without_nil(), Type::nominal("User"));
        assert!(!Type::nominal("User").admits_nil());
        assert!(Type::Any.admits_nil());
    }

    #[test]
    fn substitution_and_erasure() {
        let t = Type::Generic("Array".into(), vec![Type::Var("t".into())]);
        let mut m = HashMap::new();
        m.insert("t".to_string(), Type::nominal("Fixnum"));
        assert_eq!(t.subst(&m).to_string(), "Array<Fixnum>");
        assert_eq!(t.erase_vars().to_string(), "Array<%any>");
    }

    #[test]
    fn arity_calculations() {
        let mt = MethodType {
            params: vec![
                ParamType::required(Type::nominal("A")),
                ParamType {
                    ty: Type::nominal("B"),
                    mode: ParamMode::Optional,
                },
                ParamType {
                    ty: Type::nominal("C"),
                    mode: ParamMode::Rest,
                },
            ],
            block: None,
            ret: Type::Nil,
        };
        assert_eq!(mt.arity(), (1, None));
        assert!(mt.accepts_arity(1));
        assert!(mt.accepts_arity(7));
        assert!(!mt.accepts_arity(0));
        assert_eq!(mt.param_at(0).unwrap().to_string(), "A");
        assert_eq!(mt.param_at(1).unwrap().to_string(), "B");
        assert_eq!(mt.param_at(5).unwrap().to_string(), "C");
    }

    #[test]
    fn fixed_arity() {
        let mt = MethodType::simple(vec![Type::nominal("A")], Type::Nil);
        assert_eq!(mt.arity(), (1, Some(1)));
        assert!(!mt.accepts_arity(2));
        assert_eq!(mt.param_at(1), None);
    }

    #[test]
    fn display_forms() {
        let mt = MethodType {
            params: vec![ParamType::required(Type::nominal("User"))],
            block: None,
            ret: Type::Bool,
        };
        assert_eq!(mt.to_string(), "(User) -> %bool");
        let blk = MethodType {
            params: vec![],
            block: Some(Box::new(MethodType::simple(
                vec![Type::Var("t".into())],
                Type::Var("u".into()),
            ))),
            ret: Type::Nil,
        };
        assert_eq!(blk.to_string(), "() { (t) -> u } -> nil");
    }

    #[test]
    fn sig_arm_dedup() {
        let mut sig = MethodSig::default();
        let mt = MethodType::simple(vec![], Type::Bool);
        sig.add_arm(mt.clone());
        sig.add_arm(mt);
        assert_eq!(sig.arms.len(), 1);
    }

    #[test]
    fn base_names() {
        assert_eq!(Type::nominal("User").base_name(), Some("User"));
        assert_eq!(
            Type::Generic("Array".into(), vec![Type::Any]).base_name(),
            Some("Array")
        );
        assert_eq!(Type::Bool.base_name(), Some("Boolean"));
        assert_eq!(Type::Any.base_name(), None);
    }
}
