//! Subtyping and least upper bounds.
//!
//! The rules follow the paper's formal system extended with the
//! implementation's richer types (§4): `nil ≤ τ` for every `τ`, nominal
//! subtyping through a pluggable class [`Hierarchy`] (superclasses and mixed-
//! in modules), unions, and covariant generics (a documented divergence from
//! RDL's default invariance — see DESIGN.md).

use crate::ty::Type;
use std::collections::HashMap;

/// Provides the nominal subtype relation between class/module names.
///
/// Implementations must make `is_descendant` reflexive and must treat
/// `Object` as the top of the nominal lattice.
pub trait Hierarchy {
    /// Is `sub` the same as, a subclass of, or a mixer-in of `sup`?
    fn is_descendant(&self, sub: &str, sup: &str) -> bool;
}

/// A hierarchy with no user classes: only reflexivity and `Object` as top.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHierarchy;

impl Hierarchy for NoHierarchy {
    fn is_descendant(&self, sub: &str, sup: &str) -> bool {
        sub == sup || sup == "Object"
    }
}

/// A hierarchy backed by an explicit ancestor map (used in tests and by the
/// formal calculus).
#[derive(Debug, Clone, Default)]
pub struct MapHierarchy {
    ancestors: HashMap<String, Vec<String>>,
}

impl MapHierarchy {
    /// Creates an empty map hierarchy.
    pub fn new() -> MapHierarchy {
        MapHierarchy::default()
    }

    /// Declares `class` to have the given ancestors (nearest first; `class`
    /// itself and `Object` are implicit).
    pub fn insert(&mut self, class: impl Into<String>, ancestors: Vec<String>) {
        self.ancestors.insert(class.into(), ancestors);
    }

    /// The standard numeric tower used throughout the reproduction:
    /// `Fixnum ≤ Integer ≤ Numeric` and `Float ≤ Numeric` (paper §4).
    pub fn with_numeric_tower() -> MapHierarchy {
        let mut h = MapHierarchy::new();
        h.insert("Fixnum", vec!["Integer".into(), "Numeric".into()]);
        h.insert("Bignum", vec!["Integer".into(), "Numeric".into()]);
        h.insert("Integer", vec!["Numeric".into()]);
        h.insert("Float", vec!["Numeric".into()]);
        h
    }
}

impl Hierarchy for MapHierarchy {
    fn is_descendant(&self, sub: &str, sup: &str) -> bool {
        if sub == sup || sup == "Object" {
            return true;
        }
        match self.ancestors.get(sub) {
            Some(a) => a.iter().any(|x| x == sup),
            None => false,
        }
    }
}

impl Type {
    /// The subtype relation `self ≤ other`.
    ///
    /// `%any` is compatible in both directions (it is the dynamic type);
    /// `nil ≤ τ` for every `τ` (paper §3).
    pub fn is_subtype(&self, other: &Type, hier: &dyn Hierarchy) -> bool {
        match (self, other) {
            (a, b) if a == b => true,
            (Type::Any, _) | (_, Type::Any) => true,
            (Type::Nil, _) => true,
            // Union on the left: every arm must fit.
            (Type::Union(arms), b) => arms.iter().all(|a| a.is_subtype(b, hier)),
            // Union on the right: some arm must accommodate.
            (a, Type::Union(arms)) => arms.iter().any(|b| a.is_subtype(b, hier)),
            (Type::Bool, Type::Nominal(n)) => n == "Boolean" || n == "Object",
            (Type::Nominal(n), Type::Bool) => n == "Boolean",
            (Type::Nominal(a), Type::Nominal(b)) => hier.is_descendant(a, b),
            (Type::Generic(a, xs), Type::Generic(b, ys)) => {
                hier.is_descendant(a, b)
                    && xs.len() == ys.len()
                    && xs.iter().zip(ys).all(|(x, y)| x.is_subtype(y, hier))
            }
            // Raw-compatibility: an instantiated generic may be used where
            // the raw class is expected (e.g. `Array<Fixnum> ≤ Array`), but
            // not the reverse — promoting a raw value needs a cast (§4).
            (Type::Generic(a, _), Type::Nominal(b)) => hier.is_descendant(a, b),
            (Type::ClassObj(a), Type::ClassObj(b)) => hier.is_descendant(a, b),
            (Type::ClassObj(_), Type::Nominal(b)) => b == "Class" || b == "Object",
            _ => false,
        }
    }

    /// The least upper bound `self ⊔ other`: one side if comparable,
    /// otherwise their union (the implementation's generalisation of the
    /// paper's `A ⊔ A = A`, `nil ⊔ τ = τ ⊔ nil = τ`... for unions).
    pub fn lub(&self, other: &Type, hier: &dyn Hierarchy) -> Type {
        // `%any` is bivariant, so comparability alone would make the result
        // order-dependent; let it absorb for a commutative join.
        if self.is_any() || other.is_any() {
            return Type::Any;
        }
        if self.is_subtype(other, hier) {
            other.clone()
        } else if other.is_subtype(self, hier) {
            self.clone()
        } else {
            Type::union_of(vec![self.clone(), other.clone()])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(arms: &[Type]) -> Type {
        Type::union_of(arms.to_vec())
    }

    #[test]
    fn reflexive_and_nil_bottom() {
        let h = NoHierarchy;
        let user = Type::nominal("User");
        assert!(user.is_subtype(&user, &h));
        assert!(Type::Nil.is_subtype(&user, &h));
        assert!(Type::Nil.is_subtype(&Type::Bool, &h));
        assert!(!user.is_subtype(&Type::Nil, &h));
    }

    #[test]
    fn any_is_bidirectional() {
        let h = NoHierarchy;
        let user = Type::nominal("User");
        assert!(user.is_subtype(&Type::Any, &h));
        assert!(Type::Any.is_subtype(&user, &h));
    }

    #[test]
    fn object_is_top() {
        let h = NoHierarchy;
        assert!(Type::nominal("User").is_subtype(&Type::nominal("Object"), &h));
        assert!(Type::Bool.is_subtype(&Type::nominal("Object"), &h));
        assert!(Type::Generic("Array".into(), vec![Type::Bool])
            .is_subtype(&Type::nominal("Object"), &h));
    }

    #[test]
    fn numeric_tower() {
        let h = MapHierarchy::with_numeric_tower();
        let fix = Type::nominal("Fixnum");
        let int = Type::nominal("Integer");
        let num = Type::nominal("Numeric");
        let flo = Type::nominal("Float");
        assert!(fix.is_subtype(&int, &h));
        assert!(fix.is_subtype(&num, &h));
        assert!(flo.is_subtype(&num, &h));
        assert!(!flo.is_subtype(&int, &h));
        assert!(!int.is_subtype(&fix, &h));
    }

    #[test]
    fn union_rules() {
        let h = MapHierarchy::with_numeric_tower();
        let fix = Type::nominal("Fixnum");
        let flo = Type::nominal("Float");
        let num = Type::nominal("Numeric");
        let fu = u(&[fix.clone(), flo.clone()]);
        // Union left: both arms are Numeric.
        assert!(fu.is_subtype(&num, &h));
        // Union right: Fixnum fits into Fixnum|Float.
        assert!(fix.is_subtype(&fu, &h));
        assert!(!num.is_subtype(&fu, &h));
        // nil fits into any union.
        assert!(Type::Nil.is_subtype(&fu, &h));
    }

    #[test]
    fn generics_covariant() {
        let h = MapHierarchy::with_numeric_tower();
        let af = Type::Generic("Array".into(), vec![Type::nominal("Fixnum")]);
        let an = Type::Generic("Array".into(), vec![Type::nominal("Numeric")]);
        assert!(af.is_subtype(&an, &h));
        assert!(!an.is_subtype(&af, &h));
    }

    #[test]
    fn raw_generic_compatibility_is_one_way() {
        let h = NoHierarchy;
        let af = Type::Generic("Array".into(), vec![Type::nominal("Fixnum")]);
        let raw = Type::nominal("Array");
        assert!(af.is_subtype(&raw, &h));
        // Promoting raw to instantiated requires a cast (paper §4).
        assert!(!raw.is_subtype(&af, &h));
    }

    #[test]
    fn class_obj_subtyping() {
        let h = NoHierarchy;
        let cu = Type::ClassObj("User".into());
        assert!(cu.is_subtype(&cu, &h));
        assert!(cu.is_subtype(&Type::nominal("Class"), &h));
        assert!(cu.is_subtype(&Type::nominal("Object"), &h));
        assert!(!cu.is_subtype(&Type::ClassObj("Talk".into()), &h));
    }

    #[test]
    fn lub_prefers_comparable_side() {
        let h = MapHierarchy::with_numeric_tower();
        let fix = Type::nominal("Fixnum");
        let int = Type::nominal("Integer");
        assert_eq!(fix.lub(&int, &h), int);
        assert_eq!(int.lub(&fix, &h), int);
        assert_eq!(Type::Nil.lub(&fix, &h), fix);
        assert_eq!(fix.lub(&Type::Nil, &h), fix);
    }

    #[test]
    fn lub_builds_unions() {
        let h = NoHierarchy;
        let a = Type::nominal("A");
        let b = Type::nominal("B");
        let ab = a.lub(&b, &h);
        assert_eq!(ab.to_string(), "A or B");
        // Joining again with one arm is stable.
        assert_eq!(ab.lub(&a, &h), ab);
    }

    #[test]
    fn bool_vs_nominal() {
        let h = NoHierarchy;
        assert!(Type::Bool.is_subtype(&Type::nominal("Boolean"), &h));
        assert!(Type::nominal("Boolean").is_subtype(&Type::Bool, &h));
        assert!(!Type::Bool.is_subtype(&Type::nominal("User"), &h));
    }
}
