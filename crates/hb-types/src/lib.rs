//! The RDL-style type language used by Hummingbird.
//!
//! Types are written in strings attached to methods at run time, e.g.
//! `"(User) -> %bool"` or `"() { (T) -> U } -> nil"`. This crate provides the
//! representation ([`Type`], [`MethodType`], [`MethodSig`]), the parser for
//! those strings, subtyping with `nil ≤ τ` and a pluggable nominal
//! [`Hierarchy`], least upper bounds (the paper's `⊔`), and the
//! flow-sensitive type environment `Γ`.
//!
//! # Example
//!
//! ```
//! use hb_types::{parse_method_type, parse_type, NoHierarchy, Type};
//!
//! let mt = parse_method_type("(Fixnum or Float) -> String").unwrap();
//! assert_eq!(mt.params.len(), 1);
//! let nil = parse_type("nil").unwrap();
//! let user = parse_type("User").unwrap();
//! // nil is a subtype of every type (paper Section 3).
//! assert!(nil.is_subtype(&user, &NoHierarchy));
//! assert_eq!(Type::nil().lub(&user, &NoHierarchy), user);
//! ```

pub mod env;
pub mod parse;
pub mod subtype;
pub mod ty;

pub use env::TypeEnv;
pub use parse::{parse_method_type, parse_type, TypeParseError};
pub use subtype::{Hierarchy, MapHierarchy, NoHierarchy};
pub use ty::{MethodSig, MethodType, ParamMode, ParamType, Type};
