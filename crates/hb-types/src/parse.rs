//! Parser for RDL-style type strings.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! method_type := '(' params? ')' block? '->' type
//! params      := param (',' param)*
//! param       := '?' type | '*' type | type
//! block       := '{' method_type '}'
//! type        := atom ('or' atom)*
//! atom        := '%any' | '%bool' | 'nil' | var | const generic? | 'Class' '<' const '>'
//! generic     := '<' type (',' type)* '>'
//! var         := lowercase identifier
//! const       := Uppercase identifier ('::' Uppercase identifier)*
//! ```

use crate::ty::{MethodType, ParamMode, ParamType, Type};
use std::error::Error;
use std::fmt;

/// An error produced while parsing a type string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeParseError {
    pub message: String,
    pub input: String,
}

impl TypeParseError {
    fn new(message: impl Into<String>, input: &str) -> TypeParseError {
        TypeParseError {
            message: message.into(),
            input: input.to_string(),
        }
    }
}

impl fmt::Display for TypeParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid type `{}`: {}", self.input, self.message)
    }
}

impl Error for TypeParseError {}

/// Parses a value type such as `"Array<Fixnum>"` or `"Fixnum or nil"`.
///
/// # Errors
///
/// Returns [`TypeParseError`] on malformed input.
pub fn parse_type(src: &str) -> Result<Type, TypeParseError> {
    let mut p = TyParser::new(src);
    let t = p.parse_union()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input"));
    }
    Ok(t)
}

/// Parses a method type such as `"(User) -> %bool"`.
///
/// # Errors
///
/// Returns [`TypeParseError`] on malformed input.
pub fn parse_method_type(src: &str) -> Result<MethodType, TypeParseError> {
    let mut p = TyParser::new(src);
    let mt = p.parse_method_type()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input"));
    }
    Ok(mt)
}

struct TyParser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> TyParser<'a> {
    fn new(src: &'a str) -> TyParser<'a> {
        TyParser {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> TypeParseError {
        TypeParseError::new(msg, self.src)
    }

    fn peek(&self) -> u8 {
        *self.bytes.get(self.pos).unwrap_or(&0)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), b' ' | b'\t' | b'\n' | b'\r') {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        self.skip_ws();
        if self.peek() == c {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), TypeParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{}` at offset {}", c as char, self.pos)))
        }
    }

    fn ident(&mut self) -> String {
        let start = self.pos;
        while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
            self.pos += 1;
        }
        self.src[start..self.pos].to_string()
    }

    /// Peeks whether the next word is `or` (the union separator).
    fn at_or_keyword(&mut self) -> bool {
        self.skip_ws();
        self.src[self.pos..].starts_with("or")
            && !matches!(
                self.bytes.get(self.pos + 2),
                Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
            )
    }

    fn parse_union(&mut self) -> Result<Type, TypeParseError> {
        let mut arms = vec![self.parse_atom()?];
        while self.at_or_keyword() {
            self.pos += 2;
            arms.push(self.parse_atom()?);
        }
        Ok(if arms.len() == 1 {
            arms.pop().unwrap()
        } else {
            Type::union_of(arms)
        })
    }

    fn parse_atom(&mut self) -> Result<Type, TypeParseError> {
        self.skip_ws();
        match self.peek() {
            b'%' => {
                self.pos += 1;
                let name = self.ident();
                match name.as_str() {
                    "any" => Ok(Type::Any),
                    "bool" => Ok(Type::Bool),
                    other => Err(self.err(format!("unknown special type `%{other}`"))),
                }
            }
            b'(' => {
                self.pos += 1;
                let t = self.parse_union()?;
                self.expect(b')')?;
                Ok(t)
            }
            b'a'..=b'z' | b'_' => {
                let name = self.ident();
                match name.as_str() {
                    "nil" => Ok(Type::Nil),
                    "" => Err(self.err("expected a type")),
                    _ => Ok(Type::Var(name)),
                }
            }
            b'A'..=b'Z' => {
                let mut name = self.ident();
                // Constant paths flatten to their joined name.
                while self.src[self.pos..].starts_with("::") {
                    self.pos += 2;
                    let seg = self.ident();
                    if seg.is_empty() {
                        return Err(self.err("expected constant after `::`"));
                    }
                    name.push_str("::");
                    name.push_str(&seg);
                }
                self.skip_ws();
                if self.peek() == b'<' {
                    self.pos += 1;
                    let mut args = vec![self.parse_union()?];
                    while self.eat(b',') {
                        args.push(self.parse_union()?);
                    }
                    self.expect(b'>')?;
                    if name == "Class" && args.len() == 1 {
                        if let Type::Nominal(inner) = &args[0] {
                            return Ok(Type::ClassObj(inner.clone()));
                        }
                    }
                    Ok(Type::Generic(name, args))
                } else {
                    Ok(Type::Nominal(name))
                }
            }
            0 => Err(self.err("unexpected end of type")),
            c => Err(self.err(format!("unexpected character `{}`", c as char))),
        }
    }

    fn parse_method_type(&mut self) -> Result<MethodType, TypeParseError> {
        self.expect(b'(')?;
        let mut params = Vec::new();
        self.skip_ws();
        if self.peek() != b')' {
            loop {
                self.skip_ws();
                let mode = if self.peek() == b'?' {
                    self.pos += 1;
                    ParamMode::Optional
                } else if self.peek() == b'*' {
                    self.pos += 1;
                    ParamMode::Rest
                } else {
                    ParamMode::Required
                };
                let ty = self.parse_union()?;
                params.push(ParamType { ty, mode });
                if !self.eat(b',') {
                    break;
                }
            }
        }
        self.expect(b')')?;
        self.skip_ws();
        let block = if self.peek() == b'{' {
            self.pos += 1;
            let bt = self.parse_method_type()?;
            self.expect(b'}')?;
            Some(Box::new(bt))
        } else {
            None
        };
        self.skip_ws();
        if !self.src[self.pos..].starts_with("->") {
            return Err(self.err("expected `->` before return type"));
        }
        self.pos += 2;
        let ret = self.parse_union()?;
        Ok(MethodType { params, block, ret })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(src: &str) -> Type {
        parse_type(src).unwrap_or_else(|e| panic!("{e}"))
    }

    fn mt(src: &str) -> MethodType {
        parse_method_type(src).unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn parses_atoms() {
        assert_eq!(t("%any"), Type::Any);
        assert_eq!(t("%bool"), Type::Bool);
        assert_eq!(t("nil"), Type::Nil);
        assert_eq!(t("User"), Type::nominal("User"));
        assert_eq!(t("t"), Type::Var("t".into()));
    }

    #[test]
    fn parses_generics() {
        assert_eq!(t("Array<Fixnum>").to_string(), "Array<Fixnum>");
        assert_eq!(t("Hash<String, %any>").to_string(), "Hash<String, %any>");
        assert_eq!(
            t("Hash<String, Array<Fixnum>>").to_string(),
            "Hash<String, Array<Fixnum>>"
        );
    }

    #[test]
    fn parses_unions() {
        assert_eq!(t("Fixnum or Float").to_string(), "Fixnum or Float");
        assert_eq!(
            t("Fixnum or Float or nil").to_string(),
            "Fixnum or Float or nil"
        );
        // Parenthesised unions inside generics.
        assert_eq!(
            t("Array<(Fixnum or Float)>").to_string(),
            "Array<Fixnum or Float>"
        );
    }

    #[test]
    fn or_requires_word_boundary() {
        // `Order` is a constant, not `Or der`.
        assert_eq!(t("Order"), Type::nominal("Order"));
    }

    #[test]
    fn parses_const_paths() {
        assert_eq!(t("ActiveRecord::Base"), Type::nominal("ActiveRecord::Base"));
    }

    #[test]
    fn parses_class_obj() {
        assert_eq!(t("Class<User>"), Type::ClassObj("User".into()));
    }

    #[test]
    fn parses_method_types() {
        let m = mt("(User) -> %bool");
        assert_eq!(m.params.len(), 1);
        assert_eq!(m.ret, Type::Bool);
        assert_eq!(m.to_string(), "(User) -> %bool");

        let m = mt("() -> String");
        assert!(m.params.is_empty());

        let m = mt("(Fixnum, ?String, *Symbol) -> Array<String>");
        assert_eq!(m.params[1].mode, ParamMode::Optional);
        assert_eq!(m.params[2].mode, ParamMode::Rest);
        assert_eq!(m.to_string(), "(Fixnum, ?String, *Symbol) -> Array<String>");
    }

    #[test]
    fn parses_block_types() {
        let m = mt("() { (t) -> u } -> nil");
        let b = m.block.unwrap();
        assert_eq!(b.params[0].ty, Type::Var("t".into()));
        assert_eq!(b.ret, Type::Var("u".into()));
        assert_eq!(m.ret, Type::Nil);
    }

    #[test]
    fn parses_paper_examples() {
        // Array#[] from paper §4.
        assert!(parse_method_type("(Fixnum or Float) -> t").is_ok());
        assert!(parse_method_type("(Fixnum, Fixnum) -> Array<t>").is_ok());
        assert!(parse_method_type("(Range<Fixnum>) -> Array<t>").is_ok());
        // Code-block example from §4.
        assert!(parse_method_type("() { (T) -> U } -> nil").is_ok());
    }

    #[test]
    fn whitespace_insensitive() {
        assert_eq!(mt("( User )->%bool"), mt("(User) -> %bool"));
        assert_eq!(t(" Array < Fixnum > "), t("Array<Fixnum>"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_type("").is_err());
        assert!(parse_type("%weird").is_err());
        assert!(parse_type("Array<").is_err());
        assert!(parse_type("A B").is_err());
        assert!(parse_method_type("(User) %bool").is_err());
        assert!(parse_method_type("User -> %bool").is_err());
        assert!(parse_method_type("() -> ").is_err());
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "(User) -> %bool",
            "() -> String",
            "(Fixnum or Float) -> t",
            "(Fixnum, ?String, *Symbol) -> Array<String>",
            "() { (t) -> u } -> nil",
            "(Hash<String, %any>) -> Class<User>",
        ] {
            let m = mt(s);
            assert_eq!(parse_method_type(&m.to_string()).unwrap(), m);
        }
    }
}
