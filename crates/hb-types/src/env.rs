//! The flow-sensitive type environment `Γ`.

use crate::subtype::Hierarchy;
use crate::ty::Type;
use std::collections::BTreeMap;

/// A type environment mapping local variables to types.
///
/// Supports the paper's join `(Γ1 ⊔ Γ2)(x) = Γ1(x) ⊔ Γ2(x)` when `x` is
/// bound in both environments and undefined otherwise (rule (TIf)).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TypeEnv {
    vars: BTreeMap<String, Type>,
}

impl TypeEnv {
    /// An empty environment.
    pub fn new() -> TypeEnv {
        TypeEnv::default()
    }

    /// Binds `name` to `ty` (flow-sensitive assignment).
    pub fn assign(&mut self, name: impl Into<String>, ty: Type) {
        self.vars.insert(name.into(), ty);
    }

    /// Looks up a variable.
    pub fn get(&self, name: &str) -> Option<&Type> {
        self.vars.get(name)
    }

    /// True if the variable is bound.
    pub fn contains(&self, name: &str) -> bool {
        self.vars.contains_key(name)
    }

    /// The number of bound variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True if no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Iterates over bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Type)> {
        self.vars.iter()
    }

    /// The paper's `Γ1 ⊔ Γ2`: variables bound in both are joined with `⊔`;
    /// variables bound in only one side are dropped.
    pub fn join(&self, other: &TypeEnv, hier: &dyn Hierarchy) -> TypeEnv {
        let mut out = TypeEnv::new();
        for (k, v) in &self.vars {
            if let Some(w) = other.vars.get(k) {
                out.vars.insert(k.clone(), v.lub(w, hier));
            }
        }
        out
    }

    /// Widening join used at loop heads: like [`TypeEnv::join`] but keeps
    /// variables bound only on the accumulated side so loop-carried bindings
    /// are not lost while the fixpoint is still growing.
    pub fn join_keep_left(&self, other: &TypeEnv, hier: &dyn Hierarchy) -> TypeEnv {
        let mut out = self.clone();
        for (k, v) in &other.vars {
            if let Some(w) = out.vars.get(k) {
                let j = w.lub(v, hier);
                out.vars.insert(k.clone(), j);
            }
        }
        out
    }

    /// Environment subsumption `Γ1 ≤ Γ2` (Definition 6): every variable of
    /// `Γ2` is bound in `Γ1` at a subtype.
    pub fn subsumes(&self, weaker: &TypeEnv, hier: &dyn Hierarchy) -> bool {
        weaker
            .vars
            .iter()
            .all(|(k, w)| self.vars.get(k).is_some_and(|v| v.is_subtype(w, hier)))
    }
}

impl FromIterator<(String, Type)> for TypeEnv {
    fn from_iter<I: IntoIterator<Item = (String, Type)>>(iter: I) -> TypeEnv {
        TypeEnv {
            vars: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subtype::{MapHierarchy, NoHierarchy};

    #[test]
    fn assign_and_get() {
        let mut env = TypeEnv::new();
        assert!(env.is_empty());
        env.assign("x", Type::nominal("User"));
        assert_eq!(env.get("x"), Some(&Type::nominal("User")));
        env.assign("x", Type::Nil);
        assert_eq!(env.get("x"), Some(&Type::Nil));
        assert_eq!(env.len(), 1);
    }

    #[test]
    fn join_drops_one_sided_bindings() {
        let h = NoHierarchy;
        let g1: TypeEnv = [
            ("x".to_string(), Type::nominal("A")),
            ("y".to_string(), Type::nominal("B")),
        ]
        .into_iter()
        .collect();
        let g2: TypeEnv = [("x".to_string(), Type::nominal("A"))]
            .into_iter()
            .collect();
        let j = g1.join(&g2, &h);
        assert!(j.contains("x"));
        assert!(!j.contains("y"));
    }

    #[test]
    fn join_lubs_common_bindings() {
        let h = MapHierarchy::with_numeric_tower();
        let g1: TypeEnv = [("x".to_string(), Type::nominal("Fixnum"))]
            .into_iter()
            .collect();
        let g2: TypeEnv = [("x".to_string(), Type::nominal("Float"))]
            .into_iter()
            .collect();
        let j = g1.join(&g2, &h);
        assert_eq!(j.get("x").unwrap().to_string(), "Fixnum or Float");
    }

    #[test]
    fn join_keep_left_preserves_left_bindings() {
        let h = NoHierarchy;
        let g1: TypeEnv = [
            ("x".to_string(), Type::nominal("A")),
            ("y".to_string(), Type::nominal("B")),
        ]
        .into_iter()
        .collect();
        let g2: TypeEnv = [("x".to_string(), Type::Nil)].into_iter().collect();
        let j = g1.join_keep_left(&g2, &h);
        assert!(j.contains("y"));
        assert_eq!(j.get("x").unwrap().to_string(), "A");
    }

    #[test]
    fn subsumption() {
        let h = MapHierarchy::with_numeric_tower();
        let strong: TypeEnv = [
            ("x".to_string(), Type::nominal("Fixnum")),
            ("y".to_string(), Type::nominal("B")),
        ]
        .into_iter()
        .collect();
        let weak: TypeEnv = [("x".to_string(), Type::nominal("Integer"))]
            .into_iter()
            .collect();
        assert!(strong.subsumes(&weak, &h));
        assert!(!weak.subsumes(&strong, &h));
    }
}
