//! Property-based tests for the type lattice: subtyping is a preorder, LUB
//! is idempotent/commutative and an upper bound, unions canonicalise, and
//! the parser round-trips through `Display`.

use hb_types::{parse_method_type, parse_type, MapHierarchy, MethodType, NoHierarchy, Type};
use proptest::prelude::*;

fn arb_type() -> impl Strategy<Value = Type> {
    let leaf = prop_oneof![
        Just(Type::Any),
        Just(Type::Bool),
        Just(Type::Nil),
        Just(Type::nominal("Fixnum")),
        Just(Type::nominal("Integer")),
        Just(Type::nominal("Numeric")),
        Just(Type::nominal("Float")),
        Just(Type::nominal("String")),
        Just(Type::nominal("User")),
        Just(Type::nominal("Talk")),
        Just(Type::nominal("Object")),
        Just(Type::Var("t".to_string())),
        Just(Type::ClassObj("User".to_string())),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3)
                .prop_map(|args| Type::Generic("Array".to_string(), args)),
            prop::collection::vec(inner, 2..4).prop_map(Type::union_of),
        ]
    })
}

fn hier() -> MapHierarchy {
    MapHierarchy::with_numeric_tower()
}

fn contains_any(t: &Type) -> bool {
    match t {
        Type::Any => true,
        Type::Generic(_, args) => args.iter().any(contains_any),
        Type::Union(arms) => arms.iter().any(contains_any),
        _ => false,
    }
}

proptest! {
    #[test]
    fn subtyping_is_reflexive(t in arb_type()) {
        prop_assert!(t.is_subtype(&t, &hier()));
    }

    #[test]
    fn subtyping_is_transitive(a in arb_type(), b in arb_type(), c in arb_type()) {
        let h = hier();
        if a.is_subtype(&b, &h) && b.is_subtype(&c, &h) {
            // %any is bivariant (gradual typing's dynamic type), and
            // bivariance anywhere in the middle type breaks transitivity by
            // design, so exclude chains through types containing it.
            if !contains_any(&b) {
                prop_assert!(a.is_subtype(&c, &h), "{a} <= {b} <= {c} but not {a} <= {c}");
            }
        }
    }

    #[test]
    fn nil_is_bottom(t in arb_type()) {
        prop_assert!(Type::Nil.is_subtype(&t, &hier()));
    }

    #[test]
    fn any_is_bivariant(t in arb_type()) {
        let h = hier();
        prop_assert!(t.is_subtype(&Type::Any, &h));
        prop_assert!(Type::Any.is_subtype(&t, &h));
    }

    #[test]
    fn lub_is_idempotent(t in arb_type()) {
        prop_assert_eq!(t.lub(&t, &hier()), t);
    }

    #[test]
    fn lub_is_commutative_up_to_equivalence(a in arb_type(), b in arb_type()) {
        // With %any nested inside generics, two types can each be a subtype
        // of the other without being equal; lub then returns either
        // representative. Commutativity therefore holds up to mutual
        // subtyping, which is the right statement in a preorder.
        let h = hier();
        let ab = a.lub(&b, &h);
        let ba = b.lub(&a, &h);
        prop_assert!(ab.is_subtype(&ba, &h) && ba.is_subtype(&ab, &h),
            "{ab} and {ba} are not equivalent");
    }

    #[test]
    fn lub_is_upper_bound(a in arb_type(), b in arb_type()) {
        let h = hier();
        let j = a.lub(&b, &h);
        prop_assert!(a.is_subtype(&j, &h), "{a} not <= {a} lub {b} = {j}");
        prop_assert!(b.is_subtype(&j, &h), "{b} not <= {a} lub {b} = {j}");
    }

    #[test]
    fn union_arms_are_subtypes(ts in prop::collection::vec(arb_type(), 1..4)) {
        let h = hier();
        let u = Type::union_of(ts.clone());
        for t in &ts {
            prop_assert!(t.is_subtype(&u, &h), "{t} not <= union {u}");
        }
    }

    #[test]
    fn union_is_canonical_fixpoint(ts in prop::collection::vec(arb_type(), 1..4)) {
        let u = Type::union_of(ts);
        if let Type::Union(arms) = &u {
            prop_assert_eq!(&Type::union_of(arms.clone()), &u);
        }
    }

    #[test]
    fn type_display_roundtrips(t in arb_type()) {
        let printed = t.to_string();
        let reparsed = parse_type(&printed).unwrap();
        prop_assert_eq!(reparsed, t);
    }

    #[test]
    fn erase_vars_removes_all_vars(t in arb_type()) {
        fn has_var(t: &Type) -> bool {
            match t {
                Type::Var(_) => true,
                Type::Generic(_, args) => args.iter().any(has_var),
                Type::Union(arms) => arms.iter().any(has_var),
                _ => false,
            }
        }
        prop_assert!(!has_var(&t.erase_vars()));
    }

    #[test]
    fn without_nil_never_admits_nil_unless_fixed(t in arb_type()) {
        let stripped = t.without_nil();
        match t {
            // Only unions actually strip; other shapes pass through.
            Type::Union(_) => {
                if stripped != Type::Nil && !matches!(stripped, Type::Any) {
                    prop_assert!(!stripped.admits_nil(), "{stripped} still admits nil");
                }
            }
            _ => prop_assert_eq!(stripped, t),
        }
    }
}

fn arb_method_type() -> impl Strategy<Value = MethodType> {
    (
        prop::collection::vec(arb_type(), 0..3),
        arb_type(),
        prop::option::of((prop::collection::vec(arb_type(), 0..2), arb_type())),
    )
        .prop_map(|(params, ret, block)| {
            let mut mt = MethodType::simple(params, ret);
            if let Some((bp, br)) = block {
                mt.block = Some(Box::new(MethodType::simple(bp, br)));
            }
            mt
        })
}

proptest! {
    #[test]
    fn method_type_display_roundtrips(mt in arb_method_type()) {
        let printed = mt.to_string();
        let reparsed = parse_method_type(&printed).unwrap();
        prop_assert_eq!(reparsed, mt);
    }
}

#[test]
fn no_hierarchy_only_object_top() {
    let h = NoHierarchy;
    assert!(Type::nominal("A").is_subtype(&Type::nominal("Object"), &h));
    assert!(!Type::nominal("A").is_subtype(&Type::nominal("B"), &h));
}
