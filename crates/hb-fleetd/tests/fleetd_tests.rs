//! End-to-end tests for the fleet daemon: real Unix-domain sockets,
//! real `HBFLEET1` frames, real tenants.
//!
//! The soundness tests mirror `core/tests/snapshot_tests.rs` one layer
//! up: a daemon that serves derivations from a *divergent* world (a
//! shadowing annotation, a missing subtype edge) must be harmless,
//! because every fetched entry still passes the adopting tenant's own
//! validation funnel. The robustness tests pin the containment story:
//! malformed frames, corrupt publishes, and hostile peers cost at most
//! one connection — never the tier, never another client.

use hb_fleetd::{DaemonConfig, FleetDaemon, FleetServer};
use hummingbird::fleet::wire;
use hummingbird::{
    CacheSnapshot, FleetClient, FleetError, FleetWatermark, Hummingbird, MethodKey, SharedCache,
};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;

/// Same fixture as `snapshot_tests.rs`: both worlds load this file, so
/// entry ids, sig versions, and body fingerprints coincide and only the
/// validation funnel can tell the worlds apart.
const TALK_RB: &str = r#"
class Base
  type :m, "() -> Fixnum"
  def m
    1
  end
end
class Sub < Base
end
class Talk
  type :compute, "(Sub) -> Fixnum", { "check" => true }
  def compute(s)
    s.m
  end
end
"#;

/// The shadowing divergence: an annotation on `Sub` itself.
const SHADOWING_RB: &str = r#"
class Sub
  type :m, "() -> Fixnum"
end
"#;

/// `TALK_RB` with the `Sub < Base` edge severed. Definition order (and
/// hence every load-order counter) matches `TALK_RB`, so the publisher's
/// derivation *probes* successfully in this world — and must then be
/// rejected, because its witnesses resolved `m` through the edge this
/// world does not have.
const UNLINKED_RB: &str = r#"
class Base
  type :m, "() -> Fixnum"
  def m
    1
  end
end
class Sub
end
class Talk
  type :compute, "(Sub) -> Fixnum", { "check" => true }
  def compute(s)
    s.m
  end
end
"#;

/// Three independent checked families, for compaction tests.
const FARM_RB: &str = r#"
class Farm
  type :a, "() -> Fixnum", { "check" => true }
  def a
    1
  end
  type :b, "() -> Fixnum", { "check" => true }
  def b
    2
  end
  type :c, "() -> Fixnum", { "check" => true }
  def c
    3
  end
end
"#;

fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hb-fleetd-{}-{tag}.sock", std::process::id()))
}

fn start_daemon(tag: &str, config: DaemonConfig) -> (Arc<FleetDaemon>, FleetServer, PathBuf) {
    let path = sock_path(tag);
    let (daemon, warning) = FleetDaemon::new(config);
    assert!(
        warning.is_none(),
        "unexpected recovery warning: {warning:?}"
    );
    let server = FleetServer::bind(daemon.clone(), &path).expect("bind");
    (daemon, server, path)
}

/// Runs `TALK_RB` on a local (non-fleet) tier and returns its snapshot
/// bytes — one checked derivation for `Talk#compute`.
fn clean_world_bytes() -> Vec<u8> {
    let shared = Arc::new(SharedCache::new());
    let mut publisher = Hummingbird::builder().shared_cache(shared.clone()).build();
    publisher.load_file("talk.rb", TALK_RB).unwrap();
    publisher.eval("Talk.new.compute(Sub.new)").unwrap();
    assert!(publisher.stats().checks_performed >= 1);
    shared.snapshot().to_bytes()
}

/// The shadowing world of `snapshot_tests::eval_snapshot_world`, as
/// publishable bytes: the surviving derivation's witness resolves `m`
/// to `Sub#m`.
fn shadowing_world_bytes() -> Vec<u8> {
    let shared = Arc::new(SharedCache::new());
    let mut publisher = Hummingbird::builder().shared_cache(shared.clone()).build();
    publisher.load_file("talk.rb", TALK_RB).unwrap();
    publisher.eval("Talk.new.compute(Sub.new)").unwrap();
    publisher.load_file("shadow.rb", SHADOWING_RB).unwrap();
    publisher.eval("Talk.new.compute(Sub.new)").unwrap();
    assert_eq!(publisher.stats().checks_performed, 2);
    shared.snapshot().to_bytes()
}

fn entry_keys(snapshot_bytes: &[u8]) -> Vec<MethodKey> {
    CacheSnapshot::from_bytes(snapshot_bytes)
        .expect("parse response snapshot")
        .entry_versions()
        .expect("entry versions")
        .into_iter()
        .map(|(key, _, _, _)| key)
        .collect()
}

// ---------------------------------------------------------------------
// Wire round trips against a live socket.
// ---------------------------------------------------------------------

#[test]
fn socket_round_trip_publish_fetch_stats_ping() {
    let (daemon, _server, path) = start_daemon("roundtrip", DaemonConfig::default());
    let mut client = FleetClient::connect(&path).expect("connect");
    client.ping().expect("ping");

    // Empty daemon: a full fetch carries zero entries at seq 0.
    let boot = client.fetch_full().expect("fetch empty");
    assert!(!boot.delta);
    assert_eq!(boot.seq, 0);
    assert_eq!(entry_keys(&boot.snapshot).len(), 0);

    // Publish the clean world, then fetch it back.
    let bytes = clean_world_bytes();
    let accepted = client.publish((1, 2, 3), &bytes).expect("publish");
    assert!(accepted >= 1, "publish accepted {accepted} entries");
    assert_eq!(daemon.cache().len() as u64, accepted);

    let full = client.fetch_full().expect("fetch full");
    assert!(!full.delta);
    assert_eq!(full.seq, 1, "one accepted publish batch");
    assert_eq!(full.epochs, (1, 2, 3));
    let keys = entry_keys(&full.snapshot);
    assert!(
        keys.contains(&MethodKey::instance("Talk", "compute")),
        "{keys:?}"
    );

    // Republication of identical content is deduplicated: no new
    // entries, no seq churn.
    assert_eq!(client.publish((1, 2, 3), &bytes).expect("republish"), 0);
    assert_eq!(client.fetch_full().expect("refetch").seq, 1);

    let stats = client.daemon_stats().expect("stats");
    assert_eq!(stats.entries, accepted);
    assert_eq!(stats.seq, 1);
    assert_eq!(stats.publishes, accepted);
    assert!(stats.fetches >= 3);
}

#[test]
fn delta_fetch_serves_only_entries_past_the_watermark() {
    let (_daemon, _server, path) = start_daemon("delta", DaemonConfig::default());
    let mut client = FleetClient::connect(&path).expect("connect");

    // Build three independent families locally; publish `a` first.
    let shared = Arc::new(SharedCache::new());
    let mut publisher = Hummingbird::builder().shared_cache(shared.clone()).build();
    publisher.load_file("farm.rb", FARM_RB).unwrap();
    publisher.eval("Farm.new.a").unwrap();
    publisher.eval("Farm.new.b").unwrap();
    publisher.eval("Farm.new.c").unwrap();
    let key = |m: &str| MethodKey::instance("Farm", m);
    let only = |m: &str| shared.snapshot_filtered(|k| *k == key(m)).to_bytes();
    client.publish((1, 1, 1), &only("a")).expect("publish a");

    // Watermark after `a`; then `b` and `c` land.
    let full = client.fetch_full().expect("full");
    let watermark = FleetWatermark {
        seq: full.seq,
        epochs: full.epochs,
    };
    client.publish((1, 1, 2), &only("b")).expect("publish b");
    client.publish((1, 1, 3), &only("c")).expect("publish c");

    // The delta carries exactly the two new families — not `a`.
    let delta = client.fetch_delta(watermark).expect("delta");
    assert!(delta.delta, "honoured as a delta, not widened");
    let keys = entry_keys(&delta.snapshot);
    assert_eq!(keys.len(), 2, "{keys:?}");
    assert!(
        keys.contains(&key("b")) && keys.contains(&key("c")),
        "{keys:?}"
    );
    assert!(delta.tombstones.is_empty());

    // Steady state: a delta from the *current* watermark is empty.
    let now = FleetWatermark {
        seq: delta.seq,
        epochs: delta.epochs,
    };
    let quiet = client.fetch_delta(now).expect("quiet delta");
    assert!(quiet.delta);
    assert_eq!(entry_keys(&quiet.snapshot).len(), 0);

    // A watermark the daemon never issued widens to a full snapshot.
    let forged = FleetWatermark {
        seq: full.seq,
        epochs: (9, 9, 9),
    };
    let widened = client.fetch_delta(forged).expect("forged watermark");
    assert!(!widened.delta, "unrecognized watermark must widen to full");
    assert_eq!(entry_keys(&widened.snapshot).len(), 3);
}

#[test]
fn eviction_notices_tombstone_dependent_families_for_delta_clients() {
    let (daemon, _server, path) = start_daemon("evict", DaemonConfig::default());
    let mut publisher = FleetClient::connect(&path).expect("connect pub");
    publisher
        .publish((1, 2, 3), &clean_world_bytes())
        .expect("publish");

    let mut watcher = FleetClient::connect(&path).expect("connect watch");
    let full = watcher.fetch_full().expect("full");
    let watermark = FleetWatermark {
        seq: full.seq,
        epochs: full.epochs,
    };

    // `Talk#compute`'s derivation consulted `Base#m`'s signature, so an
    // eviction notice for `Base#m` must fan out to the dependent family
    // even though `Base#m` itself holds no entry.
    let dropped = publisher
        .evict(&[MethodKey::instance("Base", "m")])
        .expect("evict");
    assert_eq!(dropped, 1, "the dependent Talk#compute family");
    assert_eq!(daemon.cache().len(), 0);

    let delta = watcher.fetch_delta(watermark).expect("delta");
    assert!(delta.delta);
    assert_eq!(entry_keys(&delta.snapshot).len(), 0);
    assert_eq!(
        delta.tombstones,
        vec![MethodKey::instance("Talk", "compute")]
    );

    // A second eviction notice for the same key is a no-op: nothing
    // left to drop, no seq churn.
    assert_eq!(
        publisher
            .evict(&[MethodKey::instance("Base", "m")])
            .expect("re-evict"),
        0
    );
    assert_eq!(watcher.fetch_full().expect("refetch").seq, delta.seq);
}

// ---------------------------------------------------------------------
// Fleet-attached tenants (the embedded client path).
// ---------------------------------------------------------------------

#[test]
fn fleet_attached_tenant_publishes_and_a_fresh_tenant_boots_warm() {
    let (_daemon, _server, path) = start_daemon("warm", DaemonConfig::default());

    let mut publisher = Hummingbird::builder().fleet_socket(&path).build();
    assert!(publisher.fleet_attached(), "{:?}", publisher.fleet_error());
    publisher.load_file("talk.rb", TALK_RB).unwrap();
    publisher.eval("Talk.new.compute(Sub.new)").unwrap();
    let checks = publisher.stats().checks_performed;
    assert!(checks >= 1);
    let report = publisher.fleet_sync().expect("sync");
    assert_eq!(report.published as u64, checks, "every check published");

    // A fresh tenant in the identical world boots over the socket and
    // adopts everything: zero local `check_sig` runs.
    let mut adopter = Hummingbird::builder().fleet_socket(&path).build();
    assert!(adopter.fleet_attached(), "{:?}", adopter.fleet_error());
    adopter.load_file("talk.rb", TALK_RB).unwrap();
    adopter.eval("Talk.new.compute(Sub.new)").unwrap();
    let s = adopter.stats();
    assert_eq!(s.checks_performed, 0, "warm boot over the socket: {s:?}");
    assert_eq!(s.shared_hits, checks, "every first call adopted: {s:?}");
    assert!(s.fleet_fetches >= 1, "boot fetch counted: {s:?}");

    // Steady state: with nothing new on either side, the next sync is
    // an empty delta.
    let quiet = adopter.fleet_sync().expect("steady-state sync");
    assert!(quiet.delta, "honoured as a delta");
    assert_eq!(quiet.fetched_entries, 0, "{quiet:?}");
    assert_eq!(quiet.published, 0, "adoption is not republication");
    assert!(adopter.stats().fleet_deltas >= 1);
}

#[test]
fn sync_failure_detaches_the_session_and_tenant_degrades_to_local() {
    let (_daemon, server, path) = start_daemon("detach", DaemonConfig::default());
    let mut tenant = Hummingbird::builder().fleet_socket(&path).build();
    assert!(tenant.fleet_attached());
    drop(server); // daemon gone mid-flight

    tenant.load_file("talk.rb", TALK_RB).unwrap();
    tenant.eval("Talk.new.compute(Sub.new)").unwrap();
    assert!(tenant.fleet_sync().is_err(), "daemon is gone");
    assert!(!tenant.fleet_attached(), "session detached after failure");
    assert!(matches!(
        tenant.fleet_error(),
        Some(FleetError::Detached(_))
    ));

    // Detached is degraded, not broken: checking still works locally.
    assert_eq!(tenant.stats().checks_performed, 1);
    tenant.eval("Talk.new.compute(Sub.new)").unwrap();
}

#[test]
fn builder_with_unreachable_socket_comes_up_detached_not_dead() {
    let path = sock_path("nobody-home");
    let mut tenant = Hummingbird::builder().fleet_socket(&path).build();
    assert!(!tenant.fleet_attached());
    assert!(tenant.fleet_error().is_some());
    tenant.load_file("talk.rb", TALK_RB).unwrap();
    tenant.eval("Talk.new.compute(Sub.new)").unwrap();
    assert_eq!(tenant.stats().checks_performed, 1, "local checking intact");
}

// ---------------------------------------------------------------------
// Soundness: a divergent daemon cannot make a tenant unsound.
// ---------------------------------------------------------------------

#[test]
fn daemon_serving_a_shadowing_world_is_rejected_by_witness_replay() {
    let (_daemon, _server, path) = start_daemon("shadow", DaemonConfig::default());
    FleetClient::connect(&path)
        .expect("connect")
        .publish((7, 7, 7), &shadowing_world_bytes())
        .expect("publish divergent world");

    // The adopter's world has no shadowing annotation: the fetched
    // derivation probes successfully (same entry id, sig version, body
    // fingerprint) but its witness resolved `m` to `Sub#m`, so replay
    // rejects it and a sound local re-check runs instead.
    let shared = Arc::new(SharedCache::new());
    let mut adopter = Hummingbird::builder()
        .shared_cache(shared.clone())
        .fleet_socket(&path)
        .build();
    assert!(adopter.fleet_attached(), "{:?}", adopter.fleet_error());
    adopter.load_file("talk.rb", TALK_RB).unwrap();
    adopter.eval("Talk.new.compute(Sub.new)").unwrap();
    let s = adopter.stats();
    assert_eq!(
        s.shared_hits, 0,
        "nothing from the shadowing daemon adopted: {s:?}"
    );
    assert!(s.checks_performed >= 1, "re-checked locally: {s:?}");
    assert!(
        shared.stats().hits >= 1,
        "sanity: the probe reached the fetched entry — rejection happened \
         at witness replay, not at lookup: {:?}",
        shared.stats()
    );
}

#[test]
fn daemon_serving_a_world_with_an_extra_subtype_edge_is_rejected() {
    // Publisher's world: `Sub < Base`, so `Talk#compute`'s witness
    // resolves `s.m` through the edge to `Base#m`.
    let (_daemon, _server, path) = start_daemon("unlinked", DaemonConfig::default());
    FleetClient::connect(&path)
        .expect("connect")
        .publish((4, 4, 4), &clean_world_bytes())
        .expect("publish linked world");

    // Adopter's world lacks the edge. Load-order counters still line up
    // (UNLINKED_RB defines the same names in the same order), so the
    // fetched derivation probes successfully — and must be rejected:
    // its witness chain is unsatisfiable here. The local re-check then
    // correctly *fails* (`Sub` has no `m` at all), which is exactly the
    // blame adoption would have suppressed.
    let shared = Arc::new(SharedCache::new());
    let mut adopter = Hummingbird::builder()
        .shared_cache(shared.clone())
        .fleet_socket(&path)
        .build();
    assert!(adopter.fleet_attached(), "{:?}", adopter.fleet_error());
    adopter.load_file("talk.rb", UNLINKED_RB).unwrap();
    let result = adopter.eval("Talk.new.compute(Sub.new)");
    assert!(
        result.is_err(),
        "the missing-edge world must blame, not silently adopt the \
         linked world's derivation: {result:?}"
    );
    let s = adopter.stats();
    assert_eq!(
        s.shared_hits, 0,
        "no adoption across the missing edge: {s:?}"
    );
    assert!(
        s.checks_failed >= 1,
        "re-checked locally, and blamed: {s:?}"
    );
}

// ---------------------------------------------------------------------
// Containment: malformed frames, corrupt publishes, hostile peers.
// ---------------------------------------------------------------------

#[test]
fn corrupt_publish_is_refused_and_the_tier_is_untouched() {
    let (daemon, _server, path) = start_daemon("corrupt-pub", DaemonConfig::default());
    let mut client = FleetClient::connect(&path).expect("connect");
    let bytes = clean_world_bytes();
    client.publish((1, 1, 1), &bytes).expect("seed");
    let len_before = daemon.cache().len();
    let seq_before = client.fetch_full().expect("full").seq;

    // Garbage bytes, a truncated artifact, and a bit-flipped artifact
    // (checksum failure) all get a typed refusal on a surviving
    // connection.
    for mutant in [
        b"not a snapshot at all".to_vec(),
        bytes[..bytes.len() / 2].to_vec(),
        {
            let mut flipped = bytes.clone();
            let mid = flipped.len() / 2;
            flipped[mid] ^= 0x40;
            flipped
        },
    ] {
        let err = client.publish((2, 2, 2), &mutant).expect_err("must refuse");
        assert!(matches!(err, FleetError::Daemon(_)), "typed refusal: {err}");
    }
    assert_eq!(daemon.cache().len(), len_before, "tier untouched");
    let full = client.fetch_full().expect("connection survived");
    assert_eq!(full.seq, seq_before, "no seq churn from refused publishes");
}

#[test]
fn malformed_frames_cost_one_connection_never_the_daemon() {
    let (daemon, _server, path) = start_daemon("malformed", DaemonConfig::default());
    let mut bystander = FleetClient::connect(&path).expect("bystander");
    bystander
        .publish((1, 1, 1), &clean_world_bytes())
        .expect("seed");
    let len_before = daemon.cache().len();

    // 1. Wrong magic: closed without a reply.
    let mut imposter = UnixStream::connect(&path).expect("connect raw");
    imposter.write_all(b"NOTFLEET").unwrap();
    let mut buf = [0u8; 8];
    assert_eq!(imposter.read(&mut buf).unwrap_or(0), 0, "silent close");

    // 2. Oversized length prefix: one RESP_ERR, then close (the stream
    //    cannot be resynchronized).
    let mut oversized = UnixStream::connect(&path).expect("connect raw");
    oversized.write_all(wire::MAGIC).unwrap();
    oversized.read_exact(&mut buf).expect("handshake echo");
    oversized.write_all(&u32::MAX.to_le_bytes()).unwrap();
    let (op, body) = wire::read_frame(&mut oversized).expect("error frame");
    assert_eq!(op, wire::RESP_ERR);
    assert!(
        String::from_utf8_lossy(&body).contains("64 MiB"),
        "{body:?}"
    );
    assert_eq!(oversized.read(&mut buf).unwrap_or(0), 0, "then closed");

    // 3. Zero-length frame: same fate.
    let mut empty = UnixStream::connect(&path).expect("connect raw");
    empty.write_all(wire::MAGIC).unwrap();
    empty.read_exact(&mut buf).expect("handshake echo");
    empty.write_all(&0u32.to_le_bytes()).unwrap();
    let (op, _) = wire::read_frame(&mut empty).expect("error frame");
    assert_eq!(op, wire::RESP_ERR);
    assert_eq!(empty.read(&mut buf).unwrap_or(0), 0, "then closed");

    // 4. Well-framed request with a truncated payload: typed refusal,
    //    connection SURVIVES (the frame boundary held).
    let mut truncated = UnixStream::connect(&path).expect("connect raw");
    truncated.write_all(wire::MAGIC).unwrap();
    truncated.read_exact(&mut buf).expect("handshake echo");
    wire::write_frame(&mut truncated, wire::FETCH_DELTA, &[0u8; 4]).unwrap();
    let (op, _) = wire::read_frame(&mut truncated).expect("error frame");
    assert_eq!(op, wire::RESP_ERR);
    wire::write_frame(&mut truncated, wire::PING, &[]).unwrap();
    let (op, _) = wire::read_frame(&mut truncated).expect("ping after refusal");
    assert_eq!(op, wire::RESP_ACK, "connection kept serving");

    // 5. A response opcode sent as a request: refused, survives.
    let mut confused = UnixStream::connect(&path).expect("connect raw");
    confused.write_all(wire::MAGIC).unwrap();
    confused.read_exact(&mut buf).expect("handshake echo");
    wire::write_frame(&mut confused, wire::RESP_SNAPSHOT, &[]).unwrap();
    let (op, _) = wire::read_frame(&mut confused).expect("error frame");
    assert_eq!(op, wire::RESP_ERR);

    // Through all of it: the tier is intact and the bystander's
    // connection never noticed.
    assert_eq!(daemon.cache().len(), len_before);
    bystander.ping().expect("bystander unaffected");
    let full = bystander.fetch_full().expect("bystander still fetches");
    assert_eq!(entry_keys(&full.snapshot).len(), len_before);
}

// ---------------------------------------------------------------------
// Maintenance: writeback, crash recovery, compaction.
// ---------------------------------------------------------------------

#[test]
fn writeback_then_crash_recovery_serves_the_same_tier() {
    let file =
        std::env::temp_dir().join(format!("hb-fleetd-{}-recovery.hbsnap", std::process::id()));
    let _ = std::fs::remove_file(&file);
    let config = DaemonConfig {
        snapshot_path: Some(file.clone()),
        max_entries: 0,
    };

    let (daemon, server, path) = start_daemon("recovery", config.clone());
    let mut client = FleetClient::connect(&path).expect("connect");
    client
        .publish((1, 2, 3), &clean_world_bytes())
        .expect("publish");
    let len_before = daemon.cache().len();
    assert!(len_before >= 1);
    let (_, wrote) = daemon.maintain();
    assert!(wrote, "writeback ran");
    drop(client);
    drop(server); // "crash"

    // Recovery is "load file, serve fleet".
    let (revived, warning) = FleetDaemon::new(config);
    assert!(warning.is_none(), "{warning:?}");
    assert_eq!(revived.cache().len(), len_before, "tier recovered");
    let server = FleetServer::bind(revived, &sock_path("recovery2")).expect("rebind");
    let mut client = FleetClient::connect(&sock_path("recovery2")).expect("reconnect");
    let full = client.fetch_full().expect("fetch recovered tier");
    assert!(entry_keys(&full.snapshot).contains(&MethodKey::instance("Talk", "compute")));
    drop(server);
    let _ = std::fs::remove_file(&file);
}

#[test]
fn corrupt_boot_snapshot_yields_a_warning_and_an_empty_serving_daemon() {
    let file = std::env::temp_dir().join(format!(
        "hb-fleetd-{}-corrupt-boot.hbsnap",
        std::process::id()
    ));
    std::fs::write(&file, b"HBGARBAGE plus assorted noise").unwrap();
    let (daemon, warning) = FleetDaemon::new(DaemonConfig {
        snapshot_path: Some(file.clone()),
        max_entries: 0,
    });
    assert!(warning.is_some(), "corruption reported");
    assert_eq!(daemon.cache().len(), 0, "comes up empty, not down");
    // And it still serves: the daemon is usable without the file.
    assert_eq!(daemon.fetch_full().seq, 0);
    let _ = std::fs::remove_file(&file);
}

#[test]
fn writeback_folds_the_tombstone_log_so_stale_deltas_widen_to_full() {
    let file = std::env::temp_dir().join(format!("hb-fleetd-{}-fold.hbsnap", std::process::id()));
    let _ = std::fs::remove_file(&file);
    let (daemon, _server, path) = start_daemon(
        "fold",
        DaemonConfig {
            snapshot_path: Some(file.clone()),
            max_entries: 0,
        },
    );
    let mut client = FleetClient::connect(&path).expect("connect");
    client
        .publish((1, 1, 1), &clean_world_bytes())
        .expect("publish");
    let full = client.fetch_full().expect("full");
    let stale = FleetWatermark {
        seq: full.seq,
        epochs: full.epochs,
    };

    // Evict (tombstone at seq 2), then write back: the file is a full
    // image, so the tombstone folds into it and the pre-eviction
    // watermark can no longer have its suffix enumerated.
    client
        .evict(&[MethodKey::instance("Base", "m")])
        .expect("evict");
    daemon.maintain();
    let widened = client.fetch_delta(stale).expect("stale delta");
    assert!(
        !widened.delta,
        "folded tombstones force a full snapshot, never a wrong delta"
    );
    let _ = std::fs::remove_file(&file);
}

#[test]
fn compaction_evicts_least_recently_adopted_families_down_to_the_cap() {
    let (daemon, _server, path) = start_daemon(
        "compact",
        DaemonConfig {
            snapshot_path: None,
            max_entries: 1,
        },
    );
    let mut client = FleetClient::connect(&path).expect("connect");

    // Publish `a`, then `b`, then `c` as separate batches so their
    // adoption clocks are ordered.
    let shared = Arc::new(SharedCache::new());
    let mut publisher = Hummingbird::builder().shared_cache(shared.clone()).build();
    publisher.load_file("farm.rb", FARM_RB).unwrap();
    publisher.eval("Farm.new.a").unwrap();
    publisher.eval("Farm.new.b").unwrap();
    publisher.eval("Farm.new.c").unwrap();
    let key = |m: &str| MethodKey::instance("Farm", m);
    for m in ["a", "b", "c"] {
        let bytes = shared.snapshot_filtered(|k| *k == key(m)).to_bytes();
        assert_eq!(client.publish((1, 1, 1), &bytes).expect("publish"), 1);
    }
    assert_eq!(daemon.cache().len(), 3);

    let (compacted, _) = daemon.maintain();
    assert_eq!(compacted, 2, "two families evicted to reach the cap");
    assert_eq!(daemon.cache().len(), 1);
    let survivors = entry_keys(&client.fetch_full().expect("full").snapshot);
    assert_eq!(survivors, vec![key("c")], "LRU: the newest family survives");

    // Compaction is a capacity decision, not a world change: no
    // tombstones are minted for delta clients.
    assert!(client
        .fetch_delta(FleetWatermark {
            seq: 3,
            epochs: (1, 1, 1)
        })
        .expect("delta")
        .tombstones
        .is_empty());
}

#[test]
fn stats_v2_serves_parseable_prometheus_text_over_the_socket() {
    let (_daemon, _server, path) = start_daemon("statsv2", DaemonConfig::default());
    let mut client = FleetClient::connect(&path).expect("connect");
    client
        .publish((1, 2, 3), &clean_world_bytes())
        .expect("publish");
    client.fetch_full().expect("fetch");

    let text = client.daemon_stats_v2().expect("stats v2");
    for needle in [
        "# TYPE hb_fleetd_requests_total counter",
        "# TYPE hb_fleetd_request_ns histogram",
        "hb_fleetd_request_ns_count",
        "hb_fleetd_entries",
        "hb_fleetd_fetches 1",
        "hb_fleetd_publishes",
    ] {
        assert!(text.contains(needle), "STATS_V2 carries {needle}:\n{text}");
    }
    // Every non-comment line is `series value` with a numeric value.
    for line in text
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        let (_, v) = line.rsplit_once(' ').expect("series value");
        v.parse::<f64>()
            .unwrap_or_else(|_| panic!("non-numeric value in line: {line:?}"));
    }
    // The legacy binary STATS counters and the text export agree.
    let stats = client.daemon_stats().expect("stats");
    assert!(
        text.contains(&format!("hb_fleetd_seq {}", stats.seq)),
        "text and binary stats diverge on seq:\n{text}"
    );
}
