//! The `hb-fleetd` binary: bind the socket, serve the fleet.
//!
//! ```text
//! hb-fleetd --socket /run/hb/fleet.sock \
//!           [--snapshot /var/lib/hb/tier.hbsnap] \
//!           [--max-entries 100000] \
//!           [--writeback-ms 5000] \
//!           [--workers 2]
//! ```
//!
//! With `--snapshot`, the daemon recovers its tier from the file at
//! boot (if present) and re-serializes to it on every maintenance pass.
//! The process exits when a client sends the `SHUTDOWN` opcode.

use hb_fleetd::{DaemonConfig, FleetDaemon, FleetServer};
use hb_obs::{hb_info, hb_warn};
use hummingbird::Scheduler;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: hb-fleetd --socket PATH [--snapshot FILE] [--max-entries N] \
         [--writeback-ms MS] [--workers N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut socket: Option<PathBuf> = None;
    let mut config = DaemonConfig::default();
    let mut writeback_ms: Option<u64> = None;
    let mut workers: usize = 1;
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                usage()
            })
        };
        match arg.as_str() {
            "--socket" => socket = Some(PathBuf::from(value("--socket"))),
            "--snapshot" => config.snapshot_path = Some(PathBuf::from(value("--snapshot"))),
            "--max-entries" => {
                config.max_entries = value("--max-entries").parse().unwrap_or_else(|_| usage())
            }
            "--writeback-ms" => {
                writeback_ms = Some(value("--writeback-ms").parse().unwrap_or_else(|_| usage()))
            }
            "--workers" => workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    let Some(socket) = socket else { usage() };

    let (daemon, warning) = FleetDaemon::new(config);
    if let Some(w) = warning {
        hb_warn!("hb-fleetd: {w}");
    }
    // Maintenance rides an hb-sched pool; the periodic task dies with it.
    let sched = Arc::new(Scheduler::new(workers.max(1)));
    let _maintenance =
        writeback_ms.map(|ms| daemon.start_maintenance(&sched, Duration::from_millis(ms.max(1))));

    let server = match FleetServer::bind(daemon.clone(), &socket) {
        Ok(s) => s,
        Err(e) => {
            hb_warn!("hb-fleetd: cannot bind {}: {e}", socket.display());
            std::process::exit(1);
        }
    };
    hb_info!(
        "hb-fleetd: serving {} entries on {}",
        daemon.cache().len(),
        socket.display()
    );
    server.join();
    // One final writeback so an orderly shutdown never loses the tier.
    daemon.maintain();
    let s = daemon.stats();
    hb_info!(
        "hb-fleetd: shut down (seq {}, {} fetches, {} deltas, {} publishes, {} evictions)",
        s.seq,
        s.fetches,
        s.deltas,
        s.publishes,
        s.evictions
    );
}
