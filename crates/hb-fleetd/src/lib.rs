//! # hb-fleetd: the fleet-serving derivation daemon
//!
//! ROADMAP item 1's millions-of-users story: one long-lived process owns
//! a [`hummingbird::SharedCache`] tier and serves per-method type
//! derivations to N tenant *processes* over a Unix-domain socket — full
//! snapshot fetches at boot, **delta** fetches past a watermark during
//! steady state, publish-back of locally derived entries, and eviction
//! notices when a tenant's type table mutates. The wire protocol
//! (`HBFLEET1`, specified in `docs/HBFLEET1.md`) is a thin length-
//! prefixed framing over the `HBSNAP02` snapshot encoding the workspace
//! already ships.
//!
//! The daemon is deliberately dumb about soundness: it never validates
//! a derivation, because it *cannot* — validity is a property of the
//! adopting tenant's type table (paper Definition 1). Every fetched
//! entry is a candidate that the tenant's own adoption funnel (epoch
//! fast path or witness replay) must pass, so a divergent, stale, or
//! corrupted daemon degrades tenants to local checking, never to
//! unsound adoption. Tests in this crate pin that property end to end.
//!
//! Long-lived tiers get a bounded-memory and crash-recovery story from
//! the maintenance pass ([`FleetDaemon::maintain`], schedulable on an
//! `hb-sched` pool via [`FleetDaemon::start_maintenance`]): last-
//! adoption LRU compaction to a configurable cap, and atomic snapshot
//! writeback — recovery is "load file, serve fleet".

pub mod daemon;
pub mod server;

pub use daemon::{DaemonConfig, FleetDaemon};
pub use server::FleetServer;
