//! The Unix-domain-socket front end: accept loop, per-connection
//! threads, and the `HBFLEET1` request dispatch.
//!
//! Error containment is the design center. A malformed *payload* inside
//! a well-framed request gets a typed [`wire::RESP_ERR`] and the
//! connection keeps serving; a broken *frame* (bad length prefix,
//! short read) cannot be resynchronized, so that one connection closes
//! — the daemon, its tier, and every other connected client are
//! untouched either way. A panicking handler is likewise contained to
//! its connection thread.

use crate::daemon::FleetDaemon;
use hummingbird::fleet::wire;
use hummingbird::fleet::FleetError;
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// How often the accept loop wakes to poll the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// A listening `HBFLEET1` server bound to a socket path. Dropping it
/// requests shutdown and joins the accept thread; the socket file is
/// removed.
pub struct FleetServer {
    daemon: Arc<FleetDaemon>,
    path: PathBuf,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl FleetServer {
    /// Binds `path` (an existing socket file is replaced) and starts
    /// accepting connections on a background thread.
    pub fn bind(daemon: Arc<FleetDaemon>, path: &Path) -> std::io::Result<FleetServer> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let accept_daemon = daemon.clone();
        let accept_thread = std::thread::Builder::new()
            .name("hb-fleetd-accept".into())
            .spawn(move || accept_loop(listener, accept_daemon))?;
        Ok(FleetServer {
            daemon,
            path: path.to_path_buf(),
            accept_thread: Some(accept_thread),
        })
    }

    /// The daemon behind this server.
    pub fn daemon(&self) -> &Arc<FleetDaemon> {
        &self.daemon
    }

    /// Blocks until the accept loop exits (a `SHUTDOWN` request or
    /// [`FleetDaemon::request_shutdown`]).
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Drop for FleetServer {
    fn drop(&mut self) {
        self.daemon.request_shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

fn accept_loop(listener: UnixListener, daemon: Arc<FleetDaemon>) {
    while !daemon.shutdown_requested() {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let daemon = daemon.clone();
                let _ = std::thread::Builder::new()
                    .name("hb-fleetd-conn".into())
                    .spawn(move || {
                        // A panicking handler must not take the daemon
                        // down; the connection dies, the tier survives.
                        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            serve_connection(stream, daemon)
                        }));
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => break,
        }
    }
}

/// Handshake + request loop for one client.
fn serve_connection(mut stream: UnixStream, daemon: Arc<FleetDaemon>) {
    // Connection reads poll so a hung client cannot pin the thread past
    // daemon shutdown.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut magic = [0u8; 8];
    if read_exact_polling(&mut stream, &mut magic, &daemon).is_err() || &magic != wire::MAGIC {
        // Not an HBFLEET1 peer: close without a frame (there is no
        // framing to speak yet).
        return;
    }
    if stream.write_all(wire::MAGIC).is_err() {
        return;
    }
    loop {
        if daemon.shutdown_requested() {
            return;
        }
        let frame = read_frame_polling(&mut stream, &daemon);
        let (opcode, payload) = match frame {
            Ok(f) => f,
            Err(FleetError::Io(_)) => return, // disconnect / shutdown
            Err(e @ (FleetError::BadFrame(_) | FleetError::FrameTooLarge(_))) => {
                // The length prefix cannot be trusted, so the stream
                // cannot be resynchronized: answer once, then close.
                let _ = wire::write_frame(&mut stream, wire::RESP_ERR, e.to_string().as_bytes());
                return;
            }
            Err(_) => return,
        };
        let t_req = std::time::Instant::now();
        let outcome = handle_request(&daemon, opcode, &payload);
        daemon.requests_total.inc();
        daemon.request_ns.record(t_req.elapsed().as_nanos() as u64);
        let keep_going = match outcome {
            Ok(Response::Frame(op, body)) => wire::write_frame(&mut stream, op, &body).is_ok(),
            Ok(Response::Shutdown) => {
                let mut ack = Vec::with_capacity(8);
                wire::put_u64(&mut ack, 0);
                let _ = wire::write_frame(&mut stream, wire::RESP_ACK, &ack);
                daemon.request_shutdown();
                false
            }
            // Payload-level failure: typed error, connection survives
            // (framing is intact — the bad bytes were fully consumed).
            Err(e) => {
                daemon.errors_total.inc();
                wire::write_frame(&mut stream, wire::RESP_ERR, e.to_string().as_bytes()).is_ok()
            }
        };
        if !keep_going {
            return;
        }
    }
}

enum Response {
    Frame(u8, Vec<u8>),
    Shutdown,
}

fn ack(value: u64) -> Response {
    let mut body = Vec::with_capacity(8);
    wire::put_u64(&mut body, value);
    Response::Frame(wire::RESP_ACK, body)
}

fn handle_request(
    daemon: &FleetDaemon,
    opcode: u8,
    payload: &[u8],
) -> Result<Response, FleetError> {
    match opcode {
        wire::FETCH_FULL => {
            let resp = daemon.fetch_full();
            Ok(Response::Frame(
                wire::RESP_SNAPSHOT,
                wire::encode_snapshot_resp(&resp),
            ))
        }
        wire::FETCH_DELTA => {
            let mut c = wire::PayloadCursor::new(payload);
            let seq = c.u64()?;
            let epochs = (c.u64()?, c.u64()?, c.u64()?);
            if c.remaining() != 0 {
                return Err(FleetError::BadFrame("trailing bytes after watermark"));
            }
            let resp = daemon.fetch_delta(seq, epochs);
            Ok(Response::Frame(
                wire::RESP_SNAPSHOT,
                wire::encode_snapshot_resp(&resp),
            ))
        }
        wire::PUBLISH => {
            let mut c = wire::PayloadCursor::new(payload);
            let epochs = (c.u64()?, c.u64()?, c.u64()?);
            let snapshot_bytes = c.take(c.remaining())?;
            let accepted = daemon.publish(epochs, snapshot_bytes)?;
            Ok(ack(accepted))
        }
        wire::EVICT => {
            let mut c = wire::PayloadCursor::new(payload);
            let n = c.u32()? as usize;
            let mut keys = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                keys.push(c.key()?);
            }
            if c.remaining() != 0 {
                return Err(FleetError::BadFrame("trailing bytes after evict keys"));
            }
            Ok(ack(daemon.evict(&keys)))
        }
        wire::STATS => Ok(Response::Frame(
            wire::RESP_STATS,
            wire::encode_stats(&daemon.stats()),
        )),
        wire::STATS_V2 => Ok(Response::Frame(
            wire::RESP_STATS_V2,
            daemon.metrics_prometheus().into_bytes(),
        )),
        wire::PING => Ok(ack(0)),
        wire::SHUTDOWN => Ok(Response::Shutdown),
        other => Err(FleetError::BadFrame(match other {
            0x80..=0xFF => "response opcode sent as a request",
            _ => "unknown request opcode",
        })),
    }
}

/// `read_exact` that tolerates the poll timeout: keeps retrying until
/// the buffer fills, the peer disconnects, or the daemon shuts down.
fn read_exact_polling(
    stream: &mut UnixStream,
    buf: &mut [u8],
    daemon: &FleetDaemon,
) -> std::io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if daemon.shutdown_requested() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::Interrupted,
                        "daemon shutting down",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// [`wire::read_frame`] over the polling reader.
fn read_frame_polling(
    stream: &mut UnixStream,
    daemon: &FleetDaemon,
) -> Result<(u8, Vec<u8>), FleetError> {
    let mut len = [0u8; 4];
    read_exact_polling(stream, &mut len, daemon).map_err(FleetError::Io)?;
    let len = u32::from_le_bytes(len);
    if len == 0 {
        return Err(FleetError::BadFrame("zero-length frame"));
    }
    if len > wire::MAX_FRAME {
        return Err(FleetError::FrameTooLarge(len));
    }
    let mut body = vec![0u8; len as usize];
    read_exact_polling(stream, &mut body, daemon).map_err(FleetError::Io)?;
    let opcode = body[0];
    body.drain(..1);
    Ok((opcode, body))
}
