//! The daemon's tier and request semantics, independent of any socket.
//!
//! [`FleetDaemon`] owns a [`SharedCache`] plus the publication metadata
//! that makes *delta* serving possible: a monotonic sequence number
//! bumped by every accepted state change, per-method "last changed at
//! seq" stamps, a tombstone log of evicted families, and a bounded
//! history of the `(seq, world-epochs)` watermarks it has handed out. A
//! delta fetch is honoured only for a watermark the daemon itself
//! issued and whose tombstone suffix is still enumerable; anything else
//! silently widens to a full snapshot — clients never see an error for
//! being too far behind, only more bytes.
//!
//! Maintenance — LRU compaction to a configurable entry cap and atomic
//! snapshot writeback for crash recovery — is exposed both as a
//! deterministic [`FleetDaemon::maintain`] (tests, CI) and as a
//! recurring `hb-sched` pool job ([`FleetDaemon::start_maintenance`]).

use hb_obs::{Counter, Histogram, Registry};
use hummingbird::fleet::wire::{DaemonStats, SnapshotResp};
use hummingbird::fleet::FleetError;
use hummingbird::{CacheSnapshot, MethodKey, Scheduler, SharedCache};
use std::collections::{HashMap, HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How many handed-out watermarks the daemon remembers. A client whose
/// watermark has aged out of the window is served a full snapshot —
/// correctness never depends on the bound.
const WATERMARK_HISTORY: usize = 256;

/// Daemon configuration.
#[derive(Debug, Clone, Default)]
pub struct DaemonConfig {
    /// Writeback target: the tier is re-serialized here (atomically,
    /// via temp-file + rename) by every maintenance pass, and loaded
    /// from here at boot when the file exists — crash recovery is "load
    /// file, serve fleet". `None` disables writeback.
    pub snapshot_path: Option<PathBuf>,
    /// Compaction cap: when the tier holds more derivations than this,
    /// maintenance evicts least-recently-adopted entry families until
    /// it fits. `0` means unbounded.
    pub max_entries: usize,
}

/// Per-method publication metadata.
#[derive(Debug, Clone, Copy)]
struct EntryMeta {
    /// Sequence number of the last accepted publication touching this
    /// family (what a delta fetch compares against).
    last_seq: u64,
    /// Logical adoption clock: bumped when the family is published and
    /// whenever a delta fetch serves it. The compaction pass evicts the
    /// smallest values first (last-adoption LRU).
    last_touch: u64,
}

#[derive(Default)]
struct DaemonState {
    /// Monotonic publication sequence; bumped by every accepted publish
    /// batch and every eviction notice that removed something.
    seq: u64,
    /// The epoch triple of the most recent accepted publication — the
    /// fleet's current world tag, echoed in every watermark.
    world: (u64, u64, u64),
    /// Logical clock feeding [`EntryMeta::last_touch`].
    tick: u64,
    meta: HashMap<MethodKey, EntryMeta>,
    /// The `(seq, world)` watermarks this daemon has issued, newest at
    /// the back, bounded to [`WATERMARK_HISTORY`].
    history: VecDeque<(u64, (u64, u64, u64))>,
    /// Families evicted by notices, with the seq of the eviction.
    /// Trimmed by writeback (the snapshot file is a full image, so
    /// tombstones at or below the written seq fold into it).
    tombstones: VecDeque<(u64, MethodKey)>,
    /// Watermarks below this cannot have their tombstone suffix
    /// enumerated (the log was folded); deltas for them widen to full.
    tombstone_floor: u64,
}

impl DaemonState {
    fn push_history(&mut self) {
        self.history.push_back((self.seq, self.world));
        while self.history.len() > WATERMARK_HISTORY {
            self.history.pop_front();
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// The daemon: a [`SharedCache`] tier plus delta/compaction metadata.
/// All request handling is `&self` and thread-safe — the socket server
/// calls straight in from per-connection threads.
pub struct FleetDaemon {
    cache: Arc<SharedCache>,
    state: Mutex<DaemonState>,
    config: DaemonConfig,
    fetches: AtomicU64,
    deltas: AtomicU64,
    publishes: AtomicU64,
    evictions: AtomicU64,
    compactions: AtomicU64,
    writebacks: AtomicU64,
    registry: Arc<Registry>,
    /// Requests handled, across opcodes (including ones that errored).
    pub requests_total: Arc<Counter>,
    /// Requests answered with `RESP_ERR`.
    pub errors_total: Arc<Counter>,
    /// Wall-clock nanoseconds spent handling each request.
    pub request_ns: Arc<Histogram>,
    shutdown: AtomicBool,
}

impl FleetDaemon {
    /// A daemon over an empty tier — or, when `config.snapshot_path`
    /// names an existing readable artifact, over the recovered tier
    /// (corrupt or unreadable files are reported and ignored: the
    /// daemon comes up empty rather than not at all).
    pub fn new(config: DaemonConfig) -> (Arc<FleetDaemon>, Option<String>) {
        let cache = Arc::new(SharedCache::new());
        let mut recovery_warning = None;
        if let Some(path) = &config.snapshot_path {
            if path.exists() {
                match std::fs::read(path)
                    .map_err(|e| e.to_string())
                    .and_then(|bytes| CacheSnapshot::from_bytes(&bytes).map_err(|e| e.to_string()))
                    .and_then(|snap| cache.load_snapshot(&snap).map_err(|e| e.to_string()))
                {
                    Ok(_) => {}
                    Err(e) => {
                        recovery_warning =
                            Some(format!("ignoring snapshot {}: {e}", path.display()));
                    }
                }
            }
        }
        let mut state = DaemonState::default();
        // Recovered entries predate every watermark; stamp them at seq 0
        // so the first delta fetch after a fresh boot serves nothing.
        let tick = state.next_tick();
        for (key, _, _, _) in cache.snapshot().entry_versions().unwrap_or_default() {
            state.meta.entry(key).or_insert(EntryMeta {
                last_seq: 0,
                last_touch: tick,
            });
        }
        state.push_history();
        let registry = Arc::new(Registry::new());
        let daemon = Arc::new(FleetDaemon {
            cache,
            state: Mutex::new(state),
            config,
            fetches: AtomicU64::new(0),
            deltas: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
            requests_total: registry.counter(
                "hb_fleetd_requests_total",
                "HBFLEET1 requests handled, across all opcodes",
            ),
            errors_total: registry
                .counter("hb_fleetd_errors_total", "requests answered with RESP_ERR"),
            request_ns: registry.histogram(
                "hb_fleetd_request_ns",
                "wall-clock nanoseconds handling each HBFLEET1 request",
            ),
            registry,
            shutdown: AtomicBool::new(false),
        });
        (daemon, recovery_warning)
    }

    /// The daemon-owned tier (tests inspect it directly).
    pub fn cache(&self) -> &Arc<SharedCache> {
        &self.cache
    }

    /// True after a `SHUTDOWN` request (the server's accept loop polls
    /// this).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Requests shutdown (the `SHUTDOWN` opcode lands here).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    fn state(&self) -> std::sync::MutexGuard<'_, DaemonState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Counter snapshot (the `STATS` opcode).
    pub fn stats(&self) -> DaemonStats {
        let st = self.state();
        DaemonStats {
            entries: self.cache.len() as u64,
            seq: st.seq,
            fetches: self.fetches.load(Ordering::Relaxed),
            deltas: self.deltas.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
        }
    }

    /// The daemon-side metrics as Prometheus text (the `STATS_V2`
    /// opcode): the request counters/histogram from the registry plus
    /// one `hb_fleetd_<field>` series per [`DaemonStats`] field, so the
    /// legacy binary `STATS` counters and the text export can never
    /// disagree about what the daemon has done.
    pub fn metrics_prometheus(&self) -> String {
        let mut out = self.registry.render_prometheus();
        let s = self.stats();
        for (name, value, kind) in [
            ("entries", s.entries, "gauge"),
            ("seq", s.seq, "counter"),
            ("fetches", s.fetches, "counter"),
            ("deltas", s.deltas, "counter"),
            ("publishes", s.publishes, "counter"),
            ("evictions", s.evictions, "counter"),
            ("compactions", s.compactions, "counter"),
            ("writebacks", s.writebacks, "counter"),
        ] {
            out.push_str(&format!("# TYPE hb_fleetd_{name} {kind}\n"));
            out.push_str(&format!("hb_fleetd_{name} {value}\n"));
        }
        out
    }

    /// Serves a full snapshot of the tier. Captured under the state
    /// lock so the watermark handed out can never be newer than the
    /// snapshot's contents (a concurrent publish lands either wholly
    /// before or wholly after this fetch).
    pub fn fetch_full(&self) -> SnapshotResp {
        let st = self.state();
        let snapshot = self.cache.snapshot().to_bytes();
        let (seq, epochs) = (st.seq, st.world);
        drop(st);
        self.fetches.fetch_add(1, Ordering::Relaxed);
        SnapshotResp {
            delta: false,
            seq,
            epochs,
            tombstones: Vec::new(),
            snapshot,
        }
    }

    /// Serves the entries published after `(seq, epochs)` plus the
    /// tombstones of families evicted since — or a full snapshot when
    /// the watermark is not one this daemon issued (restart, forgery,
    /// aged out of history) or its tombstone suffix was folded away.
    pub fn fetch_delta(&self, seq: u64, epochs: (u64, u64, u64)) -> SnapshotResp {
        let (keys, tombstones, resp_seq, resp_world) = {
            let mut st = self.state();
            let genuine = st.history.iter().any(|&(s, w)| s == seq && w == epochs);
            if !genuine || seq < st.tombstone_floor || seq > st.seq {
                drop(st);
                return self.fetch_full();
            }
            let keys: HashSet<MethodKey> = st
                .meta
                .iter()
                .filter(|(_, m)| m.last_seq > seq)
                .map(|(k, _)| *k)
                .collect();
            let mut tomb_set: HashSet<MethodKey> = HashSet::new();
            let mut tombstones = Vec::new();
            for &(s, key) in st.tombstones.iter() {
                if s > seq && tomb_set.insert(key) {
                    tombstones.push(key);
                }
            }
            // Serving an entry in a delta is an adoption signal: these
            // families are live on real tenants — compact them last.
            let tick = st.next_tick();
            for key in &keys {
                if let Some(m) = st.meta.get_mut(key) {
                    m.last_touch = tick;
                }
            }
            (keys, tombstones, st.seq, st.world)
        };
        let snapshot = self
            .cache
            .snapshot_filtered(|k| keys.contains(k))
            .to_bytes();
        self.deltas.fetch_add(1, Ordering::Relaxed);
        SnapshotResp {
            delta: true,
            seq: resp_seq,
            epochs: resp_world,
            tombstones,
            snapshot,
        }
    }

    /// Accepts a publish-back: `snapshot_bytes` is an `HBSNAP02` image
    /// of the publisher's locally derived entries, `epochs` its world
    /// triple. Entries the daemon already serves (same key *and*
    /// version tuple) are deduplicated — only genuinely new material
    /// bumps the sequence number, so republication storms cannot churn
    /// every client's delta. Returns the number of new entries.
    ///
    /// # Errors
    ///
    /// [`FleetError::Snapshot`] when the bytes fail to parse or load;
    /// the tier is untouched (snapshot loads are all-or-nothing).
    pub fn publish(
        &self,
        epochs: (u64, u64, u64),
        snapshot_bytes: &[u8],
    ) -> Result<u64, FleetError> {
        let snap = CacheSnapshot::from_bytes(snapshot_bytes).map_err(FleetError::Snapshot)?;
        let versions = snap.entry_versions().map_err(FleetError::Snapshot)?;
        let fresh: Vec<MethodKey> = versions
            .iter()
            .filter(|(key, entry_id, sig_version, body_fp)| {
                !self.cache.contains(key, *entry_id, *sig_version, *body_fp)
            })
            .map(|(key, _, _, _)| *key)
            .collect();
        if fresh.is_empty() {
            return Ok(0);
        }
        self.cache
            .load_snapshot(&snap)
            .map_err(FleetError::Snapshot)?;
        let mut st = self.state();
        st.seq += 1;
        st.world = epochs;
        let (seq, tick) = (st.seq, st.next_tick());
        for key in &fresh {
            st.meta.insert(
                *key,
                EntryMeta {
                    last_seq: seq,
                    last_touch: tick,
                },
            );
        }
        st.push_history();
        drop(st);
        self.publishes
            .fetch_add(fresh.len() as u64, Ordering::Relaxed);
        Ok(fresh.len() as u64)
    }

    /// Applies eviction notices: each named family is dropped together
    /// with the families of its dependents (their derivations consulted
    /// the evicted signature), and every family actually removed is
    /// tombstoned so delta clients retire it too. Returns the number of
    /// families dropped.
    pub fn evict(&self, keys: &[MethodKey]) -> u64 {
        let mut dropped: Vec<MethodKey> = Vec::new();
        for key in keys {
            // Dependents first: `evict_method` prunes the reverse edges
            // of the family it removes, so reading them afterwards would
            // lose the fan-out.
            let mut family: Vec<MethodKey> = self.cache.dependents_of(key);
            family.push(*key);
            for k in family {
                if self.cache.evict_method(&k) > 0 {
                    dropped.push(k);
                }
            }
        }
        if dropped.is_empty() {
            return 0;
        }
        let mut st = self.state();
        st.seq += 1;
        let seq = st.seq;
        for key in &dropped {
            st.meta.remove(key);
            st.tombstones.push_back((seq, *key));
        }
        st.push_history();
        drop(st);
        self.evictions
            .fetch_add(dropped.len() as u64, Ordering::Relaxed);
        dropped.len() as u64
    }

    /// One deterministic maintenance pass: LRU compaction to the entry
    /// cap, then atomic snapshot writeback (when configured). Returns
    /// `(families_compacted, wrote_snapshot)`.
    pub fn maintain(&self) -> (usize, bool) {
        let compacted = self.compact();
        let wrote = self.writeback().unwrap_or_default();
        (compacted, wrote)
    }

    /// Evicts least-recently-adopted families until the tier fits the
    /// configured cap. Compaction is a capacity decision, not a world
    /// change: it does **not** tombstone (clients holding the entries
    /// keep them; they are still valid candidates) and does not bump
    /// the sequence number.
    fn compact(&self) -> usize {
        if self.config.max_entries == 0 {
            return 0;
        }
        let mut families_dropped = 0;
        while self.cache.len() > self.config.max_entries {
            let victim = {
                let st = self.state();
                st.meta
                    .iter()
                    .min_by_key(|(key, m)| (m.last_touch, **key))
                    .map(|(key, _)| *key)
            };
            let Some(victim) = victim else { break };
            let removed = self.cache.evict_method(&victim);
            self.state().meta.remove(&victim);
            if removed == 0 && self.cache.len() > self.config.max_entries {
                // Metadata named a family the tier no longer holds and
                // the tier is still over cap: without the remove above
                // making progress we would spin.
                continue;
            }
            if removed > 0 {
                families_dropped += 1;
            }
        }
        if families_dropped > 0 {
            self.compactions
                .fetch_add(families_dropped as u64, Ordering::Relaxed);
        }
        families_dropped
    }

    /// Re-serializes the tier to the configured snapshot path — write
    /// to a temp file, then rename, so a crash mid-write never leaves a
    /// torn artifact — and folds the tombstone log into it (the file is
    /// a full image; tombstones at or below the written seq are no
    /// longer needed for recovery, only for live delta clients, whose
    /// floor rises accordingly).
    fn writeback(&self) -> std::io::Result<bool> {
        let Some(path) = &self.config.snapshot_path else {
            return Ok(false);
        };
        let seq_at_capture = self.state().seq;
        let bytes = self.cache.snapshot().to_bytes();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)?;
        let mut st = self.state();
        st.tombstone_floor = st.tombstone_floor.max(seq_at_capture);
        let floor = st.tombstone_floor;
        while st.tombstones.front().is_some_and(|&(s, _)| s <= floor) {
            st.tombstones.pop_front();
        }
        drop(st);
        self.writebacks.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Schedules [`FleetDaemon::maintain`] as a recurring pool job every
    /// `interval` — PR 5's "async snapshot writeback" follow-up made
    /// real. Drop the returned task to stop; the pass runs on a worker
    /// under the pool's panic containment.
    pub fn start_maintenance(
        self: &Arc<Self>,
        sched: &Arc<Scheduler>,
        interval: Duration,
    ) -> hb_sched::PeriodicTask {
        let daemon = self.clone();
        sched.submit_periodic(interval, move || {
            daemon.maintain();
        })
    }
}
