//! The RDL dispatch hook: runs `pre` contracts before intercepted calls.

use crate::state::{MethodKey, RdlState};
use hb_interp::{CallHook, DispatchInfo, ErrorKind, Flow, HbError, HookOutcome, Interp, Value};
use std::rc::Rc;

/// Runs `pre` contracts attached to the method being dispatched. The proc
/// executes with `self` rebound to the receiver, so Fig. 1's `type ...`
/// calls inside a `belongs_to` pre-hook target the model class.
pub struct RdlHook {
    pub state: Rc<RdlState>,
}

impl CallHook for RdlHook {
    fn before_call(
        &self,
        interp: &mut Interp,
        info: &DispatchInfo,
        recv: &Value,
        args: &[Value],
    ) -> Result<HookOutcome, HbError> {
        // Pre contracts may be registered against the defining module or any
        // class in the receiver's ancestry (Fig. 1 registers on the
        // framework module; Fig. 2 style registers on the mixing class), so
        // gather along the whole chain.
        let mut pres = Vec::new();
        let mut chain: Vec<String> = interp
            .registry
            .ancestors(info.recv_class)
            .into_iter()
            .map(|c| interp.registry.name(c).to_string())
            .collect();
        let owner_name = interp.registry.name(info.owner).to_string();
        if !chain.contains(&owner_name) {
            chain.push(owner_name);
        }
        for class in &chain {
            let key = MethodKey {
                class: class.clone(),
                class_level: info.class_level,
                method: info.name.clone(),
            };
            pres.extend(self.state.pres(&key));
        }
        let key = MethodKey {
            class: interp.registry.name(info.recv_class).to_string(),
            class_level: info.class_level,
            method: info.name.clone(),
        };
        for p in pres {
            let result = interp
                .call_proc(&p.proc_val, args.to_vec(), None, Some(recv.clone()), false)
                .map_err(Flow::into_error)?;
            if !result.truthy() {
                return Err(HbError::new(
                    ErrorKind::ContractBlame,
                    format!("precondition of {} failed", key.display()),
                    info.span,
                ));
            }
        }
        Ok(HookOutcome::default())
    }
}
