//! The RDL dispatch hook: runs `pre` contracts before intercepted calls.

use crate::state::{CheckPolicy, MethodKey, RdlState};
use hb_interp::{CallHook, DispatchInfo, ErrorKind, Flow, HbError, HookOutcome, Interp, Value};
use hb_syntax::{BlameTarget, DiagCode, DiagLabel, LabelRole, TypeDiagnostic};
use std::rc::Rc;

/// Runs `pre` contracts attached to the method being dispatched. The proc
/// executes with `self` rebound to the receiver, so Fig. 1's `type ...`
/// calls inside a `belongs_to` pre-hook target the model class.
pub struct RdlHook {
    pub state: Rc<RdlState>,
}

impl CallHook for RdlHook {
    fn before_call(
        &self,
        interp: &mut Interp,
        info: &DispatchInfo,
        recv: &Value,
        args: &[Value],
    ) -> Result<HookOutcome, HbError> {
        // Fast path: nothing registered anywhere — stay off the chain walk.
        if self.state.no_pres() {
            return Ok(HookOutcome::default());
        }
        // Pre contracts may be registered against the defining module or any
        // class in the receiver's ancestry (Fig. 1 registers on the
        // framework module; Fig. 2 style registers on the mixing class), so
        // gather along the whole chain — by interned symbol, no strings.
        let mut pres = Vec::new();
        let mut saw_owner = false;
        for (cid, class) in interp.registry.ancestor_syms(info.recv_class) {
            saw_owner |= cid == info.owner;
            let key = MethodKey {
                class,
                class_level: info.class_level,
                method: info.name,
            };
            self.state.pres_into(&key, &mut pres);
        }
        if !saw_owner {
            let key = MethodKey {
                class: interp.registry.name_sym(info.owner),
                class_level: info.class_level,
                method: info.name,
            };
            self.state.pres_into(&key, &mut pres);
        }
        if pres.is_empty() {
            return Ok(HookOutcome::default());
        }
        let key = MethodKey {
            class: interp.registry.name_sym(info.recv_class),
            class_level: info.class_level,
            method: info.name,
        };
        // Enforcement policy for this method. The proc itself ALWAYS runs
        // — pre hooks are where metaprogramming libraries generate types
        // (Fig. 1), so skipping them would change program behaviour; the
        // policy governs only what a falsy (rejecting) result does.
        let policy = if self.state.policies_trivial() {
            CheckPolicy::Enforce
        } else {
            self.state.policy_for(&key, &key)
        };
        for p in pres {
            let result = interp
                .call_proc(&p.proc_val, args.to_vec(), None, Some(recv.clone()), false)
                .map_err(Flow::into_error)?;
            if !result.truthy() {
                if policy == CheckPolicy::Off {
                    continue;
                }
                let shadowed = policy == CheckPolicy::Shadow;
                let message = format!("precondition of {} failed", key.display());
                let mut diag = TypeDiagnostic::error(
                    DiagCode::PreconditionFailed,
                    message.clone(),
                    info.span,
                    BlameTarget::Annotation(key),
                )
                .with_method(key)
                .with_label(
                    DiagLabel::new(
                        LabelRole::BlamedAnnotation,
                        "precondition contract registered here",
                        p.span,
                    )
                    .with_method(key),
                )
                .with_label(DiagLabel::new(
                    LabelRole::CallSite,
                    "rejected call made here",
                    info.span,
                ));
                if shadowed {
                    diag.labels.push(CheckPolicy::shadow_note());
                }
                self.state.record_diagnostic(diag.clone());
                if shadowed {
                    // Canary mode: the rejection is recorded and counted,
                    // the call proceeds.
                    self.state.note_shadowed_blame();
                    continue;
                }
                return Err(HbError::with_diagnostic(
                    ErrorKind::ContractBlame,
                    message,
                    info.span,
                    diag,
                ));
            }
        }
        Ok(HookOutcome::default())
    }
}
