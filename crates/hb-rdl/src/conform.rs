//! Run-time conformance: `type_of` a value and checking a value against a
//! type (used by dynamic argument checks and `rdl_cast`, paper §4).

use hb_interp::{Interp, Value};
use hb_types::Type;

/// The run-time type of a value, as the paper's `type_of`: `type_of(nil) =
/// nil`, `type_of([A]) = A`. Collections get their *raw* class (instantiated
/// generics require casts, §4 "Type Casts").
pub fn type_of(interp: &Interp, v: &Value) -> Type {
    match v {
        Value::Nil => Type::Nil,
        Value::Bool(_) => Type::Bool,
        Value::Int(_) => Type::nominal("Fixnum"),
        Value::Float(_) => Type::nominal("Float"),
        Value::Str(_) => Type::nominal("String"),
        Value::Sym(_) => Type::nominal("Symbol"),
        Value::Array(_) => Type::nominal("Array"),
        Value::Hash(_) => Type::nominal("Hash"),
        Value::Range(_) => Type::nominal("Range"),
        Value::Proc(_) => Type::nominal("Proc"),
        Value::Obj(o) => Type::nominal(interp.registry.name(o.class)),
        Value::Class(c) => Type::ClassObj(interp.registry.name(*c).to_string()),
    }
}

/// Does `v` conform to `ty` at run time? Deep for instantiated generics
/// (`rdl_cast` over an array checks every element, §4).
pub fn value_conforms(interp: &Interp, v: &Value, ty: &Type) -> bool {
    // nil inhabits every type (`nil ≤ τ`, paper §3).
    if matches!(v, Value::Nil) {
        return true;
    }
    match ty {
        Type::Any | Type::Var(_) => true,
        Type::Bool => matches!(v, Value::Bool(_)),
        Type::Nil => matches!(v, Value::Nil),
        Type::Union(arms) => arms.iter().any(|a| value_conforms(interp, v, a)),
        Type::Nominal(n) => {
            if matches!(v, Value::Bool(_)) {
                return n == "Boolean" || n == "Object";
            }
            let have = interp.registry.class_of(v);
            interp
                .registry
                .is_descendant_name(interp.registry.name(have), n)
        }
        Type::Generic(n, args) => {
            match (n.as_str(), v) {
                ("Array", Value::Array(a)) => {
                    let elem = args.first().cloned().unwrap_or(Type::Any);
                    a.borrow().iter().all(|e| value_conforms(interp, e, &elem))
                }
                ("Hash", Value::Hash(h)) => {
                    let kt = args.first().cloned().unwrap_or(Type::Any);
                    let vt = args.get(1).cloned().unwrap_or(Type::Any);
                    h.borrow().iter().all(|(k, val)| {
                        value_conforms(interp, k, &kt) && value_conforms(interp, val, &vt)
                    })
                }
                ("Range", Value::Range(r)) => {
                    let elem = args.first().cloned().unwrap_or(Type::Any);
                    value_conforms(interp, &r.0, &elem) && value_conforms(interp, &r.1, &elem)
                }
                _ => {
                    // Other generics conform by base class.
                    let have = interp.registry.class_of(v);
                    interp
                        .registry
                        .is_descendant_name(interp.registry.name(have), n)
                }
            }
        }
        Type::ClassObj(n) => match v {
            Value::Class(c) => interp
                .registry
                .is_descendant_name(interp.registry.name(*c), n),
            _ => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_types::parse_type;

    fn t(s: &str) -> Type {
        parse_type(s).unwrap()
    }

    #[test]
    fn type_of_primitives() {
        let i = Interp::new();
        assert_eq!(type_of(&i, &Value::Nil), Type::Nil);
        assert_eq!(type_of(&i, &Value::Int(1)).to_string(), "Fixnum");
        assert_eq!(type_of(&i, &Value::str("x")).to_string(), "String");
        assert_eq!(type_of(&i, &Value::array(vec![])).to_string(), "Array");
        assert_eq!(type_of(&i, &Value::Bool(true)), Type::Bool);
    }

    #[test]
    fn conformance_nominal_and_tower() {
        let i = Interp::new();
        assert!(value_conforms(&i, &Value::Int(1), &t("Fixnum")));
        assert!(value_conforms(&i, &Value::Int(1), &t("Integer")));
        assert!(value_conforms(&i, &Value::Int(1), &t("Numeric")));
        assert!(value_conforms(&i, &Value::Int(1), &t("Object")));
        assert!(!value_conforms(&i, &Value::Int(1), &t("String")));
        assert!(!value_conforms(&i, &Value::Float(1.0), &t("Integer")));
    }

    #[test]
    fn nil_conforms_to_everything() {
        let i = Interp::new();
        for ty in ["User", "Array<Fixnum>", "%bool", "Fixnum or Float"] {
            assert!(value_conforms(&i, &Value::Nil, &t(ty)), "{ty}");
        }
    }

    #[test]
    fn deep_generic_checks() {
        let i = Interp::new();
        let ints = Value::array(vec![Value::Int(1), Value::Int(2)]);
        assert!(value_conforms(&i, &ints, &t("Array<Fixnum>")));
        let mixed = Value::array(vec![Value::Int(1), Value::str("x")]);
        assert!(!value_conforms(&i, &mixed, &t("Array<Fixnum>")));
        assert!(value_conforms(&i, &mixed, &t("Array<%any>")));
        let h = Value::hash_from(vec![(Value::str("k"), Value::Int(1))]);
        assert!(value_conforms(&i, &h, &t("Hash<String, Fixnum>")));
        assert!(!value_conforms(&i, &h, &t("Hash<Symbol, Fixnum>")));
    }

    #[test]
    fn union_conformance() {
        let i = Interp::new();
        let ty = t("Fixnum or Float");
        assert!(value_conforms(&i, &Value::Int(1), &ty));
        assert!(value_conforms(&i, &Value::Float(1.5), &ty));
        assert!(!value_conforms(&i, &Value::str("s"), &ty));
    }

    #[test]
    fn class_obj_conformance() {
        let mut i = Interp::new();
        i.eval_str("class User\nend\nclass Admin < User\nend")
            .unwrap();
        let user = i.constant("User").unwrap();
        let admin = i.constant("Admin").unwrap();
        assert!(value_conforms(&i, &user, &t("Class<User>")));
        assert!(value_conforms(&i, &admin, &t("Class<User>")));
        assert!(!value_conforms(&i, &user, &t("Class<Admin>")));
        assert!(!value_conforms(&i, &Value::Int(1), &t("Class<User>")));
    }
}
