//! The runtime type table and annotation state.
//!
//! Keys are interned ([`Sym`]), making [`MethodKey`] a 12-byte `Copy` value
//! and the steady-state dispatch lookup a pair of integer-keyed hash
//! probes: no per-call allocation anywhere on the hot path. Entries are
//! stored behind `Rc`, so handing one to the engine clones a pointer, not
//! a `MethodSig`.

use hb_intern::Sym;
use hb_syntax::{DiagLabel, LabelRole, Span, TypeDiagnostic};
use hb_types::{MethodSig, MethodType, Type};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

/// Default retention bound for recorded blame diagnostics: a long-running
/// tenant re-hitting a buggy endpoint produces one diagnostic per request
/// (failures are never cached), so the store keeps only the most recent
/// window instead of growing without bound. Embedders size the window via
/// `HummingbirdBuilder::diagnostics_cap` ([`RdlState::set_diagnostics_cap`]).
pub const DEFAULT_DIAGNOSTICS_CAP: usize = 1024;

/// How blame is enforced for a method — the per-declaration enforcement
/// level that makes just-in-time checking deployable on live traffic
/// (warn-vs-raise in the Gradual Soundness sense).
///
/// * [`CheckPolicy::Enforce`] — blame raises, aborting the call (the
///   paper's behaviour and the default).
/// * [`CheckPolicy::Shadow`] — the full check still runs and the
///   structured [`TypeDiagnostic`] is recorded, but execution continues:
///   the canary-deploy mode. A method whose check failed runs *unchecked*
///   (its callees fall back to dynamic argument checks).
/// * [`CheckPolicy::Deferred`] — a cold call does not wait for the static
///   check: the engine enqueues the check onto the concurrent scheduler
///   and admits the call immediately under full dynamic checks (Shadow
///   semantics for the deferred blame — it is recorded asynchronously and
///   never raises; dynamic argument checks still enforce). The body is
///   only marked checked once the worker's derivation lands *and* its
///   fingerprints still match — soundness is unchanged; first-call
///   latency spikes become background work.
/// * [`CheckPolicy::Off`] — the engine skips type enforcement for the
///   method entirely (no static check, no dynamic argument check).
///   Annotation *execution* is never skipped — metaprogramming `pre`
///   hooks still run; only a falsy contract result is ignored.
///
/// Policies resolve most-specific-first: method override (receiver key,
/// then the annotation's declaring key), class override (receiver class,
/// then declaring class), then the global policy. Lookups are exact-key —
/// no ancestor-chain walk — so resolution stays O(1) off the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckPolicy {
    /// Blame raises (default).
    #[default]
    Enforce,
    /// Check, record the diagnostic, continue executing.
    Shadow,
    /// Admit the call immediately; check asynchronously on the scheduler.
    Deferred,
    /// Skip type enforcement for the method.
    Off,
}

impl CheckPolicy {
    /// Parses a policy name (`"enforce"` / `"shadow"` / `"deferred"` /
    /// `"off"`, any case), as accepted by the `check_policy` builtin and
    /// CLI flags.
    pub fn parse(s: &str) -> Option<CheckPolicy> {
        match s.to_ascii_lowercase().as_str() {
            "enforce" => Some(CheckPolicy::Enforce),
            "shadow" => Some(CheckPolicy::Shadow),
            "deferred" => Some(CheckPolicy::Deferred),
            "off" => Some(CheckPolicy::Off),
            _ => None,
        }
    }

    /// The canonical lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            CheckPolicy::Enforce => "enforce",
            CheckPolicy::Shadow => "shadow",
            CheckPolicy::Deferred => "deferred",
            CheckPolicy::Off => "off",
        }
    }

    /// The note label appended to EVERY shadowed blame diagnostic —
    /// static-check, dynamic-argument and precondition alike — so a
    /// consumer of the diagnostics stream can tell a blame execution
    /// continued past from one that aborted the call.
    pub fn shadow_note() -> DiagLabel {
        DiagLabel::new(
            LabelRole::Note,
            "shadow check policy: blame recorded, execution continues",
            Span::dummy(),
        )
    }

    /// The note label appended to a blame that a *deferred* check produced
    /// asynchronously: the triggering call had already been admitted under
    /// dynamic checks when the scheduler worker's check blamed, so —
    /// exactly like a shadowed blame — execution continued past it.
    pub fn deferred_note() -> DiagLabel {
        DiagLabel::new(
            LabelRole::Note,
            "deferred check policy: blame recorded asynchronously, the call was admitted under dynamic checks",
            Span::dummy(),
        )
    }
}

impl std::fmt::Display for CheckPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A listener notified of every recorded blame [`TypeDiagnostic`] at the
/// moment it enters the bounded store — the embedder's streaming channel
/// (ship shadow-mode blames to a metrics pipeline without polling
/// `diagnostics()`). Sinks run synchronously on the blaming thread.
pub trait DiagnosticSink {
    /// Called once per recorded diagnostic, in emission order.
    fn on_diagnostic(&self, d: &TypeDiagnostic);
}

// `MethodKey` moved down to `hb-intern` so the structured-diagnostics layer
// in `hb-syntax` can blame annotations by key; re-exported here so every
// existing `hb_rdl::MethodKey` user keeps compiling unchanged.
pub use hb_intern::MethodKey;

/// A (TApp) resolution *witness*: looking `method` up along `start`'s
/// ancestor chain (skipping the receiver itself for `super`) at
/// `class_level` resolved to the annotation at `target` — or to nothing
/// (`target == None`), a negative fact that fallback lookups depend on.
///
/// Witnesses are what make cached derivations portable: Definition 1's
/// validity is about what (TApp) *resolves to*, not merely which table
/// entries it read, so a consumer replays each witness against its own
/// table and class hierarchy. A shadowing annotation anywhere along the
/// chain changes the replay's answer and the derivation is rejected —
/// no global invalidation choreography required.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Resolution {
    /// Class whose ancestor chain the lookup walked.
    pub start: Sym,
    /// Skip the chain's first element (`super` resolves above itself).
    pub skip_receiver: bool,
    /// Whether the lookup was at class level.
    pub class_level: bool,
    /// The method name looked up.
    pub method: Sym,
    /// The annotation key the lookup resolved to, if any.
    pub target: Option<MethodKey>,
}

impl Resolution {
    /// A plain instance/class-level resolution from `start`'s chain.
    pub fn of(
        start: &str,
        class_level: bool,
        method: &str,
        target: Option<MethodKey>,
    ) -> Resolution {
        Resolution {
            start: Sym::intern(start),
            skip_receiver: false,
            class_level,
            method: Sym::intern(method),
            target,
        }
    }
}

/// Where an annotation came from (paper Table 1's "Static types" vs
/// "Dynamic types" columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnotationSource {
    /// Written literally at the top level or in a class body.
    Static,
    /// Generated by executing code (pre-hooks, schema loops, `add_types`).
    Dynamic,
    /// Produced by the whole-program inference pass and *verified* by
    /// `check_sig` before registration — never hand-written. Provenance
    /// only on the hot paths: an inferred entry checks, derives,
    /// snapshots and distributes exactly like a declared one (the source
    /// is deliberately excluded from the table fingerprint, so adopting
    /// an inferred signature perturbs the epoch stream no differently
    /// than declaring it). The source *does* govern lifecycle: inferred
    /// entries are re-derivable by later inference runs and are
    /// [retracted](RdlState::retract_inferred) — not enforced — when a
    /// reload changes the body they were derived from.
    Inferred,
}

/// One method's annotation entry.
#[derive(Debug, Clone)]
pub struct TableEntry {
    pub sig: MethodSig,
    /// Statically check the body at call time (app methods); trusted
    /// otherwise (library/framework methods).
    pub check: bool,
    /// Always dynamically check arguments, even from checked callers (the
    /// Rails `params` exception, paper §4).
    pub always_dyn_check: bool,
    pub source: AnnotationSource,
    /// Bumped on every change, so the engine can validate cache entries.
    pub version: u64,
    /// Where the annotation was registered: the span of the `type` call
    /// that created the entry (updated on `replace`). This is the span
    /// structured diagnostics blame — "the annotation at talks/types.rb:12
    /// disagrees with this body". Dummy for entries registered
    /// programmatically without a source site. Deliberately excluded from
    /// every fingerprint: identical annotations registered from different
    /// locations must still share derivations across tenants.
    pub span: Span,
}

/// A type-table change event, drained by the Hummingbird engine to drive
/// invalidation ((EType) / Definition 1) and phase counting (§5).
#[derive(Debug, Clone, PartialEq)]
pub enum RdlEvent {
    /// A new annotation appeared for a previously untyped method.
    TypeAdded(MethodKey),
    /// An intersection arm was added to an existing signature. Dependents
    /// stay valid (§4 "Cache Invalidation"); the method itself re-checks.
    ArmAdded(MethodKey),
    /// The signature was replaced outright; dependents must be invalidated.
    TypeReplaced(MethodKey),
}

/// A `pre` contract: a proc run before dispatch (paper Fig. 1).
#[derive(Clone)]
pub struct PreHook {
    pub proc_val: std::rc::Rc<hb_interp::ProcVal>,
    /// Where the contract was registered (the `pre` call site), for blame
    /// labels when the contract rejects a call.
    pub span: Span,
}

/// A listener notified of every [`RdlEvent`] at the moment it is emitted,
/// before any engine drains it. This is the fan-out channel by which a
/// tenant's type-table mutations reach *process-wide* structures — the
/// shared derivation tier evicts entries here, so other tenants stop
/// seeing derivations checked against a signature that no longer exists
/// anywhere. Sinks run on the mutating tenant's thread.
pub trait RdlEventSink {
    /// Called once per emitted event, in emission order.
    fn on_rdl_event(&self, ev: &RdlEvent);

    /// Called when enforcement configuration changes in a way emitted
    /// events do not capture: a policy override is set or a `pre` contract
    /// attaches. The bytecode tier's fast-entry patch table deoptimizes
    /// here — patched entries skip the per-call hook probe entirely, which
    /// is only sound while policies are trivial and no preconditions exist.
    fn on_enforcement_changed(&self) {}
}

#[derive(Default)]
pub struct RdlInner {
    /// Keyed with [`hb_intern::FastMap`]: `lookup_along` probes this map
    /// once per ancestor on every intercepted call.
    table: hb_intern::FastMap<MethodKey, Rc<TableEntry>>,
    /// Instance-variable types per class (`var_type` / `field_type`),
    /// with the declaration site for blame labels.
    ivar_types: HashMap<(String, String), (Type, Span)>,
    /// Class-variable types per class.
    cvar_types: HashMap<(String, String), (Type, Span)>,
    /// Global-variable types.
    gvar_types: HashMap<String, (Type, Span)>,
    pres: HashMap<MethodKey, Vec<PreHook>>,
    events: Vec<RdlEvent>,
    /// Keys consulted by the static checker (Table 1 "Used" needs the
    /// dynamic subset).
    used: HashSet<MethodKey>,
    version_counter: u64,
    /// Rolling, order-sensitive fingerprint of every table mutation
    /// (annotations and ivar/cvar/gvar registrations). Two `RdlState`s
    /// that performed the identical mutation sequence — e.g. two tenants
    /// booting the same app — have equal fingerprints; any divergence
    /// (content, order, or count) separates them. The shared derivation
    /// tier uses equality as its O(1) "identical type state" fast path.
    table_fp: u64,
    /// Rolling fingerprint of ivar/cvar/gvar type registrations only.
    /// Checked derivations read variable types without recording
    /// per-variable witnesses, so the shared tier's witness-replay path
    /// requires this fingerprint to match exactly.
    var_fp: u64,
    /// Count of dynamic contract checks executed (arguments + casts).
    pub dyn_checks_run: u64,
    /// Count of casts executed at run time.
    pub casts_run: u64,
    /// Every blame diagnostic produced, in emission order, capped at
    /// `diagnostics_cap` (oldest dropped first). One shared store for all
    /// layers — the engine's check/dynamic-argument blames and this
    /// crate's cast/precondition blames — so `Hummingbird::diagnostics()`
    /// sees them interleaved as they happened.
    diagnostics: VecDeque<TypeDiagnostic>,
    /// Retention bound for `diagnostics` (builder-configured; `None` is
    /// [`DEFAULT_DIAGNOSTICS_CAP`]; zero keeps nothing in the store and
    /// relies on sinks alone).
    diagnostics_cap: Option<usize>,
    /// Global enforcement policy (see [`CheckPolicy`]).
    global_policy: CheckPolicy,
    /// Per-class policy overrides, exact class name.
    class_policies: HashMap<Sym, CheckPolicy>,
    /// Per-method policy overrides, exact key.
    method_policies: HashMap<MethodKey, CheckPolicy>,
    /// Blames swallowed by [`CheckPolicy::Shadow`] across every layer —
    /// static checks, dynamic argument checks AND preconditions (the
    /// latter blame from `hook.rs`, which has no engine statistics, so
    /// the counter lives here and `EngineStats` snapshots it).
    shadowed_blames: u64,
}

/// Shared, internally mutable RDL state. Stored as an interpreter extension
/// so builtins and the engine both reach it.
#[derive(Default)]
pub struct RdlState {
    pub inner: RefCell<RdlInner>,
    /// Fan-out listeners (see [`RdlEventSink`]); notified outside the
    /// `inner` borrow so sinks may read the table.
    sinks: RefCell<Vec<Rc<dyn RdlEventSink>>>,
    /// Streaming diagnostic listeners (see [`DiagnosticSink`]); notified
    /// outside the `inner` borrow so sinks may read the table.
    diag_sinks: RefCell<Vec<Rc<dyn DiagnosticSink>>>,
    /// Set once any policy override exists (or the global policy leaves
    /// `Enforce`) — the dispatch hot path reads only this flag, so the
    /// default configuration pays one `Cell` load per intercepted call and
    /// never probes the policy maps.
    policies_nontrivial: std::cell::Cell<bool>,
}

/// Folds one mutation into a rolling fingerprint: order-sensitive, cheap,
/// and stable within the process (Sym indices are process-global, and the
/// hasher is the shared tier's single fingerprint helper).
fn mix_fp(fp: u64, item: impl std::hash::Hash) -> u64 {
    hb_intern::fingerprint64((fp, item))
}

impl RdlState {
    /// Creates empty state.
    pub fn new() -> RdlState {
        RdlState::default()
    }

    /// Registers an event sink; every subsequently emitted [`RdlEvent`]
    /// fans out to it.
    pub fn add_event_sink(&self, sink: Rc<dyn RdlEventSink>) {
        self.sinks.borrow_mut().push(sink);
    }

    fn notify(&self, ev: &RdlEvent) {
        for sink in self.sinks.borrow().iter() {
            sink.on_rdl_event(ev);
        }
    }

    fn notify_enforcement_changed(&self) {
        for sink in self.sinks.borrow().iter() {
            sink.on_enforcement_changed();
        }
    }

    /// Adds a method type with no recorded registration site (tests and
    /// programmatic annotations). See [`RdlState::add_type_at`].
    #[allow(clippy::too_many_arguments)]
    pub fn add_type(
        &self,
        key: MethodKey,
        mt: MethodType,
        check: bool,
        always_dyn_check: bool,
        source: AnnotationSource,
        replace: bool,
    ) {
        self.add_type_at(
            key,
            mt,
            check,
            always_dyn_check,
            source,
            replace,
            Span::dummy(),
        );
    }

    /// Adds a method type. Repeated calls for the same key accumulate
    /// intersection arms unless `replace` is set. `span` is where the
    /// annotation was registered (the `type` call site), kept on the entry
    /// for blame labels.
    #[allow(clippy::too_many_arguments)]
    pub fn add_type_at(
        &self,
        key: MethodKey,
        mt: MethodType,
        check: bool,
        always_dyn_check: bool,
        source: AnnotationSource,
        replace: bool,
        span: Span,
    ) {
        let mut inner = self.inner.borrow_mut();
        inner.version_counter += 1;
        let version = inner.version_counter;
        // Fingerprint string contents, not Sym indices: indices depend on
        // process-local interning order, and this fingerprint is compared
        // across processes by the snapshot warm-boot path.
        inner.table_fp = mix_fp(
            inner.table_fp,
            (
                key.class.as_str(),
                key.class_level,
                key.method.as_str(),
                &mt,
                check,
                always_dyn_check,
                replace,
            ),
        );
        let event = match inner.table.get_mut(&key) {
            Some(shared) => {
                // Entries are shared with the engine via `Rc`; annotation
                // updates are rare (the annotate phase), so copy-on-write
                // here keeps the read path free of any locking or cloning.
                let entry = Rc::make_mut(shared);
                if replace {
                    entry.sig = MethodSig::single(mt);
                    entry.version = version;
                    entry.check |= check;
                    entry.always_dyn_check |= always_dyn_check;
                    entry.span = span;
                    Some(RdlEvent::TypeReplaced(key))
                } else {
                    let before = entry.sig.arms.len();
                    entry.sig.add_arm(mt);
                    entry.check |= check;
                    entry.always_dyn_check |= always_dyn_check;
                    if entry.span == Span::dummy() {
                        // An arm added from source upgrades a previously
                        // site-less entry to a blameable one.
                        entry.span = span;
                    }
                    if entry.sig.arms.len() != before {
                        entry.version = version;
                        Some(RdlEvent::ArmAdded(key))
                    } else {
                        None
                    }
                }
            }
            None => {
                inner.table.insert(
                    key,
                    Rc::new(TableEntry {
                        sig: MethodSig::single(mt),
                        check,
                        always_dyn_check,
                        source,
                        version,
                        span,
                    }),
                );
                Some(RdlEvent::TypeAdded(key))
            }
        };
        if let Some(ev) = event {
            inner.events.push(ev.clone());
            drop(inner);
            self.notify(&ev);
        }
    }

    /// Retracts an *inferred* annotation: removes the entry outright and
    /// emits [`RdlEvent::TypeReplaced`] so dependents invalidate. Returns
    /// whether anything was retracted — entries from any other
    /// [`AnnotationSource`] are user intent and are never touched.
    ///
    /// Inference derives signatures from method bodies, so a redefinition
    /// that changes the body makes the adopted signature *stale evidence*,
    /// not a contract the new body must satisfy: enforcing it would turn a
    /// previously legal reload into a type error. Retraction returns the
    /// method to its unannotated state; the next inference run re-derives
    /// against the new body.
    pub fn retract_inferred(&self, key: &MethodKey) -> bool {
        let mut inner = self.inner.borrow_mut();
        let inferred = inner
            .table
            .get(key)
            .is_some_and(|e| e.source == AnnotationSource::Inferred);
        if !inferred {
            return false;
        }
        inner.table.remove(key);
        inner.version_counter += 1;
        // The mutation history diverged from any tenant that never
        // adopted (or never retracted) — fingerprint the retraction so
        // the shared tier's identical-state fast path stays conservative.
        inner.table_fp = mix_fp(
            inner.table_fp,
            (
                key.class.as_str(),
                key.class_level,
                key.method.as_str(),
                "retract-inferred",
            ),
        );
        let ev = RdlEvent::TypeReplaced(*key);
        inner.events.push(ev.clone());
        drop(inner);
        self.notify(&ev);
        true
    }

    /// Looks up the entry for exactly this key (a pointer clone).
    pub fn entry(&self, key: &MethodKey) -> Option<Rc<TableEntry>> {
        self.inner.borrow().table.get(key).cloned()
    }

    /// Resolves a method type along an ancestor chain of interned class
    /// names — the engine hook's per-call lookup. Returns the annotation's
    /// own key plus a pointer clone of the entry; allocates nothing.
    pub fn lookup_along(
        &self,
        classes: impl IntoIterator<Item = Sym>,
        class_level: bool,
        method: Sym,
    ) -> Option<(MethodKey, Rc<TableEntry>)> {
        let inner = self.inner.borrow();
        for class in classes {
            let key = MethodKey {
                class,
                class_level,
                method,
            };
            if let Some(e) = inner.table.get(&key) {
                return Some((key, e.clone()));
            }
        }
        None
    }

    /// [`RdlState::lookup_along`] over plain class names (the static
    /// checker's resolution path, where chains arrive as strings).
    pub fn lookup_along_names(
        &self,
        classes: &[String],
        class_level: bool,
        method: &str,
    ) -> Option<(MethodKey, Rc<TableEntry>)> {
        let m = Sym::intern(method);
        self.lookup_along(classes.iter().map(|c| Sym::intern(c)), class_level, m)
    }

    /// Records that the checker consulted `key` (for "Used" statistics).
    pub fn mark_used(&self, key: &MethodKey) {
        self.inner.borrow_mut().used.insert(*key);
    }

    /// Registers an instance-variable type (no declaration site).
    pub fn set_ivar_type(&self, class: &str, ivar: &str, ty: Type) {
        self.set_ivar_type_at(class, ivar, ty, Span::dummy());
    }

    /// Registers an instance-variable type with its declaration site.
    pub fn set_ivar_type_at(&self, class: &str, ivar: &str, ty: Type, span: Span) {
        let mut inner = self.inner.borrow_mut();
        inner.table_fp = mix_fp(inner.table_fp, ("ivar", class, ivar, &ty));
        inner.var_fp = mix_fp(inner.var_fp, ("ivar", class, ivar, &ty));
        inner
            .ivar_types
            .insert((class.to_string(), ivar.to_string()), (ty, span));
    }

    /// Looks up an instance-variable type along an ancestor chain.
    pub fn ivar_type(&self, classes: &[String], ivar: &str) -> Option<Type> {
        self.ivar_decl(classes, ivar).map(|(t, _)| t)
    }

    /// Instance-variable type *and* declaration site along a chain.
    pub fn ivar_decl(&self, classes: &[String], ivar: &str) -> Option<(Type, Span)> {
        let inner = self.inner.borrow();
        for c in classes {
            if let Some(t) = inner.ivar_types.get(&(c.clone(), ivar.to_string())) {
                return Some(t.clone());
            }
        }
        None
    }

    /// Registers a class-variable type (no declaration site).
    pub fn set_cvar_type(&self, class: &str, cvar: &str, ty: Type) {
        self.set_cvar_type_at(class, cvar, ty, Span::dummy());
    }

    /// Registers a class-variable type with its declaration site.
    pub fn set_cvar_type_at(&self, class: &str, cvar: &str, ty: Type, span: Span) {
        let mut inner = self.inner.borrow_mut();
        inner.table_fp = mix_fp(inner.table_fp, ("cvar", class, cvar, &ty));
        inner.var_fp = mix_fp(inner.var_fp, ("cvar", class, cvar, &ty));
        inner
            .cvar_types
            .insert((class.to_string(), cvar.to_string()), (ty, span));
    }

    /// Looks up a class-variable type along an ancestor chain.
    pub fn cvar_type(&self, classes: &[String], cvar: &str) -> Option<Type> {
        self.cvar_decl(classes, cvar).map(|(t, _)| t)
    }

    /// Class-variable type *and* declaration site along a chain.
    pub fn cvar_decl(&self, classes: &[String], cvar: &str) -> Option<(Type, Span)> {
        let inner = self.inner.borrow();
        for c in classes {
            if let Some(t) = inner.cvar_types.get(&(c.clone(), cvar.to_string())) {
                return Some(t.clone());
            }
        }
        None
    }

    /// Registers a global-variable type (no declaration site).
    pub fn set_gvar_type(&self, gvar: &str, ty: Type) {
        self.set_gvar_type_at(gvar, ty, Span::dummy());
    }

    /// Registers a global-variable type with its declaration site.
    pub fn set_gvar_type_at(&self, gvar: &str, ty: Type, span: Span) {
        let mut inner = self.inner.borrow_mut();
        inner.table_fp = mix_fp(inner.table_fp, ("gvar", gvar, &ty));
        inner.var_fp = mix_fp(inner.var_fp, ("gvar", gvar, &ty));
        inner.gvar_types.insert(gvar.to_string(), (ty, span));
    }

    /// Looks up a global-variable type.
    pub fn gvar_type(&self, gvar: &str) -> Option<Type> {
        self.gvar_decl(gvar).map(|(t, _)| t)
    }

    /// Global-variable type *and* declaration site.
    pub fn gvar_decl(&self, gvar: &str) -> Option<(Type, Span)> {
        self.inner.borrow().gvar_types.get(gvar).cloned()
    }

    // ----- snapshot export ---------------------------------------------------
    //
    // The concurrent scheduler captures an owned, `Send` copy of the
    // checker-visible table state (the `CheckTask` world snapshot); these
    // accessors are that capture's read surface. Sorted for determinism.

    /// Every instance-variable declaration as `((class, ivar), (type,
    /// span))`, sorted.
    pub fn ivar_decls(&self) -> Vec<((String, String), (Type, Span))> {
        let mut v: Vec<_> = self
            .inner
            .borrow()
            .ivar_types
            .iter()
            .map(|(k, d)| (k.clone(), d.clone()))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Every class-variable declaration as `((class, cvar), (type,
    /// span))`, sorted.
    pub fn cvar_decls(&self) -> Vec<((String, String), (Type, Span))> {
        let mut v: Vec<_> = self
            .inner
            .borrow()
            .cvar_types
            .iter()
            .map(|(k, d)| (k.clone(), d.clone()))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Every global-variable declaration as `(gvar, (type, span))`, sorted.
    pub fn gvar_decls(&self) -> Vec<(String, (Type, Span))> {
        let mut v: Vec<_> = self
            .inner
            .borrow()
            .gvar_types
            .iter()
            .map(|(k, d)| (k.clone(), d.clone()))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Attaches a `pre` contract.
    pub fn add_pre(&self, key: MethodKey, hook: PreHook) {
        self.inner
            .borrow_mut()
            .pres
            .entry(key)
            .or_default()
            .push(hook);
        self.notify_enforcement_changed();
    }

    /// True when no `pre` contracts exist at all — lets the dispatch hook
    /// skip the ancestor walk entirely in the common case.
    pub fn no_pres(&self) -> bool {
        self.inner.borrow().pres.is_empty()
    }

    /// True when no `pre` contract anywhere is registered under this
    /// method name — the per-method gate the fast-prologue patcher uses.
    /// Pres match along the receiver's whole ancestor chain, so the gate
    /// is name-wide rather than key-exact; a pre on an unrelated method
    /// must not forbid eliding this one's probe. Pres added later are
    /// covered by the enforcement-change flush.
    pub fn no_pre_named(&self, method: Sym, class_level: bool) -> bool {
        !self
            .inner
            .borrow()
            .pres
            .keys()
            .any(|k| k.method == method && k.class_level == class_level)
    }

    /// Appends the `pre` contracts registered for `key` into `out`.
    pub fn pres_into(&self, key: &MethodKey, out: &mut Vec<PreHook>) {
        if let Some(ps) = self.inner.borrow().pres.get(key) {
            out.extend(ps.iter().cloned());
        }
    }

    /// Registers a streaming diagnostic sink; every subsequently recorded
    /// diagnostic fans out to it (in addition to the bounded store).
    pub fn add_diagnostic_sink(&self, sink: Rc<dyn DiagnosticSink>) {
        self.diag_sinks.borrow_mut().push(sink);
    }

    /// Sets the retention bound of the diagnostic store (see
    /// [`DEFAULT_DIAGNOSTICS_CAP`]). Shrinking below the current length
    /// drops the oldest entries immediately. A cap of zero keeps nothing —
    /// diagnostics then reach the embedder through sinks only.
    pub fn set_diagnostics_cap(&self, cap: usize) {
        let mut inner = self.inner.borrow_mut();
        inner.diagnostics_cap = Some(cap);
        while inner.diagnostics.len() > cap {
            inner.diagnostics.pop_front();
        }
    }

    /// Records a blame diagnostic, dropping the oldest once the retention
    /// bound is reached, then notifies every [`DiagnosticSink`].
    pub fn record_diagnostic(&self, d: TypeDiagnostic) {
        {
            let mut inner = self.inner.borrow_mut();
            let cap = inner.diagnostics_cap.unwrap_or(DEFAULT_DIAGNOSTICS_CAP);
            while inner.diagnostics.len() >= cap.max(1) {
                inner.diagnostics.pop_front();
            }
            if cap > 0 {
                inner.diagnostics.push_back(d.clone());
            }
        }
        for sink in self.diag_sinks.borrow().iter() {
            sink.on_diagnostic(&d);
        }
    }

    // ----- enforcement policies ---------------------------------------------

    /// True while the policy configuration resolves every dispatch to
    /// `Enforce` — the hot path's one-load fast test.
    pub fn policies_trivial(&self) -> bool {
        !self.policies_nontrivial.get()
    }

    /// Recomputes the hot path's triviality flag after a policy mutation.
    /// Triviality is semantic, not structural: a rollback that sets
    /// everything back to `Enforce` (global and any lingering overrides)
    /// restores the one-`Cell`-load fast path rather than latching the
    /// engine onto the slow path forever.
    fn refresh_policy_triviality(&self, inner: &RdlInner) {
        let trivial = inner.global_policy == CheckPolicy::Enforce
            && inner
                .class_policies
                .values()
                .all(|p| *p == CheckPolicy::Enforce)
            && inner
                .method_policies
                .values()
                .all(|p| *p == CheckPolicy::Enforce);
        self.policies_nontrivial.set(!trivial);
    }

    /// Sets the global enforcement policy.
    pub fn set_global_policy(&self, policy: CheckPolicy) {
        {
            let mut inner = self.inner.borrow_mut();
            inner.global_policy = policy;
            self.refresh_policy_triviality(&inner);
        }
        self.notify_enforcement_changed();
    }

    /// Sets a per-class policy override (exact class name; applies to a
    /// method when the receiver's class or the annotation's declaring
    /// class matches).
    pub fn set_class_policy(&self, class: Sym, policy: CheckPolicy) {
        {
            let mut inner = self.inner.borrow_mut();
            inner.class_policies.insert(class, policy);
            self.refresh_policy_triviality(&inner);
        }
        self.notify_enforcement_changed();
    }

    /// Sets a per-method policy override (exact key; matched against the
    /// receiver-class key and the annotation's own key).
    pub fn set_method_policy(&self, key: MethodKey, policy: CheckPolicy) {
        {
            let mut inner = self.inner.borrow_mut();
            inner.method_policies.insert(key, policy);
            self.refresh_policy_triviality(&inner);
        }
        self.notify_enforcement_changed();
    }

    /// Counts a blame swallowed by [`CheckPolicy::Shadow`] (any layer).
    pub fn note_shadowed_blame(&self) {
        self.inner.borrow_mut().shadowed_blames += 1;
    }

    /// Blames swallowed by Shadow so far (snapshotted into
    /// `EngineStats::shadowed_blames`).
    pub fn shadowed_blames(&self) -> u64 {
        self.inner.borrow().shadowed_blames
    }

    /// Zeroes the shadowed-blame counter (statistics reset).
    pub fn reset_shadowed_blames(&self) {
        self.inner.borrow_mut().shadowed_blames = 0;
    }

    /// Resolves the effective policy for a dispatch: method override
    /// (receiver key, then annotation key), class override (receiver
    /// class, then annotation class), then the global policy.
    pub fn policy_for(&self, cache_key: &MethodKey, annotation_key: &MethodKey) -> CheckPolicy {
        let inner = self.inner.borrow();
        if let Some(&p) = inner
            .method_policies
            .get(cache_key)
            .or_else(|| inner.method_policies.get(annotation_key))
        {
            return p;
        }
        if let Some(&p) = inner
            .class_policies
            .get(&cache_key.class)
            .or_else(|| inner.class_policies.get(&annotation_key.class))
        {
            return p;
        }
        inner.global_policy
    }

    /// The retained blame diagnostics, oldest first.
    pub fn diagnostics(&self) -> Vec<TypeDiagnostic> {
        self.inner.borrow().diagnostics.iter().cloned().collect()
    }

    /// Clears the retained diagnostics.
    pub fn clear_diagnostics(&self) {
        self.inner.borrow_mut().diagnostics.clear();
    }

    /// Drains pending type-table events.
    pub fn drain_events(&self) -> Vec<RdlEvent> {
        std::mem::take(&mut self.inner.borrow_mut().events)
    }

    /// Monotonic generation of the type table: bumped by every annotation
    /// change, never otherwise. Memos keyed by it stay valid exactly as
    /// long as the table is quiescent.
    pub fn table_generation(&self) -> u64 {
        self.inner.borrow().version_counter
    }

    /// The rolling mutation fingerprint (see `RdlInner::table_fp`).
    pub fn table_fingerprint(&self) -> u64 {
        self.inner.borrow().table_fp
    }

    /// The rolling variable-type fingerprint (see `RdlInner::var_fp`).
    pub fn var_fingerprint(&self) -> u64 {
        self.inner.borrow().var_fp
    }

    /// Snapshot statistics for the evaluation tables.
    pub fn stats(&self) -> RdlStats {
        let inner = self.inner.borrow();
        let mut s = RdlStats::default();
        for (k, e) in &inner.table {
            s.total += 1;
            match e.source {
                AnnotationSource::Static => s.static_annotations += 1,
                AnnotationSource::Dynamic => {
                    s.dynamic_generated += 1;
                    if inner.used.contains(k) {
                        s.dynamic_used += 1;
                    }
                }
                AnnotationSource::Inferred => s.inferred_annotations += 1,
            }
            if e.check {
                s.checked_annotations += 1;
            }
        }
        s.used_total = inner.used.len();
        s.dyn_checks_run = inner.dyn_checks_run;
        s.casts_run = inner.casts_run;
        s
    }

    /// All entries, sorted by key (for deterministic reports).
    pub fn entries(&self) -> Vec<(MethodKey, Rc<TableEntry>)> {
        let inner = self.inner.borrow();
        let mut v: Vec<(MethodKey, Rc<TableEntry>)> =
            inner.table.iter().map(|(k, e)| (*k, e.clone())).collect();
        v.sort_by_key(|a| a.0);
        v
    }

    /// All keys with entries, sorted (for deterministic reports).
    pub fn keys(&self) -> Vec<MethodKey> {
        let mut v: Vec<MethodKey> = self.inner.borrow().table.keys().copied().collect();
        v.sort();
        v
    }

    /// Keys the checker consulted, sorted.
    pub fn used_keys(&self) -> Vec<MethodKey> {
        let mut v: Vec<MethodKey> = self.inner.borrow().used.iter().copied().collect();
        v.sort();
        v
    }
}

/// Aggregate annotation statistics (feeds Table 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RdlStats {
    pub total: usize,
    pub static_annotations: usize,
    pub checked_annotations: usize,
    pub dynamic_generated: usize,
    pub dynamic_used: usize,
    /// Entries registered by the checker-verified inference pass.
    pub inferred_annotations: usize,
    pub used_total: usize,
    pub dyn_checks_run: u64,
    pub casts_run: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_types::parse_method_type;

    fn mt(s: &str) -> MethodType {
        parse_method_type(s).unwrap()
    }

    #[test]
    fn add_and_lookup() {
        let st = RdlState::new();
        let key = MethodKey::instance("Talk", "owner?");
        st.add_type(
            key,
            mt("(User) -> %bool"),
            true,
            false,
            AnnotationSource::Static,
            false,
        );
        let e = st.entry(&key).unwrap();
        assert!(e.check);
        assert_eq!(e.sig.arms.len(), 1);
        assert_eq!(key.display(), "Talk#owner?");
    }

    #[test]
    fn repeated_type_builds_intersection() {
        let st = RdlState::new();
        let key = MethodKey::instance("Array", "[]");
        st.add_type(
            key,
            mt("(Fixnum or Float) -> t"),
            false,
            false,
            AnnotationSource::Static,
            false,
        );
        st.add_type(
            key,
            mt("(Fixnum, Fixnum) -> Array<t>"),
            false,
            false,
            AnnotationSource::Static,
            false,
        );
        st.add_type(
            key,
            mt("(Range<Fixnum>) -> Array<t>"),
            false,
            false,
            AnnotationSource::Static,
            false,
        );
        assert_eq!(st.entry(&key).unwrap().sig.arms.len(), 3);
        let ev = st.drain_events();
        assert_eq!(ev[0], RdlEvent::TypeAdded(key));
        assert_eq!(ev[1], RdlEvent::ArmAdded(key));
        assert_eq!(ev[2], RdlEvent::ArmAdded(key));
    }

    #[test]
    fn duplicate_arm_is_harmless_no_event() {
        let st = RdlState::new();
        let key = MethodKey::instance("A", "m");
        st.add_type(
            key,
            mt("() -> %bool"),
            false,
            false,
            AnnotationSource::Dynamic,
            false,
        );
        st.drain_events();
        st.add_type(
            key,
            mt("() -> %bool"),
            false,
            false,
            AnnotationSource::Dynamic,
            false,
        );
        assert!(st.drain_events().is_empty());
        assert_eq!(st.entry(&key).unwrap().sig.arms.len(), 1);
    }

    #[test]
    fn replace_emits_replaced() {
        let st = RdlState::new();
        let key = MethodKey::instance("A", "m");
        st.add_type(
            key,
            mt("() -> %bool"),
            false,
            false,
            AnnotationSource::Static,
            false,
        );
        st.drain_events();
        st.add_type(
            key,
            mt("() -> String"),
            false,
            false,
            AnnotationSource::Static,
            true,
        );
        assert_eq!(st.drain_events(), vec![RdlEvent::TypeReplaced(key)]);
        assert_eq!(st.entry(&key).unwrap().sig.arms.len(), 1);
    }

    #[test]
    fn lookup_along_ancestors() {
        let st = RdlState::new();
        st.add_type(
            MethodKey::instance("Base", "save"),
            mt("() -> %bool"),
            false,
            false,
            AnnotationSource::Static,
            false,
        );
        let chain = vec!["Talk".to_string(), "Base".to_string(), "Object".to_string()];
        let (key, _) = st.lookup_along_names(&chain, false, "save").unwrap();
        assert_eq!(key.class, "Base");
        assert!(st.lookup_along_names(&chain, false, "missing").is_none());
    }

    #[test]
    fn ivar_types_along_chain() {
        let st = RdlState::new();
        st.set_ivar_type(
            "Base",
            "items",
            hb_types::parse_type("Array<Fixnum>").unwrap(),
        );
        let chain = vec!["Sub".to_string(), "Base".to_string()];
        assert_eq!(
            st.ivar_type(&chain, "items").unwrap().to_string(),
            "Array<Fixnum>"
        );
        assert!(st.ivar_type(&chain, "other").is_none());
    }

    #[test]
    fn stats_distinguish_sources_and_usage() {
        let st = RdlState::new();
        let s1 = MethodKey::instance("A", "m1");
        let d1 = MethodKey::instance("A", "m2");
        let d2 = MethodKey::instance("A", "m3");
        st.add_type(
            s1,
            mt("() -> nil"),
            true,
            false,
            AnnotationSource::Static,
            false,
        );
        st.add_type(
            d1,
            mt("() -> nil"),
            false,
            false,
            AnnotationSource::Dynamic,
            false,
        );
        st.add_type(
            d2,
            mt("() -> nil"),
            false,
            false,
            AnnotationSource::Dynamic,
            false,
        );
        st.mark_used(&d1);
        let stats = st.stats();
        assert_eq!(stats.total, 3);
        assert_eq!(stats.static_annotations, 1);
        assert_eq!(stats.checked_annotations, 1);
        assert_eq!(stats.dynamic_generated, 2);
        assert_eq!(stats.dynamic_used, 1);
    }
}
