//! The RDL builtins: `type`, `var_type`/`field_type`, `pre`, `rdl_cast`.
//!
//! These execute at run time and mutate the live type table — the central
//! mechanism of the paper ("user-provided type annotations actually execute
//! at run-time", §1).

use crate::conform::value_conforms;
use crate::state::{AnnotationSource, CheckPolicy, MethodKey, PreHook, RdlState};
use hb_interp::{ErrorKind, Flow, HbError, Interp, Value};
use hb_syntax::{BlameTarget, DiagCode, DiagLabel, LabelRole, Span, TypeDiagnostic};
use hb_types::parse_method_type;
use std::rc::Rc;

/// Installs RDL into an interpreter: stores the state extension and
/// registers the annotation builtins. The `pre`-contract hook is registered
/// separately via [`crate::hook::RdlHook`].
pub fn install(interp: &mut Interp) -> Rc<RdlState> {
    let state = Rc::new(RdlState::new());
    interp.set_extension(state.clone());

    let st = state.clone();
    let object = interp.registry.object();
    interp.define_builtin(
        object,
        "type",
        false,
        Rc::new(move |i, recv, args, _b| type_builtin(&st, i, recv, args)),
    );
    for name in ["var_type", "field_type"] {
        let st = state.clone();
        interp.define_builtin(
            object,
            name,
            false,
            Rc::new(move |i, recv, args, _b| var_type_builtin(&st, i, recv, args)),
        );
    }
    let st = state.clone();
    interp.define_builtin(
        object,
        "pre",
        false,
        Rc::new(move |i, recv, args, b| pre_builtin(&st, i, recv, args, b)),
    );
    let st = state.clone();
    interp.define_builtin(
        object,
        "rdl_cast",
        false,
        Rc::new(move |i, recv, args, _b| rdl_cast_builtin(&st, i, recv, args)),
    );
    let st = state.clone();
    interp.define_builtin(
        object,
        "check_policy",
        false,
        Rc::new(move |i, recv, args, _b| check_policy_builtin(&st, i, recv, args)),
    );
    state
}

fn err(kind: ErrorKind, msg: impl Into<String>) -> Flow {
    Flow::Error(HbError::new(kind, msg, Span::dummy()))
}

fn name_of(v: &Value, what: &str) -> Result<String, Flow> {
    match v {
        Value::Str(s) => Ok(s.to_string()),
        Value::Sym(s) => Ok(s.to_string()),
        other => Err(err(
            ErrorKind::ArgumentError,
            format!("{what}: expected method name (String/Symbol), got {other:?}"),
        )),
    }
}

/// Splits the target class and remaining args: an explicit leading class
/// argument wins; otherwise the receiver must be a class (annotation inside
/// a class body or a pre-hook with `self` rebound to the model class).
fn target_class(
    interp: &Interp,
    recv: &Value,
    args: &[Value],
    what: &str,
) -> Result<(String, usize), Flow> {
    if let Some(Value::Class(c)) = args.first() {
        return Ok((interp.registry.name(*c).to_string(), 1));
    }
    match recv {
        Value::Class(c) => Ok((interp.registry.name(*c).to_string(), 0)),
        // In instance context (e.g. a pre hook on an instance method, Fig.
        // 2), annotations target the instance's class.
        Value::Obj(o) => Ok((interp.registry.name(o.class).to_string(), 0)),
        _ => Err(err(
            ErrorKind::ArgumentError,
            format!("{what}: no target class (call inside a class or pass the class first)"),
        )),
    }
}

/// Reads `check`/`dyn`/`replace` flags from a trailing options hash.
fn read_opts(opts: Option<&Value>) -> (bool, bool, bool) {
    let mut check = false;
    let mut dynamic = false;
    let mut replace = false;
    if let Some(Value::Hash(h)) = opts {
        for (k, v) in h.borrow().iter() {
            let key = match k {
                Value::Str(s) => s.to_string(),
                Value::Sym(s) => s.to_string(),
                _ => continue,
            };
            let val = v.truthy();
            match key.as_str() {
                "check" | "typecheck" => check = val,
                "dyn" | "dynamic_check" => dynamic = val,
                "replace" => replace = val,
                _ => {}
            }
        }
    }
    (check, dynamic, replace)
}

fn type_builtin(
    state: &RdlState,
    interp: &mut Interp,
    recv: Value,
    args: Vec<Value>,
) -> Result<Value, Flow> {
    let (class, skip) = target_class(interp, &recv, &args, "type")?;
    let rest = &args[skip..];
    if rest.len() < 2 {
        return Err(err(
            ErrorKind::ArgumentError,
            "type: expected method name and type string",
        ));
    }
    let raw_name = name_of(&rest[0], "type")?;
    let type_str = match &rest[1] {
        Value::Str(s) => s.to_string(),
        other => {
            return Err(err(
                ErrorKind::ArgumentError,
                format!("type: expected type string, got {other:?}"),
            ))
        }
    };
    let (check, dynamic, replace) = read_opts(rest.get(2));
    let (class_level, method) = match raw_name.strip_prefix("self.") {
        Some(m) => (true, m.to_string()),
        None => (false, raw_name),
    };
    let mt = parse_method_type(&type_str).map_err(|e| {
        err(
            ErrorKind::ArgumentError,
            format!("type {class}#{method}: {e}"),
        )
    })?;
    let source = if interp.in_dynamic_context() {
        AnnotationSource::Dynamic
    } else {
        AnnotationSource::Static
    };
    let key = MethodKey {
        class: hb_intern::Sym::intern(&class),
        class_level,
        method: hb_intern::Sym::intern(&method),
    };
    // The builtin's call site *is* the annotation's registration site —
    // the span structured blame points at.
    let span = interp.current_builtin_span();
    state.add_type_at(key, mt, check, dynamic, source, replace, span);
    Ok(Value::Nil)
}

fn var_type_builtin(
    state: &RdlState,
    interp: &mut Interp,
    recv: Value,
    args: Vec<Value>,
) -> Result<Value, Flow> {
    let (class, skip) = target_class(interp, &recv, &args, "var_type")?;
    let rest = &args[skip..];
    if rest.len() < 2 {
        return Err(err(
            ErrorKind::ArgumentError,
            "var_type: expected variable name and type string",
        ));
    }
    let var = name_of(&rest[0], "var_type")?;
    let type_str = match &rest[1] {
        Value::Str(s) => s.to_string(),
        other => {
            return Err(err(
                ErrorKind::ArgumentError,
                format!("var_type: expected type string, got {other:?}"),
            ))
        }
    };
    let ty = hb_types::parse_type(&type_str)
        .map_err(|e| err(ErrorKind::ArgumentError, format!("var_type {var}: {e}")))?;
    let span = interp.current_builtin_span();
    if let Some(cvar) = var.strip_prefix("@@") {
        state.set_cvar_type_at(&class, cvar, ty, span);
    } else if let Some(ivar) = var.strip_prefix('@') {
        state.set_ivar_type_at(&class, ivar, ty, span);
    } else if let Some(gvar) = var.strip_prefix('$') {
        state.set_gvar_type_at(gvar, ty, span);
    } else {
        state.set_ivar_type_at(&class, &var, ty, span);
    }
    Ok(Value::Nil)
}

fn pre_builtin(
    state: &RdlState,
    interp: &mut Interp,
    recv: Value,
    args: Vec<Value>,
    block: Option<Value>,
) -> Result<Value, Flow> {
    let (class, skip) = target_class(interp, &recv, &args, "pre")?;
    let rest = &args[skip..];
    if rest.is_empty() {
        return Err(err(ErrorKind::ArgumentError, "pre: expected method name"));
    }
    let raw_name = name_of(&rest[0], "pre")?;
    let (class_level, method) = match raw_name.strip_prefix("self.") {
        Some(m) => (true, m.to_string()),
        None => (false, raw_name),
    };
    let proc_val = match block {
        Some(Value::Proc(p)) => p,
        _ => return Err(err(ErrorKind::ArgumentError, "pre: no block given")),
    };
    let span = interp.current_builtin_span();
    state.add_pre(
        MethodKey {
            class: hb_intern::Sym::intern(&class),
            class_level,
            method: hb_intern::Sym::intern(&method),
        },
        PreHook { proc_val, span },
    );
    Ok(Value::Nil)
}

/// The `check_policy` builtin — the RubyLite surface of [`CheckPolicy`]:
///
/// ```text
/// check_policy "shadow"                 # top level: global policy
/// class Talk
///   check_policy "shadow"               # class body: policy for Talk
///   check_policy :title_line, "shadow"  # method policy (self.m for class-level)
/// end
/// check_policy Talk, "off"              # explicit class, anywhere
/// check_policy Talk, :title_line, "off" # explicit class + method
/// ```
///
/// Policy names (`enforce` / `shadow` / `off`) may be strings or symbols.
fn check_policy_builtin(
    state: &RdlState,
    interp: &mut Interp,
    recv: Value,
    args: Vec<Value>,
) -> Result<Value, Flow> {
    // An explicit leading class argument wins; a class receiver (class
    // body) is next; otherwise the call is global scope.
    let (explicit_class, skip) = match args.first() {
        Some(Value::Class(c)) => (Some(interp.registry.name(*c).to_string()), 1),
        _ => match &recv {
            Value::Class(c) => (Some(interp.registry.name(*c).to_string()), 0),
            _ => (None, 0),
        },
    };
    let rest = &args[skip..];
    let parse_policy = |v: &Value| -> Result<CheckPolicy, Flow> {
        let name = name_of(v, "check_policy")?;
        CheckPolicy::parse(&name).ok_or_else(|| {
            err(
                ErrorKind::ArgumentError,
                format!("check_policy: unknown policy {name:?} (enforce/shadow/off)"),
            )
        })
    };
    match rest {
        [policy] => {
            let policy = parse_policy(policy)?;
            match explicit_class {
                Some(class) => state.set_class_policy(hb_intern::Sym::intern(&class), policy),
                None => state.set_global_policy(policy),
            }
        }
        [method, policy] => {
            let Some(class) = explicit_class else {
                return Err(err(
                    ErrorKind::ArgumentError,
                    "check_policy: no target class for a method policy \
                     (call inside a class or pass the class first)",
                ));
            };
            let raw_name = name_of(method, "check_policy")?;
            let policy = parse_policy(policy)?;
            let (class_level, method) = match raw_name.strip_prefix("self.") {
                Some(m) => (true, m.to_string()),
                None => (false, raw_name),
            };
            state.set_method_policy(
                MethodKey {
                    class: hb_intern::Sym::intern(&class),
                    class_level,
                    method: hb_intern::Sym::intern(&method),
                },
                policy,
            );
        }
        _ => {
            return Err(err(
                ErrorKind::ArgumentError,
                "check_policy: expected [class,] [method,] policy",
            ))
        }
    }
    Ok(Value::Nil)
}

fn rdl_cast_builtin(
    state: &RdlState,
    interp: &mut Interp,
    recv: Value,
    args: Vec<Value>,
) -> Result<Value, Flow> {
    let cast_span = interp.current_builtin_span();
    let type_str = match args.first() {
        Some(Value::Str(s)) => s.to_string(),
        other => {
            return Err(err(
                ErrorKind::ArgumentError,
                format!("rdl_cast: expected type string, got {other:?}"),
            ))
        }
    };
    let ty = hb_types::parse_type(&type_str)
        .map_err(|e| err(ErrorKind::ArgumentError, format!("rdl_cast: {e}")))?;
    state.inner.borrow_mut().casts_run += 1;
    if !value_conforms(interp, &recv, &ty) {
        // The cast itself is the blame target: the program asserted a type
        // the value does not have (paper §4 "Type Casts").
        let message = format!(
            "rdl_cast: value of class {} does not conform to {ty}",
            interp.class_name_of(&recv)
        );
        let diag = TypeDiagnostic::error(
            DiagCode::CastFailure,
            message.clone(),
            cast_span,
            BlameTarget::Cast,
        )
        .with_label(DiagLabel::new(
            LabelRole::CastSite,
            format!("cast to {ty} asserted here"),
            cast_span,
        ));
        state.record_diagnostic(diag.clone());
        return Err(Flow::Error(HbError::with_diagnostic(
            ErrorKind::ContractBlame,
            message,
            cast_span,
            diag,
        )));
    }
    Ok(recv)
}
