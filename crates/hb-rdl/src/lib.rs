//! RDL analogue: the runtime type-annotation and contract layer that
//! Hummingbird builds on (paper §4).
//!
//! `type`, `var_type`/`field_type`, `pre` and `rdl_cast` are interpreter
//! builtins that execute at run time and mutate a live [`RdlState`] type
//! table. Method types accumulate intersection arms on repeated `type`
//! calls; `pre` contracts run before dispatch and are where metaprogramming
//! libraries generate types for the methods they create (Fig. 1).
//!
//! # Example
//!
//! ```
//! use hb_interp::Interp;
//! use hb_rdl::{install_rdl, MethodKey};
//!
//! let mut interp = Interp::new();
//! let rdl = install_rdl(&mut interp);
//! interp
//!     .eval_str("class Talk\n type :owner?, \"(User) -> %bool\"\nend")
//!     .unwrap();
//! let entry = rdl.entry(&MethodKey::instance("Talk", "owner?")).unwrap();
//! assert_eq!(entry.sig.to_string(), "(User) -> %bool");
//! ```

pub mod builtins;
pub mod conform;
pub mod hook;
pub mod state;

pub use builtins::install as install_rdl;
pub use conform::{type_of, value_conforms};
pub use hook::RdlHook;
pub use state::{
    AnnotationSource, MethodKey, PreHook, RdlEvent, RdlEventSink, RdlState, RdlStats, Resolution,
    TableEntry,
};
