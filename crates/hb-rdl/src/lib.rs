//! RDL analogue: the runtime type-annotation and contract layer that
//! Hummingbird builds on (paper §4).
//!
//! `type`, `var_type`/`field_type`, `pre`, `rdl_cast` and `check_policy`
//! are interpreter builtins that execute at run time and mutate a live
//! [`RdlState`] type table. Method types accumulate intersection arms on
//! repeated `type` calls; `pre` contracts run before dispatch and are
//! where metaprogramming libraries generate types for the methods they
//! create (Fig. 1).
//!
//! The state also carries the embedding-facing *enforcement* surface the
//! engine consults per dispatch (assembled through the
//! `hummingbird::HummingbirdBuilder` in the `hummingbird` crate):
//!
//! * [`CheckPolicy`] — per-declaration enforcement (`Enforce` raises,
//!   `Shadow` records-and-continues, `Off` skips), resolved
//!   method-over-class-over-global; the `check_policy` builtin is its
//!   RubyLite spelling.
//! * [`DiagnosticSink`] — streaming listeners for every recorded blame
//!   [`hb_syntax::TypeDiagnostic`], alongside the bounded store
//!   ([`RdlState::set_diagnostics_cap`]).
//!
//! # Example
//!
//! ```
//! use hb_interp::Interp;
//! use hb_rdl::{install_rdl, CheckPolicy, MethodKey};
//!
//! let mut interp = Interp::new();
//! let rdl = install_rdl(&mut interp);
//! interp
//!     .eval_str(
//!         "check_policy \"shadow\"\n\
//!          class Talk\n type :owner?, \"(User) -> %bool\"\nend",
//!     )
//!     .unwrap();
//! let entry = rdl.entry(&MethodKey::instance("Talk", "owner?")).unwrap();
//! assert_eq!(entry.sig.to_string(), "(User) -> %bool");
//! let key = MethodKey::instance("Talk", "owner?");
//! assert_eq!(rdl.policy_for(&key, &key), CheckPolicy::Shadow);
//! ```

pub mod builtins;
pub mod conform;
pub mod hook;
pub mod state;

pub use builtins::install as install_rdl;
pub use conform::{type_of, value_conforms};
pub use hook::RdlHook;
pub use state::{
    AnnotationSource, CheckPolicy, DiagnosticSink, MethodKey, PreHook, RdlEvent, RdlEventSink,
    RdlState, RdlStats, Resolution, TableEntry, DEFAULT_DIAGNOSTICS_CAP,
};
