//! # hb-obs: observability for the Hummingbird stack
//!
//! The paper's evaluation — and any production deployment of
//! just-in-time static checking — lives or dies on knowing *where time
//! goes*: per-check latency, adoption vs. re-check rates, deopt churn,
//! deferred-admission tail latency. Flat counters (`EngineStats`) answer
//! "how many"; this crate answers "how long" and "in what order":
//!
//! * [`metrics`] — [`Counter`]s and fixed-bucket latency [`Histogram`]s
//!   (power-of-two nanosecond buckets, p50/p90/p99 by linear
//!   interpolation within a bucket) collected in a named [`Registry`].
//!   All atomics, relaxed ordering: safe to share between the engine
//!   thread, scheduler workers, and a daemon's connection threads.
//! * [`ring`] — [`EventRing`], a lock-free per-engine flight recorder:
//!   a bounded ring of typed events (check start/finish, cache and
//!   shared-tier adoption, deopt/depatch, scheduler task lifecycle,
//!   fleet sync), each stamped with a monotonic nanosecond timestamp and
//!   a [`hb_intern::MethodKey`].
//! * [`export`] — renderers: Prometheus text format (hand-rolled, no
//!   dependencies), a JSON dump, and a chrome://tracing-compatible JSON
//!   trace. [`json::validate_json`] is the matching recursive-descent
//!   validity checker the CI smoke gate round-trips exports through.
//! * [`log`] — the `HB_LOG=warn|info|debug` leveled stderr logger behind
//!   the [`hb_warn!`]/[`hb_info!`]/[`hb_debug!`] macros. The default
//!   level is `info`, so messages previously printed with a raw
//!   `eprintln!` keep appearing (with identical text) unless an operator
//!   turns them down.
//!
//! Everything here is recording and rendering only: no instrumentation
//! site lives in this crate, and nothing depends on the engine. The
//! embedding toggles collection with [`ObsLevel`]; the engine keeps its
//! hot path at one `Cell` load when observability is off.

pub mod export;
pub mod json;
pub mod log;
pub mod metrics;
pub mod ring;

pub use json::validate_json;
pub use log::LogLevel;
pub use metrics::{Counter, Histogram, HistogramSummary, Registry};
pub use ring::{Event, EventKind, EventRing};

/// How much the embedding wants recorded.
///
/// Ordered: each level includes everything below it. `Off` is the
/// default and costs the instrumented hot paths a single `Cell` load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObsLevel {
    /// Record nothing beyond the always-on `EngineStats` counters.
    #[default]
    Off,
    /// Collect counters and latency histograms (check duration,
    /// first-request, deferred admission-to-adoption, fleet RTTs).
    Metrics,
    /// Additionally record the typed event ring (flight recorder) for
    /// chrome://tracing export. Implies `Metrics`.
    Trace,
}

impl ObsLevel {
    /// True when metrics (counters + histograms) should be collected.
    pub fn metrics_enabled(self) -> bool {
        self >= ObsLevel::Metrics
    }

    /// True when the event ring should record.
    pub fn trace_enabled(self) -> bool {
        self >= ObsLevel::Trace
    }

    /// Parses the spelling used by CLI flags and env vars.
    pub fn parse(s: &str) -> Option<ObsLevel> {
        match s {
            "off" => Some(ObsLevel::Off),
            "metrics" => Some(ObsLevel::Metrics),
            "trace" => Some(ObsLevel::Trace),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(ObsLevel::Off < ObsLevel::Metrics);
        assert!(ObsLevel::Metrics < ObsLevel::Trace);
        assert!(!ObsLevel::Off.metrics_enabled());
        assert!(ObsLevel::Metrics.metrics_enabled());
        assert!(!ObsLevel::Metrics.trace_enabled());
        assert!(ObsLevel::Trace.metrics_enabled());
        assert!(ObsLevel::Trace.trace_enabled());
    }

    #[test]
    fn parse_round_trips() {
        assert_eq!(ObsLevel::parse("off"), Some(ObsLevel::Off));
        assert_eq!(ObsLevel::parse("metrics"), Some(ObsLevel::Metrics));
        assert_eq!(ObsLevel::parse("trace"), Some(ObsLevel::Trace));
        assert_eq!(ObsLevel::parse("loud"), None);
    }
}
