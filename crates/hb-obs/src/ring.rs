//! The per-engine flight recorder: a bounded ring of typed events.
//!
//! The ring is single-threaded by design — it lives inside an engine
//! (which is itself `!Sync`) and records with `Cell`/`RefCell`, never a
//! lock or an atomic. Scheduler-side moments (enqueue, harvest, stale)
//! are recorded from the engine thread at the point it observes them,
//! which keeps the timeline causally ordered from the engine's
//! perspective.

use hb_intern::MethodKey;
use std::cell::{Cell, RefCell};
use std::time::Instant;

/// What happened. Every variant is stamped with the [`MethodKey`] it
/// concerns; process-scoped moments (fleet sync legs) use a synthetic
/// `<fleet>` key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A synchronous `check_sig` began for this method.
    CheckStart,
    /// A check finished with a passing derivation.
    CheckPass,
    /// A check finished with a blame (type error).
    CheckFail,
    /// A dispatched call was satisfied by the per-engine derivation cache.
    CacheHit,
    /// A derivation was adopted from the process-wide shared tier.
    SharedAdopt,
    /// A patched fast prologue was deoptimized back to its guarded form.
    Deopt,
    /// A cached derivation was invalidated (Definition 1).
    Invalidate,
    /// A deferred check task was enqueued to the scheduler.
    TaskEnqueue,
    /// A completion was harvested and its derivation adopted.
    TaskHarvest,
    /// A completion was discarded as stale (world moved on).
    TaskStale,
    /// Deferred admission shed to a synchronous check (queue at cap).
    TaskShed,
    /// A fleet full fetch completed.
    FleetFetch,
    /// A fleet delta fetch completed.
    FleetDelta,
    /// A fleet publish round-trip completed.
    FleetPublish,
    /// A fleet eviction notice was applied.
    FleetEvict,
}

impl EventKind {
    /// Stable lowercase name used by the trace export.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::CheckStart => "check_start",
            EventKind::CheckPass => "check_pass",
            EventKind::CheckFail => "check_fail",
            EventKind::CacheHit => "cache_hit",
            EventKind::SharedAdopt => "shared_adopt",
            EventKind::Deopt => "deopt",
            EventKind::Invalidate => "invalidate",
            EventKind::TaskEnqueue => "task_enqueue",
            EventKind::TaskHarvest => "task_harvest",
            EventKind::TaskStale => "task_stale",
            EventKind::TaskShed => "task_shed",
            EventKind::FleetFetch => "fleet_fetch",
            EventKind::FleetDelta => "fleet_delta",
            EventKind::FleetPublish => "fleet_publish",
            EventKind::FleetEvict => "fleet_evict",
        }
    }
}

/// One recorded moment. `t_ns` is nanoseconds since the ring's anchor
/// (monotonic, engine-local). `dur_ns` is nonzero for events that close
/// a span (check finish, fleet round-trips); the span then covers
/// `t_ns - dur_ns .. t_ns`.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub t_ns: u64,
    pub dur_ns: u64,
    pub kind: EventKind,
    pub key: MethodKey,
}

/// Bounded, overwrite-oldest event ring.
pub struct EventRing {
    anchor: Instant,
    cap: usize,
    buf: RefCell<Vec<Event>>,
    total: Cell<u64>,
}

/// Default ring capacity: enough for the full boot of the six subject
/// apps with headroom, small enough to be memory-irrelevant (~1.5 MiB).
pub const DEFAULT_RING_CAP: usize = 32 * 1024;

impl EventRing {
    pub fn new(cap: usize) -> EventRing {
        EventRing {
            anchor: Instant::now(),
            cap: cap.max(1),
            buf: RefCell::new(Vec::new()),
            total: Cell::new(0),
        }
    }

    /// Nanoseconds since this ring was created (the trace time base).
    pub fn now_ns(&self) -> u64 {
        self.anchor.elapsed().as_nanos() as u64
    }

    /// Records an instantaneous event.
    pub fn record(&self, kind: EventKind, key: MethodKey) {
        self.record_span(kind, key, 0);
    }

    /// Records an event closing a span of `dur_ns` nanoseconds.
    pub fn record_span(&self, kind: EventKind, key: MethodKey, dur_ns: u64) {
        let ev = Event {
            t_ns: self.now_ns(),
            dur_ns,
            kind,
            key,
        };
        let mut buf = self.buf.borrow_mut();
        let total = self.total.get();
        if buf.len() < self.cap {
            buf.push(ev);
        } else {
            let idx = (total % self.cap as u64) as usize;
            buf[idx] = ev;
        }
        self.total.set(total + 1);
    }

    /// Events currently retained (at most the capacity).
    pub fn len(&self) -> usize {
        self.buf.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events ever recorded, including overwritten ones.
    pub fn total_recorded(&self) -> u64 {
        self.total.get()
    }

    /// Retained events in chronological order (oldest first).
    pub fn snapshot(&self) -> Vec<Event> {
        let buf = self.buf.borrow();
        let total = self.total.get();
        if buf.len() < self.cap || total == 0 {
            return buf.clone();
        }
        let split = (total % self.cap as u64) as usize;
        let mut out = Vec::with_capacity(buf.len());
        out.extend_from_slice(&buf[split..]);
        out.extend_from_slice(&buf[..split]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(n: u32) -> MethodKey {
        MethodKey::instance("RingTest", format!("m{n}"))
    }

    #[test]
    fn records_in_order_until_cap() {
        let r = EventRing::new(8);
        for i in 0..5 {
            r.record(EventKind::CacheHit, k(i));
        }
        let evs = r.snapshot();
        assert_eq!(evs.len(), 5);
        assert_eq!(r.total_recorded(), 5);
        assert!(evs.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        assert_eq!(evs[0].key, k(0));
        assert_eq!(evs[4].key, k(4));
    }

    #[test]
    fn overwrites_oldest_beyond_cap() {
        let r = EventRing::new(4);
        for i in 0..10 {
            r.record(EventKind::CheckPass, k(i));
        }
        let evs = r.snapshot();
        assert_eq!(evs.len(), 4);
        assert_eq!(r.total_recorded(), 10);
        // The four youngest survive, oldest first.
        let keys: Vec<_> = evs.iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![k(6), k(7), k(8), k(9)]);
        assert!(evs.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    }

    #[test]
    fn spans_carry_duration() {
        let r = EventRing::new(4);
        r.record_span(EventKind::CheckPass, k(0), 1234);
        let evs = r.snapshot();
        assert_eq!(evs[0].dur_ns, 1234);
        assert_eq!(evs[0].kind.name(), "check_pass");
    }
}
