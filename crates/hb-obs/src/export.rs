//! Renderers that turn recorded data into interchange formats.
//!
//! The Prometheus and JSON renderers for metrics live on
//! [`crate::Registry`]; this module holds the chrome://tracing trace
//! renderer and the small string-escaping helpers the exporters share.

use crate::ring::Event;

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders events as a chrome://tracing-compatible JSON document
/// (`{"traceEvents":[..]}`, the JSON Object Format). Load the output in
/// `chrome://tracing` or <https://ui.perfetto.dev> to see the timeline.
///
/// Events with a nonzero duration become complete (`"ph":"X"`) slices
/// whose start is backdated by the duration; instantaneous events become
/// thread-scoped instants (`"ph":"i"`). Timestamps are microseconds, as
/// the format requires. `name_of` supplies the display name, typically
/// `kind.name() + the method's Class#method form`.
pub fn chrome_trace(events: &[Event], name_of: impl Fn(&Event) -> String) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let name = json_escape(&name_of(ev));
        let cat = ev.kind.name();
        if ev.dur_ns > 0 {
            let ts = ev.t_ns.saturating_sub(ev.dur_ns) as f64 / 1000.0;
            let dur = ev.dur_ns as f64 / 1000.0;
            out.push_str(&format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":1,\"tid\":1}}"
            ));
        } else {
            let ts = ev.t_ns as f64 / 1000.0;
            out.push_str(&format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{ts:.3},\"s\":\"t\",\"pid\":1,\"tid\":1}}"
            ));
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{EventKind, EventRing};
    use hb_intern::MethodKey;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn trace_round_trips_as_json() {
        let r = EventRing::new(16);
        let key = MethodKey::instance("Talk", "speaker\"s");
        r.record(EventKind::CacheHit, key);
        r.record_span(EventKind::CheckPass, key, 5_000);
        let doc = chrome_trace(&r.snapshot(), |e| format!("{}:{}", e.kind.name(), e.key));
        crate::json::validate_json(&doc).unwrap();
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"dur\":5.000"));
        assert!(doc.contains("speaker\\\"s"));
    }

    #[test]
    fn empty_trace_is_valid() {
        let doc = chrome_trace(&[], |_| String::new());
        crate::json::validate_json(&doc).unwrap();
        assert_eq!(doc, "{\"traceEvents\":[]}");
    }
}
