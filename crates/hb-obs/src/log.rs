//! The `HB_LOG` leveled stderr logger.
//!
//! Deliberately minimal: three levels, an env-var filter, and macros
//! that format straight to stderr. The point is not a logging framework
//! — it is that operational warnings previously printed with raw
//! `eprintln!` become *filterable* without changing their text, so
//! existing tests that match message content keep passing while
//! `HB_LOG=warn` quiets a chatty fleet daemon.
//!
//! Levels: `warn` < `info` < `debug`. The default (unset or
//! unrecognized `HB_LOG`) is `info`, matching the previous unconditional
//! behavior of the messages that migrated here.

use std::sync::atomic::{AtomicU8, Ordering::Relaxed};

/// Message severity. A message is emitted when its level is at or below
/// the configured filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum LogLevel {
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl LogLevel {
    /// Parses the `HB_LOG` spelling.
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s {
            "warn" => Some(LogLevel::Warn),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            _ => None,
        }
    }
}

/// 0 = not yet initialized from the environment.
static LEVEL: AtomicU8 = AtomicU8::new(0);

fn init_from_env() -> u8 {
    let level = std::env::var("HB_LOG")
        .ok()
        .as_deref()
        .and_then(LogLevel::parse)
        .unwrap_or(LogLevel::Info) as u8;
    LEVEL.store(level, Relaxed);
    level
}

/// True when a message at `level` should be emitted. Reads `HB_LOG`
/// once, on first use.
pub fn enabled(level: LogLevel) -> bool {
    let mut cur = LEVEL.load(Relaxed);
    if cur == 0 {
        cur = init_from_env();
    }
    (level as u8) <= cur
}

/// Overrides the filter level (tests; takes precedence over `HB_LOG`).
pub fn set_level(level: LogLevel) {
    LEVEL.store(level as u8, Relaxed);
}

/// Emits to stderr if warnings are enabled. Text is printed verbatim —
/// callers own their message format.
#[macro_export]
macro_rules! hb_warn {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::LogLevel::Warn) {
            eprintln!($($arg)*);
        }
    };
}

/// Emits to stderr if info messages are enabled (the default).
#[macro_export]
macro_rules! hb_info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::LogLevel::Info) {
            eprintln!($($arg)*);
        }
    };
}

/// Emits to stderr only under `HB_LOG=debug`.
#[macro_export]
macro_rules! hb_debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::LogLevel::Debug) {
            eprintln!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_order() {
        assert_eq!(LogLevel::parse("warn"), Some(LogLevel::Warn));
        assert_eq!(LogLevel::parse("info"), Some(LogLevel::Info));
        assert_eq!(LogLevel::parse("debug"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::parse("verbose"), None);
        assert!(LogLevel::Warn < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
    }

    #[test]
    fn filter_respects_level() {
        set_level(LogLevel::Warn);
        assert!(enabled(LogLevel::Warn));
        assert!(!enabled(LogLevel::Info));
        assert!(!enabled(LogLevel::Debug));
        set_level(LogLevel::Debug);
        assert!(enabled(LogLevel::Debug));
        // Restore the default for other tests in this process.
        set_level(LogLevel::Info);
    }

    #[test]
    fn macros_compile_and_run() {
        set_level(LogLevel::Info);
        hb_warn!("hb-obs test warn {}", 1);
        hb_info!("hb-obs test info {}", 2);
        hb_debug!("hb-obs test debug {}", 3);
    }
}
