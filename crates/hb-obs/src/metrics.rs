//! Counters, fixed-bucket latency histograms, and the named registry.
//!
//! All metrics are plain `AtomicU64`s updated with relaxed ordering:
//! increments from the engine thread, scheduler workers, and daemon
//! connection threads never contend on a lock, and a torn read across
//! several independent counters is acceptable for monitoring output.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// Number of histogram buckets. Bucket `i` covers values whose binary
/// magnitude is `i` — that is, `v` in `2^i ..= 2^(i+1)-1` nanoseconds
/// (bucket 0 also absorbs 0). The last bucket additionally absorbs
/// everything larger: `2^39` ns is ~9 minutes, far beyond any latency
/// this stack records.
pub const BUCKETS: usize = 40;

/// A fixed-bucket latency histogram over nanosecond values.
///
/// Power-of-two buckets trade resolution for a branch-free `record`
/// (one `leading_zeros`, three relaxed `fetch_add`s). Quantiles are
/// estimated by linear interpolation inside the crossing bucket, which
/// bounds the relative error at 2x — adequate for p50/p90/p99 latency
/// monitoring, and the true `sum`/`count`/`max` are exact.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Point-in-time percentile summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max: u64,
}

impl HistogramSummary {
    /// Arithmetic mean (exact, unlike the percentiles).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for a value: its binary magnitude, clamped.
    fn index(v: u64) -> usize {
        ((63 - (v | 1).leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
    pub fn bucket_bound(i: usize) -> u64 {
        if i >= BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[Self::index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// Per-bucket counts (not cumulative).
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Relaxed))
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by walking buckets and
    /// interpolating linearly within the one where the cumulative count
    /// crosses `q * count`.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if cum + c >= target {
                let lo = if i == 0 { 0 } else { 1u64 << i };
                let hi = if i >= BUCKETS - 1 {
                    self.max().max(lo)
                } else {
                    (1u64 << (i + 1)) - 1
                };
                let span = hi - lo;
                let into = target - cum; // 1 ..= c
                return lo + span.saturating_mul(into) / c.max(1);
            }
            cum += c;
        }
        self.max()
    }

    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

struct Entry<T> {
    name: String,
    help: String,
    value: Arc<T>,
}

#[derive(Default)]
struct Inner {
    counters: Vec<Entry<Counter>>,
    histograms: Vec<Entry<Histogram>>,
}

/// A named collection of metrics, shared by handle.
///
/// `counter`/`histogram` are get-or-create: asking for the same name
/// twice returns the same underlying atomic, so independent subsystems
/// can share a series without coordinating setup order. The registry
/// itself is `Sync` (one short mutex around the name table; the metric
/// values are lock-free).
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns the counter named `name`, creating it on first use.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(e) = inner.counters.iter().find(|e| e.name == name) {
            return Arc::clone(&e.value);
        }
        let value = Arc::new(Counter::new());
        inner.counters.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            value: Arc::clone(&value),
        });
        value
    }

    /// Returns the histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(e) = inner.histograms.iter().find(|e| e.name == name) {
            return Arc::clone(&e.value);
        }
        let value = Arc::new(Histogram::new());
        inner.histograms.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            value: Arc::clone(&value),
        });
        value
    }

    /// Current value of a counter, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let inner = self.inner.lock().unwrap();
        inner
            .counters
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.value.get())
    }

    /// Summary of a histogram, if registered.
    pub fn histogram_summary(&self, name: &str) -> Option<HistogramSummary> {
        let inner = self.inner.lock().unwrap();
        inner
            .histograms
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.value.summary())
    }

    /// Snapshot of every registered counter as `(name, value)`.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let inner = self.inner.lock().unwrap();
        inner
            .counters
            .iter()
            .map(|e| (e.name.clone(), e.value.get()))
            .collect()
    }

    /// Snapshot of every registered histogram as `(name, summary)`.
    pub fn histograms(&self) -> Vec<(String, HistogramSummary)> {
        let inner = self.inner.lock().unwrap();
        inner
            .histograms
            .iter()
            .map(|e| (e.name.clone(), e.value.summary()))
            .collect()
    }

    /// Renders every metric in the Prometheus text exposition format.
    ///
    /// Histogram buckets are cumulative with nanosecond `le` bounds;
    /// empty buckets below the last occupied one are emitted so the
    /// series is well-formed for any scraper.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        for e in &inner.counters {
            out.push_str(&format!("# HELP {} {}\n", e.name, e.help));
            out.push_str(&format!("# TYPE {} counter\n", e.name));
            out.push_str(&format!("{} {}\n", e.name, e.value.get()));
        }
        for e in &inner.histograms {
            out.push_str(&format!("# HELP {} {}\n", e.name, e.help));
            out.push_str(&format!("# TYPE {} histogram\n", e.name));
            let counts = e.value.bucket_counts();
            let last = counts.iter().rposition(|&c| c > 0).unwrap_or(0);
            let mut cum = 0u64;
            for (i, &c) in counts.iter().enumerate().take(last + 1) {
                cum += c;
                out.push_str(&format!(
                    "{}_bucket{{le=\"{}\"}} {}\n",
                    e.name,
                    Histogram::bucket_bound(i),
                    cum
                ));
            }
            out.push_str(&format!(
                "{}_bucket{{le=\"+Inf\"}} {}\n",
                e.name,
                e.value.count()
            ));
            out.push_str(&format!("{}_sum {}\n", e.name, e.value.sum()));
            out.push_str(&format!("{}_count {}\n", e.name, e.value.count()));
        }
        out
    }

    /// Renders every metric as a JSON object:
    /// `{"counters":{..},"histograms":{name:{count,sum,p50,p90,p99,max},..}}`.
    pub fn render_json(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::from("{\"counters\":{");
        for (i, e) in inner.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", e.name, e.value.get()));
        }
        out.push_str("},\"histograms\":{");
        for (i, e) in inner.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = e.value.summary();
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
                e.name, s.count, s.sum, s.p50, s.p90, s.p99, s.max
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn histogram_buckets_by_magnitude() {
        assert_eq!(Histogram::index(0), 0);
        assert_eq!(Histogram::index(1), 0);
        assert_eq!(Histogram::index(2), 1);
        assert_eq!(Histogram::index(3), 1);
        assert_eq!(Histogram::index(1024), 10);
        assert_eq!(Histogram::index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_summary_tracks_exact_aggregates() {
        let h = Histogram::new();
        for v in [100u64, 200, 300, 400, 500] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1500);
        assert_eq!(s.max, 500);
        assert!((s.mean() - 300.0).abs() < f64::EPSILON);
    }

    #[test]
    fn quantiles_are_bucket_accurate() {
        let h = Histogram::new();
        // 90 fast observations around 100ns, 10 slow around 100_000ns.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        // p50 must land in the magnitude-6 bucket (64..=127) and p99 in
        // the magnitude-16 bucket (65536..=131071).
        assert!((64..=127).contains(&p50), "p50 = {p50}");
        assert!((65536..=131071).contains(&p99), "p99 = {p99}");
        assert!(h.quantile(1.0) >= p99);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s, HistogramSummary::default());
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn registry_get_or_create_shares_storage() {
        let r = Registry::new();
        let a = r.counter("hb_x_total", "x");
        let b = r.counter("hb_x_total", "x");
        a.inc();
        b.inc();
        assert_eq!(r.counter_value("hb_x_total"), Some(2));
        assert!(r.counter_value("hb_missing").is_none());
        let h = r.histogram("hb_y_ns", "y");
        h.record(7);
        assert_eq!(r.histogram_summary("hb_y_ns").unwrap().count, 1);
    }

    #[test]
    fn prometheus_render_is_well_formed() {
        let r = Registry::new();
        r.counter("hb_a_total", "counts a").inc();
        let h = r.histogram("hb_b_ns", "times b");
        h.record(100);
        h.record(200_000);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE hb_a_total counter"));
        assert!(text.contains("hb_a_total 1"));
        assert!(text.contains("# TYPE hb_b_ns histogram"));
        assert!(text.contains("hb_b_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("hb_b_ns_sum 200100"));
        assert!(text.contains("hb_b_ns_count 2"));
        // Bucket series is cumulative and monotone.
        let mut prev = 0u64;
        for line in text.lines().filter(|l| l.contains("hb_b_ns_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= prev, "non-monotone bucket line: {line}");
            prev = v;
        }
    }

    #[test]
    fn json_render_validates() {
        let r = Registry::new();
        r.counter("hb_a_total", "a").add(3);
        r.histogram("hb_b_ns", "b").record(42);
        let js = r.render_json();
        crate::json::validate_json(&js).unwrap();
        assert!(js.contains("\"hb_a_total\":3"));
        assert!(js.contains("\"count\":1"));
    }
}
