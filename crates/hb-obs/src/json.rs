//! A strict recursive-descent JSON validity checker.
//!
//! The workspace renders all of its JSON by hand (no serde); this is the
//! matching verifier. The CI metrics smoke gate round-trips every export
//! through [`validate_json`], so a malformed escape or a stray trailing
//! comma in a renderer fails fast instead of breaking a downstream
//! consumer.

/// Validates that `s` is exactly one well-formed JSON value (RFC 8259
/// grammar: objects, arrays, strings with escapes, numbers, literals),
/// with nothing but whitespace around it. Returns the byte offset and a
/// description on failure.
pub fn validate_json(s: &str) -> Result<(), String> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
        depth: 0,
    };
    p.ws();
    p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{} at byte {}", what, self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        self.depth += 1;
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        self.depth += 1;
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => self.i += 1,
            }
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn digits(&mut self) -> Result<(), String> {
        let start = self.i;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.i == start {
            Err(self.err("expected digit"))
        } else {
            Ok(())
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        // Integer part: single 0, or nonzero followed by digits.
        match self.peek() {
            Some(b'0') => self.i += 1,
            Some(c) if c.is_ascii_digit() => self.digits()?,
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            self.digits()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            " false ",
            "0",
            "-12.5e+3",
            "\"a\\n\\u00e9\"",
            "[]",
            "[1,2,[3]]",
            "{}",
            "{\"a\":1,\"b\":{\"c\":[true,null]}}",
            "{\"traceEvents\":[{\"ts\":1.234,\"ph\":\"X\"}]}",
        ] {
            validate_json(doc).unwrap_or_else(|e| panic!("rejected {doc:?}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "\"unterminated",
            "\"bad\\q\"",
            "01",
            "1.",
            "--1",
            "nul",
            "true false",
            "[1] trailing",
            "\"\u{1}\"",
        ] {
            assert!(validate_json(doc).is_err(), "accepted {doc:?}");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(validate_json(&deep).is_err());
        let ok = "[".repeat(64) + &"]".repeat(64);
        validate_json(&ok).unwrap();
    }
}
