//! Edge-case and failure-injection tests for the interpreter host.

use hb_interp::{ErrorKind, Interp, Value};

fn eval(src: &str) -> Value {
    let mut i = Interp::new();
    i.eval_str(src)
        .unwrap_or_else(|e| panic!("eval failed for {src:?}: {e}"))
}

fn eval_i(src: &str) -> i64 {
    match eval(src) {
        Value::Int(n) => n,
        other => panic!("expected int, got {other:?}"),
    }
}

fn eval_s(src: &str) -> String {
    match eval(src) {
        Value::Str(s) => s.to_string(),
        other => panic!("expected string, got {other:?}"),
    }
}

fn eval_err(src: &str) -> hb_interp::HbError {
    let mut i = Interp::new();
    match i.eval_str(src) {
        Ok(v) => panic!("expected error for {src:?}, got {v:?}"),
        Err(e) => e,
    }
}

#[test]
fn deep_recursion_hits_guard_not_stack_overflow() {
    // The interpreter's frame guard fires at 500 interpreted frames; each
    // frame uses several KB of native stack in debug builds, so give this
    // thread a large stack and verify the guard reports cleanly.
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(|| {
            let e = eval_err("def down(n)\n down(n + 1)\nend\ndown(0)");
            assert_eq!(e.kind, ErrorKind::Internal);
            assert!(e.message.contains("stack level too deep"));
        })
        .unwrap()
        .join()
        .unwrap();
}

#[test]
fn unset_local_in_untaken_branch_reads_nil() {
    // Ruby: a local assigned only in an untaken branch reads as nil.
    assert!(matches!(eval("x = 1 if false\nx"), Value::Nil));
}

#[test]
fn shadowing_across_method_and_block() {
    let src = r#"
x = 100
def probe
  x = 5
  [1].each { |y| x = x + y }
  x
end
probe + x
"#;
    assert_eq!(eval_i(src), 106);
}

#[test]
fn empty_collections_behave() {
    assert_eq!(eval_i("[].size"), 0);
    assert_eq!(eval_i("{}.size"), 0);
    assert!(matches!(eval("[].first"), Value::Nil));
    assert!(matches!(eval("[].max"), Value::Nil));
    assert_eq!(eval_i("[].sum"), 0);
    assert_eq!(eval_s("[].join(\",\")"), "");
}

#[test]
fn negative_and_out_of_range_indexing() {
    assert!(matches!(eval("[1, 2][5]"), Value::Nil));
    assert_eq!(eval_i("[1, 2, 3][-2]"), 2);
    assert!(matches!(eval("\"ab\"[9]"), Value::Nil));
    assert_eq!(eval_s("\"hello\"[-3..-1]"), "llo");
}

#[test]
fn array_assignment_fills_gaps_with_nil() {
    assert_eq!(eval_i("a = [1]\na[3] = 9\na.size"), 4);
    assert!(matches!(eval("a = [1]\na[3] = 9\na[2]"), Value::Nil));
}

#[test]
fn mutation_through_aliases_is_visible() {
    let src = "a = [1]\nb = a\nb << 2\na.size";
    assert_eq!(eval_i(src), 2);
    let src = "h = {}\ng = h\ng[:k] = 1\nh.size";
    assert_eq!(eval_i(src), 1);
}

#[test]
fn dup_breaks_aliasing() {
    assert_eq!(eval_i("a = [1]\nb = a.dup\nb << 2\na.size"), 1);
}

#[test]
fn string_edge_inflections() {
    assert_eq!(eval_s("\"\".to_s"), "");
    assert_eq!(eval_i("\"\".length"), 0);
    assert_eq!(eval_s("\"a\".capitalize"), "A");
    assert_eq!(eval_s("\"\".reverse"), "");
}

#[test]
fn unicode_strings_are_char_based() {
    assert_eq!(eval_i("\"héllo\".length"), 5);
    assert_eq!(eval_s("\"héllo\"[1]"), "é");
    assert_eq!(eval_s("\"héllo\".reverse"), "olléh");
}

#[test]
fn method_missing_not_defined_raises_no_method() {
    let e = eval_err("class Plain\nend\nPlain.new.ghost");
    assert_eq!(e.kind, ErrorKind::NoMethod);
}

#[test]
fn super_without_parent_method_errors() {
    let e = eval_err("class Solo\n def m\n  super\n end\nend\nSolo.new.m");
    assert_eq!(e.kind, ErrorKind::NoMethod);
    assert!(e.message.contains("super"));
}

#[test]
fn yield_without_block_errors() {
    let e = eval_err("def needs_block\n yield\nend\nneeds_block");
    assert_eq!(e.kind, ErrorKind::ArgumentError);
}

#[test]
fn rescue_rebinds_and_reraise_propagates() {
    let src = r#"
begin
  begin
    raise ArgumentError, "inner"
  rescue ArgumentError => e
    raise RuntimeError, "outer: #{e.message}"
  end
rescue RuntimeError => e
  e.message
end
"#;
    assert_eq!(eval_s(src), "outer: inner");
}

#[test]
fn ensure_runs_even_when_uncaught() {
    let mut i = Interp::new();
    let r = i.eval_str(
        "$log = []\nbegin\n begin\n  raise \"x\"\n ensure\n  $log << \"cleanup\"\n end\nrescue\n $log.join\nend",
    );
    match r.unwrap() {
        Value::Str(s) => assert_eq!(&*s, "cleanup"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn comparison_chains_and_spaceship() {
    assert_eq!(eval_i("1 <=> 2"), -1);
    assert_eq!(eval_i("2 <=> 1"), 1);
    assert_eq!(eval_i("2 <=> 2"), 0);
    assert_eq!(eval_i("\"a\" <=> \"b\""), -1);
    assert!(matches!(eval("1 <=> \"x\""), Value::Nil));
}

#[test]
fn sort_with_custom_comparator_block() {
    assert_eq!(eval_s("[1, 3, 2].sort { |a, b| b <=> a }.join"), "321");
}

#[test]
fn integer_overflow_wraps_not_panics() {
    // The paper omits Bignum promotion (§4 Numeric Hierarchy); we wrap.
    let mut i = Interp::new();
    assert!(i.eval_str("9223372036854775807 + 1").is_ok());
}

#[test]
fn const_reassignment_and_nesting() {
    assert_eq!(eval_i("X = 1\nX = 2\nX"), 2);
    let src = "module M\n Y = 7\nend\nclass M::C\n def g\n  Y\n end\nend\nM::C.new.g";
    assert_eq!(eval_i(src), 7);
}

#[test]
fn define_method_overrides_def_and_vice_versa() {
    let src = r#"
class Flip
  def v
    1
  end
end
Flip.define_method(:v) { 2 }
a = Flip.new.v
class Flip
  def v
    3
  end
end
a * 10 + Flip.new.v
"#;
    assert_eq!(eval_i(src), 23);
}

#[test]
fn remove_method_falls_back_to_superclass() {
    let src = r#"
class P
  def m
    "parent"
  end
end
class C < P
  def m
    "child"
  end
end
C.remove_method(:m)
C.new.m
"#;
    assert_eq!(eval_s(src), "parent");
}

#[test]
fn frozen_string_keys_hash_correctly() {
    assert_eq!(eval_i("h = { \"a b\" => 1 }\nh[\"a b\"]"), 1);
    // Int and Float keys unify (Ruby eql? does not, but raw structural
    // equality is our documented semantics).
    assert_eq!(eval_i("h = {}\nh[1] = 5\nh[1]"), 5);
}

#[test]
fn while_loop_scoping_keeps_outer_vars() {
    let src = "total = 0\ni = 0\nwhile i < 3\n inner = i * 2\n total += inner\n i += 1\nend\ntotal";
    assert_eq!(eval_i(src), 6);
}

#[test]
fn case_without_scrutinee_uses_truthiness() {
    let src = r#"
x = 7
case
when x > 10 then "big"
when x > 5 then "medium"
else "small"
end
"#;
    assert_eq!(eval_s(src), "medium");
}

#[test]
fn to_s_fallback_for_plain_objects() {
    let src = "class Blob\nend\n\"#{Blob.new}\"";
    assert_eq!(eval_s(src), "#<Blob>");
}

#[test]
fn output_capture_is_ordered() {
    let mut i = Interp::new();
    i.eval_str("print \"a\"\nputs \"b\"\nprint \"c\"").unwrap();
    assert_eq!(i.take_output(), "ab\nc");
    assert_eq!(i.take_output(), "", "take drains");
}
