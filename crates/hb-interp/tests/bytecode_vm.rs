//! Differential tests: every program must behave identically under the
//! tree-walk and bytecode tiers — same value, same output, same errors.

use hb_interp::{ExecTier, Interp, Value};

/// Runs `src` under both tiers and asserts identical `(result, output)`.
/// The result is compared via `inspect`-style rendering through `to_s`.
fn both_tiers(src: &str) -> (String, String) {
    let render = |tier: ExecTier| {
        let mut interp = Interp::new();
        interp.tier.set_tier(tier);
        let r = interp.eval_str(src);
        let out = interp.take_output();
        let v = match r {
            Ok(v) => format!("ok:{}", show(&mut interp, &v)),
            Err(e) => format!("err:{}:{}", e.class_name(), e.message),
        };
        (v, out)
    };
    let tw = render(ExecTier::TreeWalk);
    let bc = render(ExecTier::Bytecode);
    assert_eq!(tw, bc, "tiers diverge for program:\n{src}");
    tw
}

fn show(interp: &mut Interp, v: &Value) -> String {
    interp.value_to_s(v).unwrap_or_else(|_| "<to_s err>".into())
}

#[test]
fn arithmetic_and_locals() {
    let (v, _) = both_tiers("def f(a, b)\n c = a * b\n c + 1\nend\nf(6, 7)");
    assert_eq!(v, "ok:43");
}

#[test]
fn control_flow_loops() {
    let (v, _) = both_tiers(
        "def sum_to(n)\n s = 0\n i = 0\n while i < n\n  i = i + 1\n  next if i == 3\n  break if i > 8\n  s = s + i\n end\n s\nend\nsum_to(100)",
    );
    // 1+2+4+5+6+7+8 = 33
    assert_eq!(v, "ok:33");
}

#[test]
fn string_interpolation_and_ivars() {
    both_tiers(
        "class P\n def initialize(n)\n  @n = n\n end\n def greet(x)\n  \"hi #{@n}, #{x}!\"\n end\nend\nputs P.new(\"ada\").greet(\"crew\")",
    );
}

#[test]
fn optional_and_rest_params() {
    let (v, _) = both_tiers(
        "def f(a, b = 10, *rest)\n a + b + rest.length\nend\nf(1) + f(1, 2) + f(1, 2, 3, 4)",
    );
    assert_eq!(v, "ok:19");
}

#[test]
fn arity_errors_match() {
    let (v, _) = both_tiers("def f(a, b)\n a\nend\nf(1)");
    assert!(v.starts_with("err:"), "expected arity error, got {v}");
}

#[test]
fn yield_and_blocks() {
    let (v, _) = both_tiers("def twice\n yield(1) + yield(2)\nend\ntwice { |x| x * 10 }");
    assert_eq!(v, "ok:30");
}

#[test]
fn attr_assignment_setter() {
    let (v, _) = both_tiers(
        "class Box\n def v=(x)\n  @v = x\n end\n def v\n  @v\n end\nend\nb = Box.new\nb.v = 41\nb.v + 1",
    );
    assert_eq!(v, "ok:42");
}

#[test]
fn op_assign_and_logic() {
    let (v, _) = both_tiers(
        "def f\n a = nil\n a ||= 5\n a &&= a + 1\n h = {}\n h[:k] = 1\n h[:k] += 2\n a + h[:k]\nend\nf",
    );
    assert_eq!(v, "ok:9");
}

#[test]
fn collections_and_ranges() {
    both_tiers(
        "def f\n a = [1, 2, 3]\n h = { \"x\" => 1, \"y\" => 2 }\n r = (1..3)\n \"#{a.length} #{h[\"y\"]} #{r.to_a.length}\"\nend\nputs f",
    );
}

#[test]
fn constants_and_globals() {
    let (v, _) = both_tiers(
        "LIMIT = 7\n$count = 0\nclass C\n def bump\n  $count = $count + LIMIT\n  $count\n end\nend\nc = C.new\nc.bump\nc.bump",
    );
    assert_eq!(v, "ok:14");
}

#[test]
fn bailout_methods_still_work() {
    // `super`, rescue, case: all compile bail-outs — must fall back to the
    // tree walker transparently under the bytecode tier.
    let (v, _) = both_tiers(
        "class A\n def m(x)\n  x + 1\n end\nend\nclass B < A\n def m(x)\n  super(x) * 2\n end\n def guard(x)\n  case x\n  when 1 then \"one\"\n  else \"other\"\n  end\n end\nend\nb = B.new\n\"#{b.m(3)} #{b.guard(1)}\"",
    );
    assert_eq!(v, "ok:8 one");
}

#[test]
fn runtime_errors_inside_chunks() {
    let (v, _) = both_tiers("def f(a)\n a.no_such_method\nend\nf(1)");
    assert!(v.starts_with("err:"), "expected NoMethodError, got {v}");
}

#[test]
fn recursion_through_chunks() {
    let (v, _) = both_tiers(
        "def fib(n)\n if n < 2\n  n\n else\n  fib(n - 1) + fib(n - 2)\n end\nend\nfib(15)",
    );
    assert_eq!(v, "ok:610");
}

#[test]
fn bytecode_tier_reports_compiles() {
    let mut interp = Interp::new();
    interp.tier.set_tier(ExecTier::Bytecode);
    interp
        .eval_str("def f(a)\n a + 1\nend\nf(1)\nf(2)")
        .unwrap();
    assert!(interp.tier.bytecode_compiled() >= 1);
}
