//! End-to-end interpreter semantics tests: evaluation, dispatch,
//! metaprogramming, control flow, exceptions, and the core library.

use hb_interp::{ErrorKind, Interp, Value};

fn eval(src: &str) -> Value {
    let mut i = Interp::new();
    i.eval_str(src)
        .unwrap_or_else(|e| panic!("eval failed for {src:?}: {e}"))
}

fn eval_s(src: &str) -> String {
    match eval(src) {
        Value::Str(s) => s.to_string(),
        other => panic!("expected string, got {other:?}"),
    }
}

fn eval_i(src: &str) -> i64 {
    match eval(src) {
        Value::Int(n) => n,
        other => panic!("expected int, got {other:?}"),
    }
}

fn eval_b(src: &str) -> bool {
    match eval(src) {
        Value::Bool(b) => b,
        other => panic!("expected bool, got {other:?}"),
    }
}

fn eval_err(src: &str) -> hb_interp::HbError {
    let mut i = Interp::new();
    match i.eval_str(src) {
        Ok(v) => panic!("expected error for {src:?}, got {v:?}"),
        Err(e) => e,
    }
}

fn output(src: &str) -> String {
    let mut i = Interp::new();
    i.eval_str(src).unwrap_or_else(|e| panic!("{e}"));
    i.take_output()
}

// ----- expressions ---------------------------------------------------------

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(eval_i("1 + 2 * 3"), 7);
    assert_eq!(eval_i("(1 + 2) * 3"), 9);
    assert_eq!(eval_i("10 / 3"), 3);
    assert_eq!(eval_i("10 % 3"), 1);
    assert_eq!(eval_i("2 ** 10"), 1024);
    assert_eq!(eval_i("-5 + 2"), -3);
}

#[test]
fn float_arithmetic_and_promotion() {
    match eval("1 / 2.0") {
        Value::Float(x) => assert_eq!(x, 0.5),
        other => panic!("{other:?}"),
    }
    assert!(eval_b("1 == 1.0"));
    assert!(eval_b("1.5 > 1"));
}

#[test]
fn zero_division_is_an_error() {
    let e = eval_err("1 / 0");
    assert_eq!(e.kind, ErrorKind::ZeroDivision);
}

#[test]
fn string_ops() {
    assert_eq!(eval_s("\"foo\" + \"bar\""), "foobar");
    assert_eq!(eval_s("\"ab\" * 3"), "ababab");
    assert_eq!(eval_i("\"hello\".length"), 5);
    assert!(eval_b("\"hello\".include?(\"ell\")"));
    assert_eq!(eval_s("\"Hello World\".downcase"), "hello world");
    assert_eq!(eval_s("\"a,b,c\".split(\",\").join(\"-\")"), "a-b-c");
    assert_eq!(eval_s("\"hello\"[1..3]"), "ell");
    assert_eq!(eval_s("\"users\".capitalize"), "Users");
    assert_eq!(eval_i("\"42abc\".to_i"), 42);
}

#[test]
fn string_interpolation() {
    assert_eq!(eval_s("x = 3\n\"got #{x + 1}!\""), "got 4!");
    assert_eq!(eval_s("name = \"admin\"\n\"is_#{name}?\""), "is_admin?");
}

#[test]
fn symbols() {
    assert!(eval_b(":a == :a"));
    assert!(!eval_b(":a == :b"));
    assert_eq!(eval_s(":owner.to_s"), "owner");
    match eval("\"x\".to_sym") {
        Value::Sym(s) => assert_eq!(&*s, "x"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn arrays() {
    assert_eq!(eval_i("[1, 2, 3].size"), 3);
    assert_eq!(eval_i("[1, 2, 3][1]"), 2);
    assert_eq!(eval_i("[1, 2, 3][-1]"), 3);
    assert_eq!(eval_i("a = []\na.push(5)\na << 6\na.sum"), 11);
    assert_eq!(eval_i("[1, 2, 3].map { |x| x * 10 }.sum"), 60);
    assert_eq!(eval_i("[1, 2, 3, 4].select { |x| x % 2 == 0 }.size"), 2);
    assert_eq!(eval_i("[3, 1, 2].sort[0]"), 1);
    assert_eq!(eval_i("[[1, 2], [3]].flatten.size"), 3);
    assert_eq!(eval_i("[1, 1, 2].uniq.size"), 2);
    assert!(eval_b("[1, 2].include?(2)"));
    assert_eq!(eval_s("[1, 2].join(\",\")"), "1,2");
    assert_eq!(eval_i("[1, nil, 2].compact.size"), 2);
    assert_eq!(eval_i("[1, 2].zip([3, 4])[1][1]"), 4);
    assert_eq!(eval_i("[1, 2, 3].reduce(0) { |acc, x| acc + x }"), 6);
    assert_eq!(eval_i("[5, 3, 9].max"), 9);
    assert_eq!(eval_i("[5, 3, 9].min"), 3);
}

#[test]
fn hashes() {
    assert_eq!(eval_i("h = { :a => 1, \"b\" => 2 }\nh[:a]"), 1);
    assert_eq!(eval_i("h = { a: 1 }\nh[:a]"), 1);
    assert_eq!(eval_i("h = {}\nh[:x] = 9\nh[:x]"), 9);
    assert!(eval_b("{ a: 1 }.key?(:a)"));
    assert_eq!(eval_i("{ a: 1, b: 2 }.keys.size"), 2);
    assert_eq!(eval_i("{ a: 1 }.merge({ b: 2 }).size"), 2);
    assert_eq!(eval_i("{ a: 1, b: 2 }.map { |k, v| v }.sum"), 3);
    assert_eq!(
        eval_i("total = 0\n{ a: 1, b: 2 }.each { |k, v| total += v }\ntotal"),
        3
    );
}

#[test]
fn ranges() {
    assert_eq!(eval_i("(1..4).to_a.size"), 4);
    assert_eq!(eval_i("(1...4).to_a.size"), 3);
    assert!(eval_b("(1..10).include?(5)"));
    assert_eq!(
        eval_i("total = 0\n(1..3).each { |i| total += i }\ntotal"),
        6
    );
}

// ----- control flow -----------------------------------------------------------

#[test]
fn if_unless_ternary() {
    assert_eq!(eval_i("if true then 1 else 2 end"), 1);
    assert_eq!(eval_i("if false\n 1\nelse\n 2\nend"), 2);
    assert_eq!(eval_i("x = 5\nx > 3 ? 10 : 20"), 10);
    assert_eq!(eval_i("x = 1\nx = 2 if false\nx"), 1);
    assert_eq!(eval_i("x = 1\nx = 2 unless false\nx"), 2);
    // nil and false are falsy; 0 and "" are truthy.
    assert_eq!(eval_i("if 0 then 1 else 2 end"), 1);
    assert_eq!(eval_i("if nil then 1 else 2 end"), 2);
}

#[test]
fn elsif_chain() {
    let src = "x = 2\nif x == 1\n \"a\"\nelsif x == 2\n \"b\"\nelse\n \"c\"\nend";
    assert_eq!(eval_s(src), "b");
}

#[test]
fn while_loops_with_break_next() {
    assert_eq!(eval_i("i = 0\nwhile i < 10\n i += 1\nend\ni"), 10);
    assert_eq!(
        eval_i("i = 0\nwhile true\n i += 1\n break if i == 5\nend\ni"),
        5
    );
    assert_eq!(
        eval_i("t = 0\ni = 0\nwhile i < 5\n i += 1\n next if i % 2 == 0\n t += i\nend\nt"),
        9
    );
    assert_eq!(eval_i("i = 5\nuntil i == 0\n i -= 1\nend\ni"), 0);
}

#[test]
fn case_when() {
    let src = r#"
def classify(x)
  case x
  when 1, 2 then "small"
  when 3..9 then "medium"
  when String then "string"
  else "other"
  end
end
classify(2) + classify(5) + classify("s") + classify(nil)
"#;
    assert_eq!(eval_s(src), "smallmediumstringother");
}

#[test]
fn and_or_values() {
    assert_eq!(eval_i("nil || 5"), 5);
    assert_eq!(eval_i("2 && 3"), 3);
    assert!(matches!(eval("false && boom()"), Value::Bool(false)));
    assert_eq!(eval_i("1 or boom()"), 1);
    assert!(eval_b("!nil"));
}

// ----- methods and classes ---------------------------------------------------

#[test]
fn method_definition_and_call() {
    assert_eq!(eval_i("def add(a, b)\n a + b\nend\nadd(2, 3)"), 5);
    // Implicit return of last expression.
    assert_eq!(eval_i("def m\n 1\n 2\nend\nm"), 2);
    // Explicit return.
    assert_eq!(eval_i("def m(x)\n return 1 if x\n 2\nend\nm(true)"), 1);
}

#[test]
fn default_and_rest_params() {
    assert_eq!(eval_i("def m(a, b = 10)\n a + b\nend\nm(1)"), 11);
    assert_eq!(eval_i("def m(a, b = 10)\n a + b\nend\nm(1, 2)"), 3);
    assert_eq!(eval_i("def m(*xs)\n xs.size\nend\nm(1, 2, 3)"), 3);
    assert_eq!(eval_i("def m(a, *xs)\n xs.size\nend\nm(1)"), 0);
}

#[test]
fn arity_errors() {
    let e = eval_err("def m(a)\n a\nend\nm(1, 2)");
    assert_eq!(e.kind, ErrorKind::ArgumentError);
    let e = eval_err("def m(a)\n a\nend\nm");
    assert_eq!(e.kind, ErrorKind::ArgumentError);
}

#[test]
fn classes_instances_ivars() {
    let src = r#"
class Point
  def initialize(x, y)
    @x = x
    @y = y
  end
  def x
    @x
  end
  def sum
    @x + @y
  end
end
p = Point.new(3, 4)
p.x + p.sum
"#;
    assert_eq!(eval_i(src), 10);
}

#[test]
fn attr_accessor() {
    let src = r#"
class T
  attr_accessor :name, :size
end
t = T.new
t.name = "x"
t.size = 3
t.name * t.size
"#;
    assert_eq!(eval_s(src), "xxx");
}

#[test]
fn inheritance_and_super() {
    let src = r#"
class Base
  def greet(name)
    "hello #{name}"
  end
end
class Sub < Base
  def greet(name)
    super + "!"
  end
end
Sub.new.greet("world")
"#;
    assert_eq!(eval_s(src), "hello world!");
}

#[test]
fn super_with_explicit_args() {
    let src = r#"
class A
  def m(x)
    x * 2
  end
end
class B < A
  def m(x)
    super(x + 1)
  end
end
B.new.m(3)
"#;
    assert_eq!(eval_i(src), 8);
}

#[test]
fn class_methods_and_self() {
    let src = r#"
class Counter
  def self.make
    new
  end
  def initialize
    @n = 0
  end
  def bump
    @n += 1
    self
  end
  def n
    @n
  end
end
Counter.make.bump.bump.n
"#;
    assert_eq!(eval_i(src), 2);
}

#[test]
fn reopening_classes() {
    let src = r#"
class A
  def m
    1
  end
end
class A
  def m2
    2
  end
end
A.new.m + A.new.m2
"#;
    assert_eq!(eval_i(src), 3);
}

#[test]
fn redefinition_overwrites() {
    let src = "class A\n def m\n 1\n end\nend\nclass A\n def m\n 2\n end\nend\nA.new.m";
    assert_eq!(eval_i(src), 2);
}

#[test]
fn modules_and_include() {
    let src = r#"
module M
  def foo(x)
    bar(x)
  end
end
class C
  include M
  def bar(x)
    x + 1
  end
end
class D
  include M
  def bar(x)
    x.to_s
  end
end
C.new.foo(1).to_s + D.new.foo(2)
"#;
    assert_eq!(eval_s(src), "22");
}

#[test]
fn nested_modules_and_const_paths() {
    let src = r#"
module Outer::Inner
  def self.answer
    42
  end
end
Outer::Inner.answer
"#;
    assert_eq!(eval_i(src), 42);
}

#[test]
fn class_objects_respond_to_object_methods() {
    assert!(eval_b("class A\nend\nA.nil? == false"));
    assert_eq!(eval_s("class A\nend\nA.name"), "A");
    assert!(eval_b("class A\nend\nclass B < A\nend\nB.superclass == A"));
}

#[test]
fn is_a_and_class() {
    assert!(eval_b("1.is_a?(Integer)"));
    assert!(eval_b("1.is_a?(Numeric)"));
    assert!(!eval_b("1.is_a?(Float)"));
    assert!(eval_b("\"x\".is_a?(String)"));
    assert!(eval_b("1.class == Fixnum"));
    let src = "module M\nend\nclass C\n include M\nend\nC.new.is_a?(M)";
    assert!(eval_b(src));
}

// ----- blocks, procs, yield -----------------------------------------------------

#[test]
fn blocks_capture_locals() {
    let src = "total = 0\n[1, 2, 3].each { |x| total += x }\ntotal";
    assert_eq!(eval_i(src), 6);
}

#[test]
fn yield_and_block_given() {
    let src = r#"
def twice
  yield(1) + yield(2)
end
twice { |x| x * 10 }
"#;
    assert_eq!(eval_i(src), 30);
    let src = "def m\n if block_given?\n  yield\n else\n  0\n end\nend\nm + m { 5 }";
    assert_eq!(eval_i(src), 5);
}

#[test]
fn block_param_and_call() {
    let src = r#"
def run(&blk)
  blk.call(7)
end
run { |x| x + 1 }
"#;
    assert_eq!(eval_i(src), 8);
}

#[test]
fn lambda_and_proc() {
    assert_eq!(eval_i("f = lambda { |x| x * 2 }\nf.call(21)"), 42);
    assert_eq!(eval_i("f = proc { 9 }\nf.call"), 9);
}

#[test]
fn symbol_to_proc() {
    assert_eq!(eval_s("[:a, :b].map(&:to_s).join"), "ab");
}

#[test]
fn block_auto_splat() {
    let src = "out = []\n[[1, 2], [3, 4]].each { |a, b| out << a + b }\nout.sum";
    assert_eq!(eval_i(src), 10);
}

#[test]
fn break_in_block_stops_iteration() {
    let src = "t = 0\n[1, 2, 3, 4].each { |x| break if x == 3\n t += x }\nt";
    assert_eq!(eval_i(src), 3);
}

#[test]
fn return_in_block_returns_from_method() {
    let src = r#"
def find_first_even(xs)
  xs.each do |x|
    return x if x % 2 == 0
  end
  nil
end
find_first_even([1, 3, 4, 5])
"#;
    assert_eq!(eval_i(src), 4);
}

// ----- metaprogramming ------------------------------------------------------------

#[test]
fn define_method_with_closure() {
    let src = r##"
class User
  def has_role?(r)
    r == "admin"
  end
end
role_name = "admin"
User.define_method("is_#{role_name}?") do
  has_role?("#{role_name}")
end
u = User.new
u.is_admin?
"##;
    assert!(eval_b(src));
}

#[test]
fn define_method_inside_class_eval() {
    let src = r#"
class User
end
User.class_eval do
  define_method(:shout) do |word|
    word.upcase
  end
end
User.new.shout("hey")
"#;
    assert_eq!(eval_s(src), "HEY");
}

#[test]
fn figure2_rolify_pattern() {
    // The paper's Fig. 2: a module whose method defines methods dynamically.
    let src = r##"
module Rolify
  def define_dynamic_method(role_name)
    self.class.class_eval do
      define_method("is_#{role_name}?".to_sym) do
        has_role?("#{role_name}")
      end if !method_defined?("is_#{role_name}?".to_sym)
    end
  end
end
class User
  include Rolify
  def initialize
    @roles = []
  end
  def add_role(r)
    @roles << r
  end
  def has_role?(r)
    @roles.include?(r)
  end
end
user = User.new
user.add_role("professor")
user.define_dynamic_method("professor")
user.define_dynamic_method("student")
a = user.is_professor?
b = user.is_student?
a && !b
"##;
    assert!(eval_b(src));
}

#[test]
fn send_dispatches() {
    assert_eq!(eval_i("1.send(:+, 2)"), 3);
    let src = "class A\n def m(x)\n x * 3\n end\nend\nA.new.send(\"m\", 4)";
    assert_eq!(eval_i(src), 12);
}

#[test]
fn method_missing_instance_and_class() {
    let src = r#"
class Ghost
  def method_missing(name, *args)
    "called #{name} with #{args.size}"
  end
end
Ghost.new.anything(1, 2)
"#;
    assert_eq!(eval_s(src), "called anything with 2");
    let src = r#"
class Finder
  def self.method_missing(name, *args)
    name.to_s
  end
end
Finder.find_by_name("x")
"#;
    assert_eq!(eval_s(src), "find_by_name");
}

#[test]
fn respond_to() {
    assert!(eval_b("1.respond_to?(:+)"));
    assert!(!eval_b("1.respond_to?(:frobnicate)"));
    assert!(eval_b("class A\n def m\n end\nend\nA.new.respond_to?(:m)"));
}

#[test]
fn method_defined_and_instance_methods() {
    let src = "class A\n def m\n end\nend\nA.method_defined?(:m)";
    assert!(eval_b(src));
    let src = "class A\n def zz\n end\nend\nA.instance_methods.include?(:zz)";
    assert!(eval_b(src));
}

#[test]
fn struct_new_figure3() {
    let src = r#"
Transaction = Struct.new(:type, :account_name, :amount)
t = Transaction.new("credit", "alice", "100")
t.account_name
"#;
    assert_eq!(eval_s(src), "alice");
    // Setters and members.
    let src = r#"
Transaction = Struct.new(:type, :amount)
t = Transaction.new("a", "1")
t.amount = "2"
Transaction.members.size + t.amount.to_i
"#;
    assert_eq!(eval_i(src), 4);
}

#[test]
fn struct_class_is_named_by_constant() {
    let src = "T = Struct.new(:a)\nT.name";
    assert_eq!(eval_s(src), "T");
}

#[test]
fn inherited_hook_fires() {
    let src = r#"
class Base
  def self.inherited(sub)
    $last = sub.name
  end
end
class Talk < Base
end
$last
"#;
    assert_eq!(eval_s(src), "Talk");
}

#[test]
fn instance_variable_reflection() {
    let src = r#"
class A
end
a = A.new
a.instance_variable_set(:@x, 5)
a.instance_variable_get(:@x)
"#;
    assert_eq!(eval_i(src), 5);
}

#[test]
fn class_level_ivars_and_cvars() {
    let src = r#"
class A
  @@count = 0
  def self.bump
    @@count += 1
  end
  def self.count
    @@count
  end
end
A.bump
A.bump
A.count
"#;
    assert_eq!(eval_i(src), 2);
}

#[test]
fn cvar_or_assign_memoisation() {
    let src = r#"
class Cache
  def self.fetch
    @@cache ||= expensive
  end
  def self.expensive
    $count = ($count || 0) + 1
    "value"
  end
end
Cache.fetch
Cache.fetch
$count
"#;
    assert_eq!(eval_i(src), 1);
}

// ----- exceptions --------------------------------------------------------------

#[test]
fn raise_and_rescue() {
    let src = r#"
begin
  raise "boom"
rescue => e
  "caught: #{e.message}"
end
"#;
    assert_eq!(eval_s(src), "caught: boom");
}

#[test]
fn rescue_specific_class() {
    let src = r#"
begin
  raise ArgumentError, "bad arg"
rescue TypeError => e
  "wrong"
rescue ArgumentError => e
  "right: #{e.message}"
end
"#;
    assert_eq!(eval_s(src), "right: bad arg");
}

#[test]
fn rescue_matches_subclasses() {
    let src = r#"
begin
  raise NoMethodError, "nope"
rescue NameError => e
  "caught"
end
"#;
    assert_eq!(eval_s(src), "caught");
}

#[test]
fn unmatched_rescue_propagates() {
    let e = eval_err("begin\n raise TypeError, \"x\"\nrescue ArgumentError\n 1\nend");
    assert_eq!(e.class_name(), "TypeError");
}

#[test]
fn ensure_runs() {
    let src = r#"
$log = []
begin
  $log << "body"
  raise "x"
rescue
  $log << "rescue"
ensure
  $log << "ensure"
end
$log.join(",")
"#;
    assert_eq!(eval_s(src), "body,rescue,ensure");
}

#[test]
fn builtin_errors_are_rescuable() {
    let src = r#"
begin
  nil.frobnicate
rescue NoMethodError => e
  "no method!"
end
"#;
    assert_eq!(eval_s(src), "no method!");
}

#[test]
fn no_method_error_reports_class() {
    let e = eval_err("1.frobnicate");
    assert_eq!(e.kind, ErrorKind::NoMethod);
    assert!(e.message.contains("frobnicate"), "{}", e.message);
    assert!(e.message.contains("Fixnum"), "{}", e.message);
}

#[test]
fn user_exception_classes() {
    let src = r#"
class AppError < StandardError
end
begin
  raise AppError, "custom"
rescue AppError => e
  e.message
end
"#;
    assert_eq!(eval_s(src), "custom");
}

// ----- output -------------------------------------------------------------------

#[test]
fn puts_and_p() {
    assert_eq!(output("puts \"hi\""), "hi\n");
    assert_eq!(output("puts [1, 2]"), "1\n2\n");
    assert_eq!(output("p :sym"), ":sym\n");
    assert_eq!(output("print \"a\", \"b\""), "ab");
    assert_eq!(output("puts 1.5"), "1.5\n");
}

#[test]
fn to_s_dispatches_user_method() {
    let src = r#"
class Money
  def initialize(n)
    @n = n
  end
  def to_s
    "$#{@n}"
  end
end
puts Money.new(5)
"#;
    assert_eq!(output(src), "$5\n");
}

// ----- events (for the engine) ----------------------------------------------------

#[test]
fn method_events_are_emitted() {
    use hb_interp::InterpEvent;
    let mut i = Interp::new();
    i.eval_str("class A\n def m\n 1\n end\nend").unwrap();
    let ev = i.drain_events();
    assert!(ev
        .iter()
        .any(|e| matches!(e, InterpEvent::MethodAdded { name, .. } if name == "m")));
    i.eval_str("class A\n def m\n 2\n end\nend").unwrap();
    let ev = i.drain_events();
    assert!(ev
        .iter()
        .any(|e| matches!(e, InterpEvent::MethodRedefined { name, .. } if name == "m")));
}

#[test]
fn define_method_emits_event() {
    use hb_interp::InterpEvent;
    let mut i = Interp::new();
    i.eval_str("class A\nend\nA.define_method(:dm) { 1 }")
        .unwrap();
    let ev = i.drain_events();
    assert!(ev
        .iter()
        .any(|e| matches!(e, InterpEvent::MethodAdded { name, .. } if name == "dm")));
}
