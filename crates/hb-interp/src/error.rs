//! Runtime errors and non-local control flow.

use crate::value::Value;
use hb_syntax::{Span, TypeDiagnostic};
use std::error::Error;
use std::fmt;

/// What kind of runtime error occurred.
#[derive(Debug, Clone, PartialEq)]
pub enum ErrorKind {
    /// `NoMethodError` — receiver has no such method.
    NoMethod,
    /// Reading an unset local/variable that is not a method either.
    NameError,
    /// Wrong number or kind of arguments.
    ArgumentError,
    /// A Ruby-level `TypeError` (e.g. `1 + "x"`).
    TypeError,
    ZeroDivision,
    /// A `raise` from user code; carries the exception class name.
    UserRaise(String),
    /// A Hummingbird static type error reported at method entry — the
    /// paper's `blame`. Not rescuable.
    TypeBlame,
    /// A failed dynamic check (argument contract or `rdl_cast`) — also
    /// blame, not rescuable.
    ContractBlame,
    /// Internal interpreter invariant violation.
    Internal,
}

/// A runtime error with message, source location and optional exception
/// payload (for `rescue => e` binding).
#[derive(Debug, Clone)]
pub struct HbError {
    pub kind: ErrorKind,
    pub message: String,
    pub span: Span,
    /// The exception object, when one was constructed.
    pub value: Option<Value>,
    /// The structured diagnostic behind blame errors (`TypeBlame`,
    /// `ContractBlame`): the stable code, the blamed annotation/cast and
    /// its labeled spans. `None` for plain runtime errors. Boxed so the
    /// common (non-blame) error stays small.
    pub diagnostic: Option<Box<TypeDiagnostic>>,
}

impl HbError {
    /// Creates an error of `kind` with `message`.
    pub fn new(kind: ErrorKind, message: impl Into<String>, span: Span) -> HbError {
        HbError {
            kind,
            message: message.into(),
            span,
            value: None,
            diagnostic: None,
        }
    }

    /// Creates a blame error carrying its structured diagnostic.
    pub fn with_diagnostic(
        kind: ErrorKind,
        message: impl Into<String>,
        span: Span,
        diagnostic: TypeDiagnostic,
    ) -> HbError {
        HbError {
            kind,
            message: message.into(),
            span,
            value: None,
            diagnostic: Some(Box::new(diagnostic)),
        }
    }

    /// The structured diagnostic behind this error, if it is a blame
    /// error produced by the structured surface.
    pub fn diagnostic(&self) -> Option<&TypeDiagnostic> {
        self.diagnostic.as_deref()
    }

    /// The Ruby class name this error presents as (for `rescue` matching).
    pub fn class_name(&self) -> &str {
        match &self.kind {
            ErrorKind::NoMethod => "NoMethodError",
            ErrorKind::NameError => "NameError",
            ErrorKind::ArgumentError => "ArgumentError",
            ErrorKind::TypeError => "TypeError",
            ErrorKind::ZeroDivision => "ZeroDivisionError",
            ErrorKind::UserRaise(c) => c,
            ErrorKind::TypeBlame => "Hummingbird::TypeBlame",
            ErrorKind::ContractBlame => "Hummingbird::ContractBlame",
            ErrorKind::Internal => "Hummingbird::Internal",
        }
    }

    /// True if a bare `rescue` (StandardError) may catch this error.
    /// Hummingbird blame is deliberately not rescuable so type errors cannot
    /// be swallowed by application code.
    pub fn catchable(&self) -> bool {
        !matches!(
            self.kind,
            ErrorKind::TypeBlame | ErrorKind::ContractBlame | ErrorKind::Internal
        )
    }
}

impl fmt::Display for HbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.class_name(), self.message)
    }
}

impl Error for HbError {}

/// Non-local control flow during evaluation.
#[derive(Debug, Clone)]
pub enum Flow {
    Error(HbError),
    Return(Value),
    Break(Value),
    Next(Value),
}

impl From<HbError> for Flow {
    fn from(e: HbError) -> Flow {
        Flow::Error(e)
    }
}

impl Flow {
    /// Extracts the error, treating stray `return`/`break`/`next` as
    /// internal errors (they should have been handled structurally).
    pub fn into_error(self) -> HbError {
        match self {
            Flow::Error(e) => e,
            Flow::Return(_) => HbError::new(
                ErrorKind::Internal,
                "unexpected return outside method",
                Span::dummy(),
            ),
            Flow::Break(_) => HbError::new(
                ErrorKind::Internal,
                "unexpected break outside loop or block",
                Span::dummy(),
            ),
            Flow::Next(_) => HbError::new(
                ErrorKind::Internal,
                "unexpected next outside loop or block",
                Span::dummy(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_names() {
        let e = HbError::new(ErrorKind::NoMethod, "x", Span::dummy());
        assert_eq!(e.class_name(), "NoMethodError");
        let e = HbError::new(ErrorKind::UserRaise("MyError".into()), "x", Span::dummy());
        assert_eq!(e.class_name(), "MyError");
    }

    #[test]
    fn blame_is_not_catchable() {
        assert!(!HbError::new(ErrorKind::TypeBlame, "x", Span::dummy()).catchable());
        assert!(!HbError::new(ErrorKind::ContractBlame, "x", Span::dummy()).catchable());
        assert!(HbError::new(ErrorKind::ArgumentError, "x", Span::dummy()).catchable());
    }

    #[test]
    fn flow_into_error() {
        let f = Flow::Return(Value::Nil);
        assert_eq!(f.into_error().kind, ErrorKind::Internal);
        let f = Flow::Error(HbError::new(ErrorKind::TypeError, "boom", Span::dummy()));
        assert_eq!(f.into_error().message, "boom");
    }
}
