//! The RubyLite evaluator.
//!
//! A tree-walking interpreter over [`hb_syntax::ast`]. Method dispatch runs
//! through [`Interp::call_method`], which consults registered
//! [`CallHook`]s — that is the seam where RDL wrapping and Hummingbird's
//! just-in-time static checks attach, mirroring the paper's
//! implementation on top of method interception.

use crate::class::{BuiltinFn, ClassRegistry, InterpEvent, MethodBody, MethodEntry};
use crate::env::{Scope, ScopeRef};
use crate::error::{ErrorKind, Flow, HbError};
use crate::hooks::{CallHook, DispatchInfo};
use crate::tier::ExecTierState;
use crate::value::{ClassId, HashObj, Instance, ProcVal, Value};
use hb_intern::Sym;
use hb_syntax::ast::*;
use hb_syntax::parser::parse_in;
use hb_syntax::{SourceMap, Span};
use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// What kind of execution context a frame is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// The top-level main frame.
    Main,
    /// A `class`/`module` body.
    ClassBody,
    /// An interpreted method body.
    Method,
    /// A block/proc body.
    Block,
}

/// A call/execution frame.
pub struct Frame {
    pub kind: FrameKind,
    pub self_val: Value,
    /// The class receiving `def` in this frame.
    pub definee: ClassId,
    /// `(owner, name)` of the currently executing method (for `super`).
    pub method: Option<(ClassId, Sym)>,
    /// The method's arguments (for argument-forwarding `super`).
    pub args: Vec<Value>,
    /// The block passed to the current method (for `yield`).
    pub block: Option<Value>,
    /// True when the Hummingbird engine statically checked this call, so
    /// calls made from here skip dynamic argument checks.
    pub checked: bool,
    /// Lexical constant nesting for resolution (shared: method frames for
    /// the same class reuse one memoised vector).
    pub nesting: Rc<Vec<String>>,
}

/// Hierarchy-generation-tagged memo of per-class lexical nesting.
type NestingMemo = (u64, HashMap<ClassId, Rc<Vec<String>>>);

/// The interpreter.
pub struct Interp {
    pub registry: ClassRegistry,
    constants: HashMap<String, Value>,
    globals: HashMap<String, Value>,
    pub source_map: SourceMap,
    /// Execution-tier state (bytecode chunks, fast-entry patch table).
    /// Shared with the Hummingbird engine, which deoptimizes patched
    /// entries when derivations are invalidated.
    pub tier: Rc<ExecTierState>,
    frames: Vec<Frame>,
    /// `Rc`-wrapped so the per-dispatch snapshot is a refcount bump, not a
    /// `Vec` allocation.
    hooks: Rc<Vec<Rc<dyn CallHook>>>,
    extensions: HashMap<TypeId, Rc<dyn Any>>,
    /// Memoised per-class lexical nesting (`A::B` → `["A", "B"]`), keyed
    /// by the registry's hierarchy generation so renames invalidate it.
    nesting_memo: RefCell<NestingMemo>,
    /// Interned `name=` setter symbols, so attribute assignment does not
    /// allocate a fresh `String` per call.
    setter_syms: RefCell<HashMap<String, Sym>>,
    output: String,
    /// Echo `puts` output to stdout as well as the capture buffer.
    pub echo: bool,
    /// Recursion guard.
    max_depth: usize,
    /// Call-site span of the builtin currently executing (set on entry to
    /// every builtin dispatch). Builtins receive no span parameter; the
    /// annotation builtins (`type`, `var_type`, `rdl_cast`, `pre`) read
    /// this to record where an annotation was registered or a cast
    /// asserted — the spans structured blame diagnostics point at. Only
    /// valid at builtin entry: a nested dispatch overwrites it.
    builtin_span: Span,
}

impl Interp {
    /// Creates an interpreter with the core library loaded.
    pub fn new() -> Interp {
        let mut interp = Interp {
            registry: ClassRegistry::new(),
            constants: HashMap::new(),
            globals: HashMap::new(),
            source_map: SourceMap::new(),
            tier: Rc::new(ExecTierState::new()),
            frames: Vec::new(),
            hooks: Rc::new(Vec::new()),
            extensions: HashMap::new(),
            nesting_memo: RefCell::new((0, HashMap::new())),
            setter_syms: RefCell::new(HashMap::new()),
            output: String::new(),
            echo: false,
            // Guards runaway interpreted recursion. Each interpreted frame
            // also consumes substantial native stack through the recursive
            // evaluator, so hosts running untrusted deep recursion should
            // provide a generous native stack (see the edge-case tests).
            max_depth: 500,
            builtin_span: Span::dummy(),
        };
        crate::stdlib::install(&mut interp);
        let object = interp.registry.object();
        let main = Value::Obj(Rc::new(Instance {
            class: object,
            ivars: RefCell::new(HashMap::new()),
        }));
        interp.frames.push(Frame {
            kind: FrameKind::Main,
            self_val: main,
            definee: object,
            method: None,
            args: vec![],
            block: None,
            checked: false,
            nesting: Rc::new(vec![]),
        });
        // Classes registered during bootstrap are not interesting events.
        interp.registry.events.clear();
        interp
    }

    // ----- extensions & hooks ------------------------------------------------

    /// Registers a call hook (RDL wrapping / Hummingbird engine).
    pub fn add_hook(&mut self, hook: Rc<dyn CallHook>) {
        Rc::make_mut(&mut self.hooks).push(hook);
    }

    /// Removes all hooks (used by the "Orig" benchmark mode).
    pub fn clear_hooks(&mut self) {
        Rc::make_mut(&mut self.hooks).clear();
    }

    /// Stores a typed extension (e.g. the RDL state) retrievable by any
    /// builtin.
    pub fn set_extension<T: 'static>(&mut self, ext: Rc<T>) {
        self.extensions.insert(TypeId::of::<T>(), ext);
    }

    /// Fetches a typed extension.
    pub fn extension<T: 'static>(&self) -> Option<Rc<T>> {
        self.extensions
            .get(&TypeId::of::<T>())
            .and_then(|e| e.clone().downcast::<T>().ok())
    }

    // ----- frames ------------------------------------------------------------

    /// The innermost frame.
    ///
    /// # Panics
    ///
    /// Panics if called before bootstrap completes (there is always a main
    /// frame).
    pub fn frame(&self) -> &Frame {
        self.frames.last().expect("main frame always present")
    }

    #[allow(dead_code)]
    fn frame_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("main frame always present")
    }

    pub(crate) fn push_frame(&mut self, f: Frame) {
        self.frames.push(f);
    }

    pub(crate) fn pop_frame(&mut self) {
        self.frames.pop();
    }

    /// The memoised lexical nesting of a class (`A::B` → `["A", "B"]`).
    /// Keyed by the registry's hierarchy generation: a rename/define
    /// invalidates the whole memo rather than tracking names per class.
    pub(crate) fn nesting_of(&self, owner: ClassId) -> Rc<Vec<String>> {
        let generation = self.registry.hierarchy_generation();
        let mut memo = self.nesting_memo.borrow_mut();
        if memo.0 != generation {
            memo.0 = generation;
            memo.1.clear();
        }
        memo.1
            .entry(owner)
            .or_insert_with(|| {
                Rc::new(
                    self.registry
                        .name(owner)
                        .split("::")
                        .map(|s| s.to_string())
                        .collect(),
                )
            })
            .clone()
    }

    /// The interned `name=` symbol for an attribute writer, allocated at
    /// most once per attribute name.
    fn setter_sym(&self, name: &str) -> Sym {
        if let Some(s) = self.setter_syms.borrow().get(name) {
            return *s;
        }
        let s = Sym::intern(&format!("{name}="));
        self.setter_syms.borrow_mut().insert(name.to_string(), s);
        s
    }

    /// Whether the currently executing method was statically checked.
    pub fn current_caller_checked(&self) -> bool {
        self.frame().checked
    }

    /// Current `self`.
    pub fn self_val(&self) -> Value {
        self.frame().self_val.clone()
    }

    /// Current definee class (receiver of `def`).
    pub fn definee(&self) -> ClassId {
        self.frame().definee
    }

    /// Call stack depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// True when executing inside a method or block — i.e. annotations
    /// registered now are *dynamically generated* in the paper's sense
    /// (pre-hooks, schema loops, `add_types`), as opposed to literal
    /// top-level / class-body annotations.
    pub fn in_dynamic_context(&self) -> bool {
        self.frames
            .iter()
            .any(|f| matches!(f.kind, FrameKind::Method | FrameKind::Block))
    }

    // ----- output --------------------------------------------------------

    /// Appends to the captured program output.
    pub fn push_output(&mut self, s: &str) {
        if self.echo {
            print!("{s}");
        }
        self.output.push_str(s);
    }

    /// Takes and clears the captured output.
    pub fn take_output(&mut self) -> String {
        std::mem::take(&mut self.output)
    }

    // ----- globals and constants -----------------------------------------

    /// Reads a global variable.
    pub fn global(&self, name: &str) -> Value {
        self.globals.get(name).cloned().unwrap_or(Value::Nil)
    }

    /// Sets a global variable.
    pub fn set_global(&mut self, name: &str, v: Value) {
        self.globals.insert(name.to_string(), v);
    }

    /// Defines (or reopens) a class and binds its constant.
    pub fn define_class(&mut self, name: &str, superclass: Option<ClassId>) -> ClassId {
        let id = self.registry.define_class(name, superclass, false);
        self.constants.insert(name.to_string(), Value::Class(id));
        id
    }

    /// Defines (or reopens) a module and binds its constant.
    pub fn define_module(&mut self, name: &str) -> ClassId {
        let id = self.registry.define_class(name, None, true);
        self.constants.insert(name.to_string(), Value::Class(id));
        id
    }

    /// Registers a native method.
    pub fn define_builtin(&mut self, class: ClassId, name: &str, class_level: bool, f: BuiltinFn) {
        self.registry
            .add_method(class, name, MethodBody::Builtin(f), class_level);
    }

    /// The call-site span of the builtin currently executing (see the
    /// field docs): read it at builtin entry, before making further calls.
    pub fn current_builtin_span(&self) -> Span {
        self.builtin_span
    }

    /// Looks up a constant by fully qualified name.
    pub fn constant(&self, name: &str) -> Option<Value> {
        self.constants.get(name).cloned()
    }

    /// Binds a constant by fully qualified name.
    pub fn set_constant(&mut self, name: &str, v: Value) {
        self.constants.insert(name.to_string(), v);
    }

    pub(crate) fn resolve_const(&self, path: &[String], span: Span) -> Result<Value, Flow> {
        let joined = path.join("::");
        let nesting = &self.frame().nesting;
        for i in (0..=nesting.len()).rev() {
            let candidate = if i == 0 {
                joined.clone()
            } else {
                format!("{}::{}", nesting[..i].join("::"), joined)
            };
            if let Some(v) = self.constants.get(&candidate) {
                return Ok(v.clone());
            }
        }
        Err(Flow::Error(HbError::new(
            ErrorKind::NameError,
            format!("uninitialized constant {joined}"),
            span,
        )))
    }

    /// Drains pending class-registry events (engine side).
    pub fn drain_events(&mut self) -> Vec<InterpEvent> {
        self.registry.drain_events()
    }

    // ----- program loading -------------------------------------------------

    /// Parses and evaluates a source file.
    ///
    /// # Errors
    ///
    /// Returns parse errors and uncaught runtime errors.
    pub fn load_program(&mut self, name: &str, src: &str) -> Result<Value, HbError> {
        let prog = parse_in(&mut self.source_map, name, src)
            .map_err(|e| HbError::new(ErrorKind::Internal, e.render(&self.source_map), e.span))?;
        self.eval_program(&prog)
    }

    /// Evaluates an already-parsed program at the top level.
    ///
    /// # Errors
    ///
    /// Returns uncaught runtime errors.
    pub fn eval_program(&mut self, prog: &Program) -> Result<Value, HbError> {
        let scope = Scope::root();
        let mut last = Value::Nil;
        for e in &prog.body {
            last = self.eval(e, &scope).map_err(Flow::into_error)?;
        }
        Ok(last)
    }

    /// Evaluates a single expression string (tests and examples).
    ///
    /// # Errors
    ///
    /// Returns parse errors and uncaught runtime errors.
    pub fn eval_str(&mut self, src: &str) -> Result<Value, HbError> {
        self.load_program("<eval>", src)
    }

    // ----- the evaluator ---------------------------------------------------

    /// Evaluates an expression in a scope.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors and non-local control flow.
    pub fn eval(&mut self, e: &Expr, scope: &ScopeRef) -> Result<Value, Flow> {
        let span = e.span;
        match &e.kind {
            ExprKind::Nil => Ok(Value::Nil),
            ExprKind::True => Ok(Value::Bool(true)),
            ExprKind::False => Ok(Value::Bool(false)),
            ExprKind::SelfExpr => Ok(self.self_val()),
            ExprKind::Int(n) => Ok(Value::Int(*n)),
            ExprKind::Float(x) => Ok(Value::Float(*x)),
            ExprKind::Sym(s) => Ok(Value::sym(s)),
            ExprKind::Str(parts) => {
                let mut out = String::new();
                for p in parts {
                    match p {
                        StrPart::Lit(s) => out.push_str(s),
                        StrPart::Interp(e) => {
                            let v = self.eval(e, scope)?;
                            out.push_str(&self.value_to_s(&v)?);
                        }
                    }
                }
                Ok(Value::str(out))
            }
            ExprKind::Array(elems) => {
                let mut vs = Vec::with_capacity(elems.len());
                for el in elems {
                    vs.push(self.eval(el, scope)?);
                }
                Ok(Value::array(vs))
            }
            ExprKind::Hash(pairs) => {
                let mut h = HashObj::new();
                for (k, v) in pairs {
                    let k = self.eval(k, scope)?;
                    let v = self.eval(v, scope)?;
                    h.insert(k, v);
                }
                Ok(Value::Hash(Rc::new(RefCell::new(h))))
            }
            ExprKind::Range { lo, hi, exclusive } => {
                let lo = self.eval(lo, scope)?;
                let hi = self.eval(hi, scope)?;
                Ok(Value::Range(Rc::new((lo, hi, *exclusive))))
            }
            ExprKind::Local(n) => Ok(scope.get(n).unwrap_or(Value::Nil)),
            ExprKind::IVar(n) => Ok(self.ivar_get(&self.self_val(), n)),
            ExprKind::CVar(n) => Ok(self.cvar_get(n)),
            ExprKind::GVar(n) => Ok(self.global(n)),
            ExprKind::Const(path) => self.resolve_const(path, span),
            ExprKind::Assign { target, value } => {
                let v = self.eval(value, scope)?;
                self.assign(target, v.clone(), scope, span)?;
                Ok(v)
            }
            ExprKind::OpAssign { target, op, value } => {
                let cur = self.lhs_read(target, scope, span)?;
                match op.as_str() {
                    "||" => {
                        if cur.truthy() {
                            Ok(cur)
                        } else {
                            let v = self.eval(value, scope)?;
                            self.assign(target, v.clone(), scope, span)?;
                            Ok(v)
                        }
                    }
                    "&&" => {
                        if !cur.truthy() {
                            Ok(cur)
                        } else {
                            let v = self.eval(value, scope)?;
                            self.assign(target, v.clone(), scope, span)?;
                            Ok(v)
                        }
                    }
                    op => {
                        let rhs = self.eval(value, scope)?;
                        let v = self.call_method(cur, op, vec![rhs], None, span)?;
                        self.assign(target, v.clone(), scope, span)?;
                        Ok(v)
                    }
                }
            }
            ExprKind::Call {
                recv,
                name,
                args,
                block,
            } => {
                let recv_v = match recv {
                    Some(r) => Some(self.eval(r, scope)?),
                    None => None,
                };
                let (argv, mut block_v) = self.eval_args(args, scope)?;
                if let Some(b) = block {
                    block_v = Some(self.make_proc(b, scope));
                }
                match recv_v {
                    Some(r) => self.call_method(r, name, argv, block_v, span),
                    None => {
                        let slf = self.self_val();
                        self.call_method(slf, name, argv, block_v, span)
                    }
                }
            }
            ExprKind::Yield(args) => {
                let blk = self.frame().block.clone();
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, scope)?);
                }
                match blk {
                    Some(b) => self.call_block(&b, argv),
                    None => Err(Flow::Error(HbError::new(
                        ErrorKind::ArgumentError,
                        "no block given (yield)",
                        span,
                    ))),
                }
            }
            ExprKind::Super { args } => {
                let (owner, name) = match self.frame().method {
                    Some(m) => m,
                    None => {
                        return Err(Flow::Error(HbError::new(
                            ErrorKind::NameError,
                            "super called outside of method",
                            span,
                        )))
                    }
                };
                let argv = match args {
                    Some(args) => {
                        let mut v = Vec::with_capacity(args.len());
                        for a in args {
                            v.push(self.eval(a, scope)?);
                        }
                        v
                    }
                    None => self.frame().args.clone(),
                };
                let recv = self.self_val();
                let recv_class = self.registry.class_of(&recv);
                let blk = self.frame().block.clone();
                match self
                    .registry
                    .find_method_above(recv_class, owner, name.as_str())
                {
                    Some((o, entry)) => self.invoke_entry_inner(
                        recv,
                        recv_class,
                        false,
                        o,
                        entry,
                        name.as_str(),
                        Some(name),
                        argv,
                        blk,
                        span,
                    ),
                    None => Err(Flow::Error(HbError::new(
                        ErrorKind::NoMethod,
                        format!("super: no superclass method `{name}`"),
                        span,
                    ))),
                }
            }
            ExprKind::And(l, r) => {
                let a = self.eval(l, scope)?;
                if a.truthy() {
                    self.eval(r, scope)
                } else {
                    Ok(a)
                }
            }
            ExprKind::Or(l, r) => {
                let a = self.eval(l, scope)?;
                if a.truthy() {
                    Ok(a)
                } else {
                    self.eval(r, scope)
                }
            }
            ExprKind::Not(x) => {
                let v = self.eval(x, scope)?;
                Ok(Value::Bool(!v.truthy()))
            }
            ExprKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.eval(cond, scope)?;
                if c.truthy() {
                    self.eval_body(then_body, scope)
                } else {
                    self.eval_body(else_body, scope)
                }
            }
            ExprKind::While { cond, body } => {
                loop {
                    let c = self.eval(cond, scope)?;
                    if !c.truthy() {
                        break;
                    }
                    match self.eval_body(body, scope) {
                        Ok(_) => {}
                        Err(Flow::Break(_)) => break,
                        Err(Flow::Next(_)) => continue,
                        Err(e) => return Err(e),
                    }
                }
                Ok(Value::Nil)
            }
            ExprKind::Case {
                scrutinee,
                whens,
                else_body,
            } => {
                let scrut = match scrutinee {
                    Some(s) => Some(self.eval(s, scope)?),
                    None => None,
                };
                for (pats, body) in whens {
                    for pat in pats {
                        let matched = match &scrut {
                            Some(s) => {
                                let pv = self.eval(pat, scope)?;
                                self.case_match(&pv, s, span)?
                            }
                            None => self.eval(pat, scope)?.truthy(),
                        };
                        if matched {
                            return self.eval_body(body, scope);
                        }
                    }
                }
                self.eval_body(else_body, scope)
            }
            ExprKind::Begin {
                body,
                rescues,
                ensure_body,
            } => {
                let result = self.eval_body(body, scope);
                let result = match result {
                    Err(Flow::Error(err)) if err.catchable() && !rescues.is_empty() => {
                        self.run_rescues(&err, rescues, scope, span)
                    }
                    other => other,
                };
                if !ensure_body.is_empty() {
                    // Ensure runs on every path; its value is discarded.
                    self.eval_body(ensure_body, scope)?;
                }
                result
            }
            ExprKind::Return(v) => {
                let val = match v {
                    Some(v) => self.eval(v, scope)?,
                    None => Value::Nil,
                };
                Err(Flow::Return(val))
            }
            ExprKind::Break(v) => {
                let val = match v {
                    Some(v) => self.eval(v, scope)?,
                    None => Value::Nil,
                };
                Err(Flow::Break(val))
            }
            ExprKind::Next(v) => {
                let val = match v {
                    Some(v) => self.eval(v, scope)?,
                    None => Value::Nil,
                };
                Err(Flow::Next(val))
            }
            ExprKind::ClassDef {
                path,
                superclass,
                body,
            } => self.eval_class_def(path, superclass.as_deref(), body, false, span),
            ExprKind::ModuleDef { path, body } => self.eval_class_def(path, None, body, true, span),
            ExprKind::MethodDef(def) => {
                let definee = self.definee();
                self.registry.add_method(
                    definee,
                    &def.name,
                    MethodBody::Ast(def.clone()),
                    def.self_method,
                );
                Ok(Value::sym(&def.name))
            }
        }
    }

    fn eval_body(&mut self, body: &[Expr], scope: &ScopeRef) -> Result<Value, Flow> {
        let mut last = Value::Nil;
        for e in body {
            last = self.eval(e, scope)?;
        }
        Ok(last)
    }

    fn eval_args(
        &mut self,
        args: &[Arg],
        scope: &ScopeRef,
    ) -> Result<(Vec<Value>, Option<Value>), Flow> {
        let mut argv = Vec::with_capacity(args.len());
        let mut block = None;
        for a in args {
            match a {
                Arg::Pos(e) => argv.push(self.eval(e, scope)?),
                Arg::Splat(e) => {
                    let v = self.eval(e, scope)?;
                    match v {
                        Value::Array(a) => argv.extend(a.borrow().iter().cloned()),
                        other => argv.push(other),
                    }
                }
                Arg::BlockPass(e) => {
                    let v = self.eval(e, scope)?;
                    block = Some(self.coerce_to_proc(v)?);
                }
            }
        }
        Ok((argv, block))
    }

    /// Builds a proc value from a block literal, capturing scope and self.
    pub fn make_proc(&self, b: &BlockArg, scope: &ScopeRef) -> Value {
        Value::Proc(Rc::new(ProcVal {
            params: b.params.clone(),
            body: b.body.clone(),
            env: scope.clone(),
            self_val: self.self_val(),
            definee: self.definee(),
            span: b.span,
        }))
    }

    /// `&:sym` block-pass coercion: symbols become procs that send the
    /// symbol to their argument.
    fn coerce_to_proc(&mut self, v: Value) -> Result<Value, Flow> {
        match v {
            Value::Proc(_) | Value::Nil => Ok(v),
            Value::Sym(name) => {
                // Build a tiny AST-free proc by synthesising a builtin-like
                // proc: we reuse ProcVal with a body that the evaluator
                // interprets; simplest is a one-expression body `x.name`.
                let param = Param::required("x");
                let call = Expr::new(
                    ExprKind::Call {
                        recv: Some(Box::new(Expr::new(
                            ExprKind::Local("x".into()),
                            Span::dummy(),
                        ))),
                        name: name.to_string(),
                        args: vec![],
                        block: None,
                    },
                    Span::dummy(),
                );
                Ok(Value::Proc(Rc::new(ProcVal {
                    params: vec![param],
                    body: Rc::new(vec![call]),
                    env: Scope::root(),
                    self_val: self.self_val(),
                    definee: self.definee(),
                    span: Span::dummy(),
                })))
            }
            other => Err(Flow::Error(HbError::new(
                ErrorKind::TypeError,
                format!(
                    "wrong argument type {} (expected Proc)",
                    self.class_name_of(&other)
                ),
                Span::dummy(),
            ))),
        }
    }

    /// Ruby's `===` for case dispatch: classes match instances, ranges match
    /// inclusion, everything else falls back to `==` (dispatched).
    fn case_match(&mut self, pattern: &Value, scrut: &Value, span: Span) -> Result<bool, Flow> {
        match pattern {
            Value::Class(cid) => {
                let sc = self.registry.class_of(scrut);
                Ok(self.registry.is_descendant(sc, *cid))
            }
            Value::Range(r) => {
                // Incomparable scrutinees simply do not match the range.
                let ge = match self.call_method(scrut.clone(), ">=", vec![r.0.clone()], None, span)
                {
                    Ok(v) => v,
                    Err(Flow::Error(_)) => return Ok(false),
                    Err(e) => return Err(e),
                };
                if !ge.truthy() {
                    return Ok(false);
                }
                let le_name = if r.2 { "<" } else { "<=" };
                match self.call_method(scrut.clone(), le_name, vec![r.1.clone()], None, span) {
                    Ok(v) => Ok(v.truthy()),
                    Err(Flow::Error(_)) => Ok(false),
                    Err(e) => Err(e),
                }
            }
            p => {
                let eq = self.call_method(p.clone(), "==", vec![scrut.clone()], None, span)?;
                Ok(eq.truthy())
            }
        }
    }

    fn run_rescues(
        &mut self,
        err: &HbError,
        rescues: &[Rescue],
        scope: &ScopeRef,
        span: Span,
    ) -> Result<Value, Flow> {
        let err_class = self.registry.lookup(err.class_name());
        for r in rescues {
            let matched = if r.classes.is_empty() {
                true
            } else {
                let mut m = false;
                for c in &r.classes {
                    let cv = self.eval(c, scope)?;
                    if let (Value::Class(want), Some(have)) = (&cv, err_class) {
                        if self.registry.is_descendant(have, *want) {
                            m = true;
                            break;
                        }
                    }
                }
                m
            };
            if matched {
                if let Some(var) = &r.var {
                    let exc = self.exception_value(err, span);
                    scope.set(var, exc);
                }
                return self.eval_body(&r.body, scope);
            }
        }
        Err(Flow::Error(err.clone()))
    }

    /// The exception object for an error, constructing one if the error was
    /// raised natively.
    fn exception_value(&mut self, err: &HbError, _span: Span) -> Value {
        if let Some(v) = &err.value {
            return v.clone();
        }
        let cid = self
            .registry
            .lookup(err.class_name())
            .unwrap_or(self.registry.object());
        let inst = Instance {
            class: cid,
            ivars: RefCell::new(HashMap::new()),
        };
        inst.ivars
            .borrow_mut()
            .insert("message".to_string(), Value::str(&err.message));
        Value::Obj(Rc::new(inst))
    }

    // ----- assignment targets ------------------------------------------------

    fn assign(&mut self, target: &Lhs, v: Value, scope: &ScopeRef, span: Span) -> Result<(), Flow> {
        match target {
            Lhs::Local(n) => {
                scope.set(n, v);
                Ok(())
            }
            Lhs::IVar(n) => {
                self.ivar_set(&self.self_val(), n, v);
                Ok(())
            }
            Lhs::CVar(n) => {
                self.cvar_set(n, v);
                Ok(())
            }
            Lhs::GVar(n) => {
                self.set_global(n, v);
                Ok(())
            }
            Lhs::Const(path) => {
                let name = {
                    let nesting = &self.frame().nesting;
                    if nesting.is_empty() {
                        path.join("::")
                    } else {
                        format!("{}::{}", nesting.join("::"), path.join("::"))
                    }
                };
                // Ruby names anonymous classes when first assigned to a
                // constant (`Transaction = Struct.new(...)`).
                if let Value::Class(cid) = &v {
                    if self.registry.name(*cid).starts_with("#<") {
                        self.registry.rename(*cid, &name);
                    }
                }
                self.constants.insert(name, v);
                Ok(())
            }
            Lhs::Index(recv, idx) => {
                let r = self.eval(recv, scope)?;
                let mut args = Vec::with_capacity(idx.len() + 1);
                for a in idx {
                    args.push(self.eval(a, scope)?);
                }
                args.push(v);
                self.call_method(r, "[]=", args, None, span)?;
                Ok(())
            }
            Lhs::Attr(recv, name) => {
                let r = self.eval(recv, scope)?;
                let setter = self.setter_sym(name);
                self.call_method_sym(r, setter, vec![v], None, span)?;
                Ok(())
            }
        }
    }

    fn lhs_read(&mut self, target: &Lhs, scope: &ScopeRef, span: Span) -> Result<Value, Flow> {
        match target {
            Lhs::Local(n) => Ok(scope.get(n).unwrap_or(Value::Nil)),
            Lhs::IVar(n) => Ok(self.ivar_get(&self.self_val(), n)),
            Lhs::CVar(n) => Ok(self.cvar_get(n)),
            Lhs::GVar(n) => Ok(self.global(n)),
            Lhs::Const(path) => match self.resolve_const(path, span) {
                Ok(v) => Ok(v),
                Err(_) => Ok(Value::Nil),
            },
            Lhs::Index(recv, idx) => {
                let r = self.eval(recv, scope)?;
                let mut args = Vec::with_capacity(idx.len());
                for a in idx {
                    args.push(self.eval(a, scope)?);
                }
                self.call_method(r, "[]", args, None, span)
            }
            Lhs::Attr(recv, name) => {
                let r = self.eval(recv, scope)?;
                self.call_method(r, name, vec![], None, span)
            }
        }
    }

    // ----- instance / class variables -----------------------------------------

    /// Reads an instance variable of `target` (objects and classes both
    /// carry ivars).
    pub fn ivar_get(&self, target: &Value, name: &str) -> Value {
        match target {
            Value::Obj(o) => o.ivars.borrow().get(name).cloned().unwrap_or(Value::Nil),
            Value::Class(cid) => self
                .class_ivars(*cid)
                .get(name)
                .cloned()
                .unwrap_or(Value::Nil),
            _ => Value::Nil,
        }
    }

    /// Writes an instance variable of `target`.
    pub fn ivar_set(&mut self, target: &Value, name: &str, v: Value) {
        match target {
            Value::Obj(o) => {
                o.ivars.borrow_mut().insert(name.to_string(), v);
            }
            Value::Class(cid) => {
                self.class_ivars_mut(*cid).insert(name.to_string(), v);
            }
            _ => {}
        }
    }

    fn class_ivars(&self, cid: ClassId) -> &hb_intern::FastMap<String, Value> {
        &self.registry.class(cid).ivars
    }

    fn class_ivars_mut(&mut self, cid: ClassId) -> &mut hb_intern::FastMap<String, Value> {
        &mut self.registry.class_mut(cid).ivars
    }

    fn cvar_get(&self, name: &str) -> Value {
        let definee = self.definee();
        for id in self.registry.ancestors(definee) {
            if let Some(v) = self.registry.class(id).cvars.get(name) {
                return v.clone();
            }
        }
        Value::Nil
    }

    fn cvar_set(&mut self, name: &str, v: Value) {
        let definee = self.definee();
        for id in self.registry.ancestors(definee) {
            if self.registry.class(id).cvars.contains_key(name) {
                self.registry
                    .class_mut(id)
                    .cvars
                    .insert(name.to_string(), v);
                return;
            }
        }
        self.registry
            .class_mut(definee)
            .cvars
            .insert(name.to_string(), v);
    }

    // ----- class definition ----------------------------------------------------

    fn eval_class_def(
        &mut self,
        path: &[String],
        superclass: Option<&Expr>,
        body: &Rc<Vec<Expr>>,
        is_module: bool,
        span: Span,
    ) -> Result<Value, Flow> {
        let full_name = {
            let nesting = &self.frame().nesting;
            if nesting.is_empty() {
                path.join("::")
            } else {
                format!("{}::{}", nesting.join("::"), path.join("::"))
            }
        };
        let sup = match superclass {
            Some(s) => {
                let scope = Scope::root();
                match self.eval(s, &scope)? {
                    Value::Class(cid) => Some(cid),
                    other => {
                        return Err(Flow::Error(HbError::new(
                            ErrorKind::TypeError,
                            format!(
                                "superclass must be a Class ({} given)",
                                self.class_name_of(&other)
                            ),
                            span,
                        )))
                    }
                }
            }
            None => None,
        };
        let existed = self.registry.lookup(&full_name).is_some();
        let cid = self.registry.define_class(&full_name, sup, is_module);
        self.constants.insert(full_name.clone(), Value::Class(cid));
        // The `inherited` hook fires on fresh subclass creation.
        if !existed && !is_module {
            if let Some(s) = sup {
                if self.registry.find_smethod(s, "inherited").is_some() {
                    self.call_method(
                        Value::Class(s),
                        "inherited",
                        vec![Value::Class(cid)],
                        None,
                        span,
                    )?;
                }
            }
        }
        let nesting = Rc::new(
            full_name
                .split("::")
                .map(|s| s.to_string())
                .collect::<Vec<String>>(),
        );
        self.frames.push(Frame {
            kind: FrameKind::ClassBody,
            self_val: Value::Class(cid),
            definee: cid,
            method: None,
            args: vec![],
            block: None,
            checked: false,
            nesting,
        });
        let scope = Scope::root();
        let r = self.eval_body(body, &scope);
        self.frames.pop();
        r?;
        Ok(Value::Class(cid))
    }

    // ----- dispatch --------------------------------------------------------------

    /// The class name of a value (for error messages).
    pub fn class_name_of(&self, v: &Value) -> String {
        match v {
            Value::Class(c) => format!("Class<{}>", self.registry.name(*c)),
            other => self
                .registry
                .name(self.registry.class_of(other))
                .to_string(),
        }
    }

    /// Dispatches `recv.name(args, &block)`.
    ///
    /// # Errors
    ///
    /// `NoMethodError` when the method is missing (after `method_missing`),
    /// plus whatever the method body raises. Registered hooks may veto the
    /// call (Hummingbird blame).
    pub fn call_method(
        &mut self,
        recv: Value,
        name: &str,
        args: Vec<Value>,
        block: Option<Value>,
        span: Span,
    ) -> Result<Value, Flow> {
        self.dispatch(recv, name, None, args, block, span)
    }

    /// [`Interp::call_method`] with a pre-interned name — the bytecode VM's
    /// entry point, avoiding per-call symbol interning.
    pub fn call_method_sym(
        &mut self,
        recv: Value,
        name: Sym,
        args: Vec<Value>,
        block: Option<Value>,
        span: Span,
    ) -> Result<Value, Flow> {
        self.dispatch(recv, name.as_str(), Some(name), args, block, span)
    }

    fn dispatch(
        &mut self,
        recv: Value,
        name: &str,
        sym: Option<Sym>,
        args: Vec<Value>,
        block: Option<Value>,
        span: Span,
    ) -> Result<Value, Flow> {
        if self.frames.len() >= self.max_depth {
            return Err(Flow::Error(HbError::new(
                ErrorKind::Internal,
                "stack level too deep",
                span,
            )));
        }
        let (class_level, lookup_class) = match &recv {
            Value::Class(cid) => (true, *cid),
            other => (false, self.registry.class_of(other)),
        };
        let found = if class_level {
            self.registry
                .find_smethod(lookup_class, name)
                .map(|(o, e)| (o, e, true))
                .or_else(|| {
                    // Instance methods of Class / Object apply to class
                    // objects too (`User.nil?`, `User == x`, `User.name`).
                    self.registry
                        .lookup("Class")
                        .and_then(|cc| self.registry.find_method(cc, name))
                        .map(|(o, e)| (o, e, false))
                })
        } else {
            self.registry
                .find_method(lookup_class, name)
                .map(|(o, e)| (o, e, false))
        };
        match found {
            Some((owner, entry, as_singleton)) => self.invoke_entry_inner(
                recv,
                lookup_class,
                class_level && as_singleton,
                owner,
                entry,
                name,
                sym,
                args,
                block,
                span,
            ),
            None => {
                // method_missing, looked up in the same receiver position.
                let mm = if class_level {
                    self.registry.find_smethod(lookup_class, "method_missing")
                } else {
                    self.registry.find_method(lookup_class, "method_missing")
                };
                if let Some((owner, entry)) = mm {
                    let mut margs = vec![Value::sym(name)];
                    margs.extend(args);
                    return self.invoke_entry_inner(
                        recv,
                        lookup_class,
                        class_level,
                        owner,
                        entry,
                        "method_missing",
                        None,
                        margs,
                        block,
                        span,
                    );
                }
                Err(Flow::Error(HbError::new(
                    ErrorKind::NoMethod,
                    format!(
                        "undefined method `{name}` for {}",
                        self.class_name_of(&recv)
                    ),
                    span,
                )))
            }
        }
    }

    /// Invokes a resolved method entry, running hooks first.
    #[allow(clippy::too_many_arguments)]
    pub fn invoke_entry(
        &mut self,
        recv: Value,
        recv_class: ClassId,
        class_level: bool,
        owner: ClassId,
        entry: MethodEntry,
        name: &str,
        args: Vec<Value>,
        block: Option<Value>,
        span: Span,
    ) -> Result<Value, Flow> {
        self.invoke_entry_inner(
            recv,
            recv_class,
            class_level,
            owner,
            entry,
            name,
            None,
            args,
            block,
            span,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn invoke_entry_inner(
        &mut self,
        recv: Value,
        recv_class: ClassId,
        class_level: bool,
        owner: ClassId,
        entry: MethodEntry,
        name: &str,
        sym: Option<Sym>,
        args: Vec<Value>,
        block: Option<Value>,
        span: Span,
    ) -> Result<Value, Flow> {
        let entry_id = entry.id;
        // Interned at most once per dispatch, shared by the hook probe and
        // the frame record (pre-interned callers skip it entirely).
        let mut sym = sym;
        let mut mark_checked = false;
        if entry.is_checkable() && !self.hooks.is_empty() {
            // Checked fast prologue: when the engine has patched this
            // `(receiver class, entry)` pair — its derivation holds and the
            // caller is itself checked — the per-call hook probe and all
            // dynamic argument checks are elided. Pending registry events
            // force the guarded path so the engine drains them first.
            if self.frame().checked
                && self.registry.events.is_empty()
                && self.tier.fast_hit(recv_class, entry_id)
            {
                mark_checked = true;
            } else {
                let info = DispatchInfo {
                    recv_class,
                    class_level,
                    owner,
                    name: *sym.get_or_insert_with(|| Sym::intern(name)),
                    entry: entry.clone(),
                    span,
                };
                let hooks = Rc::clone(&self.hooks);
                for h in hooks.iter() {
                    let out = h
                        .before_call(self, &info, &recv, &args)
                        .map_err(Flow::Error)?;
                    mark_checked |= out.mark_checked;
                }
            }
        }
        match entry.body {
            MethodBody::Builtin(f) => {
                self.builtin_span = span;
                f(self, recv, args, block)
            }
            MethodBody::Ast(def) => {
                let msym = sym.unwrap_or_else(|| Sym::intern(name));
                if self.tier.bytecode_enabled() {
                    if let Some(chunk) = self.tier.chunk_for(entry_id, &def) {
                        return crate::vm::run_chunk(
                            self,
                            &chunk,
                            recv,
                            owner,
                            msym,
                            args,
                            block,
                            mark_checked,
                            span,
                        );
                    }
                }
                self.check_arity(&def.params, args.len(), name, span)?;
                let scope = Scope::root();
                let nesting = self.nesting_of(owner);
                self.frames.push(Frame {
                    kind: FrameKind::Method,
                    self_val: recv,
                    definee: owner,
                    method: Some((owner, msym)),
                    args: args.clone(),
                    block,
                    checked: mark_checked,
                    nesting,
                });
                let bind = self.bind_params(&def.params, args, &scope, false);
                let r = match bind {
                    Ok(()) => self.eval_body(&def.body, &scope),
                    Err(e) => Err(e),
                };
                self.frames.pop();
                match r {
                    Ok(v) => Ok(v),
                    Err(Flow::Return(v)) => Ok(v),
                    // `break` out of a yielded block terminates this call.
                    Err(Flow::Break(v)) => Ok(v),
                    Err(e) => Err(e),
                }
            }
            MethodBody::FromProc(p) => self.call_proc(&p, args, block, Some(recv), mark_checked),
        }
    }

    fn check_arity(
        &self,
        params: &[Param],
        given: usize,
        name: &str,
        span: Span,
    ) -> Result<(), Flow> {
        let required = params
            .iter()
            .filter(|p| matches!(p.kind, ParamKind::Required))
            .count();
        let has_rest = params.iter().any(|p| matches!(p.kind, ParamKind::Rest));
        let max = params
            .iter()
            .filter(|p| matches!(p.kind, ParamKind::Required | ParamKind::Optional(_)))
            .count();
        if given < required || (!has_rest && given > max) {
            return Err(Flow::Error(HbError::new(
                ErrorKind::ArgumentError,
                format!(
                    "wrong number of arguments calling `{name}` (given {given}, expected {required}{})",
                    if has_rest {
                        "+".to_string()
                    } else if max > required {
                        format!("..{max}")
                    } else {
                        String::new()
                    }
                ),
                span,
            )));
        }
        Ok(())
    }

    /// Binds parameters into `scope`. Must run with the callee frame already
    /// pushed (defaults evaluate in the callee context). When `lenient`,
    /// missing arguments become `nil` and extras are dropped (block
    /// semantics).
    fn bind_params(
        &mut self,
        params: &[Param],
        args: Vec<Value>,
        scope: &ScopeRef,
        lenient: bool,
    ) -> Result<(), Flow> {
        let _ = lenient;
        let positional: Vec<&Param> = params
            .iter()
            .filter(|p| !matches!(p.kind, ParamKind::Block))
            .collect();
        let n_rest_less: usize = positional
            .iter()
            .filter(|p| !matches!(p.kind, ParamKind::Rest))
            .count();
        let mut args = args.into_iter();
        let mut remaining = args.len();
        let mut optional_budget = remaining.saturating_sub(
            positional
                .iter()
                .filter(|p| matches!(p.kind, ParamKind::Required))
                .count(),
        );
        let _ = n_rest_less;
        for p in &positional {
            match &p.kind {
                ParamKind::Required => {
                    let v = args.next().unwrap_or(Value::Nil);
                    remaining = remaining.saturating_sub(1);
                    scope.define(&p.name, v);
                }
                ParamKind::Optional(default) => {
                    if optional_budget > 0 {
                        let v = args.next().unwrap_or(Value::Nil);
                        remaining = remaining.saturating_sub(1);
                        optional_budget -= 1;
                        scope.define(&p.name, v);
                    } else {
                        let v = self.eval(default, scope)?;
                        scope.define(&p.name, v);
                    }
                }
                ParamKind::Rest => {
                    // Rest takes whatever is left beyond later requireds
                    // (we do not support required-after-rest, so all).
                    let rest: Vec<Value> = args.by_ref().collect();
                    remaining = 0;
                    scope.define(&p.name, Value::array(rest));
                }
                ParamKind::Block => {}
            }
        }
        for p in params {
            if matches!(p.kind, ParamKind::Block) {
                let b = self.frame().block.clone().unwrap_or(Value::Nil);
                scope.define(&p.name, b);
            }
        }
        Ok(())
    }

    /// Invokes a proc. `override_self` rebinds `self` (used by
    /// `define_method`-created methods and `class_eval`); `as_method`
    /// behaviour: `return` is caught here when the proc is the whole method.
    pub fn call_proc(
        &mut self,
        p: &ProcVal,
        mut args: Vec<Value>,
        block: Option<Value>,
        override_self: Option<Value>,
        mark_checked: bool,
    ) -> Result<Value, Flow> {
        if self.frames.len() >= self.max_depth {
            return Err(Flow::Error(HbError::new(
                ErrorKind::Internal,
                "stack level too deep",
                p.span,
            )));
        }
        // Ruby auto-splats a single array argument across multi-param blocks.
        let positional = p
            .params
            .iter()
            .filter(|q| !matches!(q.kind, ParamKind::Block))
            .count();
        if positional > 1 && args.len() == 1 {
            if let Value::Array(a) = &args[0] {
                let expanded: Vec<Value> = a.borrow().clone();
                args = expanded;
            }
        }
        let as_method = override_self.is_some();
        let self_val = override_self.unwrap_or_else(|| p.self_val.clone());
        let scope = Scope::child(&p.env);
        let nesting = self.nesting_of(p.definee);
        self.frames.push(Frame {
            kind: FrameKind::Block,
            self_val,
            definee: p.definee,
            method: None,
            args: args.clone(),
            block,
            checked: mark_checked,
            nesting,
        });
        // Blocks bind leniently: missing args become nil, extras dropped.
        let mut it = args.into_iter();
        let mut bind_err = None;
        for q in &p.params {
            match &q.kind {
                ParamKind::Required => {
                    scope.define(&q.name, it.next().unwrap_or(Value::Nil));
                }
                ParamKind::Optional(d) => match it.next() {
                    Some(v) => scope.define(&q.name, v),
                    None => match self.eval(d, &scope) {
                        Ok(v) => scope.define(&q.name, v),
                        Err(e) => {
                            bind_err = Some(e);
                            break;
                        }
                    },
                },
                ParamKind::Rest => {
                    let rest: Vec<Value> = it.by_ref().collect();
                    scope.define(&q.name, Value::array(rest));
                }
                ParamKind::Block => {
                    let b = self.frame().block.clone().unwrap_or(Value::Nil);
                    scope.define(&q.name, b);
                }
            }
        }
        let r = match bind_err {
            Some(e) => Err(e),
            None => self.eval_body(&p.body, &scope),
        };
        self.frames.pop();
        match r {
            Ok(v) => Ok(v),
            Err(Flow::Next(v)) => Ok(v),
            Err(Flow::Return(v)) if as_method => Ok(v),
            Err(e) => Err(e),
        }
    }

    /// Calls a block value with arguments (stdlib iteration helper).
    ///
    /// # Errors
    ///
    /// `TypeError` if the value is not a proc; otherwise whatever the block
    /// raises (including `Flow::Break` for the caller to handle).
    pub fn call_block(&mut self, blk: &Value, args: Vec<Value>) -> Result<Value, Flow> {
        match blk {
            Value::Proc(p) => {
                let p = p.clone();
                self.call_proc(&p, args, None, None, false)
            }
            other => Err(Flow::Error(HbError::new(
                ErrorKind::TypeError,
                format!("no block given ({} found)", self.class_name_of(other)),
                Span::dummy(),
            ))),
        }
    }

    /// `to_s` with method dispatch for objects.
    ///
    /// # Errors
    ///
    /// Propagates errors from user-defined `to_s`.
    pub fn value_to_s(&mut self, v: &Value) -> Result<String, Flow> {
        if let Some(s) = v.primitive_to_s() {
            return Ok(s);
        }
        match v {
            Value::Class(c) => Ok(self.registry.name(*c).to_string()),
            Value::Obj(o) => {
                // Dispatch to_s only when it is overridden below Object —
                // the Object#to_s builtin itself delegates here, so
                // dispatching it would recurse forever.
                let object = self.registry.object();
                match self.registry.find_method(o.class, "to_s") {
                    Some((owner, _)) if owner != object => {
                        let r = self.call_method(v.clone(), "to_s", vec![], None, Span::dummy())?;
                        if let Value::Str(s) = r {
                            Ok(s.to_string())
                        } else {
                            Ok(format!("#<{}>", self.registry.name(o.class)))
                        }
                    }
                    _ => Ok(format!("#<{}>", self.registry.name(o.class))),
                }
            }
            Value::Array(_) | Value::Hash(_) | Value::Range(_) => Ok(self.inspect(v)),
            Value::Proc(_) => Ok("#<Proc>".to_string()),
            _ => Ok(format!("{v:?}")),
        }
    }

    /// Ruby `inspect`: strings quoted, recursive into collections.
    pub fn inspect(&self, v: &Value) -> String {
        match v {
            Value::Str(s) => format!("{s:?}"),
            Value::Sym(s) => format!(":{s}"),
            Value::Nil => "nil".to_string(),
            Value::Array(a) => {
                let items: Vec<String> = a.borrow().iter().map(|x| self.inspect(x)).collect();
                format!("[{}]", items.join(", "))
            }
            Value::Hash(h) => {
                let items: Vec<String> = h
                    .borrow()
                    .iter()
                    .map(|(k, v)| format!("{}=>{}", self.inspect(k), self.inspect(v)))
                    .collect();
                format!("{{{}}}", items.join(", "))
            }
            Value::Range(r) => format!(
                "{}{}{}",
                self.inspect(&r.0),
                if r.2 { "..." } else { ".." },
                self.inspect(&r.1)
            ),
            Value::Obj(o) => {
                let ivars = o.ivars.borrow();
                if ivars.is_empty() {
                    format!("#<{}>", self.registry.name(o.class))
                } else {
                    let mut keys: Vec<&String> = ivars.keys().collect();
                    keys.sort();
                    let items: Vec<String> = keys
                        .iter()
                        .map(|k| format!("@{}={}", k, self.inspect(&ivars[k.as_str()])))
                        .collect();
                    format!("#<{} {}>", self.registry.name(o.class), items.join(", "))
                }
            }
            Value::Class(c) => self.registry.name(*c).to_string(),
            other => format!("{other:?}"),
        }
    }
}

impl Default for Interp {
    fn default() -> Self {
        Interp::new()
    }
}
