//! The runtime class registry: classes, modules, methods, re-opening,
//! mixins, and the events the Hummingbird engine consumes for cache
//! invalidation.

use crate::error::Flow;
use crate::value::{ClassId, ProcVal, Value};
use hb_intern::{FastMap, Sym};
use hb_syntax::ast::MethodDefNode;
use std::cell::RefCell;
use std::rc::Rc;

/// Signature of a native (Rust-implemented) method.
pub type BuiltinFn =
    Rc<dyn Fn(&mut crate::interp::Interp, Value, Vec<Value>, Option<Value>) -> Result<Value, Flow>>;

/// How a method is implemented.
#[derive(Clone)]
pub enum MethodBody {
    /// Defined with `def`: the parsed definition node.
    Ast(Rc<MethodDefNode>),
    /// Defined with `define_method`: a proc whose `self` rebinds to the
    /// receiver at call time.
    FromProc(Rc<ProcVal>),
    /// A native method from the core library or a substrate.
    Builtin(BuiltinFn),
}

/// A method table entry. `id` is globally unique and changes on
/// redefinition, which lets the engine key CFG caches by it.
#[derive(Clone)]
pub struct MethodEntry {
    pub body: MethodBody,
    pub id: u64,
}

impl MethodEntry {
    /// True if the body is user code the checker can analyse.
    pub fn is_checkable(&self) -> bool {
        !matches!(self.body, MethodBody::Builtin(_))
    }
}

/// A runtime class or module.
pub struct ClassDef {
    pub name: String,
    /// The interned name — the dispatch hot path keys annotation lookups by
    /// this, avoiding any per-call string work.
    pub name_sym: Sym,
    pub superclass: Option<ClassId>,
    pub is_module: bool,
    /// Included modules, in inclusion order (later lookups win).
    pub includes: Vec<ClassId>,
    pub methods: FastMap<String, MethodEntry>,
    /// Class-level (singleton) methods.
    pub smethods: FastMap<String, MethodEntry>,
    /// For `Struct.new`-generated classes: the member names.
    pub struct_members: Option<Vec<String>>,
    /// Class-level instance variables (`@x` with a class as `self`).
    pub ivars: FastMap<String, Value>,
    /// Class variables (`@@x`), shared down the inheritance chain.
    pub cvars: FastMap<String, Value>,
    /// Memoised linearised ancestor chain, tagged with the hierarchy
    /// generation it was computed at (see `ClassRegistry::hierarchy_gen`).
    ancestor_cache: RefCell<Option<(u64, Rc<[ClassId]>)>>,
}

/// An event emitted by the registry; drained by the Hummingbird engine to
/// drive cache invalidation (paper rules (EDef) / Definition 1).
#[derive(Debug, Clone, PartialEq)]
pub enum InterpEvent {
    MethodAdded {
        class: ClassId,
        name: String,
        class_level: bool,
    },
    MethodRedefined {
        class: ClassId,
        name: String,
        class_level: bool,
        old_id: u64,
        new_id: u64,
    },
    MethodRemoved {
        class: ClassId,
        name: String,
        class_level: bool,
    },
    ModuleIncluded {
        class: ClassId,
        module: ClassId,
    },
}

/// The registry of all classes and modules.
pub struct ClassRegistry {
    classes: Vec<ClassDef>,
    by_name: FastMap<String, ClassId>,
    next_method_id: u64,
    /// Bumped whenever the class graph changes shape (superclass set or
    /// module included); memoised ancestor chains from older generations
    /// are recomputed lazily.
    hierarchy_gen: u64,
    /// Rolling, order-sensitive fingerprint of the class graph's shape:
    /// folds every class/module definition, superclass wiring, include
    /// and rename. Two registries built by identical boot sequences have
    /// equal fingerprints; the shared derivation tier uses equality as
    /// its O(1) "identical hierarchy" fast path.
    shape_fp: u64,
    pub events: Vec<InterpEvent>,
}

impl ClassRegistry {
    /// Creates a registry containing only the bootstrap graph rooted at
    /// `Object`.
    pub fn new() -> ClassRegistry {
        let mut r = ClassRegistry {
            classes: Vec::new(),
            by_name: FastMap::default(),
            next_method_id: 1,
            hierarchy_gen: 0,
            shape_fp: 0,
            events: Vec::new(),
        };
        let object = r.define_class("Object", None, false);
        debug_assert_eq!(object, ClassId(0));
        r
    }

    /// The root class.
    pub fn object(&self) -> ClassId {
        ClassId(0)
    }

    /// Defines a class (or re-opens it if the name exists). Returns its id.
    ///
    /// Re-opening with a different superclass is ignored, as in Ruby when
    /// the superclass is already set.
    pub fn define_class(
        &mut self,
        name: &str,
        superclass: Option<ClassId>,
        is_module: bool,
    ) -> ClassId {
        if let Some(&id) = self.by_name.get(name) {
            let c = &mut self.classes[id.0 as usize];
            if c.superclass.is_none() {
                if let Some(s) = superclass {
                    c.superclass = Some(s);
                    self.hierarchy_gen += 1;
                    self.mix_shape(("rewire", name, s.0));
                }
            }
            return id;
        }
        let superclass = superclass.or(if name == "Object" || is_module {
            None
        } else {
            Some(self.object())
        });
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(ClassDef {
            name: name.to_string(),
            name_sym: Sym::intern(name),
            superclass,
            is_module,
            includes: Vec::new(),
            methods: FastMap::default(),
            smethods: FastMap::default(),
            struct_members: None,
            ivars: FastMap::default(),
            cvars: FastMap::default(),
            ancestor_cache: RefCell::new(None),
        });
        self.by_name.insert(name.to_string(), id);
        // A new class changes what name-based resolution can see (a chain
        // that previously degraded to [name, Object] now exists), so it is
        // a shape change like any other.
        self.hierarchy_gen += 1;
        self.mix_shape(("define", name, superclass.map(|s| s.0), is_module));
        id
    }

    /// Number of classes registered (used for anonymous-class naming).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Looks up a class by fully qualified name.
    pub fn lookup(&self, name: &str) -> Option<ClassId> {
        self.by_name.get(name).copied()
    }

    /// The class definition for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this registry.
    pub fn class(&self, id: ClassId) -> &ClassDef {
        &self.classes[id.0 as usize]
    }

    /// Mutable access to a class definition.
    pub fn class_mut(&mut self, id: ClassId) -> &mut ClassDef {
        &mut self.classes[id.0 as usize]
    }

    /// The class name for `id`.
    pub fn name(&self, id: ClassId) -> &str {
        &self.class(id).name
    }

    /// The interned class name for `id` (no allocation, `Copy`).
    pub fn name_sym(&self, id: ClassId) -> Sym {
        self.class(id).name_sym
    }

    /// Renames a class (used when an anonymous `Struct.new` class is
    /// assigned to a constant, as Ruby does).
    pub fn rename(&mut self, id: ClassId, new_name: &str) {
        let old = self.class(id).name.clone();
        self.by_name.remove(&old);
        self.by_name.insert(new_name.to_string(), id);
        let c = self.class_mut(id);
        c.name = new_name.to_string();
        c.name_sym = Sym::intern(new_name);
        self.hierarchy_gen += 1;
        self.mix_shape(("rename", id.0, new_name));
    }

    fn fresh_method_id(&mut self) -> u64 {
        let id = self.next_method_id;
        self.next_method_id += 1;
        id
    }

    /// Adds or replaces a method, emitting the appropriate event.
    pub fn add_method(
        &mut self,
        class: ClassId,
        name: &str,
        body: MethodBody,
        class_level: bool,
    ) -> u64 {
        let new_id = self.fresh_method_id();
        let table = if class_level {
            &mut self.classes[class.0 as usize].smethods
        } else {
            &mut self.classes[class.0 as usize].methods
        };
        let old = table.insert(name.to_string(), MethodEntry { body, id: new_id });
        match old {
            Some(prev) => self.events.push(InterpEvent::MethodRedefined {
                class,
                name: name.to_string(),
                class_level,
                old_id: prev.id,
                new_id,
            }),
            None => self.events.push(InterpEvent::MethodAdded {
                class,
                name: name.to_string(),
                class_level,
            }),
        }
        new_id
    }

    /// Removes a method if present.
    pub fn remove_method(&mut self, class: ClassId, name: &str, class_level: bool) -> bool {
        let table = if class_level {
            &mut self.classes[class.0 as usize].smethods
        } else {
            &mut self.classes[class.0 as usize].methods
        };
        if table.remove(name).is_some() {
            self.events.push(InterpEvent::MethodRemoved {
                class,
                name: name.to_string(),
                class_level,
            });
            true
        } else {
            false
        }
    }

    /// Includes `module` into `class` (appended; later includes win).
    pub fn include_module(&mut self, class: ClassId, module: ClassId) {
        let c = self.class_mut(class);
        if !c.includes.contains(&module) {
            c.includes.push(module);
            self.hierarchy_gen += 1;
            self.events
                .push(InterpEvent::ModuleIncluded { class, module });
            self.mix_shape(("include", class.0, module.0));
        }
    }

    /// Monotonic generation of the class graph's *shape* (superclasses and
    /// includes): bumped whenever a chain could change, never otherwise.
    /// Memos of resolution results stay valid while it is constant.
    pub fn hierarchy_generation(&self) -> u64 {
        self.hierarchy_gen
    }

    /// The rolling shape fingerprint (see the field docs).
    pub fn shape_fingerprint(&self) -> u64 {
        self.shape_fp
    }

    fn mix_shape(&mut self, item: impl std::hash::Hash) {
        self.shape_fp = hb_intern::fingerprint64((self.shape_fp, item));
    }

    /// The linearised ancestor chain of `class`, memoised per class and
    /// invalidated when the hierarchy changes shape. This is the dispatch
    /// hot path's chain: cloning the `Rc` is the only per-call cost.
    pub fn ancestor_chain(&self, class: ClassId) -> Rc<[ClassId]> {
        let cache = &self.class(class).ancestor_cache;
        if let Some((gen, chain)) = cache.borrow().as_ref() {
            if *gen == self.hierarchy_gen {
                return chain.clone();
            }
        }
        let chain: Rc<[ClassId]> = self.compute_ancestors(class).into();
        *cache.borrow_mut() = Some((self.hierarchy_gen, chain.clone()));
        chain
    }

    fn compute_ancestors(&self, class: ClassId) -> Vec<ClassId> {
        let mut out = Vec::new();
        let mut cur = Some(class);
        while let Some(id) = cur {
            out.push(id);
            let c = self.class(id);
            for m in c.includes.iter().rev() {
                if !out.contains(m) {
                    out.push(*m);
                }
            }
            cur = c.superclass;
        }
        out
    }

    /// The linearised ancestor chain of `class`: itself, its includes
    /// (latest first), then the superclass chain likewise.
    pub fn ancestors(&self, class: ClassId) -> Vec<ClassId> {
        self.ancestor_chain(class).to_vec()
    }

    /// The ancestor chain as `(ClassId, Sym)` pairs — the allocation-free
    /// resolution path the engine hook uses for annotation lookup.
    pub fn ancestor_syms(&self, class: ClassId) -> impl Iterator<Item = (ClassId, Sym)> + '_ {
        let chain = self.ancestor_chain(class);
        (0..chain.len()).map(move |i| {
            let id = chain[i];
            (id, self.class(id).name_sym)
        })
    }

    /// Finds an instance method along the ancestor chain; returns the owner
    /// class id and the entry.
    pub fn find_method(&self, class: ClassId, name: &str) -> Option<(ClassId, MethodEntry)> {
        for &id in self.ancestor_chain(class).iter() {
            if let Some(e) = self.class(id).methods.get(name) {
                return Some((id, e.clone()));
            }
        }
        None
    }

    /// Finds a class-level method: singleton tables along the superclass
    /// chain (Ruby inherits class methods), including modules' smethods.
    pub fn find_smethod(&self, class: ClassId, name: &str) -> Option<(ClassId, MethodEntry)> {
        for &id in self.ancestor_chain(class).iter() {
            if let Some(e) = self.class(id).smethods.get(name) {
                return Some((id, e.clone()));
            }
        }
        None
    }

    /// Like [`ClassRegistry::find_method`] but starting strictly above
    /// `owner` in `class`'s ancestor chain (for `super`).
    pub fn find_method_above(
        &self,
        class: ClassId,
        owner: ClassId,
        name: &str,
    ) -> Option<(ClassId, MethodEntry)> {
        let chain = self.ancestor_chain(class);
        let start = chain.iter().position(|&c| c == owner)? + 1;
        for &id in &chain[start..] {
            if let Some(e) = self.class(id).methods.get(name) {
                return Some((id, e.clone()));
            }
        }
        None
    }

    /// True if `sub` is `sup` or inherits/mixes it in.
    pub fn is_descendant(&self, sub: ClassId, sup: ClassId) -> bool {
        self.ancestor_chain(sub).contains(&sup)
    }

    /// Name-based descendant check (implements the checker's `Hierarchy`).
    pub fn is_descendant_name(&self, sub: &str, sup: &str) -> bool {
        if sub == sup || sup == "Object" {
            return true;
        }
        match (self.lookup(sub), self.lookup(sup)) {
            (Some(a), Some(b)) => self.is_descendant(a, b),
            _ => false,
        }
    }

    /// All instance method names currently defined directly on `class`.
    pub fn own_method_names(&self, class: ClassId) -> Vec<String> {
        let mut v: Vec<String> = self.class(class).methods.keys().cloned().collect();
        v.sort();
        v
    }

    /// Drains pending events (engine side).
    pub fn drain_events(&mut self) -> Vec<InterpEvent> {
        std::mem::take(&mut self.events)
    }

    /// The runtime class of a value.
    pub fn class_of(&self, v: &Value) -> ClassId {
        let name = match v {
            Value::Nil => "NilClass",
            Value::Bool(_) => "Boolean",
            Value::Int(_) => "Fixnum",
            Value::Float(_) => "Float",
            Value::Str(_) => "String",
            Value::Sym(_) => "Symbol",
            Value::Array(_) => "Array",
            Value::Hash(_) => "Hash",
            Value::Range(_) => "Range",
            Value::Proc(_) => "Proc",
            Value::Obj(o) => return o.class,
            Value::Class(_) => "Class",
        };
        self.lookup(name).unwrap_or(self.object())
    }
}

impl Default for ClassRegistry {
    fn default() -> Self {
        ClassRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_syntax::Span;

    fn ast_method(name: &str) -> MethodBody {
        MethodBody::Ast(Rc::new(MethodDefNode {
            self_method: false,
            name: name.to_string(),
            params: vec![],
            body: vec![],
            span: Span::dummy(),
        }))
    }

    #[test]
    fn define_and_reopen() {
        let mut r = ClassRegistry::new();
        let a = r.define_class("A", None, false);
        let a2 = r.define_class("A", None, false);
        assert_eq!(a, a2);
        assert_eq!(r.name(a), "A");
        assert_eq!(r.class(a).superclass, Some(r.object()));
    }

    #[test]
    fn ancestors_with_includes_and_superclass() {
        let mut r = ClassRegistry::new();
        let m = r.define_class("M", None, true);
        let n = r.define_class("N", None, true);
        let base = r.define_class("Base", None, false);
        let c = r.define_class("C", Some(base), false);
        r.include_module(c, m);
        r.include_module(c, n);
        let names: Vec<&str> = r.ancestors(c).iter().map(|&i| r.name(i)).collect();
        // Later includes take precedence (appear before earlier ones).
        assert_eq!(names, vec!["C", "N", "M", "Base", "Object"]);
    }

    #[test]
    fn method_lookup_and_override() {
        let mut r = ClassRegistry::new();
        let base = r.define_class("Base", None, false);
        let c = r.define_class("C", Some(base), false);
        r.add_method(base, "m", ast_method("m"), false);
        let (owner, _) = r.find_method(c, "m").unwrap();
        assert_eq!(owner, base);
        r.add_method(c, "m", ast_method("m"), false);
        let (owner, _) = r.find_method(c, "m").unwrap();
        assert_eq!(owner, c);
    }

    #[test]
    fn module_method_found_via_include() {
        let mut r = ClassRegistry::new();
        let m = r.define_class("M", None, true);
        let c = r.define_class("C", None, false);
        r.add_method(m, "foo", ast_method("foo"), false);
        assert!(r.find_method(c, "foo").is_none());
        r.include_module(c, m);
        let (owner, _) = r.find_method(c, "foo").unwrap();
        assert_eq!(owner, m);
    }

    #[test]
    fn smethod_inherited() {
        let mut r = ClassRegistry::new();
        let base = r.define_class("Base", None, false);
        let c = r.define_class("C", Some(base), false);
        r.add_method(base, "create", ast_method("create"), true);
        let (owner, _) = r.find_smethod(c, "create").unwrap();
        assert_eq!(owner, base);
    }

    #[test]
    fn super_lookup_starts_above_owner() {
        let mut r = ClassRegistry::new();
        let base = r.define_class("Base", None, false);
        let c = r.define_class("C", Some(base), false);
        r.add_method(base, "m", ast_method("m"), false);
        r.add_method(c, "m", ast_method("m"), false);
        let (owner, _) = r.find_method_above(c, c, "m").unwrap();
        assert_eq!(owner, base);
        assert!(r.find_method_above(c, base, "m").is_none());
    }

    #[test]
    fn events_track_add_redefine_remove() {
        let mut r = ClassRegistry::new();
        let c = r.define_class("C", None, false);
        r.add_method(c, "m", ast_method("m"), false);
        r.add_method(c, "m", ast_method("m"), false);
        r.remove_method(c, "m", false);
        let ev = r.drain_events();
        assert!(matches!(ev[0], InterpEvent::MethodAdded { .. }));
        assert!(matches!(ev[1], InterpEvent::MethodRedefined { .. }));
        assert!(matches!(ev[2], InterpEvent::MethodRemoved { .. }));
        assert!(r.drain_events().is_empty());
    }

    #[test]
    fn descendant_checks() {
        let mut r = ClassRegistry::new();
        let m = r.define_class("M", None, true);
        let base = r.define_class("Base", None, false);
        let c = r.define_class("C", Some(base), false);
        r.include_module(c, m);
        assert!(r.is_descendant_name("C", "Base"));
        assert!(r.is_descendant_name("C", "M"));
        assert!(r.is_descendant_name("C", "Object"));
        assert!(!r.is_descendant_name("Base", "C"));
        assert!(!r.is_descendant_name("Nope", "Base"));
        assert!(r.is_descendant_name("Nope", "Nope"));
    }

    #[test]
    fn rename_updates_lookup() {
        let mut r = ClassRegistry::new();
        let c = r.define_class("AnonStruct1", None, false);
        r.rename(c, "Transaction");
        assert_eq!(r.lookup("Transaction"), Some(c));
        assert_eq!(r.lookup("AnonStruct1"), None);
        assert_eq!(r.name(c), "Transaction");
    }

    #[test]
    fn class_of_primitives() {
        let r = {
            let mut r = ClassRegistry::new();
            for n in [
                "NilClass", "Boolean", "Fixnum", "Float", "String", "Symbol", "Array", "Hash",
                "Range", "Proc", "Class",
            ] {
                r.define_class(n, None, false);
            }
            r
        };
        assert_eq!(r.name(r.class_of(&Value::Int(1))), "Fixnum");
        assert_eq!(r.name(r.class_of(&Value::Nil)), "NilClass");
        assert_eq!(r.name(r.class_of(&Value::str("s"))), "String");
    }
}
