//! RubyLite runtime values.

use crate::env::ScopeRef;
use hb_syntax::ast::{Expr, Param};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Identifies a class or module in the [`crate::class::ClassRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

/// A RubyLite value.
///
/// Strings are immutable here (unlike Ruby); none of the subject apps mutate
/// strings in place, see DESIGN.md. Arrays and hashes are shared mutable
/// references with Ruby's aliasing semantics.
#[derive(Clone)]
pub enum Value {
    Nil,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(Rc<str>),
    Sym(Rc<str>),
    Array(Rc<RefCell<Vec<Value>>>),
    Hash(Rc<RefCell<HashObj>>),
    /// `(lo, hi, exclusive)`
    Range(Rc<(Value, Value, bool)>),
    Obj(Rc<Instance>),
    Class(ClassId),
    Proc(Rc<ProcVal>),
}

/// An instance of a user class: its class plus instance variables.
pub struct Instance {
    pub class: ClassId,
    pub ivars: RefCell<std::collections::HashMap<String, Value>>,
}

/// A block/proc: parameters, body, captured scope and captured `self`.
pub struct ProcVal {
    pub params: Vec<Param>,
    pub body: Rc<Vec<Expr>>,
    pub env: ScopeRef,
    pub self_val: Value,
    /// The class acting as definee when the proc body runs (for nested
    /// `def`/`define_method`).
    pub definee: ClassId,
    pub span: hb_syntax::Span,
}

/// An insertion-ordered hash with Ruby-style structural keys.
#[derive(Default)]
pub struct HashObj {
    entries: Vec<(Value, Value)>,
}

impl HashObj {
    /// An empty hash.
    pub fn new() -> HashObj {
        HashObj::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `key` by structural equality.
    pub fn get(&self, key: &Value) -> Option<&Value> {
        self.entries
            .iter()
            .find(|(k, _)| k.raw_eq(key))
            .map(|(_, v)| v)
    }

    /// Inserts or replaces; preserves first-insertion order.
    pub fn insert(&mut self, key: Value, value: Value) {
        for (k, v) in &mut self.entries {
            if k.raw_eq(&key) {
                *v = value;
                return;
            }
        }
        self.entries.push((key, value));
    }

    /// Removes a key, returning its value.
    pub fn remove(&mut self, key: &Value) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k.raw_eq(key))?;
        Some(self.entries.remove(idx).1)
    }

    /// True if the key is present.
    pub fn contains(&self, key: &Value) -> bool {
        self.get(key).is_some()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(Value, Value)> {
        self.entries.iter()
    }
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Rc::from(s.as_ref()))
    }

    /// Builds a symbol value.
    pub fn sym(s: impl AsRef<str>) -> Value {
        Value::Sym(Rc::from(s.as_ref()))
    }

    /// Builds an array value.
    pub fn array(elems: Vec<Value>) -> Value {
        Value::Array(Rc::new(RefCell::new(elems)))
    }

    /// Builds a hash value from pairs.
    pub fn hash_from(pairs: Vec<(Value, Value)>) -> Value {
        let mut h = HashObj::new();
        for (k, v) in pairs {
            h.insert(k, v);
        }
        Value::Hash(Rc::new(RefCell::new(h)))
    }

    /// Ruby truthiness: everything but `nil` and `false`.
    pub fn truthy(&self) -> bool {
        !matches!(self, Value::Nil | Value::Bool(false))
    }

    /// Structural equality for primitives (including `1 == 1.0`), element-
    /// wise for arrays, identity for objects/procs. This is the default
    /// `==`; user classes may override it at dispatch level.
    pub fn raw_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Nil, Value::Nil) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Sym(a), Value::Sym(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => {
                if Rc::ptr_eq(a, b) {
                    return true;
                }
                let a = a.borrow();
                let b = b.borrow();
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.raw_eq(y))
            }
            (Value::Hash(a), Value::Hash(b)) => {
                if Rc::ptr_eq(a, b) {
                    return true;
                }
                let a = a.borrow();
                let b = b.borrow();
                a.len() == b.len() && a.iter().all(|(k, v)| b.get(k).is_some_and(|w| v.raw_eq(w)))
            }
            (Value::Range(a), Value::Range(b)) => {
                a.0.raw_eq(&b.0) && a.1.raw_eq(&b.1) && a.2 == b.2
            }
            (Value::Obj(a), Value::Obj(b)) => Rc::ptr_eq(a, b),
            (Value::Class(a), Value::Class(b)) => a == b,
            (Value::Proc(a), Value::Proc(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// `to_s` for primitives (objects get `#<ClassName>` from the interp,
    /// which knows class names).
    pub fn primitive_to_s(&self) -> Option<String> {
        Some(match self {
            Value::Nil => String::new(),
            Value::Bool(b) => b.to_string(),
            Value::Int(n) => n.to_string(),
            Value::Float(x) => format_float(*x),
            Value::Str(s) => s.to_string(),
            Value::Sym(s) => s.to_string(),
            _ => return None,
        })
    }
}

/// Formats a float the way Ruby's `to_s` does for simple values (always with
/// a decimal point).
pub fn format_float(x: f64) -> String {
    if x.is_finite() && x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => write!(f, "nil"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Float(x) => write!(f, "{}", format_float(*x)),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Sym(s) => write!(f, ":{s}"),
            Value::Array(a) => {
                write!(f, "[")?;
                for (i, v) in a.borrow().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v:?}")?;
                }
                write!(f, "]")
            }
            Value::Hash(h) => {
                write!(f, "{{")?;
                for (i, (k, v)) in h.borrow().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k:?}=>{v:?}")?;
                }
                write!(f, "}}")
            }
            Value::Range(r) => write!(f, "{:?}{}{:?}", r.0, if r.2 { "..." } else { ".." }, r.1),
            Value::Obj(o) => write!(f, "#<instance of class {}>", o.class.0),
            Value::Class(c) => write!(f, "#<class {}>", c.0),
            Value::Proc(_) => write!(f, "#<Proc>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Nil.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(Value::Bool(true).truthy());
        assert!(Value::Int(0).truthy());
        assert!(Value::str("").truthy());
    }

    #[test]
    fn raw_eq_primitives() {
        assert!(Value::Int(1).raw_eq(&Value::Int(1)));
        assert!(Value::Int(1).raw_eq(&Value::Float(1.0)));
        assert!(Value::str("a").raw_eq(&Value::str("a")));
        assert!(!Value::str("a").raw_eq(&Value::sym("a")));
        assert!(Value::Nil.raw_eq(&Value::Nil));
    }

    #[test]
    fn raw_eq_arrays_structural() {
        let a = Value::array(vec![Value::Int(1), Value::str("x")]);
        let b = Value::array(vec![Value::Int(1), Value::str("x")]);
        let c = Value::array(vec![Value::Int(2)]);
        assert!(a.raw_eq(&b));
        assert!(!a.raw_eq(&c));
    }

    #[test]
    fn hash_insert_order_and_lookup() {
        let mut h = HashObj::new();
        h.insert(Value::sym("b"), Value::Int(2));
        h.insert(Value::sym("a"), Value::Int(1));
        h.insert(Value::sym("b"), Value::Int(3));
        assert_eq!(h.len(), 2);
        let keys: Vec<String> = h.iter().map(|(k, _)| format!("{k:?}")).collect();
        assert_eq!(keys, vec![":b", ":a"]);
        assert!(h.get(&Value::sym("b")).unwrap().raw_eq(&Value::Int(3)));
        assert!(h.remove(&Value::sym("a")).is_some());
        assert!(!h.contains(&Value::sym("a")));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(format_float(2.0), "2.0");
        assert_eq!(format_float(2.5), "2.5");
        assert_eq!(format_float(-3.0), "-3.0");
    }

    #[test]
    fn primitive_to_s() {
        assert_eq!(Value::Int(5).primitive_to_s().unwrap(), "5");
        assert_eq!(Value::sym("abc").primitive_to_s().unwrap(), "abc");
        assert_eq!(Value::Nil.primitive_to_s().unwrap(), "");
        assert!(Value::array(vec![]).primitive_to_s().is_none());
    }
}
