//! The bytecode dispatch loop: executes an [`hb_il::bytecode::Chunk`]
//! against the live interpreter.
//!
//! The VM owns only register-file execution; everything observable —
//! method dispatch, hooks, ivar/global/constant access, `to_s`, yields —
//! calls straight back into [`Interp`], so behaviour (including error
//! messages and spans) is identical to the tree-walk evaluator. A frame is
//! pushed exactly as the tree-walk `MethodBody::Ast` arm pushes one, with
//! the same `checked` propagation, so dynamic-argument-check elision in
//! callees works unchanged.

use crate::error::{ErrorKind, Flow, HbError};
use crate::interp::{Frame, FrameKind, Interp};
use crate::value::{ClassId, HashObj, Value};
use hb_il::bytecode::{BcConst, BcParam, Chunk, Op};
use hb_intern::Sym;
use hb_syntax::Span;
use std::cell::RefCell;
use std::rc::Rc;

/// Runs a compiled method body. Mirrors the tree-walk `MethodBody::Ast`
/// invocation end to end: arity check, frame push, parameter binding,
/// body, and the `Return`/`Break` exit mapping.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_chunk(
    interp: &mut Interp,
    chunk: &Chunk,
    recv: Value,
    owner: ClassId,
    name: Sym,
    args: Vec<Value>,
    block: Option<Value>,
    checked: bool,
    span: Span,
) -> Result<Value, Flow> {
    let given = args.len();
    let required = chunk.required as usize;
    let max = chunk.max as usize;
    if given < required || (!chunk.has_rest && given > max) {
        return Err(Flow::Error(HbError::new(
            ErrorKind::ArgumentError,
            format!(
                "wrong number of arguments calling `{}` (given {given}, expected {required}{})",
                name.as_str(),
                if chunk.has_rest {
                    "+".to_string()
                } else if max > required {
                    format!("..{max}")
                } else {
                    String::new()
                }
            ),
            span,
        )));
    }

    let tier = interp.tier.clone();
    let mut regs = tier.take_regs(chunk.n_regs as usize);

    // Parameter binding, replicating `bind_params`' optional-argument
    // budget: optionals consume arguments only while more are supplied
    // than required parameters still need.
    let mut it = args.into_iter();
    let mut budget = given.saturating_sub(required);
    for (i, p) in chunk.params.iter().enumerate() {
        regs[i] = match p {
            BcParam::Required => it.next().unwrap_or(Value::Nil),
            BcParam::Optional(idx) => {
                if budget > 0 {
                    budget -= 1;
                    it.next().unwrap_or(Value::Nil)
                } else {
                    const_val(&chunk.consts[*idx as usize])
                }
            }
            BcParam::Rest => Value::array(it.by_ref().collect()),
            BcParam::Block => block.clone().unwrap_or(Value::Nil),
        };
    }

    let slf = recv.clone();
    let nesting = interp.nesting_of(owner);
    interp.push_frame(Frame {
        kind: FrameKind::Method,
        self_val: recv,
        definee: owner,
        method: Some((owner, name)),
        // Chunks never read frame args (`super` is a compile bail-out).
        args: vec![],
        block,
        checked,
        nesting,
    });
    let r = exec(interp, chunk, &mut regs, &slf);
    interp.pop_frame();
    tier.return_regs(regs);
    match r {
        Ok(v) => Ok(v),
        Err(Flow::Return(v)) => Ok(v),
        // `break` out of a yielded block terminates this call.
        Err(Flow::Break(v)) => Ok(v),
        Err(e) => Err(e),
    }
}

fn exec(
    interp: &mut Interp,
    chunk: &Chunk,
    regs: &mut [Value],
    slf: &Value,
) -> Result<Value, Flow> {
    let mut pc = 0usize;
    loop {
        match &chunk.ops[pc] {
            Op::Const { dst, idx } => {
                regs[*dst as usize] = const_val(&chunk.consts[*idx as usize]);
            }
            Op::SelfVal { dst } => regs[*dst as usize] = slf.clone(),
            Op::Move { dst, src } => regs[*dst as usize] = regs[*src as usize].clone(),
            Op::IVarGet { dst, name } => {
                regs[*dst as usize] = interp.ivar_get(slf, &chunk.names[*name as usize]);
            }
            Op::IVarSet { name, src } => {
                let v = regs[*src as usize].clone();
                interp.ivar_set(slf, &chunk.names[*name as usize], v);
            }
            Op::GVarGet { dst, name } => {
                regs[*dst as usize] = interp.global(&chunk.names[*name as usize]);
            }
            Op::GVarSet { name, src } => {
                let v = regs[*src as usize].clone();
                interp.set_global(&chunk.names[*name as usize], v);
            }
            Op::ConstGet { dst, path } => {
                regs[*dst as usize] =
                    interp.resolve_const(&chunk.paths[*path as usize], chunk.spans[pc])?;
            }
            Op::NewArray { dst, start, len } => {
                let s = *start as usize;
                regs[*dst as usize] = Value::array(regs[s..s + *len as usize].to_vec());
            }
            Op::NewHash { dst, start, pairs } => {
                let mut h = HashObj::new();
                let s = *start as usize;
                for i in 0..*pairs as usize {
                    h.insert(regs[s + 2 * i].clone(), regs[s + 2 * i + 1].clone());
                }
                regs[*dst as usize] = Value::Hash(Rc::new(RefCell::new(h)));
            }
            Op::NewRange {
                dst,
                lo,
                hi,
                exclusive,
            } => {
                regs[*dst as usize] = Value::Range(Rc::new((
                    regs[*lo as usize].clone(),
                    regs[*hi as usize].clone(),
                    *exclusive,
                )));
            }
            Op::ToS { dst, src } => {
                let v = regs[*src as usize].clone();
                let s = interp.value_to_s(&v)?;
                regs[*dst as usize] = Value::str(s);
            }
            Op::ConcatStr { dst, start, len } => {
                let s = *start as usize;
                let mut out = String::new();
                for v in &regs[s..s + *len as usize] {
                    if let Value::Str(piece) = v {
                        out.push_str(piece);
                    }
                }
                regs[*dst as usize] = Value::str(out);
            }
            Op::Not { dst, src } => {
                regs[*dst as usize] = Value::Bool(!regs[*src as usize].truthy());
            }
            Op::Jump { to } => {
                pc = *to as usize;
                continue;
            }
            Op::JumpIfFalse { cond, to } => {
                if !regs[*cond as usize].truthy() {
                    pc = *to as usize;
                    continue;
                }
            }
            Op::Call {
                dst,
                recv,
                name,
                start,
                argc,
            } => {
                let s = *start as usize;
                let call_args = regs[s..s + *argc as usize].to_vec();
                let r = regs[*recv as usize].clone();
                let v = interp.call_method_sym(
                    r,
                    chunk.syms[*name as usize],
                    call_args,
                    None,
                    chunk.spans[pc],
                )?;
                regs[*dst as usize] = v;
            }
            Op::Yield { dst, start, argc } => {
                let blk = interp.frame().block.clone();
                match blk {
                    Some(b) => {
                        let s = *start as usize;
                        let call_args = regs[s..s + *argc as usize].to_vec();
                        regs[*dst as usize] = interp.call_block(&b, call_args)?;
                    }
                    None => {
                        return Err(Flow::Error(HbError::new(
                            ErrorKind::ArgumentError,
                            "no block given (yield)",
                            chunk.spans[pc],
                        )))
                    }
                }
            }
            Op::Return { src } => return Ok(regs[*src as usize].clone()),
        }
        pc += 1;
    }
}

fn const_val(c: &BcConst) -> Value {
    match c {
        BcConst::Nil => Value::Nil,
        BcConst::True => Value::Bool(true),
        BcConst::False => Value::Bool(false),
        BcConst::Int(n) => Value::Int(*n),
        BcConst::Float(x) => Value::Float(*x),
        BcConst::Str(s) => Value::Str(s.clone()),
        BcConst::Sym(s) => Value::Sym(s.clone()),
    }
}
