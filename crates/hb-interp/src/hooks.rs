//! Call interception hooks — the mechanism Hummingbird (and RDL) use to
//! run just-in-time checks at method entry.

use crate::class::MethodEntry;
use crate::error::HbError;
use crate::interp::Interp;
use crate::value::{ClassId, Value};
use hb_intern::Sym;
use hb_syntax::Span;

/// Information about a dispatch about to happen to a *checkable* (non-
/// builtin) method.
pub struct DispatchInfo {
    /// The receiver's class (for `Class` receivers, the class itself). This
    /// is the cache key class: module methods are cached per mix-in class
    /// (paper §4 "Modules").
    pub recv_class: ClassId,
    /// True when dispatching a class-level (singleton) method.
    pub class_level: bool,
    /// The class/module that lexically owns the method definition.
    pub owner: ClassId,
    /// The interned method name — hooks resolve annotations by symbol, so
    /// constructing this info allocates nothing.
    pub name: Sym,
    /// The method table entry (its `id` changes on redefinition).
    pub entry: MethodEntry,
    /// Call-site span, for blame messages.
    pub span: Span,
}

/// What a hook decided about the call.
#[derive(Debug, Clone, Copy, Default)]
pub struct HookOutcome {
    /// Mark the callee's frame as statically checked, so calls *it* makes
    /// skip dynamic argument checks (paper §4 "Eliminating Dynamic
    /// Checks").
    pub mark_checked: bool,
}

/// A hook invoked before every dispatch to a checkable method.
///
/// Returning an error aborts the call — this is how Hummingbird's `blame`
/// surfaces.
pub trait CallHook {
    /// Called with the interpreter, dispatch metadata, receiver and
    /// arguments.
    ///
    /// # Errors
    ///
    /// An error propagates as a runtime error at the call site.
    fn before_call(
        &self,
        interp: &mut Interp,
        info: &DispatchInfo,
        recv: &Value,
        args: &[Value],
    ) -> Result<HookOutcome, HbError>;
}
