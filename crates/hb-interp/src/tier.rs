//! Execution-tier state: which tier runs method bodies, the compiled-chunk
//! cache, and the **fast-entry patch table** — the set of `(receiver class,
//! method entry)` pairs whose derivation currently holds (paper
//! Definition 1), so dispatch may enter the *checked fast prologue*: no
//! hook probe, no dynamic argument checks.
//!
//! The engine patches a pair in when a cached derivation admits a call from
//! a checked caller, and patches it back out (a *deopt*) whenever the
//! derivation is invalidated: reload, annotation change, epoch bump,
//! enforcement-policy change, stale-deferred discard, or a cache flush.
//! Soundness therefore rides exactly on the existing invalidation story —
//! every path that removes a derivation from the engine cache depatches
//! here first.

use crate::value::{ClassId, Value};
use hb_il::bytecode::{compile_method, Chunk};
use hb_intern::MethodKey;
use hb_syntax::ast::MethodDefNode;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

/// How method bodies execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecTier {
    /// The original tree-walking evaluator.
    #[default]
    TreeWalk,
    /// Compiled register bytecode with derivation-driven check elision;
    /// methods outside the compilable subset fall back to tree-walking.
    Bytecode,
}

/// Shared tier state. The interpreter owns one (`Interp::tier`) and the
/// engine holds a clone so invalidation can depatch without a borrow of the
/// interpreter.
pub struct ExecTierState {
    tier: Cell<ExecTier>,
    /// Benchmark ablation knob: with elision off the bytecode tier still
    /// runs chunks but never patches fast entries (every call keeps the
    /// full guarded prologue).
    elision: Cell<bool>,
    /// The probe structure for the dispatch hot path: one open-addressed
    /// `u64` set keyed on `(receiver class, entry id)`.
    hot: RefCell<FastSet>,
    /// Patched entries by derivation cache key, for precise depatch when a
    /// single derivation is invalidated.
    by_key: RefCell<HashMap<MethodKey, (ClassId, u64)>>,
    /// Compiled chunks by method-entry id; `None` records "outside the
    /// compilable subset", so the bail decision is made once per entry.
    chunks: RefCell<hb_intern::FastMap<u64, Option<Rc<Chunk>>>>,
    /// Register-file pool, recycled across calls.
    regs: RefCell<Vec<Vec<Value>>>,
    bytecode_compiled: Cell<u64>,
    fast_entries_patched: Cell<u64>,
    deopts: Cell<u64>,
    fast_hits: Cell<u64>,
}

impl ExecTierState {
    pub fn new() -> ExecTierState {
        ExecTierState {
            tier: Cell::new(ExecTier::TreeWalk),
            elision: Cell::new(true),
            hot: RefCell::new(FastSet::new()),
            by_key: RefCell::new(HashMap::new()),
            chunks: RefCell::new(hb_intern::FastMap::default()),
            regs: RefCell::new(Vec::new()),
            bytecode_compiled: Cell::new(0),
            fast_entries_patched: Cell::new(0),
            deopts: Cell::new(0),
            fast_hits: Cell::new(0),
        }
    }

    /// The active tier.
    pub fn tier(&self) -> ExecTier {
        self.tier.get()
    }

    /// True when method bodies should run as bytecode.
    #[inline]
    pub fn bytecode_enabled(&self) -> bool {
        self.tier.get() == ExecTier::Bytecode
    }

    /// Switches tiers. Any patched fast entries are dropped silently (a
    /// tier switch is an operator action, not an invalidation).
    pub fn set_tier(&self, t: ExecTier) {
        self.tier.set(t);
        self.clear_patches();
    }

    /// Toggles check elision (benchmark ablation). Disabling drops current
    /// patches so the guarded prologue is measured immediately.
    pub fn set_elision(&self, on: bool) {
        self.elision.set(on);
        if !on {
            self.clear_patches();
        }
    }

    /// True when fast entries may be patched at all.
    pub fn elision_enabled(&self) -> bool {
        self.elision.get() && self.bytecode_enabled()
    }

    /// Hot-path probe: is `(recv_class, entry_id)` patched onto its
    /// checked fast prologue? Counts the hit.
    #[inline]
    pub fn fast_hit(&self, recv_class: ClassId, entry_id: u64) -> bool {
        let hit = self.hot.borrow().contains(fast_key(recv_class, entry_id));
        if hit {
            self.fast_hits.set(self.fast_hits.get() + 1);
        }
        hit
    }

    /// Patches a method onto its checked fast prologue. Idempotent per
    /// `(key, class, entry)` — repeated admissions of the same derivation
    /// do not recount.
    pub fn patch(&self, key: MethodKey, recv_class: ClassId, entry_id: u64) {
        if !self.elision_enabled() {
            return;
        }
        // Steady-state fast path: the pair is already live in the probe
        // set, so the common re-admission (every guarded cache-hit call)
        // is one open-addressed probe, not a `by_key` hash insert.
        if self.hot.borrow().contains(fast_key(recv_class, entry_id)) {
            return;
        }
        let mut by_key = self.by_key.borrow_mut();
        match by_key.insert(key, (recv_class, entry_id)) {
            Some(prev) if prev == (recv_class, entry_id) => return,
            Some(_) => {
                // Re-admission under a new entry id (reload): rebuild so
                // the superseded pair does not linger in the probe set.
                drop(by_key);
                self.rebuild_hot();
            }
            None => {
                self.hot.borrow_mut().insert(fast_key(recv_class, entry_id));
            }
        }
        self.fast_entries_patched
            .set(self.fast_entries_patched.get() + 1);
    }

    /// Deoptimizes one derivation: the method returns to its guarded
    /// prologue. No-op (and no count) when the key was never patched.
    pub fn depatch(&self, key: &MethodKey) {
        let removed = self.by_key.borrow_mut().remove(key);
        if removed.is_some() {
            self.deopts.set(self.deopts.get() + 1);
            self.rebuild_hot();
        }
    }

    /// Deoptimizes everything (cache flush, config change, RDL event).
    pub fn flush_all(&self) {
        let n = self.by_key.borrow().len() as u64;
        if n > 0 {
            self.deopts.set(self.deopts.get() + n);
            self.clear_patches();
        }
    }

    fn clear_patches(&self) {
        self.by_key.borrow_mut().clear();
        self.hot.borrow_mut().clear();
    }

    fn rebuild_hot(&self) {
        let by_key = self.by_key.borrow();
        let mut hot = self.hot.borrow_mut();
        hot.clear();
        for &(cid, id) in by_key.values() {
            hot.insert(fast_key(cid, id));
        }
    }

    /// The compiled chunk for a method entry, compiling on first request.
    /// `None` means the body is outside the compilable subset (recorded, so
    /// the compile is attempted once).
    pub fn chunk_for(&self, entry_id: u64, def: &Rc<MethodDefNode>) -> Option<Rc<Chunk>> {
        let mut chunks = self.chunks.borrow_mut();
        chunks
            .entry(entry_id)
            .or_insert_with(|| {
                let compiled = compile_method(def).map(Rc::new);
                if compiled.is_some() {
                    self.bytecode_compiled.set(self.bytecode_compiled.get() + 1);
                }
                compiled
            })
            .clone()
    }

    /// Takes a register file of `n` nil slots from the pool.
    pub fn take_regs(&self, n: usize) -> Vec<Value> {
        let mut v = self.regs.borrow_mut().pop().unwrap_or_default();
        v.clear();
        v.resize(n, Value::Nil);
        v
    }

    /// Returns a register file to the pool.
    pub fn return_regs(&self, mut v: Vec<Value>) {
        let mut pool = self.regs.borrow_mut();
        if pool.len() < 64 {
            v.clear();
            pool.push(v);
        }
    }

    // ----- counters -------------------------------------------------------

    /// Method bodies successfully compiled to bytecode.
    pub fn bytecode_compiled(&self) -> u64 {
        self.bytecode_compiled.get()
    }

    /// Fast-entry patch events (guarded → checked prologue).
    pub fn fast_entries_patched(&self) -> u64 {
        self.fast_entries_patched.get()
    }

    /// Deoptimizations (checked → guarded prologue).
    pub fn deopts(&self) -> u64 {
        self.deopts.get()
    }

    /// Dispatches that entered through a checked fast prologue.
    pub fn fast_hits(&self) -> u64 {
        self.fast_hits.get()
    }

    /// Resets counters (not the patch table — patched entries stay live).
    pub fn reset_counters(&self) {
        self.bytecode_compiled.set(0);
        self.fast_entries_patched.set(0);
        self.deopts.set(0);
        self.fast_hits.set(0);
    }
}

impl Default for ExecTierState {
    fn default() -> Self {
        ExecTierState::new()
    }
}

/// Nonzero probe key: entry ids start at 1 and the class id is offset, so
/// the zero slot value can mean "empty".
#[inline]
fn fast_key(cid: ClassId, entry_id: u64) -> u64 {
    ((cid.0 as u64 + 1) << 40) ^ entry_id.wrapping_add(1)
}

/// A minimal open-addressed set of nonzero `u64` keys. The dispatch hot
/// path cannot afford a SipHash `HashMap` probe; this is one multiply, a
/// mask, and typically one load.
struct FastSet {
    /// Power-of-two slot array; 0 = empty. Rebuilt (never tombstoned) on
    /// removal, which is fine because deopts are rare events.
    slots: Vec<u64>,
    len: usize,
}

impl FastSet {
    fn new() -> FastSet {
        FastSet {
            slots: Vec::new(),
            len: 0,
        }
    }

    #[inline]
    fn hash(key: u64) -> u64 {
        // splitmix64 finalizer: cheap, well-mixed.
        let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[inline]
    fn contains(&self, key: u64) -> bool {
        if self.slots.is_empty() {
            return false;
        }
        let mask = self.slots.len() - 1;
        let mut i = (Self::hash(key) as usize) & mask;
        loop {
            let s = self.slots[i];
            if s == key {
                return true;
            }
            if s == 0 {
                return false;
            }
            i = (i + 1) & mask;
        }
    }

    fn insert(&mut self, key: u64) {
        debug_assert_ne!(key, 0);
        if self.slots.is_empty() || (self.len + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (Self::hash(key) as usize) & mask;
        loop {
            let s = self.slots[i];
            if s == key {
                return;
            }
            if s == 0 {
                self.slots[i] = key;
                self.len += 1;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.len = 0;
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![0; new_cap]);
        self.len = 0;
        for key in old {
            if key != 0 {
                self.insert(key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_intern::Sym;

    fn key(m: &str) -> MethodKey {
        MethodKey {
            class: Sym::intern("C"),
            class_level: false,
            method: Sym::intern(m),
        }
    }

    #[test]
    fn fast_set_insert_contains_grow() {
        let mut s = FastSet::new();
        assert!(!s.contains(fast_key(ClassId(1), 1)));
        for i in 1..200u64 {
            s.insert(fast_key(ClassId(3), i));
        }
        for i in 1..200u64 {
            assert!(s.contains(fast_key(ClassId(3), i)));
        }
        assert!(!s.contains(fast_key(ClassId(4), 5)));
        s.clear();
        assert!(!s.contains(fast_key(ClassId(3), 7)));
    }

    #[test]
    fn patch_depatch_counts() {
        let t = ExecTierState::new();
        t.set_tier(ExecTier::Bytecode);
        t.patch(key("m"), ClassId(2), 9);
        t.patch(key("m"), ClassId(2), 9); // idempotent
        assert_eq!(t.fast_entries_patched(), 1);
        assert!(t.fast_hit(ClassId(2), 9));
        assert_eq!(t.fast_hits(), 1);
        t.depatch(&key("m"));
        assert_eq!(t.deopts(), 1);
        assert!(!t.fast_hit(ClassId(2), 9));
        t.depatch(&key("m")); // never patched now: no count
        assert_eq!(t.deopts(), 1);
    }

    #[test]
    fn flush_counts_every_patched_entry() {
        let t = ExecTierState::new();
        t.set_tier(ExecTier::Bytecode);
        t.patch(key("a"), ClassId(1), 1);
        t.patch(key("b"), ClassId(1), 2);
        t.flush_all();
        assert_eq!(t.deopts(), 2);
        assert!(!t.fast_hit(ClassId(1), 1));
        t.flush_all(); // empty: no further counts
        assert_eq!(t.deopts(), 2);
    }

    #[test]
    fn patch_requires_bytecode_and_elision() {
        let t = ExecTierState::new();
        t.patch(key("m"), ClassId(1), 1); // tree-walk tier: ignored
        assert_eq!(t.fast_entries_patched(), 0);
        t.set_tier(ExecTier::Bytecode);
        t.set_elision(false);
        t.patch(key("m"), ClassId(1), 1);
        assert_eq!(t.fast_entries_patched(), 0);
        t.set_elision(true);
        t.patch(key("m"), ClassId(1), 1);
        assert_eq!(t.fast_entries_patched(), 1);
    }

    #[test]
    fn regs_pool_recycles() {
        let t = ExecTierState::new();
        let r = t.take_regs(8);
        assert_eq!(r.len(), 8);
        t.return_regs(r);
        let r2 = t.take_regs(4);
        assert_eq!(r2.len(), 4);
        assert!(r2.iter().all(|v| matches!(v, Value::Nil)));
    }
}
