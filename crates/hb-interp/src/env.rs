//! Lexical scopes for locals, shared between methods and their blocks.

use crate::value::Value;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A lexical scope frame. Blocks get child scopes whose reads and writes of
/// existing variables reach the enclosing scope (Ruby closure semantics);
/// new variables introduced inside a block stay block-local.
pub struct Scope {
    vars: RefCell<HashMap<String, Value>>,
    parent: Option<ScopeRef>,
}

/// Shared handle to a scope.
pub type ScopeRef = Rc<Scope>;

impl Scope {
    /// A fresh root scope (method bodies, top level).
    pub fn root() -> ScopeRef {
        Rc::new(Scope {
            vars: RefCell::new(HashMap::new()),
            parent: None,
        })
    }

    /// A child scope capturing `parent` (block bodies).
    pub fn child(parent: &ScopeRef) -> ScopeRef {
        Rc::new(Scope {
            vars: RefCell::new(HashMap::new()),
            parent: Some(parent.clone()),
        })
    }

    /// Reads a variable, walking up the chain.
    pub fn get(&self, name: &str) -> Option<Value> {
        if let Some(v) = self.vars.borrow().get(name) {
            return Some(v.clone());
        }
        self.parent.as_ref().and_then(|p| p.get(name))
    }

    /// True if the variable is visible from this scope.
    pub fn contains(&self, name: &str) -> bool {
        self.vars.borrow().contains_key(name)
            || self.parent.as_ref().is_some_and(|p| p.contains(name))
    }

    /// Writes a variable: updates the innermost scope that already binds it,
    /// or defines it here.
    pub fn set(&self, name: &str, value: Value) {
        if self.try_update(name, &value) {
            return;
        }
        self.vars.borrow_mut().insert(name.to_string(), value);
    }

    fn try_update(&self, name: &str, value: &Value) -> bool {
        if self.vars.borrow().contains_key(name) {
            self.vars
                .borrow_mut()
                .insert(name.to_string(), value.clone());
            return true;
        }
        self.parent
            .as_ref()
            .is_some_and(|p| p.try_update(name, value))
    }

    /// Defines a variable in *this* scope regardless of outer bindings
    /// (parameter binding).
    pub fn define(&self, name: &str, value: Value) {
        self.vars.borrow_mut().insert(name.to_string(), value);
    }

    /// Collects all visible bindings, inner scopes shadowing outer ones
    /// (used by the engine to type captured locals of `define_method`
    /// procs at check time).
    pub fn collect_bindings(&self) -> Vec<(String, Value)> {
        let mut out: Vec<(String, Value)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut cur: Option<&Scope> = Some(self);
        while let Some(s) = cur {
            for (k, v) in s.vars.borrow().iter() {
                if seen.insert(k.clone()) {
                    out.push((k.clone(), v.clone()));
                }
            }
            cur = s.parent.as_deref();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let s = Scope::root();
        s.set("x", Value::Int(1));
        assert!(s.get("x").unwrap().raw_eq(&Value::Int(1)));
        assert!(s.get("y").is_none());
    }

    #[test]
    fn child_reads_parent() {
        let p = Scope::root();
        p.set("x", Value::Int(1));
        let c = Scope::child(&p);
        assert!(c.get("x").unwrap().raw_eq(&Value::Int(1)));
    }

    #[test]
    fn child_write_updates_parent_binding() {
        let p = Scope::root();
        p.set("x", Value::Int(1));
        let c = Scope::child(&p);
        c.set("x", Value::Int(2));
        assert!(p.get("x").unwrap().raw_eq(&Value::Int(2)));
    }

    #[test]
    fn child_new_vars_stay_local() {
        let p = Scope::root();
        let c = Scope::child(&p);
        c.set("y", Value::Int(3));
        assert!(p.get("y").is_none());
        assert!(c.get("y").is_some());
    }

    #[test]
    fn define_shadows_parent() {
        let p = Scope::root();
        p.set("x", Value::Int(1));
        let c = Scope::child(&p);
        c.define("x", Value::Int(9));
        assert!(c.get("x").unwrap().raw_eq(&Value::Int(9)));
        assert!(p.get("x").unwrap().raw_eq(&Value::Int(1)));
    }
}
