//! The RubyLite dynamic interpreter host.
//!
//! This crate plays the role of the Ruby VM in the paper's implementation:
//! a dynamic object-oriented language with full metaprogramming
//! (`define_method`, `method_missing`, `send`, `class_eval`, re-openable
//! classes, mixins) and a method-dispatch interception seam
//! ([`hooks::CallHook`]) on which RDL-style contracts and Hummingbird's
//! just-in-time static checks are built.
//!
//! # Example
//!
//! ```
//! use hb_interp::Interp;
//!
//! let mut interp = Interp::new();
//! let v = interp
//!     .eval_str("class Greeter\n def hi(name)\n  \"hi #{name}\"\n end\nend\nGreeter.new.hi(\"pl\")")
//!     .unwrap();
//! assert_eq!(v.primitive_to_s().unwrap(), "hi pl");
//! ```

pub mod class;
pub mod env;
pub mod error;
pub mod hooks;
pub mod interp;
pub mod stdlib;
pub mod tier;
pub mod value;
mod vm;

pub use class::{BuiltinFn, ClassRegistry, InterpEvent, MethodBody, MethodEntry};
pub use env::{Scope, ScopeRef};
pub use error::{ErrorKind, Flow, HbError};
pub use hooks::{CallHook, DispatchInfo, HookOutcome};
pub use interp::{Frame, FrameKind, Interp};
pub use tier::{ExecTier, ExecTierState};
pub use value::{ClassId, HashObj, Instance, ProcVal, Value};
