//! The RubyLite core library, implemented as native methods.
//!
//! Mirrors the slice of Ruby's core that the paper's subject applications
//! and the Rails substrate rely on: `Object`/`Kernel`, the numeric tower
//! (`Fixnum ≤ Integer ≤ Numeric`, `Float ≤ Numeric` — paper §4), `String`,
//! `Symbol`, `Array`, `Hash`, `Range`, `Proc`, `Struct`, class/module
//! reflection and metaprogramming (`define_method`, `class_eval`, `send`,
//! `attr_accessor`), and the exception hierarchy.

mod array;
mod class_lib;
mod exception;
mod hash;
mod kernel;
mod numeric;
mod object;
mod range;
mod string;
mod struct_lib;

use crate::class::BuiltinFn;
use crate::error::{ErrorKind, Flow, HbError};
use crate::interp::Interp;
use crate::value::Value;
use hb_syntax::Span;
use std::rc::Rc;

/// Installs the whole core library into a fresh interpreter.
pub fn install(interp: &mut Interp) {
    // Bootstrap class graph. Order matters only for superclass links.
    let object = interp.registry.object();
    interp.set_constant("Object", Value::Class(object));
    let module = interp.define_class("Module", Some(object));
    let class = interp.define_class("Class", Some(module));
    let _ = class;
    for name in ["NilClass", "Boolean", "Symbol", "String", "Proc"] {
        interp.define_class(name, Some(object));
    }
    interp.define_class("TrueClass", interp.registry.lookup("Boolean"));
    interp.define_class("FalseClass", interp.registry.lookup("Boolean"));
    let numeric = interp.define_class("Numeric", Some(object));
    let integer = interp.define_class("Integer", Some(numeric));
    interp.define_class("Fixnum", Some(integer));
    interp.define_class("Bignum", Some(integer));
    interp.define_class("Float", Some(numeric));
    for name in ["Array", "Hash", "Range", "Struct"] {
        interp.define_class(name, Some(object));
    }
    for name in ["Comparable", "Enumerable", "Kernel"] {
        interp.define_module(name);
    }
    exception::install(interp);
    object::install(interp);
    kernel::install(interp);
    class_lib::install(interp);
    numeric::install(interp);
    string::install(interp);
    array::install(interp);
    hash::install(interp);
    range::install(interp);
    struct_lib::install(interp);
}

// ----- helpers shared by the stdlib modules ---------------------------------

/// Wraps a Rust closure as a builtin method body.
pub(crate) fn builtin<F>(f: F) -> BuiltinFn
where
    F: Fn(&mut Interp, Value, Vec<Value>, Option<Value>) -> Result<Value, Flow> + 'static,
{
    Rc::new(f)
}

/// Registers an instance method on a named class.
pub(crate) fn def_method<F>(interp: &mut Interp, class: &str, name: &str, f: F)
where
    F: Fn(&mut Interp, Value, Vec<Value>, Option<Value>) -> Result<Value, Flow> + 'static,
{
    let cid = interp
        .registry
        .lookup(class)
        .unwrap_or_else(|| panic!("stdlib class {class} not bootstrapped"));
    interp.define_builtin(cid, name, false, builtin(f));
}

/// Registers a class-level method on a named class.
pub(crate) fn def_smethod<F>(interp: &mut Interp, class: &str, name: &str, f: F)
where
    F: Fn(&mut Interp, Value, Vec<Value>, Option<Value>) -> Result<Value, Flow> + 'static,
{
    let cid = interp
        .registry
        .lookup(class)
        .unwrap_or_else(|| panic!("stdlib class {class} not bootstrapped"));
    interp.define_builtin(cid, name, true, builtin(f));
}

pub(crate) fn arg_error(msg: impl Into<String>) -> Flow {
    Flow::Error(HbError::new(ErrorKind::ArgumentError, msg, Span::dummy()))
}

pub(crate) fn type_error(msg: impl Into<String>) -> Flow {
    Flow::Error(HbError::new(ErrorKind::TypeError, msg, Span::dummy()))
}

/// The `i`-th argument or `nil`.
pub(crate) fn arg(args: &[Value], i: usize) -> Value {
    args.get(i).cloned().unwrap_or(Value::Nil)
}

/// Requires an integer argument.
pub(crate) fn need_int(v: &Value, what: &str) -> Result<i64, Flow> {
    match v {
        Value::Int(n) => Ok(*n),
        other => Err(type_error(format!(
            "{what}: expected Integer, got {other:?}"
        ))),
    }
}

/// Requires a string argument.
pub(crate) fn need_str(v: &Value, what: &str) -> Result<Rc<str>, Flow> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        other => Err(type_error(format!(
            "{what}: expected String, got {other:?}"
        ))),
    }
}

/// Accepts a string or symbol (method-name-ish arguments).
pub(crate) fn need_name(v: &Value, what: &str) -> Result<String, Flow> {
    match v {
        Value::Str(s) => Ok(s.to_string()),
        Value::Sym(s) => Ok(s.to_string()),
        other => Err(type_error(format!(
            "{what}: expected String or Symbol, got {other:?}"
        ))),
    }
}

/// Iterates, mapping `Flow::Break` to an early return value — the semantics
/// of `break` inside an iteration block.
pub(crate) fn run_block(
    interp: &mut Interp,
    blk: &Value,
    args: Vec<Value>,
) -> Result<Option<Value>, Flow> {
    match interp.call_block(blk, args) {
        Ok(v) => Ok(Some(v)),
        Err(Flow::Break(_)) => Ok(None),
        Err(e) => Err(e),
    }
}

/// How many positional parameters a proc declares (for Ruby's hash-pair
/// yielding convention).
pub(crate) fn proc_positional_arity(blk: &Value) -> usize {
    match blk {
        Value::Proc(p) => p
            .params
            .iter()
            .filter(|q| !matches!(q.kind, hb_syntax::ast::ParamKind::Block))
            .count(),
        _ => 1,
    }
}
