//! `Hash` methods. Iteration follows Ruby's convention: one-parameter
//! blocks receive `[key, value]` pairs; two-parameter blocks receive the key
//! and value separately.

use super::*;
use crate::value::{HashObj, Value};
use std::cell::RefCell;
use std::rc::Rc;

fn need_hash(v: &Value, what: &str) -> Result<Rc<RefCell<HashObj>>, Flow> {
    match v {
        Value::Hash(h) => Ok(h.clone()),
        other => Err(type_error(format!("{what}: expected Hash, got {other:?}"))),
    }
}

fn pair_args(blk: &Value, k: Value, v: Value) -> Vec<Value> {
    if proc_positional_arity(blk) <= 1 {
        vec![Value::array(vec![k, v])]
    } else {
        vec![k, v]
    }
}

pub(crate) fn install(interp: &mut Interp) {
    def_smethod(interp, "Hash", "new", |_i, _recv, _args, _b| {
        Ok(Value::hash_from(vec![]))
    });
    def_method(interp, "Hash", "[]", |_i, recv, args, _b| {
        let h = need_hash(&recv, "[]")?;
        let k = arg(&args, 0);
        let v = h.borrow().get(&k).cloned();
        Ok(v.unwrap_or(Value::Nil))
    });
    def_method(interp, "Hash", "[]=", |_i, recv, args, _b| {
        let h = need_hash(&recv, "[]=")?;
        let k = arg(&args, 0);
        let v = arg(&args, 1);
        h.borrow_mut().insert(k, v.clone());
        Ok(v)
    });
    def_method(interp, "Hash", "fetch", |_i, recv, args, _b| {
        let h = need_hash(&recv, "fetch")?;
        let k = arg(&args, 0);
        let v = h.borrow().get(&k).cloned();
        match v {
            Some(v) => Ok(v),
            None => match args.get(1) {
                Some(d) => Ok(d.clone()),
                None => Err(arg_error(format!("key not found: {k:?}"))),
            },
        }
    });
    for name in ["key?", "has_key?", "include?", "member?"] {
        def_method(interp, "Hash", name, |_i, recv, args, _b| {
            let h = need_hash(&recv, "key?")?;
            let k = arg(&args, 0);
            let c = h.borrow().contains(&k);
            Ok(Value::Bool(c))
        });
    }
    def_method(interp, "Hash", "keys", |_i, recv, _args, _b| {
        let h = need_hash(&recv, "keys")?;
        let ks: Vec<Value> = h.borrow().iter().map(|(k, _)| k.clone()).collect();
        Ok(Value::array(ks))
    });
    def_method(interp, "Hash", "values", |_i, recv, _args, _b| {
        let h = need_hash(&recv, "values")?;
        let vs: Vec<Value> = h.borrow().iter().map(|(_, v)| v.clone()).collect();
        Ok(Value::array(vs))
    });
    for name in ["size", "length"] {
        def_method(interp, "Hash", name, |_i, recv, _args, _b| {
            let h = need_hash(&recv, "size")?;
            let n = h.borrow().len();
            Ok(Value::Int(n as i64))
        });
    }
    def_method(interp, "Hash", "empty?", |_i, recv, _args, _b| {
        let h = need_hash(&recv, "empty?")?;
        let e = h.borrow().is_empty();
        Ok(Value::Bool(e))
    });
    for name in ["each", "each_pair"] {
        def_method(interp, "Hash", name, |i, recv, _args, b| {
            let blk = b.ok_or_else(|| arg_error("each: no block given"))?;
            let h = need_hash(&recv, "each")?;
            let pairs: Vec<(Value, Value)> = h.borrow().iter().cloned().collect();
            for (k, v) in pairs {
                if run_block(i, &blk, pair_args(&blk, k, v))?.is_none() {
                    break;
                }
            }
            Ok(recv)
        });
    }
    def_method(interp, "Hash", "map", |i, recv, _args, b| {
        let blk = b.ok_or_else(|| arg_error("map: no block given"))?;
        let h = need_hash(&recv, "map")?;
        let pairs: Vec<(Value, Value)> = h.borrow().iter().cloned().collect();
        let mut out = Vec::with_capacity(pairs.len());
        for (k, v) in pairs {
            match run_block(i, &blk, pair_args(&blk, k, v))? {
                Some(r) => out.push(r),
                None => break,
            }
        }
        Ok(Value::array(out))
    });
    def_method(interp, "Hash", "select", |i, recv, _args, b| {
        let blk = b.ok_or_else(|| arg_error("select: no block given"))?;
        let h = need_hash(&recv, "select")?;
        let pairs: Vec<(Value, Value)> = h.borrow().iter().cloned().collect();
        let mut out = Vec::new();
        for (k, v) in pairs {
            match run_block(i, &blk, pair_args(&blk, k.clone(), v.clone()))? {
                Some(r) if r.truthy() => out.push((k, v)),
                Some(_) => {}
                None => break,
            }
        }
        Ok(Value::hash_from(out))
    });
    def_method(interp, "Hash", "merge", |_i, recv, args, _b| {
        let h = need_hash(&recv, "merge")?;
        let o = need_hash(&arg(&args, 0), "merge")?;
        let mut out = HashObj::new();
        for (k, v) in h.borrow().iter() {
            out.insert(k.clone(), v.clone());
        }
        for (k, v) in o.borrow().iter() {
            out.insert(k.clone(), v.clone());
        }
        Ok(Value::Hash(Rc::new(RefCell::new(out))))
    });
    def_method(interp, "Hash", "delete", |_i, recv, args, _b| {
        let h = need_hash(&recv, "delete")?;
        let k = arg(&args, 0);
        let v = h.borrow_mut().remove(&k);
        Ok(v.unwrap_or(Value::Nil))
    });
    def_method(interp, "Hash", "to_a", |_i, recv, _args, _b| {
        let h = need_hash(&recv, "to_a")?;
        let pairs: Vec<Value> = h
            .borrow()
            .iter()
            .map(|(k, v)| Value::array(vec![k.clone(), v.clone()]))
            .collect();
        Ok(Value::array(pairs))
    });
    def_method(interp, "Hash", "==", |_i, recv, args, _b| {
        Ok(Value::Bool(recv.raw_eq(&arg(&args, 0))))
    });
    def_method(interp, "Hash", "any?", |i, recv, _args, b| {
        let h = need_hash(&recv, "any?")?;
        let pairs: Vec<(Value, Value)> = h.borrow().iter().cloned().collect();
        match b {
            Some(blk) => {
                for (k, v) in pairs {
                    match run_block(i, &blk, pair_args(&blk, k, v))? {
                        Some(r) if r.truthy() => return Ok(Value::Bool(true)),
                        Some(_) => {}
                        None => break,
                    }
                }
                Ok(Value::Bool(false))
            }
            None => Ok(Value::Bool(!pairs.is_empty())),
        }
    });
}
