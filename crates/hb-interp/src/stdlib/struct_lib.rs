//! `Struct.new` — generates classes with member getters/setters, as used by
//! the paper's Fig. 3 (`Transaction = Struct.new(:type, :account_name,
//! :amount)` and `Struct.add_types`).

use super::*;
use crate::value::Value;

pub(crate) fn install(interp: &mut Interp) {
    def_smethod(interp, "Struct", "new", |i, recv, args, _b| {
        // Dispatched on Struct itself: create a new struct class.
        // Generated classes shadow this with their own `new` below.
        let Value::Class(struct_cid) = recv else {
            return Err(type_error("Struct.new receiver must be Struct"));
        };
        let mut members = Vec::new();
        for a in &args {
            members.push(need_name(a, "Struct.new")?);
        }
        if members.is_empty() {
            return Err(arg_error("Struct.new: at least one member required"));
        }
        // Anonymous until assigned to a constant (the interpreter renames
        // on constant assignment, as Ruby does).
        let anon = format!("#<Struct:{}>", i.registry.class_count());
        let cid = i.registry.define_class(&anon, Some(struct_cid), false);
        i.registry.class_mut(cid).struct_members = Some(members.clone());
        // Accessors.
        for m in &members {
            let ivar = m.clone();
            i.define_builtin(
                cid,
                m,
                false,
                builtin(move |i, recv, _args, _b| Ok(i.ivar_get(&recv, &ivar))),
            );
            let ivar = m.clone();
            i.define_builtin(
                cid,
                &format!("{m}="),
                false,
                builtin(move |i, recv, args, _b| {
                    let v = arg(&args, 0);
                    i.ivar_set(&recv, &ivar, v.clone());
                    Ok(v)
                }),
            );
        }
        // Positional constructor shadows Struct.new for the generated class.
        let ctor_members = members.clone();
        i.define_builtin(
            cid,
            "new",
            true,
            builtin(move |i, recv, args, _b| {
                let Value::Class(cid) = recv else {
                    return Err(type_error("struct constructor on non-class"));
                };
                let inst = Value::Obj(std::rc::Rc::new(crate::value::Instance {
                    class: cid,
                    ivars: std::cell::RefCell::new(std::collections::HashMap::new()),
                }));
                for (k, m) in ctor_members.iter().enumerate() {
                    i.ivar_set(&inst, m, args.get(k).cloned().unwrap_or(Value::Nil));
                }
                Ok(inst)
            }),
        );
        // `members` reflection on the generated class.
        let refl = members.clone();
        i.define_builtin(
            cid,
            "members",
            true,
            builtin(move |_i, _recv, _args, _b| {
                Ok(Value::array(refl.iter().map(Value::sym).collect()))
            }),
        );
        Ok(Value::Class(cid))
    });
}
