//! Methods on class and module objects: instantiation, reflection, and the
//! metaprogramming core (`define_method`, `class_eval`, `attr_accessor`,
//! `include`) that the paper's examples exercise.

use super::*;
use crate::class::MethodBody;
use crate::value::{Instance, Value};
use hb_syntax::Span;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

pub(crate) fn install(interp: &mut Interp) {
    def_method(interp, "Class", "new", |i, recv, args, b| {
        let cid = expect_class(&recv)?;
        if i.registry.class(cid).is_module {
            return Err(type_error("cannot instantiate a module"));
        }
        let inst = Value::Obj(Rc::new(Instance {
            class: cid,
            ivars: RefCell::new(HashMap::new()),
        }));
        if i.registry.find_method(cid, "initialize").is_some() {
            i.call_method(inst.clone(), "initialize", args, b, Span::dummy())?;
        }
        Ok(inst)
    });
    def_method(interp, "Class", "name", |i, recv, _args, _b| {
        let cid = expect_class(&recv)?;
        Ok(Value::str(i.registry.name(cid)))
    });
    def_method(interp, "Class", "to_s", |i, recv, _args, _b| {
        let cid = expect_class(&recv)?;
        Ok(Value::str(i.registry.name(cid)))
    });
    def_method(interp, "Class", "inspect", |i, recv, _args, _b| {
        let cid = expect_class(&recv)?;
        Ok(Value::str(i.registry.name(cid)))
    });
    def_method(interp, "Class", "superclass", |i, recv, _args, _b| {
        let cid = expect_class(&recv)?;
        Ok(match i.registry.class(cid).superclass {
            Some(s) => Value::Class(s),
            None => Value::Nil,
        })
    });
    def_method(interp, "Class", "===", |i, recv, args, _b| {
        let cid = expect_class(&recv)?;
        let have = i.registry.class_of(&arg(&args, 0));
        Ok(Value::Bool(i.registry.is_descendant(have, cid)))
    });
    def_method(interp, "Class", "ancestors", |i, recv, _args, _b| {
        let cid = expect_class(&recv)?;
        Ok(Value::array(
            i.registry
                .ancestors(cid)
                .into_iter()
                .map(Value::Class)
                .collect(),
        ))
    });

    // --- metaprogramming -------------------------------------------------

    def_method(interp, "Class", "define_method", |i, recv, args, b| {
        let cid = expect_class(&recv)?;
        let name = need_name(&arg(&args, 0), "define_method")?;
        let blk = match b.or_else(|| match args.get(1) {
            Some(Value::Proc(_)) => args.get(1).cloned(),
            _ => None,
        }) {
            Some(Value::Proc(p)) => p,
            _ => return Err(arg_error("define_method: no block given")),
        };
        i.registry
            .add_method(cid, &name, MethodBody::FromProc(blk), false);
        Ok(Value::sym(&name))
    });
    def_method(interp, "Class", "remove_method", |i, recv, args, _b| {
        let cid = expect_class(&recv)?;
        let name = need_name(&arg(&args, 0), "remove_method")?;
        i.registry.remove_method(cid, &name, false);
        Ok(recv)
    });
    def_method(interp, "Class", "method_defined?", |i, recv, args, _b| {
        let cid = expect_class(&recv)?;
        let name = need_name(&arg(&args, 0), "method_defined?")?;
        Ok(Value::Bool(i.registry.find_method(cid, &name).is_some()))
    });
    def_method(interp, "Class", "instance_methods", |i, recv, _args, _b| {
        let cid = expect_class(&recv)?;
        let mut names: Vec<String> = Vec::new();
        for a in i.registry.ancestors(cid) {
            for n in i.registry.own_method_names(a) {
                if !names.contains(&n) {
                    names.push(n);
                }
            }
        }
        names.sort();
        Ok(Value::array(names.into_iter().map(Value::sym).collect()))
    });
    def_method(interp, "Class", "class_eval", |i, recv, _args, b| {
        let cid = expect_class(&recv)?;
        match b {
            Some(Value::Proc(p)) => {
                let p = p.clone();
                // `class_eval` rebinds both self and the definee.
                let rebound = crate::value::ProcVal {
                    params: p.params.clone(),
                    body: p.body.clone(),
                    env: p.env.clone(),
                    self_val: recv.clone(),
                    definee: cid,
                    span: p.span,
                };
                i.call_proc(&rebound, vec![], None, Some(recv), false)
            }
            _ => Err(arg_error("class_eval: no block given")),
        }
    });
    def_method(interp, "Class", "module_eval", |i, recv, args, b| {
        i.call_method(recv, "class_eval", args, b, Span::dummy())
    });
    def_method(interp, "Class", "include", |i, recv, args, _b| {
        let cid = expect_class(&recv)?;
        for a in &args {
            match a {
                Value::Class(m) => i.registry.include_module(cid, *m),
                other => return Err(type_error(format!("include: {other:?} is not a module"))),
            }
        }
        Ok(recv)
    });
    def_method(interp, "Class", "attr_accessor", |i, recv, args, _b| {
        attr(i, &recv, &args, true, true)
    });
    def_method(interp, "Class", "attr_reader", |i, recv, args, _b| {
        attr(i, &recv, &args, true, false)
    });
    def_method(interp, "Class", "attr_writer", |i, recv, args, _b| {
        attr(i, &recv, &args, false, true)
    });
}

fn expect_class(v: &Value) -> Result<crate::value::ClassId, Flow> {
    match v {
        Value::Class(c) => Ok(*c),
        other => Err(type_error(format!("expected a class, got {other:?}"))),
    }
}

fn attr(
    i: &mut Interp,
    recv: &Value,
    args: &[Value],
    reader: bool,
    writer: bool,
) -> Result<Value, Flow> {
    let cid = expect_class(recv)?;
    for a in args {
        let name = need_name(a, "attr_accessor")?;
        if reader {
            let ivar = name.clone();
            i.define_builtin(
                cid,
                &name,
                false,
                builtin(move |i, recv, _args, _b| Ok(i.ivar_get(&recv, &ivar))),
            );
        }
        if writer {
            let ivar = name.clone();
            i.define_builtin(
                cid,
                &format!("{name}="),
                false,
                builtin(move |i, recv, args, _b| {
                    let v = arg(&args, 0);
                    i.ivar_set(&recv, &ivar, v.clone());
                    Ok(v)
                }),
            );
        }
    }
    Ok(Value::Nil)
}
