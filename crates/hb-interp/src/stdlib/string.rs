//! `String` and `Symbol` methods. Strings are immutable in this host; all
//! operations return new strings.

use super::*;
use crate::value::Value;

pub(crate) fn install(interp: &mut Interp) {
    def_method(interp, "String", "+", |_i, recv, args, _b| {
        let a = need_str(&recv, "+")?;
        let b = need_str(&arg(&args, 0), "String#+")?;
        Ok(Value::str(format!("{a}{b}")))
    });
    def_method(interp, "String", "*", |_i, recv, args, _b| {
        let a = need_str(&recv, "*")?;
        let n = need_int(&arg(&args, 0), "String#*")?;
        Ok(Value::str(a.repeat(n.max(0) as usize)))
    });
    def_method(interp, "String", "==", |_i, recv, args, _b| {
        Ok(Value::Bool(recv.raw_eq(&arg(&args, 0))))
    });
    def_method(interp, "String", "<=>", |_i, recv, args, _b| {
        let a = need_str(&recv, "<=>")?;
        match &arg(&args, 0) {
            Value::Str(b) => Ok(Value::Int(a.cmp(b) as i64)),
            _ => Ok(Value::Nil),
        }
    });
    for (name, f) in [
        (
            "<",
            std::cmp::Ordering::is_lt as fn(std::cmp::Ordering) -> bool,
        ),
        (">", std::cmp::Ordering::is_gt),
        ("<=", std::cmp::Ordering::is_le),
        (">=", std::cmp::Ordering::is_ge),
    ] {
        def_method(interp, "String", name, move |_i, recv, args, _b| {
            let a = need_str(&recv, "cmp")?;
            let b = need_str(&arg(&args, 0), "String comparison")?;
            Ok(Value::Bool(f(a.cmp(&b))))
        });
    }
    def_method(interp, "String", "length", |_i, recv, _args, _b| {
        Ok(Value::Int(need_str(&recv, "length")?.chars().count() as i64))
    });
    def_method(interp, "String", "size", |_i, recv, _args, _b| {
        Ok(Value::Int(need_str(&recv, "size")?.chars().count() as i64))
    });
    def_method(interp, "String", "empty?", |_i, recv, _args, _b| {
        Ok(Value::Bool(need_str(&recv, "empty?")?.is_empty()))
    });
    def_method(interp, "String", "upcase", |_i, recv, _args, _b| {
        Ok(Value::str(need_str(&recv, "upcase")?.to_uppercase()))
    });
    def_method(interp, "String", "downcase", |_i, recv, _args, _b| {
        Ok(Value::str(need_str(&recv, "downcase")?.to_lowercase()))
    });
    def_method(interp, "String", "capitalize", |_i, recv, _args, _b| {
        let s = need_str(&recv, "capitalize")?;
        let mut cs = s.chars();
        Ok(Value::str(match cs.next() {
            Some(c) => c.to_uppercase().collect::<String>() + &cs.as_str().to_lowercase(),
            None => String::new(),
        }))
    });
    def_method(interp, "String", "strip", |_i, recv, _args, _b| {
        Ok(Value::str(need_str(&recv, "strip")?.trim()))
    });
    def_method(interp, "String", "reverse", |_i, recv, _args, _b| {
        Ok(Value::str(
            need_str(&recv, "reverse")?
                .chars()
                .rev()
                .collect::<String>(),
        ))
    });
    def_method(interp, "String", "include?", |_i, recv, args, _b| {
        let a = need_str(&recv, "include?")?;
        let b = need_str(&arg(&args, 0), "include?")?;
        Ok(Value::Bool(a.contains(&*b)))
    });
    def_method(interp, "String", "start_with?", |_i, recv, args, _b| {
        let a = need_str(&recv, "start_with?")?;
        for want in &args {
            if a.starts_with(&*need_str(want, "start_with?")?) {
                return Ok(Value::Bool(true));
            }
        }
        Ok(Value::Bool(false))
    });
    def_method(interp, "String", "end_with?", |_i, recv, args, _b| {
        let a = need_str(&recv, "end_with?")?;
        for want in &args {
            if a.ends_with(&*need_str(want, "end_with?")?) {
                return Ok(Value::Bool(true));
            }
        }
        Ok(Value::Bool(false))
    });
    def_method(interp, "String", "index", |_i, recv, args, _b| {
        let a = need_str(&recv, "index")?;
        let b = need_str(&arg(&args, 0), "index")?;
        Ok(match a.find(&*b) {
            Some(i) => Value::Int(i as i64),
            None => Value::Nil,
        })
    });
    def_method(interp, "String", "[]", |_i, recv, args, _b| {
        let s = need_str(&recv, "[]")?;
        let chars: Vec<char> = s.chars().collect();
        match &arg(&args, 0) {
            Value::Int(i) => {
                let idx = normalize_index(*i, chars.len());
                Ok(match idx {
                    Some(i) => Value::str(chars[i].to_string()),
                    None => Value::Nil,
                })
            }
            Value::Range(r) => {
                let (lo, hi, excl) = (&r.0, &r.1, r.2);
                let lo = need_int(lo, "[]")?;
                let hi = need_int(hi, "[]")?;
                let lo = if lo < 0 {
                    (chars.len() as i64 + lo).max(0) as usize
                } else {
                    lo as usize
                };
                let mut hi = if hi < 0 {
                    (chars.len() as i64 + hi).max(0) as usize
                } else {
                    hi as usize
                };
                if !excl {
                    hi += 1;
                }
                let hi = hi.min(chars.len());
                if lo > hi {
                    return Ok(Value::str(""));
                }
                Ok(Value::str(chars[lo..hi].iter().collect::<String>()))
            }
            Value::Str(sub) => Ok(if s.contains(&**sub) {
                Value::str(&**sub)
            } else {
                Value::Nil
            }),
            other => Err(type_error(format!("String#[]: bad index {other:?}"))),
        }
    });
    def_method(interp, "String", "split", |_i, recv, args, _b| {
        let s = need_str(&recv, "split")?;
        let parts: Vec<Value> = match args.first() {
            None => s.split_whitespace().map(Value::str).collect(),
            Some(sep) => {
                let sep = need_str(sep, "split")?;
                s.split(&*sep)
                    .filter(|p| !p.is_empty() || !sep.is_empty())
                    .map(Value::str)
                    .collect()
            }
        };
        Ok(Value::array(parts))
    });
    def_method(interp, "String", "sub", |_i, recv, args, _b| {
        let s = need_str(&recv, "sub")?;
        let pat = need_str(&arg(&args, 0), "sub")?;
        let rep = need_str(&arg(&args, 1), "sub")?;
        Ok(Value::str(s.replacen(&*pat, &rep, 1)))
    });
    def_method(interp, "String", "gsub", |_i, recv, args, _b| {
        let s = need_str(&recv, "gsub")?;
        let pat = need_str(&arg(&args, 0), "gsub")?;
        let rep = need_str(&arg(&args, 1), "gsub")?;
        Ok(Value::str(s.replace(&*pat, &rep)))
    });
    def_method(interp, "String", "chomp", |_i, recv, _args, _b| {
        let s = need_str(&recv, "chomp")?;
        Ok(Value::str(s.trim_end_matches('\n')))
    });
    def_method(interp, "String", "chars", |_i, recv, _args, _b| {
        let s = need_str(&recv, "chars")?;
        Ok(Value::array(
            s.chars().map(|c| Value::str(c.to_string())).collect(),
        ))
    });
    def_method(interp, "String", "to_s", |_i, recv, _args, _b| Ok(recv));
    def_method(interp, "String", "to_str", |_i, recv, _args, _b| Ok(recv));
    def_method(interp, "String", "to_sym", |_i, recv, _args, _b| {
        Ok(Value::sym(&*need_str(&recv, "to_sym")?))
    });
    def_method(interp, "String", "intern", |_i, recv, _args, _b| {
        Ok(Value::sym(&*need_str(&recv, "intern")?))
    });
    def_method(interp, "String", "to_i", |_i, recv, _args, _b| {
        let s = need_str(&recv, "to_i")?;
        let t: String = s
            .trim()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '-' || *c == '+')
            .collect();
        Ok(Value::Int(t.parse().unwrap_or(0)))
    });
    def_method(interp, "String", "to_f", |_i, recv, _args, _b| {
        let s = need_str(&recv, "to_f")?;
        Ok(Value::Float(s.trim().parse().unwrap_or(0.0)))
    });

    // Symbol.
    def_method(interp, "Symbol", "to_s", |_i, recv, _args, _b| match recv {
        Value::Sym(s) => Ok(Value::str(&*s)),
        _ => Err(type_error("Symbol#to_s on non-symbol")),
    });
    def_method(interp, "Symbol", "to_sym", |_i, recv, _args, _b| Ok(recv));
    def_method(interp, "Symbol", "==", |_i, recv, args, _b| {
        Ok(Value::Bool(recv.raw_eq(&arg(&args, 0))))
    });
}

fn normalize_index(i: i64, len: usize) -> Option<usize> {
    let idx = if i < 0 { len as i64 + i } else { i };
    if idx >= 0 && (idx as usize) < len {
        Some(idx as usize)
    } else {
        None
    }
}
