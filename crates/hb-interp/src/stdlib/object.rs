//! `Object` instance methods (available on every value) and `NilClass`.

use super::*;
use crate::value::Value;
use hb_syntax::Span;

pub(crate) fn install(interp: &mut Interp) {
    def_method(interp, "Object", "==", |_i, recv, args, _b| {
        Ok(Value::Bool(recv.raw_eq(&arg(&args, 0))))
    });
    def_method(interp, "Object", "!=", |i, recv, args, _b| {
        let eq = i.call_method(recv, "==", vec![arg(&args, 0)], None, Span::dummy())?;
        Ok(Value::Bool(!eq.truthy()))
    });
    def_method(interp, "Object", "equal?", |_i, recv, args, _b| {
        Ok(Value::Bool(recv.raw_eq(&arg(&args, 0))))
    });
    def_method(interp, "Object", "===", |i, recv, args, _b| {
        // Default === is ==; Class overrides with is_a? semantics.
        i.call_method(recv, "==", vec![arg(&args, 0)], None, Span::dummy())
    });
    def_method(interp, "Object", "nil?", |_i, _recv, _args, _b| {
        Ok(Value::Bool(false))
    });
    def_method(interp, "Object", "class", |i, recv, _args, _b| {
        Ok(Value::Class(i.registry.class_of(&recv)))
    });
    def_method(interp, "Object", "is_a?", |i, recv, args, _b| {
        is_a(i, &recv, &arg(&args, 0))
    });
    def_method(interp, "Object", "kind_of?", |i, recv, args, _b| {
        is_a(i, &recv, &arg(&args, 0))
    });
    def_method(
        interp,
        "Object",
        "instance_of?",
        |i, recv, args, _b| match arg(&args, 0) {
            Value::Class(c) => Ok(Value::Bool(i.registry.class_of(&recv) == c)),
            other => Err(type_error(format!(
                "instance_of?: {other:?} is not a class"
            ))),
        },
    );
    def_method(interp, "Object", "respond_to?", |i, recv, args, _b| {
        let name = need_name(&arg(&args, 0), "respond_to?")?;
        let ok = match &recv {
            Value::Class(c) => {
                i.registry.find_smethod(*c, &name).is_some()
                    || i.registry
                        .lookup("Class")
                        .and_then(|cc| i.registry.find_method(cc, &name))
                        .is_some()
            }
            other => i
                .registry
                .find_method(i.registry.class_of(other), &name)
                .is_some(),
        };
        Ok(Value::Bool(ok))
    });
    def_method(interp, "Object", "send", |i, recv, mut args, b| {
        if args.is_empty() {
            return Err(arg_error("send: no method name given"));
        }
        let name = need_name(&args.remove(0), "send")?;
        i.call_method(recv, &name, args, b, Span::dummy())
    });
    def_method(interp, "Object", "to_s", |i, recv, _args, _b| {
        let s = i.value_to_s(&recv)?;
        Ok(Value::str(s))
    });
    def_method(interp, "Object", "inspect", |i, recv, _args, _b| {
        Ok(Value::str(i.inspect(&recv)))
    });
    def_method(interp, "Object", "freeze", |_i, recv, _args, _b| Ok(recv));
    def_method(interp, "Object", "frozen?", |_i, _recv, _args, _b| {
        Ok(Value::Bool(false))
    });
    def_method(interp, "Object", "dup", |_i, recv, _args, _b| {
        Ok(match &recv {
            Value::Array(a) => Value::array(a.borrow().clone()),
            Value::Hash(h) => {
                let pairs: Vec<(Value, Value)> = h.borrow().iter().cloned().collect();
                Value::hash_from(pairs)
            }
            other => other.clone(),
        })
    });
    def_method(
        interp,
        "Object",
        "instance_variable_get",
        |i, recv, args, _b| {
            let name = need_name(&arg(&args, 0), "instance_variable_get")?;
            let name = name.trim_start_matches('@');
            Ok(i.ivar_get(&recv, name))
        },
    );
    def_method(
        interp,
        "Object",
        "instance_variable_set",
        |i, recv, args, _b| {
            let name = need_name(&arg(&args, 0), "instance_variable_set")?;
            let name = name.trim_start_matches('@').to_string();
            let v = arg(&args, 1);
            i.ivar_set(&recv, &name, v.clone());
            Ok(v)
        },
    );

    // NilClass overrides.
    def_method(interp, "NilClass", "nil?", |_i, _recv, _args, _b| {
        Ok(Value::Bool(true))
    });
    def_method(interp, "NilClass", "to_s", |_i, _recv, _args, _b| {
        Ok(Value::str(""))
    });
    def_method(interp, "NilClass", "to_a", |_i, _recv, _args, _b| {
        Ok(Value::array(vec![]))
    });
    def_method(interp, "NilClass", "inspect", |_i, _recv, _args, _b| {
        Ok(Value::str("nil"))
    });

    // Proc#call.
    def_method(interp, "Proc", "call", |i, recv, args, _b| match &recv {
        Value::Proc(p) => {
            let p = p.clone();
            i.call_proc(&p, args, None, None, false)
        }
        _ => Err(type_error("Proc#call on non-proc")),
    });
}

fn is_a(i: &mut Interp, recv: &Value, class: &Value) -> Result<Value, Flow> {
    match class {
        Value::Class(want) => {
            let have = i.registry.class_of(recv);
            Ok(Value::Bool(i.registry.is_descendant(have, *want)))
        }
        other => Err(type_error(format!(
            "is_a?: {other:?} is not a class/module"
        ))),
    }
}
