//! `Range` methods (integer ranges).

use super::*;
use crate::value::Value;

fn bounds(v: &Value, what: &str) -> Result<(i64, i64, bool), Flow> {
    match v {
        Value::Range(r) => Ok((need_int(&r.0, what)?, need_int(&r.1, what)?, r.2)),
        other => Err(type_error(format!("{what}: expected Range, got {other:?}"))),
    }
}

fn upper(hi: i64, exclusive: bool) -> i64 {
    if exclusive {
        hi - 1
    } else {
        hi
    }
}

pub(crate) fn install(interp: &mut Interp) {
    def_method(interp, "Range", "each", |i, recv, _args, b| {
        let blk = b.ok_or_else(|| arg_error("each: no block given"))?;
        let (lo, hi, ex) = bounds(&recv, "each")?;
        for k in lo..=upper(hi, ex) {
            if run_block(i, &blk, vec![Value::Int(k)])?.is_none() {
                break;
            }
        }
        Ok(recv)
    });
    def_method(interp, "Range", "map", |i, recv, _args, b| {
        let blk = b.ok_or_else(|| arg_error("map: no block given"))?;
        let (lo, hi, ex) = bounds(&recv, "map")?;
        let mut out = Vec::new();
        for k in lo..=upper(hi, ex) {
            match run_block(i, &blk, vec![Value::Int(k)])? {
                Some(v) => out.push(v),
                None => break,
            }
        }
        Ok(Value::array(out))
    });
    def_method(interp, "Range", "to_a", |_i, recv, _args, _b| {
        let (lo, hi, ex) = bounds(&recv, "to_a")?;
        Ok(Value::array((lo..=upper(hi, ex)).map(Value::Int).collect()))
    });
    for name in ["include?", "cover?", "member?"] {
        def_method(interp, "Range", name, |_i, recv, args, _b| {
            let (lo, hi, ex) = bounds(&recv, "include?")?;
            let v = match arg(&args, 0) {
                Value::Int(n) => n,
                Value::Float(x) => {
                    let hi_ok = if ex { x < hi as f64 } else { x <= hi as f64 };
                    return Ok(Value::Bool(x >= lo as f64 && hi_ok));
                }
                _ => return Ok(Value::Bool(false)),
            };
            Ok(Value::Bool(v >= lo && v <= upper(hi, ex)))
        });
    }
    def_method(interp, "Range", "first", |_i, recv, _args, _b| {
        let (lo, _, _) = bounds(&recv, "first")?;
        Ok(Value::Int(lo))
    });
    def_method(interp, "Range", "last", |_i, recv, _args, _b| match &recv {
        Value::Range(r) => Ok(r.1.clone()),
        _ => Err(type_error("last on non-range")),
    });
    def_method(interp, "Range", "size", |_i, recv, _args, _b| {
        let (lo, hi, ex) = bounds(&recv, "size")?;
        Ok(Value::Int((upper(hi, ex) - lo + 1).max(0)))
    });
}
