//! `Array` methods: literals, iteration, transformation.

use super::*;
use crate::value::Value;
use hb_syntax::Span;
use std::cell::RefCell;
use std::rc::Rc;

fn need_array(v: &Value, what: &str) -> Result<Rc<RefCell<Vec<Value>>>, Flow> {
    match v {
        Value::Array(a) => Ok(a.clone()),
        other => Err(type_error(format!("{what}: expected Array, got {other:?}"))),
    }
}

pub(crate) fn install(interp: &mut Interp) {
    def_smethod(interp, "Array", "new", |i, _recv, args, b| {
        match args.first() {
            None => Ok(Value::array(vec![])),
            Some(n) => {
                let n = need_int(n, "Array.new")? as usize;
                let mut out = Vec::with_capacity(n);
                match (&b, args.get(1)) {
                    (Some(blk), _) => {
                        for k in 0..n {
                            match run_block(i, blk, vec![Value::Int(k as i64)])? {
                                Some(v) => out.push(v),
                                None => break,
                            }
                        }
                    }
                    (None, Some(fill)) => out = vec![fill.clone(); n],
                    (None, None) => out = vec![Value::Nil; n],
                }
                Ok(Value::array(out))
            }
        }
    });

    def_method(interp, "Array", "push", |_i, recv, args, _b| {
        let a = need_array(&recv, "push")?;
        a.borrow_mut().extend(args);
        Ok(recv)
    });
    def_method(interp, "Array", "<<", |_i, recv, args, _b| {
        let a = need_array(&recv, "<<")?;
        a.borrow_mut().push(arg(&args, 0));
        Ok(recv)
    });
    def_method(interp, "Array", "append", |i, recv, args, _b| {
        i.call_method(recv, "push", args, None, Span::dummy())
    });
    def_method(interp, "Array", "pop", |_i, recv, _args, _b| {
        let a = need_array(&recv, "pop")?;
        let v = a.borrow_mut().pop();
        Ok(v.unwrap_or(Value::Nil))
    });
    def_method(interp, "Array", "shift", |_i, recv, _args, _b| {
        let a = need_array(&recv, "shift")?;
        let mut a = a.borrow_mut();
        if a.is_empty() {
            Ok(Value::Nil)
        } else {
            Ok(a.remove(0))
        }
    });
    def_method(interp, "Array", "unshift", |_i, recv, args, _b| {
        let a = need_array(&recv, "unshift")?;
        let mut inner = a.borrow_mut();
        for (k, v) in args.into_iter().enumerate() {
            inner.insert(k, v);
        }
        drop(inner);
        Ok(recv)
    });
    def_method(interp, "Array", "first", |_i, recv, args, _b| {
        let a = need_array(&recv, "first")?;
        match args.first() {
            None => Ok(a.borrow().first().cloned().unwrap_or(Value::Nil)),
            Some(n) => {
                let n = need_int(n, "first")? as usize;
                Ok(Value::array(a.borrow().iter().take(n).cloned().collect()))
            }
        }
    });
    def_method(interp, "Array", "last", |_i, recv, args, _b| {
        let a = need_array(&recv, "last")?;
        match args.first() {
            None => Ok(a.borrow().last().cloned().unwrap_or(Value::Nil)),
            Some(n) => {
                let n = need_int(n, "last")? as usize;
                let b = a.borrow();
                let skip = b.len().saturating_sub(n);
                Ok(Value::array(b.iter().skip(skip).cloned().collect()))
            }
        }
    });
    for name in ["size", "length", "count"] {
        def_method(interp, "Array", name, |i, recv, args, b| {
            let a = need_array(&recv, "size")?;
            if let Some(blk) = &b {
                let elems: Vec<Value> = a.borrow().clone();
                let mut n = 0i64;
                for e in elems {
                    match run_block(i, blk, vec![e])? {
                        Some(v) if v.truthy() => n += 1,
                        Some(_) => {}
                        None => break,
                    }
                }
                return Ok(Value::Int(n));
            }
            if let Some(v) = args.first() {
                let n = a.borrow().iter().filter(|e| e.raw_eq(v)).count();
                return Ok(Value::Int(n as i64));
            }
            let n = a.borrow().len();
            Ok(Value::Int(n as i64))
        });
    }
    def_method(interp, "Array", "empty?", |_i, recv, _args, _b| {
        let a = need_array(&recv, "empty?")?;
        let e = a.borrow().is_empty();
        Ok(Value::Bool(e))
    });
    def_method(interp, "Array", "[]", |_i, recv, args, _b| {
        let a = need_array(&recv, "[]")?;
        let a = a.borrow();
        match &arg(&args, 0) {
            Value::Int(i) => {
                let idx = if *i < 0 { a.len() as i64 + i } else { *i };
                Ok(if idx >= 0 && (idx as usize) < a.len() {
                    a[idx as usize].clone()
                } else {
                    Value::Nil
                })
            }
            Value::Range(r) => {
                let lo = need_int(&r.0, "[]")?.max(0) as usize;
                let mut hi = need_int(&r.1, "[]")?;
                if hi < 0 {
                    hi += a.len() as i64;
                }
                let mut hi = hi.max(0) as usize;
                if !r.2 {
                    hi += 1;
                }
                let hi = hi.min(a.len());
                if lo >= a.len() {
                    return Ok(Value::Nil);
                }
                Ok(Value::array(a[lo..hi.max(lo)].to_vec()))
            }
            other => Err(type_error(format!("Array#[]: bad index {other:?}"))),
        }
    });
    def_method(interp, "Array", "[]=", |_i, recv, args, _b| {
        let a = need_array(&recv, "[]=")?;
        let idx = need_int(&arg(&args, 0), "[]=")?;
        let v = arg(&args, 1);
        let mut a = a.borrow_mut();
        let idx = if idx < 0 { a.len() as i64 + idx } else { idx };
        if idx < 0 {
            return Err(arg_error("Array#[]=: negative index out of range"));
        }
        let idx = idx as usize;
        while a.len() <= idx {
            a.push(Value::Nil);
        }
        a[idx] = v.clone();
        Ok(v)
    });
    def_method(interp, "Array", "each", |i, recv, _args, b| {
        let blk = b.ok_or_else(|| arg_error("each: no block given"))?;
        let a = need_array(&recv, "each")?;
        let elems: Vec<Value> = a.borrow().clone();
        for e in elems {
            if run_block(i, &blk, vec![e])?.is_none() {
                break;
            }
        }
        Ok(recv)
    });
    def_method(interp, "Array", "each_with_index", |i, recv, _args, b| {
        let blk = b.ok_or_else(|| arg_error("each_with_index: no block given"))?;
        let a = need_array(&recv, "each_with_index")?;
        let elems: Vec<Value> = a.borrow().clone();
        for (k, e) in elems.into_iter().enumerate() {
            if run_block(i, &blk, vec![e, Value::Int(k as i64)])?.is_none() {
                break;
            }
        }
        Ok(recv)
    });
    for name in ["map", "collect"] {
        def_method(interp, "Array", name, |i, recv, _args, b| {
            let blk = b.ok_or_else(|| arg_error("map: no block given"))?;
            let a = need_array(&recv, "map")?;
            let elems: Vec<Value> = a.borrow().clone();
            let mut out = Vec::with_capacity(elems.len());
            for e in elems {
                match run_block(i, &blk, vec![e])? {
                    Some(v) => out.push(v),
                    None => break,
                }
            }
            Ok(Value::array(out))
        });
    }
    for name in ["select", "filter"] {
        def_method(interp, "Array", name, |i, recv, _args, b| {
            let blk = b.ok_or_else(|| arg_error("select: no block given"))?;
            let a = need_array(&recv, "select")?;
            let elems: Vec<Value> = a.borrow().clone();
            let mut out = Vec::new();
            for e in elems {
                match run_block(i, &blk, vec![e.clone()])? {
                    Some(v) if v.truthy() => out.push(e),
                    Some(_) => {}
                    None => break,
                }
            }
            Ok(Value::array(out))
        });
    }
    def_method(interp, "Array", "reject", |i, recv, _args, b| {
        let blk = b.ok_or_else(|| arg_error("reject: no block given"))?;
        let a = need_array(&recv, "reject")?;
        let elems: Vec<Value> = a.borrow().clone();
        let mut out = Vec::new();
        for e in elems {
            match run_block(i, &blk, vec![e.clone()])? {
                Some(v) if !v.truthy() => out.push(e),
                Some(_) => {}
                None => break,
            }
        }
        Ok(Value::array(out))
    });
    for name in ["find", "detect"] {
        def_method(interp, "Array", name, |i, recv, _args, b| {
            let blk = b.ok_or_else(|| arg_error("find: no block given"))?;
            let a = need_array(&recv, "find")?;
            let elems: Vec<Value> = a.borrow().clone();
            for e in elems {
                match run_block(i, &blk, vec![e.clone()])? {
                    Some(v) if v.truthy() => return Ok(e),
                    Some(_) => {}
                    None => break,
                }
            }
            Ok(Value::Nil)
        });
    }
    def_method(interp, "Array", "all?", |i, recv, _args, b| {
        let blk = b.ok_or_else(|| arg_error("all?: no block given"))?;
        let a = need_array(&recv, "all?")?;
        let elems: Vec<Value> = a.borrow().clone();
        for e in elems {
            match run_block(i, &blk, vec![e])? {
                Some(v) if !v.truthy() => return Ok(Value::Bool(false)),
                Some(_) => {}
                None => break,
            }
        }
        Ok(Value::Bool(true))
    });
    def_method(interp, "Array", "any?", |i, recv, _args, b| {
        let a = need_array(&recv, "any?")?;
        let elems: Vec<Value> = a.borrow().clone();
        match b {
            Some(blk) => {
                for e in elems {
                    match run_block(i, &blk, vec![e])? {
                        Some(v) if v.truthy() => return Ok(Value::Bool(true)),
                        Some(_) => {}
                        None => break,
                    }
                }
                Ok(Value::Bool(false))
            }
            None => Ok(Value::Bool(!elems.is_empty())),
        }
    });
    def_method(interp, "Array", "none?", |i, recv, args, b| {
        let any = i.call_method(recv, "any?", args, b, Span::dummy())?;
        Ok(Value::Bool(!any.truthy()))
    });
    def_method(interp, "Array", "include?", |_i, recv, args, _b| {
        let a = need_array(&recv, "include?")?;
        let v = arg(&args, 0);
        let found = a.borrow().iter().any(|e| e.raw_eq(&v));
        Ok(Value::Bool(found))
    });
    def_method(interp, "Array", "index", |_i, recv, args, _b| {
        let a = need_array(&recv, "index")?;
        let v = arg(&args, 0);
        let pos = a.borrow().iter().position(|e| e.raw_eq(&v));
        Ok(match pos {
            Some(p) => Value::Int(p as i64),
            None => Value::Nil,
        })
    });
    def_method(interp, "Array", "join", |i, recv, args, _b| {
        let a = need_array(&recv, "join")?;
        let sep = match args.first() {
            Some(s) => need_str(s, "join")?.to_string(),
            None => String::new(),
        };
        let elems: Vec<Value> = a.borrow().clone();
        let mut parts = Vec::with_capacity(elems.len());
        for e in &elems {
            parts.push(i.value_to_s(e)?);
        }
        Ok(Value::str(parts.join(&sep)))
    });
    def_method(interp, "Array", "sort", |i, recv, _args, b| {
        let a = need_array(&recv, "sort")?;
        let mut elems: Vec<Value> = a.borrow().clone();
        // Insertion sort via dispatched <=> (stable, no unwrap of Ordering).
        let mut err = None;
        for k in 1..elems.len() {
            let mut j = k;
            while j > 0 {
                let ord = match &b {
                    Some(blk) => {
                        match i.call_block(blk, vec![elems[j - 1].clone(), elems[j].clone()]) {
                            Ok(v) => v,
                            Err(e) => {
                                err = Some(e);
                                break;
                            }
                        }
                    }
                    None => match i.call_method(
                        elems[j - 1].clone(),
                        "<=>",
                        vec![elems[j].clone()],
                        None,
                        Span::dummy(),
                    ) {
                        Ok(v) => v,
                        Err(e) => {
                            err = Some(e);
                            break;
                        }
                    },
                };
                let gt = matches!(ord, Value::Int(n) if n > 0);
                if gt {
                    elems.swap(j - 1, j);
                    j -= 1;
                } else {
                    break;
                }
            }
            if err.is_some() {
                break;
            }
        }
        if let Some(e) = err {
            return Err(e);
        }
        Ok(Value::array(elems))
    });
    def_method(interp, "Array", "sort_by", |i, recv, _args, b| {
        let blk = b.ok_or_else(|| arg_error("sort_by: no block given"))?;
        let a = need_array(&recv, "sort_by")?;
        let elems: Vec<Value> = a.borrow().clone();
        let mut keyed: Vec<(Value, Value)> = Vec::with_capacity(elems.len());
        for e in elems {
            match run_block(i, &blk, vec![e.clone()])? {
                Some(k) => keyed.push((k, e)),
                None => break,
            }
        }
        // Sort by key via dispatched <=>.
        for k in 1..keyed.len() {
            let mut j = k;
            while j > 0 {
                let ord = i.call_method(
                    keyed[j - 1].0.clone(),
                    "<=>",
                    vec![keyed[j].0.clone()],
                    None,
                    Span::dummy(),
                )?;
                if matches!(ord, Value::Int(n) if n > 0) {
                    keyed.swap(j - 1, j);
                    j -= 1;
                } else {
                    break;
                }
            }
        }
        Ok(Value::array(keyed.into_iter().map(|(_, e)| e).collect()))
    });
    def_method(interp, "Array", "sum", |_i, recv, _args, _b| {
        let a = need_array(&recv, "sum")?;
        let mut int_sum = 0i64;
        let mut float_sum = 0.0f64;
        let mut is_float = false;
        for e in a.borrow().iter() {
            match e {
                Value::Int(n) => int_sum += n,
                Value::Float(x) => {
                    is_float = true;
                    float_sum += x;
                }
                other => return Err(type_error(format!("sum: non-numeric {other:?}"))),
            }
        }
        Ok(if is_float {
            Value::Float(float_sum + int_sum as f64)
        } else {
            Value::Int(int_sum)
        })
    });
    for name in ["reduce", "inject"] {
        def_method(interp, "Array", name, |i, recv, args, b| {
            let blk = b.ok_or_else(|| arg_error("reduce: no block given"))?;
            let a = need_array(&recv, "reduce")?;
            let elems: Vec<Value> = a.borrow().clone();
            let mut it = elems.into_iter();
            let mut acc = match args.first() {
                Some(v) => v.clone(),
                None => it.next().unwrap_or(Value::Nil),
            };
            for e in it {
                match run_block(i, &blk, vec![acc.clone(), e])? {
                    Some(v) => acc = v,
                    None => break,
                }
            }
            Ok(acc)
        });
    }
    def_method(interp, "Array", "zip", |_i, recv, args, _b| {
        let a = need_array(&recv, "zip")?;
        let others: Vec<Rc<RefCell<Vec<Value>>>> = args
            .iter()
            .map(|o| need_array(o, "zip"))
            .collect::<Result<_, _>>()?;
        let a = a.borrow();
        let mut out = Vec::with_capacity(a.len());
        for (k, e) in a.iter().enumerate() {
            let mut row = vec![e.clone()];
            for o in &others {
                row.push(o.borrow().get(k).cloned().unwrap_or(Value::Nil));
            }
            out.push(Value::array(row));
        }
        Ok(Value::array(out))
    });
    def_method(interp, "Array", "flatten", |_i, recv, _args, _b| {
        let a = need_array(&recv, "flatten")?;
        fn flat(vs: &[Value], out: &mut Vec<Value>) {
            for v in vs {
                match v {
                    Value::Array(inner) => flat(&inner.borrow(), out),
                    other => out.push(other.clone()),
                }
            }
        }
        let mut out = Vec::new();
        flat(&a.borrow(), &mut out);
        Ok(Value::array(out))
    });
    def_method(interp, "Array", "uniq", |_i, recv, _args, _b| {
        let a = need_array(&recv, "uniq")?;
        let mut out: Vec<Value> = Vec::new();
        for e in a.borrow().iter() {
            if !out.iter().any(|x| x.raw_eq(e)) {
                out.push(e.clone());
            }
        }
        Ok(Value::array(out))
    });
    def_method(interp, "Array", "reverse", |_i, recv, _args, _b| {
        let a = need_array(&recv, "reverse")?;
        let mut v = a.borrow().clone();
        v.reverse();
        Ok(Value::array(v))
    });
    def_method(interp, "Array", "compact", |_i, recv, _args, _b| {
        let a = need_array(&recv, "compact")?;
        let out: Vec<Value> = a
            .borrow()
            .iter()
            .filter(|v| !matches!(v, Value::Nil))
            .cloned()
            .collect();
        Ok(Value::array(out))
    });
    def_method(interp, "Array", "concat", |_i, recv, args, _b| {
        let a = need_array(&recv, "concat")?;
        for o in &args {
            let o = need_array(o, "concat")?;
            let extra: Vec<Value> = o.borrow().clone();
            a.borrow_mut().extend(extra);
        }
        Ok(recv)
    });
    def_method(interp, "Array", "+", |_i, recv, args, _b| {
        let a = need_array(&recv, "+")?;
        let b = need_array(&arg(&args, 0), "Array#+")?;
        let mut out = a.borrow().clone();
        out.extend(b.borrow().iter().cloned());
        Ok(Value::array(out))
    });
    def_method(interp, "Array", "-", |_i, recv, args, _b| {
        let a = need_array(&recv, "-")?;
        let b = need_array(&arg(&args, 0), "Array#-")?;
        let b = b.borrow();
        let out: Vec<Value> = a
            .borrow()
            .iter()
            .filter(|e| !b.iter().any(|x| x.raw_eq(e)))
            .cloned()
            .collect();
        Ok(Value::array(out))
    });
    def_method(interp, "Array", "delete", |_i, recv, args, _b| {
        let a = need_array(&recv, "delete")?;
        let v = arg(&args, 0);
        let mut inner = a.borrow_mut();
        let before = inner.len();
        inner.retain(|e| !e.raw_eq(&v));
        Ok(if inner.len() < before { v } else { Value::Nil })
    });
    def_method(interp, "Array", "clear", |_i, recv, _args, _b| {
        let a = need_array(&recv, "clear")?;
        a.borrow_mut().clear();
        Ok(recv)
    });
    def_method(interp, "Array", "take", |_i, recv, args, _b| {
        let a = need_array(&recv, "take")?;
        let n = need_int(&arg(&args, 0), "take")?.max(0) as usize;
        let out: Vec<Value> = a.borrow().iter().take(n).cloned().collect();
        Ok(Value::array(out))
    });
    def_method(interp, "Array", "drop", |_i, recv, args, _b| {
        let a = need_array(&recv, "drop")?;
        let n = need_int(&arg(&args, 0), "drop")?.max(0) as usize;
        let out: Vec<Value> = a.borrow().iter().skip(n).cloned().collect();
        Ok(Value::array(out))
    });
    def_method(interp, "Array", "to_a", |_i, recv, _args, _b| Ok(recv));
    def_method(interp, "Array", "==", |_i, recv, args, _b| {
        Ok(Value::Bool(recv.raw_eq(&arg(&args, 0))))
    });
    def_method(interp, "Array", "max", |i, recv, _args, _b| {
        extreme(i, &recv, true)
    });
    def_method(interp, "Array", "min", |i, recv, _args, _b| {
        extreme(i, &recv, false)
    });
}

fn extreme(i: &mut Interp, recv: &Value, want_max: bool) -> Result<Value, Flow> {
    let a = match recv {
        Value::Array(a) => a.clone(),
        _ => return Err(type_error("max/min on non-array")),
    };
    let elems: Vec<Value> = a.borrow().clone();
    let mut best: Option<Value> = None;
    for e in elems {
        match &best {
            None => best = Some(e),
            Some(b) => {
                let ord = i.call_method(e.clone(), "<=>", vec![b.clone()], None, Span::dummy())?;
                let replace = match ord {
                    Value::Int(n) => {
                        if want_max {
                            n > 0
                        } else {
                            n < 0
                        }
                    }
                    _ => false,
                };
                if replace {
                    best = Some(e);
                }
            }
        }
    }
    Ok(best.unwrap_or(Value::Nil))
}
