//! The numeric tower: `Integer` (with `Fixnum`/`Bignum` as in the paper's
//! §4 "Numeric Hierarchy") and `Float`.

use super::*;
use crate::value::{format_float, Value};

enum Num {
    I(i64),
    F(f64),
}

fn num(v: &Value, what: &str) -> Result<Num, Flow> {
    match v {
        Value::Int(n) => Ok(Num::I(*n)),
        Value::Float(x) => Ok(Num::F(*x)),
        other => Err(type_error(format!(
            "{what}: can't coerce {other:?} into Numeric"
        ))),
    }
}

fn arith(
    recv: &Value,
    args: &[Value],
    name: &str,
    fi: fn(i64, i64) -> Result<i64, Flow>,
    ff: fn(f64, f64) -> f64,
) -> Result<Value, Flow> {
    let a = num(recv, name)?;
    let b = num(&arg(args, 0), name)?;
    Ok(match (a, b) {
        (Num::I(x), Num::I(y)) => Value::Int(fi(x, y)?),
        (Num::I(x), Num::F(y)) => Value::Float(ff(x as f64, y)),
        (Num::F(x), Num::I(y)) => Value::Float(ff(x, y as f64)),
        (Num::F(x), Num::F(y)) => Value::Float(ff(x, y)),
    })
}

fn cmp(recv: &Value, args: &[Value], name: &str) -> Result<std::cmp::Ordering, Flow> {
    let a = num(recv, name)?;
    let b = num(&arg(args, 0), name)?;
    let (x, y) = match (a, b) {
        (Num::I(x), Num::I(y)) => return Ok(x.cmp(&y)),
        (Num::I(x), Num::F(y)) => (x as f64, y),
        (Num::F(x), Num::I(y)) => (x, y as f64),
        (Num::F(x), Num::F(y)) => (x, y),
    };
    x.partial_cmp(&y)
        .ok_or_else(|| arg_error(format!("{name}: comparison with NaN")))
}

fn zero_guard(y: i64) -> Result<(), Flow> {
    if y == 0 {
        Err(Flow::Error(crate::error::HbError::new(
            crate::error::ErrorKind::ZeroDivision,
            "divided by 0",
            hb_syntax::Span::dummy(),
        )))
    } else {
        Ok(())
    }
}

pub(crate) fn install(interp: &mut Interp) {
    for class in ["Integer", "Float"] {
        def_method(interp, class, "+", |_i, recv, args, _b| {
            arith(
                &recv,
                &args,
                "+",
                |x, y| Ok(x.wrapping_add(y)),
                |x, y| x + y,
            )
        });
        def_method(interp, class, "-", |_i, recv, args, _b| {
            arith(
                &recv,
                &args,
                "-",
                |x, y| Ok(x.wrapping_sub(y)),
                |x, y| x - y,
            )
        });
        def_method(interp, class, "*", |_i, recv, args, _b| {
            arith(
                &recv,
                &args,
                "*",
                |x, y| Ok(x.wrapping_mul(y)),
                |x, y| x * y,
            )
        });
        def_method(interp, class, "/", |_i, recv, args, _b| {
            arith(
                &recv,
                &args,
                "/",
                |x, y| {
                    zero_guard(y)?;
                    Ok(x.div_euclid(y))
                },
                |x, y| x / y,
            )
        });
        def_method(interp, class, "%", |_i, recv, args, _b| {
            arith(
                &recv,
                &args,
                "%",
                |x, y| {
                    zero_guard(y)?;
                    Ok(x.rem_euclid(y))
                },
                |x, y| x.rem_euclid(y),
            )
        });
        def_method(interp, class, "**", |_i, recv, args, _b| {
            arith(
                &recv,
                &args,
                "**",
                |x, y| {
                    if y < 0 {
                        Err(arg_error("negative integer exponent"))
                    } else {
                        Ok(x.wrapping_pow(y.min(u32::MAX as i64) as u32))
                    }
                },
                f64::powf,
            )
        });
        def_method(interp, class, "==", |_i, recv, args, _b| {
            Ok(Value::Bool(recv.raw_eq(&arg(&args, 0))))
        });
        def_method(interp, class, "<", |_i, recv, args, _b| {
            Ok(Value::Bool(cmp(&recv, &args, "<")?.is_lt()))
        });
        def_method(interp, class, ">", |_i, recv, args, _b| {
            Ok(Value::Bool(cmp(&recv, &args, ">")?.is_gt()))
        });
        def_method(interp, class, "<=", |_i, recv, args, _b| {
            Ok(Value::Bool(cmp(&recv, &args, "<=")?.is_le()))
        });
        def_method(interp, class, ">=", |_i, recv, args, _b| {
            Ok(Value::Bool(cmp(&recv, &args, ">=")?.is_ge()))
        });
        def_method(interp, class, "<=>", |_i, recv, args, _b| {
            Ok(Value::Int(match cmp(&recv, &args, "<=>") {
                Ok(o) => o as i64,
                Err(_) => return Ok(Value::Nil),
            }))
        });
        def_method(interp, class, "-@", |_i, recv, _args, _b| {
            Ok(match recv {
                Value::Int(n) => Value::Int(-n),
                Value::Float(x) => Value::Float(-x),
                _ => return Err(type_error("-@ on non-numeric")),
            })
        });
        def_method(interp, class, "abs", |_i, recv, _args, _b| {
            Ok(match recv {
                Value::Int(n) => Value::Int(n.abs()),
                Value::Float(x) => Value::Float(x.abs()),
                _ => return Err(type_error("abs on non-numeric")),
            })
        });
        def_method(interp, class, "zero?", |_i, recv, _args, _b| {
            Ok(Value::Bool(match recv {
                Value::Int(n) => n == 0,
                Value::Float(x) => x == 0.0,
                _ => false,
            }))
        });
        def_method(interp, class, "to_i", |_i, recv, _args, _b| {
            Ok(match recv {
                Value::Int(n) => Value::Int(n),
                Value::Float(x) => Value::Int(x.trunc() as i64),
                _ => return Err(type_error("to_i on non-numeric")),
            })
        });
        def_method(interp, class, "to_f", |_i, recv, _args, _b| {
            Ok(match recv {
                Value::Int(n) => Value::Float(n as f64),
                Value::Float(x) => Value::Float(x),
                _ => return Err(type_error("to_f on non-numeric")),
            })
        });
        def_method(interp, class, "to_s", |_i, recv, _args, _b| {
            Ok(match recv {
                Value::Int(n) => Value::str(n.to_string()),
                Value::Float(x) => Value::str(format_float(x)),
                _ => return Err(type_error("to_s on non-numeric")),
            })
        });
    }

    // Integer-only iteration helpers.
    def_method(interp, "Integer", "times", |i, recv, _args, b| {
        let n = need_int(&recv, "times")?;
        let blk = b.ok_or_else(|| arg_error("times: no block given"))?;
        for k in 0..n {
            if run_block(i, &blk, vec![Value::Int(k)])?.is_none() {
                break;
            }
        }
        Ok(recv)
    });
    def_method(interp, "Integer", "upto", |i, recv, args, b| {
        let lo = need_int(&recv, "upto")?;
        let hi = need_int(&arg(&args, 0), "upto")?;
        let blk = b.ok_or_else(|| arg_error("upto: no block given"))?;
        for k in lo..=hi {
            if run_block(i, &blk, vec![Value::Int(k)])?.is_none() {
                break;
            }
        }
        Ok(recv)
    });
    def_method(interp, "Integer", "even?", |_i, recv, _args, _b| {
        Ok(Value::Bool(need_int(&recv, "even?")? % 2 == 0))
    });
    def_method(interp, "Integer", "odd?", |_i, recv, _args, _b| {
        Ok(Value::Bool(need_int(&recv, "odd?")? % 2 != 0))
    });
    def_method(interp, "Integer", "succ", |_i, recv, _args, _b| {
        Ok(Value::Int(need_int(&recv, "succ")? + 1))
    });

    def_method(interp, "Float", "round", |_i, recv, args, _b| {
        let x = match recv {
            Value::Float(x) => x,
            Value::Int(n) => return Ok(Value::Int(n)),
            _ => return Err(type_error("round on non-numeric")),
        };
        match args.first() {
            Some(d) => {
                let digits = need_int(d, "round")?;
                let m = 10f64.powi(digits as i32);
                Ok(Value::Float((x * m).round() / m))
            }
            None => Ok(Value::Int(x.round() as i64)),
        }
    });
    def_method(interp, "Float", "floor", |_i, recv, _args, _b| match recv {
        Value::Float(x) => Ok(Value::Int(x.floor() as i64)),
        Value::Int(n) => Ok(Value::Int(n)),
        _ => Err(type_error("floor on non-numeric")),
    });
    def_method(interp, "Float", "ceil", |_i, recv, _args, _b| match recv {
        Value::Float(x) => Ok(Value::Int(x.ceil() as i64)),
        Value::Int(n) => Ok(Value::Int(n)),
        _ => Err(type_error("ceil on non-numeric")),
    });
}
