//! Kernel-style global methods: IO, `raise`, `lambda`, `block_given?`.

use super::*;
use crate::error::{ErrorKind, HbError};
use crate::value::Value;
use hb_syntax::Span;

pub(crate) fn install(interp: &mut Interp) {
    def_method(interp, "Object", "puts", |i, _recv, args, _b| {
        if args.is_empty() {
            i.push_output("\n");
        }
        for a in &args {
            puts_one(i, a)?;
        }
        Ok(Value::Nil)
    });
    def_method(interp, "Object", "print", |i, _recv, args, _b| {
        for a in &args {
            let s = i.value_to_s(a)?;
            i.push_output(&s);
        }
        Ok(Value::Nil)
    });
    def_method(interp, "Object", "p", |i, _recv, args, _b| {
        for a in &args {
            let s = i.inspect(a);
            i.push_output(&s);
            i.push_output("\n");
        }
        Ok(match args.len() {
            0 => Value::Nil,
            1 => args.into_iter().next().unwrap(),
            _ => Value::array(args),
        })
    });
    def_method(interp, "Object", "raise", |i, _recv, args, _b| {
        raise_impl(i, args)
    });
    def_method(interp, "Object", "require", |_i, _recv, _args, _b| {
        Ok(Value::Bool(true))
    });
    def_method(
        interp,
        "Object",
        "require_relative",
        |_i, _recv, _args, _b| Ok(Value::Bool(true)),
    );
    def_method(interp, "Object", "lambda", |_i, _recv, _args, b| {
        b.ok_or_else(|| arg_error("lambda: no block given"))
    });
    def_method(interp, "Object", "proc", |_i, _recv, _args, b| {
        b.ok_or_else(|| arg_error("proc: no block given"))
    });
    def_method(interp, "Object", "block_given?", |i, _recv, _args, _b| {
        // Builtins do not push frames, so the current frame is the caller's.
        Ok(Value::Bool(i.frame().block.is_some()))
    });
    def_method(interp, "Object", "loop", |i, _recv, _args, b| {
        let blk = b.ok_or_else(|| arg_error("loop: no block given"))?;
        let mut fuel = 10_000_000u64;
        loop {
            if run_block(i, &blk, vec![])?.is_none() {
                return Ok(Value::Nil);
            }
            fuel -= 1;
            if fuel == 0 {
                return Err(Flow::Error(HbError::new(
                    ErrorKind::Internal,
                    "loop exceeded fuel",
                    Span::dummy(),
                )));
            }
        }
    });
    def_method(interp, "Object", "sleep", |_i, _recv, _args, _b| {
        Ok(Value::Nil)
    });
}

fn puts_one(i: &mut Interp, v: &Value) -> Result<(), Flow> {
    match v {
        Value::Array(a) => {
            let elems: Vec<Value> = a.borrow().clone();
            if elems.is_empty() {
                i.push_output("\n");
            }
            for e in &elems {
                puts_one(i, e)?;
            }
        }
        other => {
            let s = i.value_to_s(other)?;
            i.push_output(&s);
            if !s.ends_with('\n') {
                i.push_output("\n");
            }
        }
    }
    Ok(())
}

fn raise_impl(i: &mut Interp, args: Vec<Value>) -> Result<Value, Flow> {
    let (class_name, message, value) = match args.first() {
        None => (
            "RuntimeError".to_string(),
            "unhandled exception".to_string(),
            None,
        ),
        Some(Value::Str(msg)) => ("RuntimeError".to_string(), msg.to_string(), None),
        Some(Value::Class(cid)) => {
            let class_name = i.registry.name(*cid).to_string();
            let message = match args.get(1) {
                Some(m) => i.value_to_s(m)?,
                None => class_name.clone(),
            };
            let exc = i.call_method(
                Value::Class(*cid),
                "new",
                vec![Value::str(&message)],
                None,
                Span::dummy(),
            )?;
            (class_name, message, Some(exc))
        }
        Some(v @ Value::Obj(o)) => {
            let class_name = i.registry.name(o.class).to_string();
            let message = match i.ivar_get(v, "message") {
                Value::Nil => class_name.clone(),
                m => i.value_to_s(&m)?,
            };
            (class_name, message, Some(v.clone()))
        }
        Some(other) => {
            return Err(type_error(format!(
                "raise: expected exception class, object or message, got {other:?}"
            )))
        }
    };
    let mut err = HbError::new(ErrorKind::UserRaise(class_name), message, Span::dummy());
    err.value = value;
    Err(Flow::Error(err))
}
