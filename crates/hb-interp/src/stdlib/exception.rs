//! The exception class hierarchy.

use super::*;
use crate::value::Value;

pub(crate) fn install(interp: &mut Interp) {
    let object = interp.registry.object();
    let exception = interp.define_class("Exception", Some(object));
    let standard = interp.define_class("StandardError", Some(exception));
    for name in [
        "RuntimeError",
        "ArgumentError",
        "TypeError",
        "NameError",
        "ZeroDivisionError",
        "IOError",
        "NotImplementedError",
        "StopIteration",
    ] {
        interp.define_class(name, Some(standard));
    }
    let name_error = interp.registry.lookup("NameError");
    interp.define_class("NoMethodError", name_error);
    // Record-not-found style errors used by the Rails substrate.
    interp.define_class("RecordNotFound", Some(standard));

    def_method(interp, "Exception", "initialize", |i, recv, args, _b| {
        let msg = match args.first() {
            Some(m) => i.value_to_s(m)?,
            None => i.class_name_of(&recv),
        };
        i.ivar_set(&recv, "message", Value::str(msg));
        Ok(Value::Nil)
    });
    def_method(interp, "Exception", "message", |i, recv, _args, _b| {
        Ok(i.ivar_get(&recv, "message"))
    });
    def_method(interp, "Exception", "to_s", |i, recv, _args, _b| {
        Ok(i.ivar_get(&recv, "message"))
    });
}
