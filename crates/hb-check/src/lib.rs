//! Hummingbird's flow-sensitive static type checker over RIL-like CFGs.
//!
//! Invoked at run time at method entry (paper §3/§4): the engine calls
//! [`check_sig`] with the method's CFG, the *current* type table, and the
//! receiver's class. Successful checks carry the (TApp) dependency set used
//! for cache invalidation; failures are the paper's `blame`.

pub mod checker;
pub mod info;
pub mod table;

pub use checker::{
    check_sig, generic_params, verify_candidate, CheckError, CheckOptions, CheckOutcome,
    CheckRequest,
};
pub use hb_rdl::CheckPolicy;
pub use info::{ClassInfo, InfoHierarchy, MapClassInfo};
pub use table::TypeTable;
