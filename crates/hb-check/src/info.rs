//! Class-graph information the checker needs, abstracted from the
//! interpreter so the checker is testable in isolation.

use hb_types::Hierarchy;
use std::collections::HashMap;

/// Nominal class-graph queries used during checking.
pub trait ClassInfo {
    /// The ancestor chain of `class`, nearest first, including `class`
    /// itself and ending at `Object`. Unknown classes yield
    /// `[class, "Object"]`.
    fn ancestors(&self, class: &str) -> Vec<String>;

    /// Is `sub` the same as or below `sup`?
    fn is_descendant(&self, sub: &str, sup: &str) -> bool {
        sub == sup || sup == "Object" || self.ancestors(sub).iter().any(|a| a == sup)
    }

    /// Does a class/module of this name exist?
    fn class_exists(&self, name: &str) -> bool;
}

/// Adapter exposing a [`ClassInfo`] as the type system's [`Hierarchy`].
pub struct InfoHierarchy<'a>(pub &'a dyn ClassInfo);

impl Hierarchy for InfoHierarchy<'_> {
    fn is_descendant(&self, sub: &str, sup: &str) -> bool {
        self.0.is_descendant(sub, sup)
    }
}

/// A map-backed [`ClassInfo`] for tests and the formal calculus: class →
/// strict ancestors (nearest first, `Object` implicit).
#[derive(Debug, Clone, Default)]
pub struct MapClassInfo {
    parents: HashMap<String, Vec<String>>,
    known: Vec<String>,
}

impl MapClassInfo {
    /// An info with the built-in numeric tower and core classes.
    pub fn with_core() -> MapClassInfo {
        let mut m = MapClassInfo::default();
        m.add("Fixnum", vec!["Integer", "Numeric"]);
        m.add("Bignum", vec!["Integer", "Numeric"]);
        m.add("Integer", vec!["Numeric"]);
        m.add("Float", vec!["Numeric"]);
        for c in [
            "Numeric",
            "String",
            "Symbol",
            "Array",
            "Hash",
            "Range",
            "Proc",
            "NilClass",
            "Boolean",
            "Class",
            "Module",
            "Struct",
            "StandardError",
        ] {
            m.add(c, vec![]);
        }
        m
    }

    /// Declares `class` with the given strict ancestors.
    pub fn add(&mut self, class: &str, ancestors: Vec<&str>) {
        self.known.push(class.to_string());
        self.parents.insert(
            class.to_string(),
            ancestors.into_iter().map(|s| s.to_string()).collect(),
        );
    }
}

impl ClassInfo for MapClassInfo {
    fn ancestors(&self, class: &str) -> Vec<String> {
        let mut out = vec![class.to_string()];
        if let Some(ps) = self.parents.get(class) {
            out.extend(ps.iter().cloned());
        }
        if class != "Object" {
            out.push("Object".to_string());
        }
        out
    }

    fn class_exists(&self, name: &str) -> bool {
        name == "Object" || self.known.iter().any(|k| k == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ancestors_and_descendants() {
        let info = MapClassInfo::with_core();
        assert_eq!(
            info.ancestors("Fixnum"),
            vec!["Fixnum", "Integer", "Numeric", "Object"]
        );
        assert!(info.is_descendant("Fixnum", "Numeric"));
        assert!(info.is_descendant("Fixnum", "Object"));
        assert!(!info.is_descendant("Integer", "Fixnum"));
        assert!(info.class_exists("Array"));
        assert!(!info.class_exists("Zork"));
    }
}
