//! The flow-sensitive static type checker over CFGs (paper Fig. 5,
//! extended with the implementation's richer types from §4).
//!
//! `check_sig` checks a method body against every arm of its (possibly
//! intersection) signature at call time — the static half of just-in-time
//! checking. The outcome carries the dependency set (the `(class, method)`
//! pairs used by rule (TApp)) which the engine's cache uses for
//! Definition 1 invalidation, and the set of cast sites encountered
//! (Table 1's "Casts" column).

use crate::info::{ClassInfo, InfoHierarchy};
use crate::table::TypeTable;
use hb_il::{BlockLit, CallArg, IlParamKind, InstrKind, MethodCfg, Operand, Rvalue, Terminator};
use hb_rdl::{CheckPolicy, MethodKey, Resolution, TableEntry};
use hb_syntax::{BlameTarget, DiagCode, DiagLabel, LabelRole, Span, TypeDiagnostic};
use hb_types::{MethodSig, MethodType, Type, TypeEnv};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// A static type error — the paper's `blame` at method entry — as a thin
/// wrapper over the structured [`TypeDiagnostic`] it carries. Every
/// constructor records a stable [`DiagCode`], the blamed annotation/cast
/// ([`BlameTarget`]) and labeled secondary spans; nothing is flattened to
/// a string until a consumer renders it.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckError {
    pub diagnostic: TypeDiagnostic,
}

impl CheckError {
    /// The stable diagnostic code.
    pub fn code(&self) -> DiagCode {
        self.diagnostic.code
    }

    /// The primary message (location-free; spans carry positions).
    pub fn message(&self) -> &str {
        &self.diagnostic.message
    }

    /// The primary span: where the offending code is.
    pub fn span(&self) -> Span {
        self.diagnostic.span
    }

    /// What the error blames.
    pub fn blame(&self) -> &BlameTarget {
        &self.diagnostic.blame
    }

    /// Unwraps into the diagnostic.
    pub fn into_diagnostic(self) -> TypeDiagnostic {
        self.diagnostic
    }
}

impl From<TypeDiagnostic> for CheckError {
    fn from(diagnostic: TypeDiagnostic) -> CheckError {
        CheckError { diagnostic }
    }
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.diagnostic.message)
    }
}

impl std::error::Error for CheckError {}

/// The result of a successful check.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// The body's computed return type (the last arm's, when intersected).
    pub ret: Type,
    /// Methods whose types this check consulted via (TApp): the cache
    /// dependency set of Definition 1(2).
    pub deps: BTreeSet<MethodKey>,
    /// The (TApp) resolution witnesses behind `deps`, including negative
    /// facts (lookups that found nothing and fell back). A foreign
    /// consumer replays these to decide whether the derivation is valid
    /// against *its* table and hierarchy.
    pub resolutions: BTreeSet<Resolution>,
    /// Distinct `rdl_cast` sites encountered (file, lo, hi).
    pub cast_sites: BTreeSet<(u32, u32, u32)>,
}

impl Default for CheckOutcome {
    fn default() -> CheckOutcome {
        CheckOutcome {
            ret: Type::Nil,
            deps: BTreeSet::new(),
            resolutions: BTreeSet::new(),
            cast_sites: BTreeSet::new(),
        }
    }
}

/// Tunables for the checker.
#[derive(Debug, Clone, Copy)]
pub struct CheckOptions {
    /// Generic nesting depth beyond which types widen to `%any` (keeps loop
    /// fixpoints finite).
    pub widen_depth: usize,
    /// Union width beyond which types widen to `%any`.
    pub widen_width: usize,
    /// Hard iteration bound for the fixpoint.
    pub max_iterations: usize,
}

impl Default for CheckOptions {
    fn default() -> CheckOptions {
        CheckOptions {
            widen_depth: 8,
            widen_width: 12,
            max_iterations: 20_000,
        }
    }
}

/// Everything one just-in-time check needs: the body, the receiver
/// context, the signature under check *and the identity/site of the
/// annotation providing it* (so failures can blame the annotation), plus
/// the type environment the check runs against.
pub struct CheckRequest<'a> {
    /// The lowered method body.
    pub cfg: &'a MethodCfg,
    /// The *receiver's* class — module methods are checked and cached per
    /// mix-in class (paper §4 "Modules").
    pub self_class: &'a str,
    /// Whether the method is class-level (singleton).
    pub class_level: bool,
    /// The (possibly intersection) signature being checked against.
    pub sig: &'a MethodSig,
    /// The annotation the signature came from (may sit on an ancestor or
    /// mixed-in module of `self_class`).
    pub ann_key: MethodKey,
    /// Where that annotation was registered (dummy when unknown).
    pub ann_span: Span,
    /// The class hierarchy view.
    pub info: &'a dyn ClassInfo,
    /// The type table — the live [`hb_rdl::RdlState`] on the interpreter
    /// thread, or an owned snapshot when checking on a scheduler worker.
    pub rdl: &'a dyn TypeTable,
    /// Types of captured locals when checking `define_method` procs
    /// (Fig. 2).
    pub captured: Option<&'a TypeEnv>,
    /// Checker tunables.
    pub opts: &'a CheckOptions,
    /// The enforcement policy this check runs under. The checker's
    /// judgement is policy-independent; under [`CheckPolicy::Shadow`] a
    /// failure's diagnostic additionally carries a note label marking
    /// that execution continued past it (so a shadow blame fished out of
    /// a diagnostics stream is self-describing).
    pub policy: CheckPolicy,
}

/// Checks the request's body against every arm of its signature
/// (intersection semantics: the body must satisfy each arm).
///
/// # Errors
///
/// The first static type error found, positioned at the offending
/// instruction, carrying a structured [`TypeDiagnostic`] that blames the
/// responsible annotation or cast. Under [`CheckPolicy::Shadow`] the
/// diagnostic gains a note label recording that the blame was shadowed.
pub fn check_sig(req: &CheckRequest) -> Result<CheckOutcome, CheckError> {
    match check_sig_arms(req) {
        Err(mut e) if req.policy == CheckPolicy::Shadow => {
            e.diagnostic.labels.push(CheckPolicy::shadow_note());
            Err(e)
        }
        other => other,
    }
}

/// The candidate-verification entry point for whole-program inference:
/// checks a *candidate* (inferred, not yet registered) signature against
/// the body exactly as [`check_sig`] would — same judgement, same
/// dependency/resolution harvest — so an inferred annotation is adopted
/// only on a proof the engine itself would accept. Soundness is inherited
/// from the checker, never asserted by the inference heuristics.
///
/// Identical to [`check_sig`] today (the request already carries the
/// candidate in `req.sig` and the hypothesis world in `req.rdl`); it
/// exists as a named seam so verification-specific policy (e.g. widening
/// caps for speculative candidates) can diverge without touching the
/// just-in-time path.
///
/// # Errors
///
/// The refutation: the first static type error found checking the body
/// against the candidate.
pub fn verify_candidate(req: &CheckRequest) -> Result<CheckOutcome, CheckError> {
    check_sig(req)
}

fn check_sig_arms(req: &CheckRequest) -> Result<CheckOutcome, CheckError> {
    let CheckRequest {
        cfg,
        self_class,
        class_level,
        sig,
        info,
        rdl,
        captured,
        opts,
        ..
    } = *req;
    let mut out = CheckOutcome::default();
    for arm in &sig.arms {
        let arm = arm.erase_vars();
        let mut ck = Checker {
            info,
            rdl,
            opts,
            self_class: self_class.to_string(),
            self_type: if class_level {
                Type::ClassObj(self_class.to_string())
            } else {
                Type::Nominal(self_class.to_string())
            },
            method_name: cfg.name.clone(),
            method_ret: arm.ret.clone(),
            yield_block_type: arm.block.as_deref().cloned(),
            ann_key: req.ann_key,
            ann_span: req.ann_span,
            deps: BTreeSet::new(),
            resolutions: BTreeSet::new(),
            casts: BTreeSet::new(),
        };
        let env = ck.entry_env(cfg, &arm, captured)?;
        let (ret, _exit) = ck.check_cfg(cfg, env)?;
        let hier = InfoHierarchy(info);
        if !ret.is_subtype(&arm.ret, &hier) {
            return Err(ck.err_own(
                DiagCode::ReturnType,
                format!(
                    "method {} body has type {} but is declared to return {}",
                    cfg.name, ret, arm.ret
                ),
                cfg.span,
                format!("return type {} declared here", arm.ret),
            ));
        }
        out.ret = ret;
        out.deps.append(&mut ck.deps);
        out.resolutions.append(&mut ck.resolutions);
        out.cast_sites.append(&mut ck.casts);
    }
    Ok(out)
}

/// The generic type parameters of the built-in generic classes (used to
/// instantiate method types like `Array#[] : (Fixnum) -> t`).
pub fn generic_params(class: &str) -> &'static [&'static str] {
    match class {
        "Array" => &["t"],
        "Hash" => &["k", "v"],
        "Range" => &["t"],
        _ => &[],
    }
}

struct Checker<'a> {
    info: &'a dyn ClassInfo,
    rdl: &'a dyn TypeTable,
    opts: &'a CheckOptions,
    self_class: String,
    self_type: Type,
    method_name: String,
    /// Declared return type of the arm being checked (`return` inside
    /// blocks checks against this).
    method_ret: Type,
    /// The arm's declared block type, for `yield`.
    yield_block_type: Option<MethodType>,
    /// The annotation being checked and its registration site — what
    /// own-signature failures blame, and the "while checking …" label on
    /// every other failure.
    ann_key: MethodKey,
    ann_span: Span,
    deps: BTreeSet<MethodKey>,
    resolutions: BTreeSet<Resolution>,
    casts: BTreeSet<(u32, u32, u32)>,
}

impl<'a> Checker<'a> {
    fn hier(&self) -> InfoHierarchy<'a> {
        InfoHierarchy(self.info)
    }

    // ----- typed error constructors -------------------------------------
    //
    // Every static failure goes through one of these: each records the
    // stable code, the blamed target, and labeled secondary spans. The
    // message strings stay byte-identical to the historical flattened
    // surface so downstream fragment matching keeps working.

    /// The standard "while checking …" label pointing at the checked
    /// method's own annotation.
    fn checked_label(&self) -> DiagLabel {
        DiagLabel::new(
            LabelRole::CheckedMethod,
            format!("while checking {} against its annotation", self.ann_key),
            self.ann_span,
        )
        .with_method(self.ann_key)
    }

    /// A failure blamed on the checked method's *own* annotation (return
    /// type, yield/block declaration, non-convergence).
    fn err_own(&self, code: DiagCode, message: String, span: Span, ann_note: String) -> CheckError {
        TypeDiagnostic::error(code, message, span, BlameTarget::Annotation(self.ann_key))
            .with_method(self.ann_key)
            .with_label(
                DiagLabel::new(LabelRole::BlamedAnnotation, ann_note, self.ann_span)
                    .with_method(self.ann_key),
            )
            .into()
    }

    /// A failure blamed on a *callee's* annotation (arity, argument type,
    /// block compatibility): the call disagrees with the signature
    /// registered at `callee_span`.
    fn err_callee(
        &self,
        code: DiagCode,
        message: String,
        span: Span,
        callee: MethodKey,
        callee_span: Span,
        sig: &str,
    ) -> CheckError {
        TypeDiagnostic::error(code, message, span, BlameTarget::Annotation(callee))
            .with_method(self.ann_key)
            .with_label(
                DiagLabel::new(
                    LabelRole::BlamedAnnotation,
                    format!("annotation `{sig}` on {callee} declared here"),
                    callee_span,
                )
                .with_method(callee),
            )
            .with_label(self.checked_label())
            .into()
    }

    /// A failure because *no* annotation exists for the method at all.
    fn err_missing(&self, message: String, span: Span, missing: MethodKey) -> CheckError {
        TypeDiagnostic::error(
            DiagCode::NoMethodType,
            message,
            span,
            BlameTarget::MissingType(missing),
        )
        .with_method(self.ann_key)
        .with_label(self.checked_label())
        .into()
    }

    /// A failure blamed on an ivar/cvar/gvar type declaration.
    fn err_var(&self, message: String, span: Span, name: String, decl_span: Span) -> CheckError {
        let note = format!("type of {name} declared here");
        TypeDiagnostic::error(
            DiagCode::VarAssign,
            message,
            span,
            BlameTarget::VarDecl { name },
        )
        .with_method(self.ann_key)
        .with_label(DiagLabel::new(LabelRole::BlamedAnnotation, note, decl_span))
        .with_label(self.checked_label())
        .into()
    }

    /// A failure blamed on an `rdl_cast` (here: the cast's type string is
    /// invalid — runtime conformance failures blame from the builtin).
    fn err_cast(&self, message: String, span: Span) -> CheckError {
        TypeDiagnostic::error(DiagCode::CastFailure, message, span, BlameTarget::Cast)
            .with_method(self.ann_key)
            .with_label(DiagLabel::new(
                LabelRole::CastSite,
                "cast asserted here",
                span,
            ))
            .with_label(self.checked_label())
            .into()
    }

    /// Builds the entry environment: parameters bound at the arm's declared
    /// types, plus captured locals for proc-defined methods.
    fn entry_env(
        &self,
        cfg: &MethodCfg,
        arm: &MethodType,
        captured: Option<&TypeEnv>,
    ) -> Result<TypeEnv, CheckError> {
        let mut env = TypeEnv::new();
        if let Some(c) = captured {
            for (k, v) in c.iter() {
                env.assign(k.clone(), v.clone());
            }
        }
        let mut pos = 0usize;
        for p in &cfg.params {
            match p.kind {
                IlParamKind::Required | IlParamKind::Optional => {
                    let ty = arm.param_at(pos).cloned().unwrap_or({
                        // More parameters than the signature declares:
                        // treat extras as %any (blocks are lenient).
                        Type::Any
                    });
                    env.assign(p.name.clone(), ty);
                    pos += 1;
                }
                IlParamKind::Rest => {
                    let elem = arm.param_at(pos).cloned().unwrap_or(Type::Any);
                    env.assign(
                        p.name.clone(),
                        Type::Generic("Array".to_string(), vec![elem]),
                    );
                    pos += 1;
                }
                IlParamKind::Block => {
                    env.assign(p.name.clone(), Type::nominal("Proc"));
                }
            }
        }
        Ok(env)
    }

    fn widen(&self, ty: &Type, depth: usize) -> Type {
        match ty {
            Type::Generic(n, args) => {
                if depth == 0 {
                    Type::nominal(n.clone())
                } else {
                    Type::Generic(
                        n.clone(),
                        args.iter().map(|a| self.widen(a, depth - 1)).collect(),
                    )
                }
            }
            Type::Union(arms) => {
                if arms.len() > self.opts.widen_width {
                    Type::Any
                } else {
                    Type::union_of(arms.iter().map(|a| self.widen(a, depth)).collect())
                }
            }
            t => t.clone(),
        }
    }

    fn widen_env(&self, env: &TypeEnv) -> TypeEnv {
        env.iter()
            .map(|(k, v)| (k.clone(), self.widen(v, self.opts.widen_depth)))
            .collect()
    }

    /// Joins environments at control-flow merges. Variables bound on one
    /// side only join with `nil` (Ruby's unset-local default) — a sound
    /// refinement of the paper's domain-intersection join.
    fn join_envs(&self, a: &TypeEnv, b: &TypeEnv) -> TypeEnv {
        let hier = self.hier();
        let mut out = TypeEnv::new();
        for (k, v) in a.iter() {
            let w = b.get(k).cloned().unwrap_or(Type::Nil);
            out.assign(k.clone(), v.lub(&w, &hier));
        }
        for (k, w) in b.iter() {
            if !a.contains(k) {
                out.assign(k.clone(), w.lub(&Type::Nil, &hier));
            }
        }
        out
    }

    /// The dataflow fixpoint over a CFG. Returns the joined type of all
    /// `Return` terminators and the joined exit environment.
    fn check_cfg(&mut self, cfg: &MethodCfg, init: TypeEnv) -> Result<(Type, TypeEnv), CheckError> {
        let mut in_envs: HashMap<u32, TypeEnv> = HashMap::new();
        in_envs.insert(cfg.entry.0, init);
        let mut work: VecDeque<u32> = VecDeque::new();
        work.push_back(cfg.entry.0);
        let mut returns: Vec<Type> = Vec::new();
        let mut exit_env: Option<TypeEnv> = None;
        let mut iterations = 0usize;
        while let Some(bb) = work.pop_front() {
            iterations += 1;
            if iterations > self.opts.max_iterations {
                return Err(self.err_own(
                    DiagCode::NonConvergence,
                    format!("type checking of {} did not converge", self.method_name),
                    cfg.span,
                    "while checking against the annotation declared here".to_string(),
                ));
            }
            let mut env = in_envs[&bb].clone();
            let block = cfg.block(hb_il::BlockId(bb));
            for instr in &block.instrs {
                self.transfer(cfg, &mut env, &instr.kind, instr.span)?;
            }
            let propagate = |this: &Self,
                             target: u32,
                             new_env: TypeEnv,
                             in_envs: &mut HashMap<u32, TypeEnv>,
                             work: &mut VecDeque<u32>| {
                let new_env = this.widen_env(&new_env);
                match in_envs.get(&target) {
                    None => {
                        in_envs.insert(target, new_env);
                        work.push_back(target);
                    }
                    Some(old) => {
                        let joined = this.join_envs(old, &new_env);
                        if &joined != old {
                            in_envs.insert(target, joined);
                            work.push_back(target);
                        }
                    }
                }
            };
            match &block.term {
                Terminator::Goto(t) => {
                    propagate(self, t.0, env, &mut in_envs, &mut work);
                }
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    // Truthiness refinement: `if x` prunes nil in the then
                    // branch and pins it in the else branch (when the type
                    // cannot be `false`).
                    let (env_t, env_f) = self.refine(&env, cond);
                    propagate(self, then_bb.0, env_t, &mut in_envs, &mut work);
                    propagate(self, else_bb.0, env_f, &mut in_envs, &mut work);
                }
                Terminator::Return(op) => {
                    let t = self.type_operand(&env, op);
                    returns.push(t);
                    exit_env = Some(match exit_env.take() {
                        None => env,
                        Some(e) => self.join_envs(&e, &env),
                    });
                }
                Terminator::MethodReturn(op) => {
                    let t = self.type_operand(&env, op);
                    if !t.is_subtype(&self.method_ret, &self.hier()) {
                        return Err(self.err_own(
                            DiagCode::ReturnType,
                            format!(
                                "return of {} does not match declared return type {} of {}",
                                t, self.method_ret, self.method_name
                            ),
                            cfg.span,
                            format!("return type {} declared here", self.method_ret),
                        ));
                    }
                }
            }
        }
        let hier = self.hier();
        let mut ret = Type::Nil;
        let mut first = true;
        for t in returns {
            if first {
                ret = t;
                first = false;
            } else {
                ret = ret.lub(&t, &hier);
            }
        }
        Ok((ret, exit_env.unwrap_or_default()))
    }

    fn refine(&self, env: &TypeEnv, cond: &Operand) -> (TypeEnv, TypeEnv) {
        if let Operand::Local(x) = cond {
            if let Some(t) = env.get(x) {
                if t.admits_nil() && !matches!(t, Type::Any) {
                    let mut env_t = env.clone();
                    env_t.assign(x.clone(), t.without_nil());
                    let can_be_false = match t {
                        Type::Union(arms) => arms.iter().any(|a| matches!(a, Type::Bool)),
                        Type::Bool => true,
                        _ => false,
                    };
                    let mut env_f = env.clone();
                    if !can_be_false {
                        env_f.assign(x.clone(), Type::Nil);
                    }
                    return (env_t, env_f);
                }
            }
        }
        (env.clone(), env.clone())
    }

    fn type_operand(&self, env: &TypeEnv, op: &Operand) -> Type {
        match op {
            Operand::NilConst => Type::Nil,
            Operand::TrueConst | Operand::FalseConst | Operand::Nondet => Type::Bool,
            Operand::IntConst(_) => Type::nominal("Fixnum"),
            Operand::FloatConst(_) => Type::nominal("Float"),
            Operand::StrConst(_) => Type::nominal("String"),
            Operand::SymConst(_) => Type::nominal("Symbol"),
            Operand::SelfRef => self.self_type.clone(),
            Operand::Local(n) => env.get(n).cloned().unwrap_or(Type::Nil),
        }
    }

    fn transfer(
        &mut self,
        cfg: &MethodCfg,
        env: &mut TypeEnv,
        instr: &InstrKind,
        span: Span,
    ) -> Result<(), CheckError> {
        match instr {
            InstrKind::Assign { local, rv } => {
                let t = self.type_rvalue(cfg, env, rv, span)?;
                env.assign(local.clone(), t);
            }
            InstrKind::SetIVar { name, value } => {
                let vt = self.type_operand(env, value);
                let chain = self.info.ancestors(&self.self_class);
                if let Some((declared, decl_span)) = self.rdl.ivar_decl(&chain, name) {
                    if !vt.is_subtype(&declared, &self.hier()) {
                        return Err(self.err_var(
                            format!("cannot assign {} to @{} (declared {})", vt, name, declared),
                            span,
                            format!("@{name}"),
                            decl_span,
                        ));
                    }
                }
            }
            InstrKind::SetCVar { name, value } => {
                let vt = self.type_operand(env, value);
                let chain = self.info.ancestors(&self.self_class);
                if let Some((declared, decl_span)) = self.rdl.cvar_decl(&chain, name) {
                    if !vt.is_subtype(&declared, &self.hier()) {
                        return Err(self.err_var(
                            format!("cannot assign {} to @@{} (declared {})", vt, name, declared),
                            span,
                            format!("@@{name}"),
                            decl_span,
                        ));
                    }
                }
            }
            InstrKind::SetGVar { name, value } => {
                let vt = self.type_operand(env, value);
                if let Some((declared, decl_span)) = self.rdl.gvar_decl(name) {
                    if !vt.is_subtype(&declared, &self.hier()) {
                        return Err(self.err_var(
                            format!("cannot assign {} to ${} (declared {})", vt, name, declared),
                            span,
                            format!("${name}"),
                            decl_span,
                        ));
                    }
                }
            }
            InstrKind::SetConst { .. } => {}
        }
        Ok(())
    }

    fn type_rvalue(
        &mut self,
        cfg: &MethodCfg,
        env: &mut TypeEnv,
        rv: &Rvalue,
        span: Span,
    ) -> Result<Type, CheckError> {
        let hier = self.hier();
        match rv {
            Rvalue::Use(op) => Ok(self.type_operand(env, op)),
            Rvalue::IVar(name) => {
                let chain = self.info.ancestors(&self.self_class);
                Ok(self.rdl.ivar_type(&chain, name).unwrap_or(Type::Any))
            }
            Rvalue::CVar(name) => {
                let chain = self.info.ancestors(&self.self_class);
                Ok(self.rdl.cvar_type(&chain, name).unwrap_or(Type::Any))
            }
            Rvalue::GVar(name) => Ok(self.rdl.gvar_type(name).unwrap_or(Type::Any)),
            Rvalue::ConstRef(path) => {
                let joined = path.join("::");
                if self.info.class_exists(&joined) {
                    return Ok(Type::ClassObj(joined));
                }
                // Try resolving relative to the receiver class's namespace.
                let prefixed = format!("{}::{}", self.self_class, joined);
                if self.info.class_exists(&prefixed) {
                    return Ok(Type::ClassObj(prefixed));
                }
                Ok(Type::Any)
            }
            Rvalue::StrInterp(_) => Ok(Type::nominal("String")),
            Rvalue::ArrayLit(elems) => {
                if elems.is_empty() {
                    return Ok(Type::nominal("Array"));
                }
                let mut t = self.type_operand(env, &elems[0]);
                for e in &elems[1..] {
                    t = t.lub(&self.type_operand(env, e), &hier);
                }
                Ok(Type::Generic("Array".to_string(), vec![t]))
            }
            Rvalue::HashLit(pairs) => {
                if pairs.is_empty() {
                    return Ok(Type::nominal("Hash"));
                }
                let mut kt = self.type_operand(env, &pairs[0].0);
                let mut vt = self.type_operand(env, &pairs[0].1);
                for (k, v) in &pairs[1..] {
                    kt = kt.lub(&self.type_operand(env, k), &hier);
                    vt = vt.lub(&self.type_operand(env, v), &hier);
                }
                Ok(Type::Generic("Hash".to_string(), vec![kt, vt]))
            }
            Rvalue::RangeLit { lo, hi, .. } => {
                let lt = self.type_operand(env, lo);
                let ht = self.type_operand(env, hi);
                Ok(Type::Generic("Range".to_string(), vec![lt.lub(&ht, &hier)]))
            }
            Rvalue::Not(_) => Ok(Type::Bool),
            Rvalue::RescueBind(classes) => {
                if classes.is_empty() {
                    Ok(Type::nominal("StandardError"))
                } else {
                    Ok(Type::union_of(
                        classes.iter().map(|c| Type::nominal(c.clone())).collect(),
                    ))
                }
            }
            Rvalue::Cast { value, ty } => {
                let _ = self.type_operand(env, value);
                let parsed = hb_types::parse_type(ty)
                    .map_err(|e| self.err_cast(format!("invalid cast type: {e}"), span))?;
                self.casts.insert((span.file.0, span.lo, span.hi));
                Ok(parsed)
            }
            Rvalue::Yield(args) => {
                let bt = match &self.yield_block_type {
                    Some(b) => b.clone(),
                    None => {
                        return Err(self.err_own(
                            DiagCode::BlockIncompatible,
                            format!(
                                "method {} yields but its type declares no block",
                                self.method_name
                            ),
                            span,
                            "annotation declares no block type".to_string(),
                        ))
                    }
                };
                for (i, a) in args.iter().enumerate() {
                    let at = self.type_operand(env, a);
                    if let Some(pt) = bt.param_at(i) {
                        if !at.is_subtype(pt, &self.hier()) {
                            return Err(self.err_own(
                                DiagCode::ArgumentType,
                                format!("yield argument {i} has type {at}, block expects {pt}"),
                                span,
                                format!("block parameter type {pt} declared here"),
                            ));
                        }
                    }
                }
                Ok(bt.ret.clone())
            }
            Rvalue::Super { args } => {
                let chain = self.info.ancestors(&self.self_class);
                let above: Vec<String> = chain.iter().skip(1).cloned().collect();
                let super_level = matches!(self.self_type, Type::ClassObj(_));
                let found = self
                    .rdl
                    .lookup_along_names(&above, super_level, &self.method_name);
                match found {
                    Some((key, entry)) => {
                        self.rdl.mark_used(&key);
                        self.deps.insert(key);
                        self.resolutions.insert(Resolution {
                            start: hb_intern::Sym::intern(&self.self_class),
                            skip_receiver: true,
                            class_level: super_level,
                            method: hb_intern::Sym::intern(&self.method_name),
                            target: Some(key),
                        });
                        let mut ret: Option<Type> = None;
                        for arm in &entry.sig.arms {
                            let arm = arm.erase_vars();
                            if let Some(args) = args {
                                if !arm.accepts_arity(args.len()) {
                                    continue;
                                }
                            }
                            ret = Some(match ret {
                                None => arm.ret.clone(),
                                Some(r) => r.lub(&arm.ret, &self.hier()),
                            });
                        }
                        ret.ok_or_else(|| {
                            self.err_callee(
                                DiagCode::ArityMismatch,
                                format!(
                                    "no arm of super {} accepts these arguments",
                                    self.method_name
                                ),
                                span,
                                key,
                                entry.span,
                                &entry.sig.to_string(),
                            )
                        })
                    }
                    None => {
                        // The lookup that failed: `method_name` above
                        // `self_class` (keyed on the receiver for want of
                        // a resolved owner).
                        let missing = MethodKey {
                            class: hb_intern::Sym::intern(&self.self_class),
                            class_level: super_level,
                            method: hb_intern::Sym::intern(&self.method_name),
                        };
                        Err(self.err_missing(
                            format!(
                                "Hummingbird: no type for super method {} above {}",
                                self.method_name, self.self_class
                            ),
                            span,
                            missing,
                        ))
                    }
                }
            }
            Rvalue::Call {
                recv,
                name,
                args,
                block,
            } => {
                let recv_ty = match recv {
                    Some(op) => self.type_operand(env, op),
                    None => self.self_type.clone(),
                };
                self.type_call(cfg, env, &recv_ty, name, args, *block, span)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn type_call(
        &mut self,
        cfg: &MethodCfg,
        env: &mut TypeEnv,
        recv_ty: &Type,
        name: &str,
        args: &[CallArg],
        block: Option<hb_il::BlockLitId>,
        span: Span,
    ) -> Result<Type, CheckError> {
        match recv_ty {
            Type::Any | Type::Var(_) => {
                // Dynamic receiver: nothing to check statically; still walk
                // any block literal with %any parameters so errors inside
                // the block are found.
                if let Some(bid) = block {
                    let lit = &cfg.block_lits[bid.0 as usize];
                    let bt = MethodType {
                        params: lit
                            .params
                            .iter()
                            .map(|_| hb_types::ParamType::required(Type::Any))
                            .collect(),
                        block: None,
                        ret: Type::Any,
                    };
                    self.check_block_lit(cfg, lit, &bt, env, None)?;
                }
                Ok(Type::Any)
            }
            Type::Union(arms) => {
                // Paper §4: check once per arm, union the return types.
                let arms = arms.clone();
                let hier = self.hier();
                let mut ret: Option<Type> = None;
                for arm in &arms {
                    let t = self.type_call(cfg, env, arm, name, args, block, span)?;
                    ret = Some(match ret {
                        None => t,
                        Some(r) => r.lub(&t, &hier),
                    });
                }
                Ok(ret.unwrap_or(Type::Nil))
            }
            Type::Nil => {
                self.type_nominal_call(cfg, env, "NilClass", None, false, name, args, block, span)
            }
            Type::Bool => {
                self.type_nominal_call(cfg, env, "Boolean", None, false, name, args, block, span)
            }
            Type::Nominal(c) => {
                self.type_nominal_call(cfg, env, c, None, false, name, args, block, span)
            }
            Type::Generic(c, targs) => {
                let targs = targs.clone();
                self.type_nominal_call(cfg, env, c, Some(&targs), false, name, args, block, span)
            }
            Type::ClassObj(c) => {
                self.type_nominal_call(cfg, env, c, None, true, name, args, block, span)
            }
        }
    }

    /// Resolves a method type for class `c` (instance or class level),
    /// selects matching intersection arms, checks argument and block
    /// compatibility, and returns the (union of) result type(s).
    #[allow(clippy::too_many_arguments)]
    fn type_nominal_call(
        &mut self,
        cfg: &MethodCfg,
        env: &mut TypeEnv,
        c: &str,
        targs: Option<&[Type]>,
        class_level: bool,
        name: &str,
        args: &[CallArg],
        block: Option<hb_il::BlockLitId>,
        span: Span,
    ) -> Result<Type, CheckError> {
        let chain = self.info.ancestors(c);
        let found = if class_level {
            match self.rdl.lookup_along_names(&chain, true, name) {
                Some(hit) => {
                    self.resolutions
                        .insert(Resolution::of(c, true, name, Some(hit.0)));
                    Some(hit)
                }
                None => {
                    // Class objects also answer instance methods of Class.
                    // The miss above is part of the derivation: record the
                    // negative witness so a consumer with a class-level
                    // annotation on `c`'s chain rejects it.
                    self.resolutions.insert(Resolution::of(c, true, name, None));
                    let class_chain = self.info.ancestors("Class");
                    let fb = self.rdl.lookup_along_names(&class_chain, false, name);
                    self.resolutions.insert(Resolution::of(
                        "Class",
                        false,
                        name,
                        fb.as_ref().map(|(k, _)| *k),
                    ));
                    fb
                }
            }
        } else {
            let found = self.rdl.lookup_along_names(&chain, false, name);
            self.resolutions.insert(Resolution::of(
                c,
                false,
                name,
                found.as_ref().map(|(k, _)| *k),
            ));
            found
        };

        // `C.new` falls back to C#initialize (returning an instance of C).
        if found.is_none() && class_level && name == "new" {
            return self.type_new_call(cfg, env, c, &chain, args, block, span);
        }

        let (key, entry) = match found {
            Some(x) => x,
            None => {
                let kind = if class_level { "." } else { "#" };
                let missing = MethodKey {
                    class: hb_intern::Sym::intern(c),
                    class_level,
                    method: hb_intern::Sym::intern(name),
                };
                return Err(self.err_missing(
                    format!("Hummingbird: no type for {c}{kind}{name}"),
                    span,
                    missing,
                ));
            }
        };
        self.rdl.mark_used(&key);
        self.deps.insert(key);
        let sig = self.instantiate(&entry, c, targs);
        self.apply_sig(
            cfg,
            env,
            c,
            name,
            &sig,
            args,
            block,
            span,
            (key, entry.span),
        )
    }

    /// Instantiates a signature's generic variables against the receiver's
    /// type arguments; raw receivers erase variables to `%any` (§4).
    fn instantiate(&self, entry: &TableEntry, c: &str, targs: Option<&[Type]>) -> MethodSig {
        let params = generic_params(c);
        match targs {
            Some(targs) if !params.is_empty() => {
                let map: HashMap<String, Type> = params
                    .iter()
                    .zip(targs.iter())
                    .map(|(p, t)| (p.to_string(), t.clone()))
                    .collect();
                MethodSig {
                    arms: entry
                        .sig
                        .arms
                        .iter()
                        .map(|a| a.subst(&map).erase_vars())
                        .collect(),
                }
            }
            _ => MethodSig {
                arms: entry.sig.arms.iter().map(|a| a.erase_vars()).collect(),
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn type_new_call(
        &mut self,
        cfg: &MethodCfg,
        env: &mut TypeEnv,
        c: &str,
        chain: &[String],
        args: &[CallArg],
        block: Option<hb_il::BlockLitId>,
        span: Span,
    ) -> Result<Type, CheckError> {
        let instance = Type::nominal(c);
        let found_init = self.rdl.lookup_along_names(chain, false, "initialize");
        self.resolutions.insert(Resolution::of(
            c,
            false,
            "initialize",
            found_init.as_ref().map(|(k, _)| *k),
        ));
        match found_init {
            Some((key, entry)) => {
                self.rdl.mark_used(&key);
                self.deps.insert(key);
                let sig = MethodSig {
                    arms: entry
                        .sig
                        .arms
                        .iter()
                        .map(|a| {
                            let mut a = a.erase_vars();
                            a.ret = instance.clone();
                            a
                        })
                        .collect(),
                };
                self.apply_sig(
                    cfg,
                    env,
                    c,
                    "new",
                    &sig,
                    args,
                    block,
                    span,
                    (key, entry.span),
                )
            }
            None => {
                // Unannotated constructor: accept anything (the dynamic
                // check still guards at run time).
                let _ = block;
                Ok(instance)
            }
        }
    }

    /// Checks a call against a resolved signature: arity, argument
    /// subtyping, and block compatibility per matching arm. `callee` is
    /// the annotation the signature came from and its registration site —
    /// the blame target for every failure here.
    #[allow(clippy::too_many_arguments)]
    fn apply_sig(
        &mut self,
        cfg: &MethodCfg,
        env: &mut TypeEnv,
        c: &str,
        name: &str,
        sig: &MethodSig,
        args: &[CallArg],
        block: Option<hb_il::BlockLitId>,
        span: Span,
        callee: (MethodKey, Span),
    ) -> Result<Type, CheckError> {
        let hier = self.hier();
        let has_splat = args.iter().any(|a| matches!(a, CallArg::Splat(_)));
        let has_block_pass = args.iter().any(|a| matches!(a, CallArg::BlockPass(_)));
        let pos_args: Vec<Type> = args
            .iter()
            .filter_map(|a| match a {
                CallArg::Pos(op) => Some(self.type_operand(env, op)),
                _ => None,
            })
            .collect();

        let mut matching: Vec<&MethodType> = Vec::new();
        let mut arity_ok: Vec<&MethodType> = Vec::new();
        for arm in &sig.arms {
            if has_splat {
                matching.push(arm);
                continue;
            }
            if !arm.accepts_arity(pos_args.len()) {
                continue;
            }
            arity_ok.push(arm);
            let all_fit = pos_args
                .iter()
                .enumerate()
                .all(|(i, at)| match arm.param_at(i) {
                    Some(pt) => at.is_subtype(pt, &hier),
                    None => false,
                });
            if all_fit {
                matching.push(arm);
            }
        }
        if matching.is_empty() {
            let sig_str = sig.to_string();
            if arity_ok.is_empty() {
                return Err(self.err_callee(
                    DiagCode::ArityMismatch,
                    format!(
                        "wrong number of arguments in call to {c}#{name} (given {}, type is {})",
                        pos_args.len(),
                        sig
                    ),
                    span,
                    callee.0,
                    callee.1,
                    &sig_str,
                ));
            }
            let got: Vec<String> = pos_args.iter().map(|t| t.to_string()).collect();
            return Err(self.err_callee(
                DiagCode::ArgumentType,
                format!(
                    "argument type mismatch calling {c}#{name}: got ({}), type is {}",
                    got.join(", "),
                    sig
                ),
                span,
                callee.0,
                callee.1,
                &sig_str,
            ));
        }

        // Block compatibility.
        if let Some(bid) = block {
            let lit = &cfg.block_lits[bid.0 as usize];
            let with_block: Vec<&&MethodType> =
                matching.iter().filter(|a| a.block.is_some()).collect();
            if with_block.is_empty() {
                // The 1/7/12-5 Talks error: passing a block to a method
                // whose type takes none.
                return Err(self.err_callee(
                    DiagCode::BlockIncompatible,
                    format!("{c}#{name} is called with a block but its type does not take one"),
                    span,
                    callee.0,
                    callee.1,
                    &sig.to_string(),
                ));
            }
            let bt = with_block[0].block.as_deref().cloned().unwrap();
            let merged = self.check_block_lit(cfg, lit, &bt, env, Some(callee))?;
            *env = merged;
        } else if has_block_pass {
            // A passed proc is assumed type-safe (higher-order contracts
            // are future work, paper §4 "Code Blocks").
        }

        let mut ret: Option<Type> = None;
        for arm in &matching {
            ret = Some(match ret {
                None => arm.ret.clone(),
                Some(r) => r.lub(&arm.ret, &hier),
            });
        }
        Ok(ret.unwrap_or(Type::Nil))
    }

    /// Checks a block literal against the callee's declared block type and
    /// returns the environment after the call (captured variables joined
    /// with their post-block types). `callee` (when known) is the
    /// annotation whose block type the literal is checked against.
    fn check_block_lit(
        &mut self,
        _cfg: &MethodCfg,
        lit: &BlockLit,
        bt: &MethodType,
        env: &TypeEnv,
        callee: Option<(MethodKey, Span)>,
    ) -> Result<TypeEnv, CheckError> {
        let mut block_env = env.clone();
        let mut pos = 0usize;
        for p in &lit.params {
            match p.kind {
                IlParamKind::Required | IlParamKind::Optional => {
                    let ty = bt.param_at(pos).cloned().unwrap_or(Type::Any);
                    block_env.assign(p.name.clone(), ty);
                    pos += 1;
                }
                IlParamKind::Rest => {
                    let elem = bt.param_at(pos).cloned().unwrap_or(Type::Any);
                    block_env.assign(
                        p.name.clone(),
                        Type::Generic("Array".to_string(), vec![elem]),
                    );
                    pos += 1;
                }
                IlParamKind::Block => {
                    block_env.assign(p.name.clone(), Type::nominal("Proc"));
                }
            }
        }
        let (result, exit) = self.check_cfg(&lit.cfg, block_env)?;
        if !result.is_subtype(&bt.ret, &self.hier()) {
            let message = format!(
                "block has type {} but {} expects a block returning {}",
                result, self.method_name, bt.ret
            );
            return Err(match callee {
                Some((key, ann_span)) => self.err_callee(
                    DiagCode::BlockIncompatible,
                    message,
                    lit.cfg.span,
                    key,
                    ann_span,
                    &bt.to_string(),
                ),
                None => self.err_own(
                    DiagCode::BlockIncompatible,
                    message,
                    lit.cfg.span,
                    format!("block type {bt} expected here"),
                ),
            });
        }
        // The block may run zero or more times: captured variables join
        // their pre- and post-block types.
        Ok(env.join_keep_left(&exit, &self.hier()))
    }
}
