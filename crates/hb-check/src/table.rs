//! The checker's view of the runtime type table, abstracted from
//! [`RdlState`] so a check can run against an owned snapshot on a worker
//! thread (the concurrent scheduler's `CheckTask` capture) exactly as it
//! runs against the live table on the interpreter thread.
//!
//! The trait is deliberately the *read* surface `check_sig` consumes —
//! resolution along ancestor chains plus variable-type declarations —
//! together with [`TypeTable::mark_used`], the one write the checker
//! performs (usage statistics). Snapshots may implement `mark_used` as a
//! no-op: when a worker's derivation is adopted by the owning tenant, the
//! engine re-marks every dependency against the live table, so the Used
//! statistics do not diverge between synchronous and scheduled checks.

use hb_rdl::{MethodKey, RdlState, TableEntry};
use hb_syntax::Span;
use hb_types::Type;

/// Nominal type-table queries used during checking (rule (TApp) resolution
/// and ivar/cvar/gvar declarations). Implemented by the live [`RdlState`]
/// and by the scheduler's owned world snapshot.
pub trait TypeTable {
    /// Resolves a method annotation along an ancestor chain of class
    /// names, returning the annotation's own key and an owned copy of the
    /// entry.
    fn lookup_along_names(
        &self,
        classes: &[String],
        class_level: bool,
        method: &str,
    ) -> Option<(MethodKey, TableEntry)>;

    /// Instance-variable type and declaration site along a chain.
    fn ivar_decl(&self, classes: &[String], ivar: &str) -> Option<(Type, Span)>;

    /// Class-variable type and declaration site along a chain.
    fn cvar_decl(&self, classes: &[String], cvar: &str) -> Option<(Type, Span)>;

    /// Global-variable type and declaration site.
    fn gvar_decl(&self, gvar: &str) -> Option<(Type, Span)>;

    /// Instance-variable type along a chain.
    fn ivar_type(&self, classes: &[String], ivar: &str) -> Option<Type> {
        self.ivar_decl(classes, ivar).map(|(t, _)| t)
    }

    /// Class-variable type along a chain.
    fn cvar_type(&self, classes: &[String], cvar: &str) -> Option<Type> {
        self.cvar_decl(classes, cvar).map(|(t, _)| t)
    }

    /// Global-variable type.
    fn gvar_type(&self, gvar: &str) -> Option<Type> {
        self.gvar_decl(gvar).map(|(t, _)| t)
    }

    /// Records that the checker consulted `key` (Table 1 "Used"
    /// statistics). Snapshots may no-op; see the module docs.
    fn mark_used(&self, key: &MethodKey);
}

impl TypeTable for RdlState {
    fn lookup_along_names(
        &self,
        classes: &[String],
        class_level: bool,
        method: &str,
    ) -> Option<(MethodKey, TableEntry)> {
        RdlState::lookup_along_names(self, classes, class_level, method)
            .map(|(k, e)| (k, (*e).clone()))
    }

    fn ivar_decl(&self, classes: &[String], ivar: &str) -> Option<(Type, Span)> {
        RdlState::ivar_decl(self, classes, ivar)
    }

    fn cvar_decl(&self, classes: &[String], cvar: &str) -> Option<(Type, Span)> {
        RdlState::cvar_decl(self, classes, cvar)
    }

    fn gvar_decl(&self, gvar: &str) -> Option<(Type, Span)> {
        RdlState::gvar_decl(self, gvar)
    }

    fn mark_used(&self, key: &MethodKey) {
        RdlState::mark_used(self, key);
    }
}
