//! Checker tests: each exercises a distinct rule or error class, including
//! every category of historical Talks error from the paper's §5.

use hb_check::{check_sig, CheckOptions, CheckRequest, ClassInfo, MapClassInfo};
use hb_il::{collect_method_defs, lower_method, MethodCfg};
use hb_rdl::{AnnotationSource, MethodKey, RdlState};
use hb_syntax::{parse_program, Span};
use hb_types::{parse_method_type, parse_type, MethodSig, TypeEnv};

/// Builds a [`CheckRequest`] for an instance-level check with the
/// annotation keyed on `self_class` at an unknown site, and runs it.
fn run_check(
    cfg: &MethodCfg,
    self_class: &str,
    sig: &MethodSig,
    info: &dyn ClassInfo,
    rdl: &RdlState,
    captured: Option<&TypeEnv>,
) -> Result<hb_check::CheckOutcome, hb_check::CheckError> {
    check_sig(&CheckRequest {
        cfg,
        self_class,
        class_level: false,
        sig,
        ann_key: MethodKey::instance(self_class, &cfg.name),
        ann_span: Span::dummy(),
        info,
        rdl,
        captured,
        opts: &CheckOptions::default(),
        policy: hb_check::CheckPolicy::Enforce,
    })
}

struct Fixture {
    rdl: RdlState,
    info: MapClassInfo,
}

impl Fixture {
    fn new() -> Fixture {
        let rdl = RdlState::new();
        let info = MapClassInfo::with_core();
        let f = Fixture { rdl, info };
        // A small core-library slice.
        f.ty("Integer", "+", "(Fixnum or Float) -> Fixnum");
        f.ty("Integer", "-", "(Fixnum) -> Fixnum");
        f.ty("Integer", "*", "(Fixnum) -> Fixnum");
        f.ty("Integer", "==", "(%any) -> %bool");
        f.ty("Integer", "<", "(Fixnum or Float) -> %bool");
        f.ty("Integer", ">", "(Fixnum or Float) -> %bool");
        f.ty("Integer", "to_s", "() -> String");
        f.ty("String", "+", "(String) -> String");
        f.ty("String", "==", "(%any) -> %bool");
        f.ty("String", "length", "() -> Fixnum");
        f.ty("String", "upcase", "() -> String");
        f.ty("Array", "push", "(t) -> Array<t>");
        f.ty("Array", "[]", "(Fixnum) -> t");
        f.ty("Array", "each", "() { (t) -> %any } -> Array<t>");
        f.ty("Array", "map", "() { (t) -> u } -> Array<u>");
        f.ty("Array", "size", "() -> Fixnum");
        f.ty("Object", "nil?", "() -> %bool");
        f.ty("NilClass", "nil?", "() -> %bool");
        f
    }

    fn ty(&self, class: &str, m: &str, t: &str) {
        let (class_level, m) = match m.strip_prefix("self.") {
            Some(rest) => (true, rest),
            None => (false, m),
        };
        let key = if class_level {
            MethodKey::class_level(class, m)
        } else {
            MethodKey::instance(class, m)
        };
        self.rdl.add_type(
            key,
            parse_method_type(t).unwrap(),
            false,
            false,
            AnnotationSource::Static,
            false,
        );
    }

    fn check(
        &self,
        src: &str,
        self_class: &str,
        sig: &str,
    ) -> Result<hb_check::CheckOutcome, String> {
        let cfg = lower(src);
        let sig = MethodSig::single(parse_method_type(sig).unwrap());
        run_check(&cfg, self_class, &sig, &self.info, &self.rdl, None)
            .map_err(|e| e.message().to_string())
    }
}

fn lower(src: &str) -> MethodCfg {
    let p = parse_program(src, "t.rb").unwrap();
    let defs = collect_method_defs(&p);
    lower_method(&defs[0].def)
}

#[test]
fn simple_method_checks() {
    let f = Fixture::new();
    f.check(
        "def add(a, b)\n a + b\nend",
        "Object",
        "(Fixnum, Fixnum) -> Fixnum",
    )
    .unwrap();
}

#[test]
fn return_type_mismatch_is_error() {
    let f = Fixture::new();
    let err = f
        .check("def m(a)\n a\nend", "Object", "(Fixnum) -> String")
        .unwrap_err();
    assert!(err.contains("declared to return String"), "{err}");
}

#[test]
fn no_type_for_method_is_error() {
    let f = Fixture::new();
    let err = f
        .check("def m(s)\n s.frobnicate\nend", "Object", "(String) -> %any")
        .unwrap_err();
    assert!(err.contains("no type for String#frobnicate"), "{err}");
}

#[test]
fn misspelled_call_reports_missing_method() {
    // Talks error 1/8/12-4: copute_edit_fields misspelling becomes an
    // implicit-self zero-arg call with no type.
    let f = Fixture::new();
    f.ty("TalksController", "compute_edit_fields", "() -> nil");
    let err = f
        .check(
            "def edit\n copute_edit_fields\nend",
            "TalksController",
            "() -> nil",
        )
        .unwrap_err();
    assert!(
        err.contains("no type for TalksController#copute_edit_fields"),
        "{err}"
    );
}

#[test]
fn undefined_variable_reports_missing_method() {
    // Talks errors 2/6/12-2 and 2/6/12-3: undefined locals become no-arg
    // self-calls.
    let f = Fixture::new();
    let err = f
        .check("def m\n old_talk\nend", "Object", "() -> %any")
        .unwrap_err();
    assert!(err.contains("no type for Object#old_talk"), "{err}");
}

#[test]
fn block_to_blockless_method_is_error() {
    // Talks error 1/7/12-5: calling upcoming { ... } when upcoming's type
    // takes no block.
    let f = Fixture::new();
    f.ty("TalkList", "upcoming", "() -> Array<Talk>");
    let err = f
        .check(
            "def m(list)\n list.upcoming { |a, b| a }\nend",
            "Object",
            "(TalkList) -> %any",
        )
        .unwrap_err();
    assert!(err.contains("does not take one"), "{err}");
}

#[test]
fn wrong_argument_type_is_error() {
    // Talks error 1/26/12-3: subscribed_talks(true) when the argument is a
    // Symbol.
    let f = Fixture::new();
    f.ty("User", "subscribed_talks", "(Symbol) -> Array<%any>");
    let err = f
        .check(
            "def m(user)\n user.subscribed_talks(true)\nend",
            "Object",
            "(User) -> %any",
        )
        .unwrap_err();
    assert!(err.contains("argument type mismatch"), "{err}");
    assert!(err.contains("%bool"), "{err}");
}

#[test]
fn method_on_wrong_class_is_error() {
    // Talks error 1/28/12: @job.handler returns a String, which has no
    // `object` method.
    let f = Fixture::new();
    f.ty("Job", "handler", "() -> String");
    let err = f
        .check(
            "def m(job)\n job.handler.object\nend",
            "Object",
            "(Job) -> %any",
        )
        .unwrap_err();
    assert!(err.contains("no type for String#object"), "{err}");
}

#[test]
fn arity_mismatch_is_error() {
    let f = Fixture::new();
    f.ty("User", "rename", "(String) -> String");
    let err = f
        .check(
            "def m(u)\n u.rename(\"a\", \"b\")\nend",
            "Object",
            "(User) -> %any",
        )
        .unwrap_err();
    assert!(err.contains("wrong number of arguments"), "{err}");
}

#[test]
fn flow_sensitivity_tracks_assignment() {
    let f = Fixture::new();
    // x starts Fixnum, becomes String; String#upcase must be found.
    f.check(
        "def m(a)\n x = a\n x = x.to_s\n x.upcase\nend",
        "Object",
        "(Fixnum) -> String",
    )
    .unwrap();
}

#[test]
fn branch_join_produces_union() {
    let f = Fixture::new();
    // Returns Fixnum on one branch, String on the other: lub is the union,
    // which must be a subtype of the declared union return.
    f.check(
        "def m(c, a)\n if c\n  a\n else\n  a.to_s\n end\nend",
        "Object",
        "(%bool, Fixnum) -> Fixnum or String",
    )
    .unwrap();
    // And it must NOT satisfy a plain Fixnum return.
    let err = f
        .check(
            "def m(c, a)\n if c\n  a\n else\n  a.to_s\n end\nend",
            "Object",
            "(%bool, Fixnum) -> Fixnum",
        )
        .unwrap_err();
    assert!(err.contains("declared to return"), "{err}");
}

#[test]
fn union_receiver_checks_both_arms() {
    let f = Fixture::new();
    f.ty("A", "go", "() -> Fixnum");
    f.ty("B", "go", "() -> String");
    // Calling go on A|B unions the returns.
    f.check(
        "def m(x)\n x.go\nend",
        "Object",
        "(A or B) -> Fixnum or String",
    )
    .unwrap();
    // If one arm lacks the method, it is an error.
    f.ty("C", "other", "() -> Fixnum");
    let err = f
        .check("def m(x)\n x.go\nend", "Object", "(A or C) -> %any")
        .unwrap_err();
    assert!(err.contains("no type for C#go"), "{err}");
}

#[test]
fn nil_receiver_is_error_unless_nilclass_method() {
    let f = Fixture::new();
    let err = f
        .check("def m\n nil.go\nend", "Object", "() -> %any")
        .unwrap_err();
    assert!(err.contains("no type for NilClass#go"), "{err}");
    f.check("def m\n nil.nil?\nend", "Object", "() -> %bool")
        .unwrap();
}

#[test]
fn truthiness_refinement_prunes_nil() {
    let f = Fixture::new();
    f.ty("User", "talks", "() -> Fixnum");
    f.ty("Finder", "find", "() -> User or nil");
    // Without the if-guard this errors (NilClass has no talks); with it the
    // then-branch refines to User.
    let err = f
        .check(
            "def m(fd)\n u = fd.find\n u.talks\nend",
            "Object",
            "(Finder) -> %any",
        )
        .unwrap_err();
    assert!(err.contains("no type for NilClass#talks"), "{err}");
    f.check(
        "def m(fd)\n u = fd.find\n if u\n  u.talks\n else\n  0\n end\nend",
        "Object",
        "(Finder) -> Fixnum",
    )
    .unwrap();
}

#[test]
fn loop_fixpoint_converges() {
    let f = Fixture::new();
    f.check(
        "def m(n)\n i = 0\n while i < n\n  i = i + 1\n end\n i\nend",
        "Object",
        "(Fixnum) -> Fixnum",
    )
    .unwrap();
}

#[test]
fn generics_instantiate_through_receiver() {
    let f = Fixture::new();
    // Array<Fixnum>#[] returns Fixnum via the `t` substitution.
    f.ty("Box", "items", "() -> Array<Fixnum>");
    f.check(
        "def m(b)\n b.items[0] + 1\nend",
        "Object",
        "(Box) -> Fixnum",
    )
    .unwrap();
}

#[test]
fn raw_generic_erases_to_any() {
    let f = Fixture::new();
    f.ty("Box", "raw_items", "() -> Array");
    // Raw Array returns %any from []; calling + on %any is fine.
    f.check(
        "def m(b)\n b.raw_items[0] + 1\nend",
        "Object",
        "(Box) -> Fixnum",
    )
    .unwrap();
}

#[test]
fn cast_promotes_and_is_counted() {
    let f = Fixture::new();
    f.ty("Box", "raw_items", "() -> Array");
    let out = f
        .check(
            "def m(b)\n xs = b.raw_items.rdl_cast(\"Array<Fixnum>\")\n xs[0] + 1\nend",
            "Object",
            "(Box) -> Fixnum",
        )
        .unwrap();
    assert_eq!(out.cast_sites.len(), 1);
}

#[test]
fn block_argument_body_is_checked() {
    let f = Fixture::new();
    f.ty("Box", "nums", "() -> Array<Fixnum>");
    // Fine: block maps Fixnum -> Fixnum.
    f.check(
        "def m(b)\n b.nums.map { |x| x + 1 }\nend",
        "Object",
        "(Box) -> Array<Fixnum>",
    )
    .unwrap();
    // Error inside the block body is reported.
    let err = f
        .check(
            "def m(b)\n b.nums.each { |x| x.upcase }\nend",
            "Object",
            "(Box) -> %any",
        )
        .unwrap_err();
    assert!(err.contains("no type for Fixnum#upcase"), "{err}");
}

#[test]
fn intersection_arm_selection() {
    let f = Fixture::new();
    // Array#[] has multiple arms in RDL; model that on a custom class.
    f.ty("Grid", "at", "(Fixnum) -> String");
    f.ty("Grid", "at", "(Fixnum, Fixnum) -> Array<String>");
    f.check("def m(g)\n g.at(1)\nend", "Object", "(Grid) -> String")
        .unwrap();
    f.check(
        "def m(g)\n g.at(1, 2)\nend",
        "Object",
        "(Grid) -> Array<String>",
    )
    .unwrap();
    let err = f
        .check("def m(g)\n g.at(\"x\")\nend", "Object", "(Grid) -> %any")
        .unwrap_err();
    assert!(err.contains("argument type mismatch"), "{err}");
}

#[test]
fn intersection_body_must_satisfy_all_arms() {
    let f = Fixture::new();
    let cfg = lower("def ident(x)\n x\nend");
    let mut sig = MethodSig::single(parse_method_type("(Fixnum) -> Fixnum").unwrap());
    sig.add_arm(parse_method_type("(String) -> String").unwrap());
    run_check(&cfg, "Object", &sig, &f.info, &f.rdl, None).unwrap();
    // A body that only works for one arm fails the intersection.
    let cfg = lower("def bad(x)\n x + 1\nend");
    let err = run_check(&cfg, "Object", &sig, &f.info, &f.rdl, None).unwrap_err();
    assert!(err.message().contains("String"), "{}", err.message());
}

#[test]
fn yield_checks_against_declared_block_type() {
    let f = Fixture::new();
    let cfg = lower("def each_twice(x)\n yield(x)\n yield(x)\nend");
    let sig =
        MethodSig::single(parse_method_type("(Fixnum) { (Fixnum) -> %any } -> %any").unwrap());
    run_check(&cfg, "Object", &sig, &f.info, &f.rdl, None).unwrap();
    // Yield without a declared block type errors.
    let sig = MethodSig::single(parse_method_type("(Fixnum) -> %any").unwrap());
    let err = run_check(&cfg, "Object", &sig, &f.info, &f.rdl, None).unwrap_err();
    assert!(
        err.message().contains("declares no block"),
        "{}",
        err.message()
    );
}

#[test]
fn ivar_types_are_enforced() {
    let f = Fixture::new();
    f.rdl
        .set_ivar_type("Runner", "count", parse_type("Fixnum").unwrap());
    f.check("def m\n @count + 1\nend", "Runner", "() -> Fixnum")
        .unwrap();
    let err = f
        .check("def m\n @count = \"s\"\nend", "Runner", "() -> %any")
        .unwrap_err();
    assert!(err.contains("cannot assign String to @count"), "{err}");
}

#[test]
fn unannotated_ivar_is_dynamic() {
    let f = Fixture::new();
    f.check("def m\n @anything\nend", "Object", "() -> %any")
        .unwrap();
}

#[test]
fn deps_record_consulted_methods() {
    let f = Fixture::new();
    f.ty("User", "name", "() -> String");
    let out = f
        .check(
            "def m(u)\n u.name.length\nend",
            "Object",
            "(User) -> Fixnum",
        )
        .unwrap();
    let deps: Vec<String> = out.deps.iter().map(|k| k.display()).collect();
    assert!(deps.contains(&"User#name".to_string()), "{deps:?}");
    assert!(deps.contains(&"String#length".to_string()), "{deps:?}");
}

#[test]
fn module_methods_check_against_mixin_class() {
    // Paper §4 "Modules": M#foo calls bar; checking against C finds C#bar
    // returning Fixnum, against D finds D#bar returning String.
    let f = Fixture::new();
    let mut info = MapClassInfo::with_core();
    info.add("M", vec![]);
    info.add("C", vec!["M"]);
    info.add("D", vec!["M"]);
    f.ty("C", "bar", "(Fixnum) -> Fixnum");
    f.ty("D", "bar", "(Fixnum) -> String");
    let cfg = lower("def foo(x)\n bar(x)\nend");
    let sig_c = MethodSig::single(parse_method_type("(Fixnum) -> Fixnum").unwrap());
    run_check(&cfg, "C", &sig_c, &info, &f.rdl, None).unwrap();
    let sig_d = MethodSig::single(parse_method_type("(Fixnum) -> String").unwrap());
    run_check(&cfg, "D", &sig_d, &info, &f.rdl, None).unwrap();
    // And the wrong pairing fails.
    assert!(run_check(&cfg, "D", &sig_c, &info, &f.rdl, None).is_err());
}

#[test]
fn captured_env_types_proc_bodies() {
    // Fig. 2: checking a define_method proc with captured locals typed from
    // their runtime values.
    let f = Fixture::new();
    f.ty("User", "has_role?", "(String) -> %bool");
    // As in Fig. 2, role_name is a parameter of the enclosing method, so
    // the parser resolves it as a captured local inside the block.
    let p = parse_program(
        "def define_dynamic_method(role_name)\n xs.each do |u|\n  has_role?(\"#{role_name}\")\n end\nend",
        "t.rb",
    )
    .unwrap();
    let def = match &p.body[0].kind {
        hb_syntax::ExprKind::MethodDef(d) => d.clone(),
        other => panic!("{other:?}"),
    };
    let block = match &def.body[0].kind {
        hb_syntax::ExprKind::Call { block: Some(b), .. } => b.clone(),
        other => panic!("{other:?}"),
    };
    let cfg = hb_il::lower_block_body(&block.params, &block.body, block.span);
    let sig = MethodSig::single(parse_method_type("(%any) -> %bool").unwrap());
    let mut captured = TypeEnv::new();
    captured.assign("role_name", parse_type("String").unwrap());
    run_check(&cfg, "User", &sig, &f.info, &f.rdl, Some(&captured)).unwrap();
}

#[test]
fn class_method_calls_resolve_class_level_table() {
    let f = Fixture::new();
    f.ty("Talk", "self.find", "(Fixnum) -> Talk");
    f.ty("Talk", "title", "() -> String");
    let mut info = MapClassInfo::with_core();
    info.add("Talk", vec![]);
    let cfg = lower("def m(id)\n Talk.find(id).title\nend");
    let sig = MethodSig::single(parse_method_type("(Fixnum) -> String").unwrap());
    run_check(&cfg, "Object", &sig, &info, &f.rdl, None).unwrap();
}

#[test]
fn new_falls_back_to_initialize() {
    let f = Fixture::new();
    f.ty("Point", "initialize", "(Fixnum, Fixnum) -> %any");
    f.ty("Point", "x", "() -> Fixnum");
    let mut info = MapClassInfo::with_core();
    info.add("Point", vec![]);
    let cfg = lower("def m\n Point.new(1, 2).x\nend");
    let sig = MethodSig::single(parse_method_type("() -> Fixnum").unwrap());
    run_check(&cfg, "Object", &sig, &info, &f.rdl, None).unwrap();
    // Wrong constructor arg types are caught.
    let cfg = lower("def m\n Point.new(\"a\", 2)\nend");
    let sig = MethodSig::single(parse_method_type("() -> %any").unwrap());
    let err = run_check(&cfg, "Object", &sig, &info, &f.rdl, None).unwrap_err();
    assert!(
        err.message().contains("argument type mismatch"),
        "{}",
        err.message()
    );
}

#[test]
fn rescue_variable_gets_union_of_classes() {
    let f = Fixture::new();
    let mut info = MapClassInfo::with_core();
    info.add("ArgumentError", vec!["StandardError"]);
    f.ty("ArgumentError", "message", "() -> String");
    let cfg = lower("def m\n begin\n  1\n rescue ArgumentError => e\n  e.message\n  2\n end\nend");
    let sig = MethodSig::single(parse_method_type("() -> Fixnum").unwrap());
    run_check(&cfg, "Object", &sig, &info, &f.rdl, None).unwrap();
}

#[test]
fn any_receiver_propagates() {
    let f = Fixture::new();
    f.check(
        "def m(x)\n x.whatever(1).more\nend",
        "Object",
        "(%any) -> %any",
    )
    .unwrap();
}

#[test]
fn splat_call_skips_arity_check() {
    let f = Fixture::new();
    f.ty("User", "update", "(String, String) -> %bool");
    f.check(
        "def m(u, args)\n u.update(*args)\nend",
        "Object",
        "(User, Array<String>) -> %bool",
    )
    .unwrap();
}

#[test]
fn return_inside_block_checks_method_return() {
    let f = Fixture::new();
    f.ty("Box", "nums", "() -> Array<Fixnum>");
    // `return x` inside the block must match the method's declared Fixnum.
    f.check(
        "def m(b)\n b.nums.each { |x| return x if x > 2 }\n 0\nend",
        "Object",
        "(Box) -> Fixnum",
    )
    .unwrap();
    let err = f
        .check(
            "def m(b)\n b.nums.each { |x| return x if x > 2 }\n \"s\"\nend",
            "Object",
            "(Box) -> String",
        )
        .unwrap_err();
    assert!(err.contains("does not match declared return type"), "{err}");
}

#[test]
fn optional_params_join_default_type() {
    let f = Fixture::new();
    f.check(
        "def m(a, b = 0)\n a + b\nend",
        "Object",
        "(Fixnum, ?Fixnum) -> Fixnum",
    )
    .unwrap();
}

// ----- structured blame diagnostics ------------------------------------

#[test]
fn structured_blame_names_the_callee_annotation() {
    use hb_syntax::{BlameTarget, DiagCode, FileId, LabelRole};
    let f = Fixture::new();
    // Register the callee annotation at a real (synthetic-file) span so
    // the blame label has something to resolve to.
    let key = MethodKey::instance("User", "subscribed_talks");
    let ann_span = Span::new(FileId(7), 10, 30);
    f.rdl.add_type_at(
        key,
        parse_method_type("(Symbol) -> Array<%any>").unwrap(),
        false,
        false,
        AnnotationSource::Static,
        false,
        ann_span,
    );
    let cfg = lower("def m(user)\n user.subscribed_talks(true)\nend");
    let sig = MethodSig::single(parse_method_type("(User) -> %any").unwrap());
    let err = run_check(&cfg, "Object", &sig, &f.info, &f.rdl, None).unwrap_err();
    assert_eq!(err.code(), DiagCode::ArgumentType);
    assert_eq!(err.blame(), &BlameTarget::Annotation(key));
    let label = err.diagnostic.label(LabelRole::BlamedAnnotation).unwrap();
    assert_eq!(
        label.span, ann_span,
        "blame label must carry the annotation's registration span"
    );
    assert_eq!(label.method, Some(key));
    // The checked method itself is also labeled.
    assert!(err.diagnostic.label(LabelRole::CheckedMethod).is_some());
}

#[test]
fn structured_missing_type_blame() {
    use hb_syntax::{BlameTarget, DiagCode};
    let f = Fixture::new();
    let err_sig = MethodSig::single(parse_method_type("(String) -> %any").unwrap());
    let cfg = lower("def m(s)\n s.frobnicate\nend");
    let err = run_check(&cfg, "Object", &err_sig, &f.info, &f.rdl, None).unwrap_err();
    assert_eq!(err.code(), DiagCode::NoMethodType);
    assert_eq!(
        err.blame(),
        &BlameTarget::MissingType(MethodKey::instance("String", "frobnicate"))
    );
}

#[test]
fn structured_var_assign_blame_names_declaration() {
    use hb_syntax::{BlameTarget, DiagCode, FileId, LabelRole};
    let f = Fixture::new();
    let decl_span = Span::new(FileId(3), 5, 25);
    f.rdl
        .set_ivar_type_at("Runner", "count", parse_type("Fixnum").unwrap(), decl_span);
    let cfg = lower("def m\n @count = \"s\"\nend");
    let sig = MethodSig::single(parse_method_type("() -> %any").unwrap());
    let err = run_check(&cfg, "Runner", &sig, &f.info, &f.rdl, None).unwrap_err();
    assert_eq!(err.code(), DiagCode::VarAssign);
    assert_eq!(
        err.blame(),
        &BlameTarget::VarDecl {
            name: "@count".to_string()
        }
    );
    let label = err.diagnostic.label(LabelRole::BlamedAnnotation).unwrap();
    assert_eq!(label.span, decl_span);
}

#[test]
fn structured_own_annotation_blame_for_return_type() {
    use hb_syntax::{BlameTarget, DiagCode, LabelRole};
    let f = Fixture::new();
    let cfg = lower("def m(a)\n a\nend");
    let sig = MethodSig::single(parse_method_type("(Fixnum) -> String").unwrap());
    let err = run_check(&cfg, "Object", &sig, &f.info, &f.rdl, None).unwrap_err();
    assert_eq!(err.code(), DiagCode::ReturnType);
    // The method's own annotation is blamed, keyed on the receiver class.
    assert_eq!(
        err.blame(),
        &BlameTarget::Annotation(MethodKey::instance("Object", "m"))
    );
    assert!(err.diagnostic.label(LabelRole::BlamedAnnotation).is_some());
}

#[test]
fn structured_block_blame_code() {
    use hb_syntax::DiagCode;
    let f = Fixture::new();
    f.ty("TalkList", "upcoming", "() -> Array<Talk>");
    let cfg = lower("def m(list)\n list.upcoming { |a, b| a }\nend");
    let sig = MethodSig::single(parse_method_type("(TalkList) -> %any").unwrap());
    let err = run_check(&cfg, "Object", &sig, &f.info, &f.rdl, None).unwrap_err();
    assert_eq!(err.code(), DiagCode::BlockIncompatible);
}
