//! A compact register-style bytecode for method bodies — the execution
//! format of the interpreter's bytecode tier.
//!
//! The checker-facing CFG ([`crate::cfg::MethodCfg`]) abstracts control flow
//! for analysis (its operands include `Nondet` merges), so it cannot be
//! executed directly. This pass instead compiles the *same* method
//! definition node the CFG was lowered from into an executable [`Chunk`]:
//! straight-line register ops with explicit jumps, constant/symbol pools
//! interned at compile time (no per-call string work), and a parallel span
//! table so runtime errors point at exactly the source locations the
//! tree-walking evaluator reports.
//!
//! Compilation is *best-effort*: [`compile_method`] returns `None` for any
//! construct whose tree-walk semantics are subtle enough that a bytecode
//! replication would risk divergence (exception handling, `case`, nested
//! definitions, `super`, block literals, splats). Callers fall back to the
//! tree-walk evaluator for those methods — semantics first, speed second.

use hb_intern::Sym;
use hb_syntax::ast::*;
use hb_syntax::Span;
use std::collections::HashMap;
use std::rc::Rc;

/// A compile-time constant in a chunk's pool.
#[derive(Debug, Clone, PartialEq)]
pub enum BcConst {
    Nil,
    True,
    False,
    Int(i64),
    Float(f64),
    Str(Rc<str>),
    Sym(Rc<str>),
}

/// How a formal parameter binds, with optional defaults restricted to pool
/// constants (methods with computed defaults fall back to the tree-walk).
#[derive(Debug, Clone, PartialEq)]
pub enum BcParam {
    Required,
    /// Default value as a constant-pool index.
    Optional(u16),
    Rest,
    Block,
}

/// One bytecode instruction. Registers are `u16` indices into the frame's
/// register file; every op writes its destination register last, so an op
/// whose inputs alias its destination stays well-defined.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `dst = consts[idx]`
    Const { dst: u16, idx: u16 },
    /// `dst = self`
    SelfVal { dst: u16 },
    /// `dst = src`
    Move { dst: u16, src: u16 },
    /// `dst = @names[name]`
    IVarGet { dst: u16, name: u16 },
    /// `@names[name] = src`
    IVarSet { name: u16, src: u16 },
    /// `dst = $names[name]`
    GVarGet { dst: u16, name: u16 },
    /// `$names[name] = src`
    GVarSet { name: u16, src: u16 },
    /// `dst = resolve(paths[path])` (lexical-nesting constant resolution)
    ConstGet { dst: u16, path: u16 },
    /// `dst = [regs[start..start+len]]`
    NewArray { dst: u16, start: u16, len: u16 },
    /// `dst = {regs[start]=>regs[start+1], ...}` (`pairs` k/v pairs)
    NewHash { dst: u16, start: u16, pairs: u16 },
    /// `dst = regs[lo]..regs[hi]` (`...` when exclusive)
    NewRange {
        dst: u16,
        lo: u16,
        hi: u16,
        exclusive: bool,
    },
    /// `dst = to_s(regs[src])` (dispatching `to_s` for objects)
    ToS { dst: u16, src: u16 },
    /// `dst = concat(regs[start..start+len])` — all inputs are strings
    ConcatStr { dst: u16, start: u16, len: u16 },
    /// `dst = !truthy(regs[src])`
    Not { dst: u16, src: u16 },
    /// unconditional jump
    Jump { to: u32 },
    /// jump when `regs[cond]` is falsy
    JumpIfFalse { cond: u16, to: u32 },
    /// `dst = regs[recv].syms[name](regs[start..start+argc])` — full
    /// dispatch through the interpreter (hooks, arity, method_missing)
    Call {
        dst: u16,
        recv: u16,
        name: u16,
        start: u16,
        argc: u16,
    },
    /// `dst = yield(regs[start..start+argc])`
    Yield { dst: u16, start: u16, argc: u16 },
    /// return `regs[src]`
    Return { src: u16 },
}

/// A compiled method body plus everything its prologue needs: parameter
/// binding plan, precomputed arity, and the interned pools.
#[derive(Debug, Clone)]
pub struct Chunk {
    pub ops: Vec<Op>,
    /// Source span of each op (parallel to `ops`) — runtime errors carry
    /// the same spans the tree-walk evaluator would attach.
    pub spans: Vec<Span>,
    pub consts: Vec<BcConst>,
    /// Interned method names for `Call` ops.
    pub syms: Vec<Sym>,
    /// Instance/global variable names.
    pub names: Vec<Rc<str>>,
    /// Constant paths for `ConstGet`.
    pub paths: Vec<Rc<Vec<String>>>,
    /// Binding plan; parameter `i` binds into register `i`.
    pub params: Vec<BcParam>,
    /// Count of required parameters (arity check).
    pub required: u16,
    /// Count of required + optional parameters (arity check).
    pub max: u16,
    pub has_rest: bool,
    /// Size of the register file (locals first, then temporaries).
    pub n_regs: u16,
}

/// Ceiling on pool/register indices; methods that exceed it (pathological)
/// fall back to the tree-walk.
const LIMIT: usize = u16::MAX as usize - 1;

/// Compiles a parsed method definition to bytecode. Returns `None` when the
/// body uses a construct outside the supported subset (the caller keeps
/// tree-walking that method).
pub fn compile_method(def: &MethodDefNode) -> Option<Chunk> {
    let mut c = Compiler::new();
    // Parameters bind into the first registers, in declaration order.
    let mut params = Vec::with_capacity(def.params.len());
    let mut required = 0u16;
    let mut max = 0u16;
    let mut has_rest = false;
    for p in &def.params {
        c.declare_local(&p.name)?;
        params.push(match &p.kind {
            ParamKind::Required => {
                required += 1;
                max += 1;
                BcParam::Required
            }
            ParamKind::Optional(d) => {
                max += 1;
                BcParam::Optional(c.literal_const(d)?)
            }
            ParamKind::Rest => {
                has_rest = true;
                BcParam::Rest
            }
            ParamKind::Block => BcParam::Block,
        });
    }
    // Every assigned local gets a fixed register before temporaries.
    collect_locals(&def.body, &mut c)?;
    c.temp = c.n_locals;
    c.max_reg = c.n_locals;

    let dst = c.alloc()?;
    c.compile_body(&def.body, dst, def.span)?;
    c.emit(Op::Return { src: dst }, def.span);

    Some(Chunk {
        ops: c.ops,
        spans: c.spans,
        consts: c.consts,
        syms: c.syms,
        names: c.names,
        paths: c.paths,
        params,
        required,
        max,
        has_rest,
        n_regs: c.max_reg,
    })
}

/// Walks the body declaring every local-assignment target, so all named
/// locals own fixed registers (reads before assignment load `nil`, exactly
/// like the tree-walk scope).
fn collect_locals(body: &[Expr], c: &mut Compiler) -> Option<()> {
    for e in body {
        collect_locals_expr(e, c)?;
    }
    Some(())
}

fn collect_locals_expr(e: &Expr, c: &mut Compiler) -> Option<()> {
    match &e.kind {
        ExprKind::Assign { target, value } | ExprKind::OpAssign { target, value, .. } => {
            if let Lhs::Local(n) = target {
                c.declare_local(n)?;
            }
            match target {
                Lhs::Index(r, idx) => {
                    collect_locals_expr(r, c)?;
                    collect_locals(idx, c)?;
                }
                Lhs::Attr(r, _) => collect_locals_expr(r, c)?,
                _ => {}
            }
            collect_locals_expr(value, c)
        }
        ExprKind::Str(parts) => {
            for p in parts {
                if let StrPart::Interp(e) = p {
                    collect_locals_expr(e, c)?;
                }
            }
            Some(())
        }
        ExprKind::Array(xs) => collect_locals(xs, c),
        ExprKind::Hash(pairs) => {
            for (k, v) in pairs {
                collect_locals_expr(k, c)?;
                collect_locals_expr(v, c)?;
            }
            Some(())
        }
        ExprKind::Range { lo, hi, .. } => {
            collect_locals_expr(lo, c)?;
            collect_locals_expr(hi, c)
        }
        ExprKind::Call {
            recv, args, block, ..
        } => {
            if block.is_some() {
                return None; // bail: block literals capture scopes
            }
            if let Some(r) = recv {
                collect_locals_expr(r, c)?;
            }
            for a in args {
                match a {
                    Arg::Pos(x) => collect_locals_expr(x, c)?,
                    Arg::Splat(_) | Arg::BlockPass(_) => return None,
                }
            }
            Some(())
        }
        ExprKind::Yield(args) => collect_locals(args, c),
        ExprKind::And(a, b) | ExprKind::Or(a, b) => {
            collect_locals_expr(a, c)?;
            collect_locals_expr(b, c)
        }
        ExprKind::Not(x) => collect_locals_expr(x, c),
        ExprKind::If {
            cond,
            then_body,
            else_body,
        } => {
            collect_locals_expr(cond, c)?;
            collect_locals(then_body, c)?;
            collect_locals(else_body, c)
        }
        ExprKind::While { cond, body } => {
            collect_locals_expr(cond, c)?;
            collect_locals(body, c)
        }
        ExprKind::Return(v) | ExprKind::Break(v) | ExprKind::Next(v) => match v {
            Some(v) => collect_locals_expr(v, c),
            None => Some(()),
        },
        // Constructs the compiler bails on anyway; let compile_expr report.
        _ => Some(()),
    }
}

struct LoopCtx {
    /// Op index of the loop condition (`next` jumps here).
    cond_pc: u32,
    /// `Jump`/`JumpIfFalse` op indices to patch with the loop-exit pc.
    exits: Vec<usize>,
}

struct Compiler {
    ops: Vec<Op>,
    spans: Vec<Span>,
    consts: Vec<BcConst>,
    syms: Vec<Sym>,
    names: Vec<Rc<str>>,
    paths: Vec<Rc<Vec<String>>>,
    locals: HashMap<String, u16>,
    n_locals: u16,
    temp: u16,
    max_reg: u16,
    loops: Vec<LoopCtx>,
}

impl Compiler {
    fn new() -> Compiler {
        Compiler {
            ops: Vec::new(),
            spans: Vec::new(),
            consts: Vec::new(),
            syms: Vec::new(),
            names: Vec::new(),
            paths: Vec::new(),
            locals: HashMap::new(),
            n_locals: 0,
            temp: 0,
            max_reg: 0,
            loops: Vec::new(),
        }
    }

    fn declare_local(&mut self, name: &str) -> Option<u16> {
        if let Some(&r) = self.locals.get(name) {
            return Some(r);
        }
        if self.n_locals as usize >= LIMIT {
            return None;
        }
        let r = self.n_locals;
        self.n_locals += 1;
        self.locals.insert(name.to_string(), r);
        Some(r)
    }

    fn emit(&mut self, op: Op, span: Span) -> usize {
        self.ops.push(op);
        self.spans.push(span);
        self.ops.len() - 1
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn patch(&mut self, idx: usize, target: u32) {
        match &mut self.ops[idx] {
            Op::Jump { to } | Op::JumpIfFalse { to, .. } => *to = target,
            _ => unreachable!("patching a non-jump"),
        }
    }

    fn alloc(&mut self) -> Option<u16> {
        if self.temp as usize >= LIMIT {
            return None;
        }
        let r = self.temp;
        self.temp += 1;
        if self.temp > self.max_reg {
            self.max_reg = self.temp;
        }
        Some(r)
    }

    /// Compiles `e` into a fresh register and releases any temporaries the
    /// subexpression allocated above it — only the value's register stays
    /// reserved. Multi-register windows (call arguments, array elements,
    /// string pieces) rely on this to stay consecutive.
    fn compile_tmp(&mut self, e: &Expr) -> Option<u16> {
        let t = self.alloc()?;
        self.compile_expr(e, t)?;
        self.temp = t + 1;
        Some(t)
    }

    fn add_const(&mut self, k: BcConst) -> Option<u16> {
        if let Some(i) = self.consts.iter().position(|c| *c == k) {
            return Some(i as u16);
        }
        if self.consts.len() >= LIMIT {
            return None;
        }
        self.consts.push(k);
        Some((self.consts.len() - 1) as u16)
    }

    fn add_sym(&mut self, s: &str) -> Option<u16> {
        let sym = Sym::intern(s);
        if let Some(i) = self.syms.iter().position(|&x| x == sym) {
            return Some(i as u16);
        }
        if self.syms.len() >= LIMIT {
            return None;
        }
        self.syms.push(sym);
        Some((self.syms.len() - 1) as u16)
    }

    fn add_name(&mut self, s: &str) -> Option<u16> {
        if let Some(i) = self.names.iter().position(|x| &**x == s) {
            return Some(i as u16);
        }
        if self.names.len() >= LIMIT {
            return None;
        }
        self.names.push(Rc::from(s));
        Some((self.names.len() - 1) as u16)
    }

    fn add_path(&mut self, p: &[String]) -> Option<u16> {
        if let Some(i) = self.paths.iter().position(|x| **x == p) {
            return Some(i as u16);
        }
        if self.paths.len() >= LIMIT {
            return None;
        }
        self.paths.push(Rc::new(p.to_vec()));
        Some((self.paths.len() - 1) as u16)
    }

    /// A literal expression as a pool constant (optional-parameter
    /// defaults); non-literal defaults make the method uncompilable.
    fn literal_const(&mut self, e: &Expr) -> Option<u16> {
        let k = match &e.kind {
            ExprKind::Nil => BcConst::Nil,
            ExprKind::True => BcConst::True,
            ExprKind::False => BcConst::False,
            ExprKind::Int(n) => BcConst::Int(*n),
            ExprKind::Float(x) => BcConst::Float(*x),
            ExprKind::Sym(s) => BcConst::Sym(Rc::from(s.as_str())),
            ExprKind::Str(parts) => match parts.as_slice() {
                [] => BcConst::Str(Rc::from("")),
                [StrPart::Lit(s)] => BcConst::Str(Rc::from(s.as_str())),
                _ => return None,
            },
            _ => return None,
        };
        self.add_const(k)
    }

    /// Compiles a statement sequence into `dst` (tree-walk `eval_body`:
    /// value of the last statement, `nil` when empty).
    fn compile_body(&mut self, body: &[Expr], dst: u16, span: Span) -> Option<()> {
        if body.is_empty() {
            let idx = self.add_const(BcConst::Nil)?;
            self.emit(Op::Const { dst, idx }, span);
            return Some(());
        }
        for e in body {
            let save = self.temp;
            self.compile_expr(e, dst)?;
            self.temp = save;
        }
        Some(())
    }

    fn compile_expr(&mut self, e: &Expr, dst: u16) -> Option<()> {
        let span = e.span;
        match &e.kind {
            ExprKind::Nil => self.emit_const(BcConst::Nil, dst, span),
            ExprKind::True => self.emit_const(BcConst::True, dst, span),
            ExprKind::False => self.emit_const(BcConst::False, dst, span),
            ExprKind::Int(n) => self.emit_const(BcConst::Int(*n), dst, span),
            ExprKind::Float(x) => self.emit_const(BcConst::Float(*x), dst, span),
            ExprKind::Sym(s) => self.emit_const(BcConst::Sym(Rc::from(s.as_str())), dst, span),
            ExprKind::SelfExpr => {
                self.emit(Op::SelfVal { dst }, span);
                Some(())
            }
            ExprKind::Str(parts) => self.compile_str(parts, dst, span),
            ExprKind::Array(xs) => {
                if xs.is_empty() {
                    self.emit(
                        Op::NewArray {
                            dst,
                            start: 0,
                            len: 0,
                        },
                        span,
                    );
                    return Some(());
                }
                let start = self.temp;
                for x in xs {
                    self.compile_tmp(x)?;
                }
                self.emit(
                    Op::NewArray {
                        dst,
                        start,
                        len: xs.len().try_into().ok()?,
                    },
                    span,
                );
                Some(())
            }
            ExprKind::Hash(pairs) => {
                let start = self.temp;
                for (k, v) in pairs {
                    self.compile_tmp(k)?;
                    self.compile_tmp(v)?;
                }
                self.emit(
                    Op::NewHash {
                        dst,
                        start,
                        pairs: pairs.len().try_into().ok()?,
                    },
                    span,
                );
                Some(())
            }
            ExprKind::Range { lo, hi, exclusive } => {
                let tl = self.compile_tmp(lo)?;
                let th = self.compile_tmp(hi)?;
                self.emit(
                    Op::NewRange {
                        dst,
                        lo: tl,
                        hi: th,
                        exclusive: *exclusive,
                    },
                    span,
                );
                Some(())
            }
            ExprKind::Local(n) => {
                // The parser only resolves identifiers assigned earlier in
                // scope to locals, so the register always exists.
                let r = *self.locals.get(n)?;
                if r != dst {
                    self.emit(Op::Move { dst, src: r }, span);
                }
                Some(())
            }
            ExprKind::IVar(n) => {
                let name = self.add_name(n)?;
                self.emit(Op::IVarGet { dst, name }, span);
                Some(())
            }
            ExprKind::GVar(n) => {
                let name = self.add_name(n)?;
                self.emit(Op::GVarGet { dst, name }, span);
                Some(())
            }
            ExprKind::Const(path) => {
                let path = self.add_path(path)?;
                self.emit(Op::ConstGet { dst, path }, span);
                Some(())
            }
            ExprKind::Assign { target, value } => {
                // Tree-walk order: value first, then the target's own
                // receiver/index expressions; the expression's value is the
                // assigned value.
                self.compile_expr(value, dst)?;
                self.compile_store(target, dst, span)
            }
            ExprKind::OpAssign { target, op, value } => {
                self.compile_op_assign(target, op, value, dst, span)
            }
            ExprKind::Call {
                recv,
                name,
                args,
                block,
            } => {
                if block.is_some() {
                    return None; // bail: block literals capture scopes
                }
                let r = self.alloc()?;
                match recv {
                    Some(rx) => {
                        self.compile_expr(rx, r)?;
                        self.temp = r + 1;
                    }
                    None => {
                        self.emit(Op::SelfVal { dst: r }, span);
                    }
                }
                let start = self.temp;
                for a in args {
                    match a {
                        Arg::Pos(x) => {
                            self.compile_tmp(x)?;
                        }
                        Arg::Splat(_) | Arg::BlockPass(_) => return None,
                    }
                }
                let name = self.add_sym(name)?;
                self.emit(
                    Op::Call {
                        dst,
                        recv: r,
                        name,
                        start,
                        argc: args.len().try_into().ok()?,
                    },
                    span,
                );
                Some(())
            }
            ExprKind::Yield(args) => {
                let start = self.temp;
                for a in args {
                    self.compile_tmp(a)?;
                }
                self.emit(
                    Op::Yield {
                        dst,
                        start,
                        argc: args.len().try_into().ok()?,
                    },
                    span,
                );
                Some(())
            }
            ExprKind::And(a, b) => {
                self.compile_expr(a, dst)?;
                let j = self.emit(Op::JumpIfFalse { cond: dst, to: 0 }, span);
                self.compile_expr(b, dst)?;
                let end = self.here();
                self.patch(j, end);
                Some(())
            }
            ExprKind::Or(a, b) => {
                self.compile_expr(a, dst)?;
                let j_false = self.emit(Op::JumpIfFalse { cond: dst, to: 0 }, span);
                let j_end = self.emit(Op::Jump { to: 0 }, span);
                let here = self.here();
                self.patch(j_false, here);
                self.compile_expr(b, dst)?;
                let end = self.here();
                self.patch(j_end, end);
                Some(())
            }
            ExprKind::Not(x) => {
                let t = self.alloc()?;
                self.compile_expr(x, t)?;
                self.emit(Op::Not { dst, src: t }, span);
                Some(())
            }
            ExprKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let t = self.alloc()?;
                self.compile_expr(cond, t)?;
                let j_else = self.emit(Op::JumpIfFalse { cond: t, to: 0 }, span);
                self.compile_body(then_body, dst, span)?;
                let j_end = self.emit(Op::Jump { to: 0 }, span);
                let here = self.here();
                self.patch(j_else, here);
                self.compile_body(else_body, dst, span)?;
                let end = self.here();
                self.patch(j_end, end);
                Some(())
            }
            ExprKind::While { cond, body } => {
                let cond_pc = self.here();
                let t = self.alloc()?;
                self.compile_expr(cond, t)?;
                let j_exit = self.emit(Op::JumpIfFalse { cond: t, to: 0 }, span);
                self.loops.push(LoopCtx {
                    cond_pc,
                    exits: vec![j_exit],
                });
                let scratch = self.alloc()?;
                let body_ok = self.compile_body(body, scratch, span);
                let ctx = self.loops.pop()?;
                body_ok?;
                self.emit(Op::Jump { to: cond_pc }, span);
                let end = self.here();
                for j in ctx.exits {
                    self.patch(j, end);
                }
                // A while expression always evaluates to nil (the
                // tree-walk discards any break value).
                self.emit_const(BcConst::Nil, dst, span)
            }
            ExprKind::Return(v) => {
                let t = self.alloc()?;
                match v {
                    Some(v) => self.compile_expr(v, t)?,
                    None => self.emit_const(BcConst::Nil, t, span)?,
                }
                self.emit(Op::Return { src: t }, span);
                Some(())
            }
            ExprKind::Break(v) => {
                let t = self.alloc()?;
                match v {
                    Some(v) => self.compile_expr(v, t)?,
                    None => self.emit_const(BcConst::Nil, t, span)?,
                }
                if self.loops.is_empty() {
                    return None; // bail: break-as-method-exit is tree-walk territory
                }
                let j = self.emit(Op::Jump { to: 0 }, span);
                self.loops.last_mut()?.exits.push(j);
                Some(())
            }
            ExprKind::Next(v) => {
                let t = self.alloc()?;
                match v {
                    Some(v) => self.compile_expr(v, t)?,
                    None => self.emit_const(BcConst::Nil, t, span)?,
                }
                let ctx = self.loops.last()?;
                let to = ctx.cond_pc;
                self.emit(Op::Jump { to }, span);
                Some(())
            }
            // Bail-outs: constructs whose semantics live in the tree-walk
            // evaluator (exception handling, nested definitions, case
            // dispatch, super's frame-args access, class variables).
            ExprKind::CVar(_)
            | ExprKind::Super { .. }
            | ExprKind::Case { .. }
            | ExprKind::Begin { .. }
            | ExprKind::ClassDef { .. }
            | ExprKind::ModuleDef { .. }
            | ExprKind::MethodDef(_) => None,
        }
    }

    fn emit_const(&mut self, k: BcConst, dst: u16, span: Span) -> Option<()> {
        let idx = self.add_const(k)?;
        self.emit(Op::Const { dst, idx }, span);
        Some(())
    }

    fn compile_str(&mut self, parts: &[StrPart], dst: u16, span: Span) -> Option<()> {
        match parts {
            [] => self.emit_const(BcConst::Str(Rc::from("")), dst, span),
            [StrPart::Lit(s)] => self.emit_const(BcConst::Str(Rc::from(s.as_str())), dst, span),
            _ => {
                let start = self.temp;
                for p in parts {
                    match p {
                        StrPart::Lit(s) => {
                            let t = self.alloc()?;
                            self.emit_const(BcConst::Str(Rc::from(s.as_str())), t, span)?;
                        }
                        StrPart::Interp(e) => {
                            let t = self.compile_tmp(e)?;
                            self.emit(Op::ToS { dst: t, src: t }, span);
                        }
                    }
                }
                self.emit(
                    Op::ConcatStr {
                        dst,
                        start,
                        len: parts.len().try_into().ok()?,
                    },
                    span,
                );
                Some(())
            }
        }
    }

    /// Stores `src` into an assignment target (the write half of `Assign` /
    /// `OpAssign`); evaluates the target's receiver/index expressions here,
    /// exactly like the tree-walk `assign`.
    fn compile_store(&mut self, target: &Lhs, src: u16, span: Span) -> Option<()> {
        match target {
            Lhs::Local(n) => {
                let r = *self.locals.get(n)?;
                if r != src {
                    self.emit(Op::Move { dst: r, src }, span);
                }
                Some(())
            }
            Lhs::IVar(n) => {
                let name = self.add_name(n)?;
                self.emit(Op::IVarSet { name, src }, span);
                Some(())
            }
            Lhs::GVar(n) => {
                let name = self.add_name(n)?;
                self.emit(Op::GVarSet { name, src }, span);
                Some(())
            }
            Lhs::Index(recv, idx) => {
                let r = self.compile_tmp(recv)?;
                let start = self.temp;
                for a in idx {
                    self.compile_tmp(a)?;
                }
                let last = self.alloc()?;
                self.emit(Op::Move { dst: last, src }, span);
                let name = self.add_sym("[]=")?;
                let scratch = self.alloc()?;
                self.emit(
                    Op::Call {
                        dst: scratch,
                        recv: r,
                        name,
                        start,
                        argc: (idx.len() + 1).try_into().ok()?,
                    },
                    span,
                );
                Some(())
            }
            Lhs::Attr(recv, name) => {
                let r = self.compile_tmp(recv)?;
                let a = self.alloc()?;
                self.emit(Op::Move { dst: a, src }, span);
                // Setter name interned once at compile time — no per-call
                // `format!("{name}=")`.
                let name = self.add_sym(&format!("{name}="))?;
                let scratch = self.alloc()?;
                self.emit(
                    Op::Call {
                        dst: scratch,
                        recv: r,
                        name,
                        start: a,
                        argc: 1,
                    },
                    span,
                );
                Some(())
            }
            // Constant assignment renames anonymous classes; class
            // variables walk the definee's ancestors. Both stay tree-walk.
            Lhs::Const(_) | Lhs::CVar(_) => None,
        }
    }

    /// Reads an assignment target (the read half of `OpAssign`), mirroring
    /// the tree-walk `lhs_read`.
    fn compile_lhs_read(&mut self, target: &Lhs, dst: u16, span: Span) -> Option<()> {
        match target {
            Lhs::Local(n) => {
                let r = *self.locals.get(n)?;
                if r != dst {
                    self.emit(Op::Move { dst, src: r }, span);
                }
                Some(())
            }
            Lhs::IVar(n) => {
                let name = self.add_name(n)?;
                self.emit(Op::IVarGet { dst, name }, span);
                Some(())
            }
            Lhs::GVar(n) => {
                let name = self.add_name(n)?;
                self.emit(Op::GVarGet { dst, name }, span);
                Some(())
            }
            Lhs::Index(recv, idx) => {
                let r = self.compile_tmp(recv)?;
                let start = self.temp;
                for a in idx {
                    self.compile_tmp(a)?;
                }
                let name = self.add_sym("[]")?;
                self.emit(
                    Op::Call {
                        dst,
                        recv: r,
                        name,
                        start,
                        argc: idx.len().try_into().ok()?,
                    },
                    span,
                );
                Some(())
            }
            Lhs::Attr(recv, name) => {
                let r = self.compile_tmp(recv)?;
                let name = self.add_sym(name)?;
                self.emit(
                    Op::Call {
                        dst,
                        recv: r,
                        name,
                        start: 0,
                        argc: 0,
                    },
                    span,
                );
                Some(())
            }
            Lhs::Const(_) | Lhs::CVar(_) => None,
        }
    }

    fn compile_op_assign(
        &mut self,
        target: &Lhs,
        op: &str,
        value: &Expr,
        dst: u16,
        span: Span,
    ) -> Option<()> {
        // Note: like the tree-walk, Index/Attr targets evaluate their
        // receiver once for the read and again for the write.
        let cur = self.alloc()?;
        self.compile_lhs_read(target, cur, span)?;
        self.temp = cur + 1;
        match op {
            "||" => {
                if cur != dst {
                    self.emit(Op::Move { dst, src: cur }, span);
                }
                let j_assign = self.emit(Op::JumpIfFalse { cond: cur, to: 0 }, span);
                let j_end = self.emit(Op::Jump { to: 0 }, span);
                let here = self.here();
                self.patch(j_assign, here);
                let v = self.alloc()?;
                self.compile_expr(value, v)?;
                self.compile_store(target, v, span)?;
                self.emit(Op::Move { dst, src: v }, span);
                let end = self.here();
                self.patch(j_end, end);
                Some(())
            }
            "&&" => {
                if cur != dst {
                    self.emit(Op::Move { dst, src: cur }, span);
                }
                let j_end = self.emit(Op::JumpIfFalse { cond: cur, to: 0 }, span);
                let v = self.alloc()?;
                self.compile_expr(value, v)?;
                self.compile_store(target, v, span)?;
                self.emit(Op::Move { dst, src: v }, span);
                let end = self.here();
                self.patch(j_end, end);
                Some(())
            }
            op => {
                let v = self.alloc()?;
                self.compile_expr(value, v)?;
                let name = self.add_sym(op)?;
                self.emit(
                    Op::Call {
                        dst,
                        recv: cur,
                        name,
                        start: v,
                        argc: 1,
                    },
                    span,
                );
                self.compile_store(target, dst, span)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_syntax::parse_program;

    fn first_def(src: &str) -> Rc<MethodDefNode> {
        let p = parse_program(src, "t.rb").unwrap();
        for e in &p.body {
            if let ExprKind::MethodDef(d) = &e.kind {
                return d.clone();
            }
        }
        panic!("no method def in source");
    }

    #[test]
    fn compiles_identity_method() {
        let def = first_def("def idm(x)\n x\nend");
        let chunk = compile_method(&def).expect("compilable");
        assert_eq!(chunk.params, vec![BcParam::Required]);
        assert_eq!(chunk.required, 1);
        assert_eq!(chunk.max, 1);
        assert!(!chunk.has_rest);
        // Register 0 is `x`; the body moves it to the result register and
        // returns.
        assert!(matches!(chunk.ops.last(), Some(Op::Return { .. })));
    }

    #[test]
    fn compiles_arith_and_locals() {
        let def = first_def("def f(a, b)\n c = a + b\n c * 2\nend");
        let chunk = compile_method(&def).expect("compilable");
        // a, b, c get fixed registers 0..3.
        assert!(chunk.n_regs >= 3);
        assert!(chunk
            .ops
            .iter()
            .any(|op| matches!(op, Op::Call { argc: 1, .. })));
    }

    #[test]
    fn compiles_control_flow() {
        let def = first_def(
            "def f(n)\n i = 0\n while i < n\n  i = i + 1\n  next if i == 2\n  break if i > 5\n end\n i\nend",
        );
        assert!(compile_method(&def).is_some());
    }

    #[test]
    fn compiles_interpolation_and_collections() {
        let def = first_def("def f(x)\n [\"a#{x}b\", {1 => x}, (1..3)]\nend");
        let chunk = compile_method(&def).expect("compilable");
        assert!(chunk
            .ops
            .iter()
            .any(|op| matches!(op, Op::ConcatStr { .. })));
        assert!(chunk.ops.iter().any(|op| matches!(op, Op::NewHash { .. })));
    }

    #[test]
    fn optional_literal_defaults_compile_nonliteral_bail() {
        let lit = first_def("def f(a, b = 3)\n a\nend");
        let chunk = compile_method(&lit).expect("compilable");
        assert_eq!(chunk.required, 1);
        assert_eq!(chunk.max, 2);
        let dynamic = first_def("def f(a, b = a + 1)\n a\nend");
        assert!(compile_method(&dynamic).is_none());
    }

    #[test]
    fn bails_on_unsupported_constructs() {
        for src in [
            "def f\n case 1\n when 1 then 2\n end\nend",
            "def f\n begin\n  1\n rescue\n  2\n end\nend",
            "def f\n super\nend",
            "def f\n [1].each do |x|\n  x\n end\nend",
            "def f(*a)\n g(*a)\nend",
            "def f\n @@x\nend",
            "def f\n break\nend",
        ] {
            let def = first_def(src);
            assert!(compile_method(&def).is_none(), "expected bail: {src}");
        }
    }

    #[test]
    fn rest_and_block_params() {
        let def = first_def("def f(a, *rest, &blk)\n rest\nend");
        let chunk = compile_method(&def).expect("compilable");
        assert!(chunk.has_rest);
        assert_eq!(
            chunk.params,
            vec![BcParam::Required, BcParam::Rest, BcParam::Block]
        );
    }

    #[test]
    fn spans_parallel_ops() {
        let def = first_def("def f(x)\n x.g(1)\nend");
        let chunk = compile_method(&def).expect("compilable");
        assert_eq!(chunk.ops.len(), chunk.spans.len());
    }
}
