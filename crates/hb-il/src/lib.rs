//! RIL-like intermediate language for the Hummingbird reproduction.
//!
//! The paper's implementation type checks Ruby Intermediate Language (RIL)
//! control-flow graphs rather than raw ASTs. This crate plays that role:
//! [`lower::lower_method`] turns a parsed RubyLite method definition into a
//! [`cfg::MethodCfg`] of basic blocks; [`lower::lower_block_body`] does the
//! same for block literals (used when checking `define_method`-created
//! methods); [`lower::collect_method_defs`] enumerates lexically visible
//! definitions for dev-mode reload diffing.
//!
//! # Example
//!
//! ```
//! use hb_il::{collect_method_defs, lower_method};
//! use hb_syntax::parse_program;
//!
//! let p = parse_program("def add(a, b)\n a + b\nend", "t.rb").unwrap();
//! let defs = collect_method_defs(&p);
//! let cfg = lower_method(&defs[0].def);
//! assert_eq!(cfg.params.len(), 2);
//! ```

pub mod bytecode;
pub mod cfg;
pub mod lower;

pub use bytecode::{compile_method, BcConst, BcParam, Chunk, Op};
pub use cfg::{
    BasicBlock, BlockId, BlockLit, BlockLitId, CallArg, IlParam, IlParamKind, Instr, InstrKind,
    MethodCfg, Operand, Rvalue, StrPiece, Terminator,
};
pub use lower::{collect_method_defs, lower_block_body, lower_method, CollectedMethod};
