//! CFG data structures: basic blocks, instructions, terminators.
//!
//! This mirrors the role of RIL in the paper: a simplified representation of
//! method bodies that the static checker consumes. Expressions are flattened
//! into instructions over operands; control flow is explicit in block
//! terminators. Nested code blocks (closures) are lowered into their own
//! [`MethodCfg`]s referenced from call instructions.

use hb_syntax::Span;
use std::fmt;

/// Identifies a basic block within a [`MethodCfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Identifies a lowered block literal within a [`MethodCfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockLitId(pub u32);

/// An atomic value: a constant, a local/temporary, `self`, or the
/// checker-only nondeterministic boolean.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    NilConst,
    TrueConst,
    FalseConst,
    IntConst(i64),
    FloatConst(f64),
    StrConst(String),
    SymConst(String),
    /// A user local or compiler temporary (temporaries start with `%`).
    Local(String),
    SelfRef,
    /// A boolean of unknown value; used for default-parameter and rescue
    /// edges so the checker joins both outcomes.
    Nondet,
}

/// One piece of an interpolated string.
#[derive(Debug, Clone, PartialEq)]
pub enum StrPiece {
    Lit(String),
    Dyn(Operand),
}

/// A call-site argument.
#[derive(Debug, Clone, PartialEq)]
pub enum CallArg {
    Pos(Operand),
    Splat(Operand),
    BlockPass(Operand),
}

/// The right-hand side of an assignment instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Rvalue {
    Use(Operand),
    IVar(String),
    CVar(String),
    GVar(String),
    ConstRef(Vec<String>),
    StrInterp(Vec<StrPiece>),
    ArrayLit(Vec<Operand>),
    HashLit(Vec<(Operand, Operand)>),
    RangeLit {
        lo: Operand,
        hi: Operand,
        exclusive: bool,
    },
    /// A method call; `recv == None` is an implicit-`self` call.
    Call {
        recv: Option<Operand>,
        name: String,
        args: Vec<CallArg>,
        block: Option<BlockLitId>,
    },
    Yield(Vec<Operand>),
    /// `super` / `super(...)`; `args == None` forwards the method's formals.
    Super {
        args: Option<Vec<Operand>>,
    },
    /// `value.rdl_cast("T")` with a literal type string (paper §4).
    Cast {
        value: Operand,
        ty: String,
    },
    Not(Operand),
    /// Binds the rescue variable; typed as the union of the rescue classes
    /// (or `StandardError` when unqualified).
    RescueBind(Vec<String>),
}

/// An instruction: all effects are assignments of one kind or another.
#[derive(Debug, Clone, PartialEq)]
pub struct Instr {
    pub kind: InstrKind,
    pub span: Span,
}

/// The kinds of instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum InstrKind {
    /// `local := rvalue`
    Assign {
        local: String,
        rv: Rvalue,
    },
    SetIVar {
        name: String,
        value: Operand,
    },
    SetCVar {
        name: String,
        value: Operand,
    },
    SetGVar {
        name: String,
        value: Operand,
    },
    SetConst {
        path: Vec<String>,
        value: Operand,
    },
}

/// How a basic block transfers control.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    Goto(BlockId),
    Branch {
        cond: Operand,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    /// Yields the value of this CFG (method result, or block result for
    /// block-literal CFGs).
    Return(Operand),
    /// An explicit `return` inside a block literal: returns from the
    /// *enclosing method*, so it checks against the method's declared
    /// return type, not the block's.
    MethodReturn(Operand),
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    pub instrs: Vec<Instr>,
    pub term: Terminator,
}

/// How a lowered formal parameter binds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IlParamKind {
    Required,
    /// Has a default; the default expression is lowered into the entry
    /// region guarded by a [`Operand::Nondet`] branch.
    Optional,
    Rest,
    Block,
}

/// A formal parameter of a lowered method or block.
#[derive(Debug, Clone, PartialEq)]
pub struct IlParam {
    pub name: String,
    pub kind: IlParamKind,
}

/// A lowered method (or block/proc) body.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodCfg {
    /// Method name, for diagnostics (`"<block>"` for block literals).
    pub name: String,
    pub params: Vec<IlParam>,
    pub blocks: Vec<BasicBlock>,
    pub entry: BlockId,
    /// Lowered block literals appearing in call instructions.
    pub block_lits: Vec<BlockLit>,
    /// Span of the whole definition.
    pub span: Span,
}

/// A lowered block literal (closure body).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockLit {
    pub params: Vec<IlParam>,
    pub cfg: MethodCfg,
}

impl MethodCfg {
    /// The basic block for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (CFGs are constructed well-formed).
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// The successor block ids of `id`.
    pub fn successors(&self, id: BlockId) -> Vec<BlockId> {
        match &self.block(id).term {
            Terminator::Goto(b) => vec![*b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Return(_) | Terminator::MethodReturn(_) => vec![],
        }
    }

    /// Total instruction count including nested block literals (a crude size
    /// metric used by statistics and tests).
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum::<usize>()
            + self
                .block_lits
                .iter()
                .map(|b| b.cfg.instr_count())
                .sum::<usize>()
    }

    /// Structural equality ignoring spans: used by dev-mode reloading to
    /// decide whether a method actually changed (paper §4 "Cache
    /// Invalidation").
    pub fn same_shape(&self, other: &MethodCfg) -> bool {
        Self::strip(self) == Self::strip(other)
    }

    fn strip(cfg: &MethodCfg) -> MethodCfg {
        let mut c = cfg.clone();
        c.span = Span::dummy();
        for b in &mut c.blocks {
            for i in &mut b.instrs {
                i.span = Span::dummy();
            }
        }
        for bl in &mut c.block_lits {
            bl.cfg = Self::strip(&bl.cfg);
        }
        c
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::NilConst => write!(f, "nil"),
            Operand::TrueConst => write!(f, "true"),
            Operand::FalseConst => write!(f, "false"),
            Operand::IntConst(n) => write!(f, "{n}"),
            Operand::FloatConst(x) => write!(f, "{x}"),
            Operand::StrConst(s) => write!(f, "{s:?}"),
            Operand::SymConst(s) => write!(f, ":{s}"),
            Operand::Local(n) => write!(f, "{n}"),
            Operand::SelfRef => write!(f, "self"),
            Operand::Nondet => write!(f, "<nondet>"),
        }
    }
}

impl fmt::Display for MethodCfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cfg {}({} params)", self.name, self.params.len())?;
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(f, "bb{i}:")?;
            for instr in &b.instrs {
                match &instr.kind {
                    InstrKind::Assign { local, rv } => writeln!(f, "  {local} := {rv:?}")?,
                    InstrKind::SetIVar { name, value } => writeln!(f, "  @{name} := {value}")?,
                    InstrKind::SetCVar { name, value } => writeln!(f, "  @@{name} := {value}")?,
                    InstrKind::SetGVar { name, value } => writeln!(f, "  ${name} := {value}")?,
                    InstrKind::SetConst { path, value } => {
                        writeln!(f, "  {} := {value}", path.join("::"))?
                    }
                }
            }
            match &b.term {
                Terminator::Goto(t) => writeln!(f, "  goto bb{}", t.0)?,
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => writeln!(f, "  branch {cond} ? bb{} : bb{}", then_bb.0, else_bb.0)?,
                Terminator::Return(v) => writeln!(f, "  return {v}")?,
                Terminator::MethodReturn(v) => writeln!(f, "  method_return {v}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> MethodCfg {
        MethodCfg {
            name: "m".into(),
            params: vec![],
            blocks: vec![
                BasicBlock {
                    instrs: vec![],
                    term: Terminator::Branch {
                        cond: Operand::TrueConst,
                        then_bb: BlockId(1),
                        else_bb: BlockId(2),
                    },
                },
                BasicBlock {
                    instrs: vec![],
                    term: Terminator::Goto(BlockId(2)),
                },
                BasicBlock {
                    instrs: vec![],
                    term: Terminator::Return(Operand::NilConst),
                },
            ],
            entry: BlockId(0),
            block_lits: vec![],
            span: Span::dummy(),
        }
    }

    #[test]
    fn successors() {
        let cfg = tiny_cfg();
        assert_eq!(cfg.successors(BlockId(0)), vec![BlockId(1), BlockId(2)]);
        assert_eq!(cfg.successors(BlockId(1)), vec![BlockId(2)]);
        assert!(cfg.successors(BlockId(2)).is_empty());
    }

    #[test]
    fn same_shape_ignores_spans() {
        let a = tiny_cfg();
        let mut b = tiny_cfg();
        b.span = Span::new(hb_syntax::FileId(7), 1, 2);
        assert!(a.same_shape(&b));
    }

    #[test]
    fn same_shape_detects_changes() {
        let a = tiny_cfg();
        let mut b = tiny_cfg();
        b.blocks[2].term = Terminator::Return(Operand::TrueConst);
        assert!(!a.same_shape(&b));
    }

    #[test]
    fn display_renders() {
        let s = tiny_cfg().to_string();
        assert!(s.contains("bb0"));
        assert!(s.contains("branch"));
        assert!(s.contains("return nil"));
    }
}
