//! AST → CFG lowering.
//!
//! The lowering is checker-oriented: the interpreter executes ASTs directly
//! (like Ruby), while the static checker consumes these CFGs (like RIL in
//! the paper). Control flow — `if`, `while`, `case`, `&&`/`||`, `begin/
//! rescue`, postfix modifiers — becomes explicit branches; everything else
//! becomes assignments of [`Rvalue`]s to locals or temporaries.
//!
//! Checker-only nondeterminism ([`Operand::Nondet`]) models default
//! parameters (the default may or may not run) and exception edges (a rescue
//! body may run with the environment from the protected region's entry).

use crate::cfg::*;
use hb_syntax::ast::*;
use hb_syntax::Span;
use std::rc::Rc;

/// Lowers a parsed method definition to a CFG.
pub fn lower_method(def: &MethodDefNode) -> MethodCfg {
    let mut lw = Lowerer::new(&def.name, def.span, false);
    lw.add_params(&def.params);
    lw.lower_param_defaults(&def.params);
    let v = lw.lower_body(&def.body);
    lw.terminate(Terminator::Return(v));
    lw.finish()
}

/// Lowers a block/proc body to a CFG (used when checking methods created
/// with `define_method`, paper Fig. 2).
pub fn lower_block_body(params: &[Param], body: &[Expr], span: Span) -> MethodCfg {
    let mut lw = Lowerer::new("<block>", span, true);
    lw.add_params(params);
    lw.lower_param_defaults(params);
    let v = lw.lower_body(body);
    lw.terminate(Terminator::Return(v));
    lw.finish()
}

/// A method definition found by [`collect_method_defs`].
#[derive(Debug, Clone)]
pub struct CollectedMethod {
    /// Owner path joined with `::` (`"Object"` for top-level defs).
    pub owner: String,
    pub self_method: bool,
    pub name: String,
    pub def: Rc<MethodDefNode>,
}

/// Walks a program and returns every lexically visible method definition
/// with its owning class/module. Methods created by metaprogramming
/// (`define_method`) are invisible here — they only exist at run time.
pub fn collect_method_defs(program: &Program) -> Vec<CollectedMethod> {
    let mut out = Vec::new();
    collect_in(&program.body, "Object", &mut out);
    out
}

fn collect_in(body: &[Expr], owner: &str, out: &mut Vec<CollectedMethod>) {
    for e in body {
        match &e.kind {
            ExprKind::ClassDef { path, body, .. } | ExprKind::ModuleDef { path, body } => {
                let name = if owner == "Object" {
                    path.join("::")
                } else {
                    format!("{owner}::{}", path.join("::"))
                };
                collect_in(body, &name, out);
            }
            ExprKind::MethodDef(d) => out.push(CollectedMethod {
                owner: owner.to_string(),
                self_method: d.self_method,
                name: d.name.clone(),
                def: d.clone(),
            }),
            _ => {}
        }
    }
}

struct PartialBlock {
    instrs: Vec<Instr>,
    term: Option<Terminator>,
}

struct LoopCtx {
    break_to: BlockId,
    next_to: BlockId,
}

struct Lowerer {
    name: String,
    span: Span,
    params: Vec<IlParam>,
    blocks: Vec<PartialBlock>,
    cur: usize,
    temps: u32,
    block_lits: Vec<BlockLit>,
    loops: Vec<LoopCtx>,
    /// True when lowering a block literal: an explicit `return` becomes
    /// [`Terminator::MethodReturn`].
    in_block: bool,
}

impl Lowerer {
    fn new(name: &str, span: Span, in_block: bool) -> Lowerer {
        Lowerer {
            name: name.to_string(),
            span,
            params: Vec::new(),
            blocks: vec![PartialBlock {
                instrs: Vec::new(),
                term: None,
            }],
            cur: 0,
            temps: 0,
            block_lits: Vec::new(),
            loops: Vec::new(),
            in_block,
        }
    }

    fn add_params(&mut self, params: &[Param]) {
        for p in params {
            let kind = match &p.kind {
                ParamKind::Required => IlParamKind::Required,
                ParamKind::Optional(_) => IlParamKind::Optional,
                ParamKind::Rest => IlParamKind::Rest,
                ParamKind::Block => IlParamKind::Block,
            };
            self.params.push(IlParam {
                name: p.name.clone(),
                kind,
            });
        }
    }

    /// Lowers `p = default` parameters: the default expression runs on a
    /// nondeterministic branch so the checker sees both outcomes.
    fn lower_param_defaults(&mut self, params: &[Param]) {
        for p in params {
            if let ParamKind::Optional(default) = &p.kind {
                let run_bb = self.new_block();
                let join_bb = self.new_block();
                self.terminate_explicit(Terminator::Branch {
                    cond: Operand::Nondet,
                    then_bb: run_bb,
                    else_bb: join_bb,
                });
                self.cur = run_bb.0 as usize;
                let v = self.lower_expr(default);
                self.push(
                    InstrKind::Assign {
                        local: p.name.clone(),
                        rv: Rvalue::Use(v),
                    },
                    default.span,
                );
                self.terminate_explicit(Terminator::Goto(join_bb));
                self.cur = join_bb.0 as usize;
            }
        }
    }

    fn finish(self) -> MethodCfg {
        let blocks = self
            .blocks
            .into_iter()
            .map(|b| BasicBlock {
                instrs: b.instrs,
                term: b.term.unwrap_or(Terminator::Return(Operand::NilConst)),
            })
            .collect();
        MethodCfg {
            name: self.name,
            params: self.params,
            blocks,
            entry: BlockId(0),
            block_lits: self.block_lits,
            span: self.span,
        }
    }

    fn new_block(&mut self) -> BlockId {
        self.blocks.push(PartialBlock {
            instrs: Vec::new(),
            term: None,
        });
        BlockId((self.blocks.len() - 1) as u32)
    }

    fn push(&mut self, kind: InstrKind, span: Span) {
        let b = &mut self.blocks[self.cur];
        if b.term.is_none() {
            b.instrs.push(Instr { kind, span });
        }
        // Instructions after a terminator are unreachable and dropped.
    }

    /// Sets the current block's terminator if it does not have one, then
    /// opens a fresh (possibly unreachable) block.
    fn terminate(&mut self, term: Terminator) {
        self.terminate_explicit(term);
        let next = self.new_block();
        self.cur = next.0 as usize;
    }

    fn terminate_explicit(&mut self, term: Terminator) {
        let b = &mut self.blocks[self.cur];
        if b.term.is_none() {
            b.term = Some(term);
        }
    }

    fn temp(&mut self) -> String {
        let t = format!("%t{}", self.temps);
        self.temps += 1;
        t
    }

    fn assign_temp(&mut self, rv: Rvalue, span: Span) -> Operand {
        let t = self.temp();
        self.push(
            InstrKind::Assign {
                local: t.clone(),
                rv,
            },
            span,
        );
        Operand::Local(t)
    }

    fn lower_body(&mut self, body: &[Expr]) -> Operand {
        let mut last = Operand::NilConst;
        for e in body {
            last = self.lower_expr(e);
        }
        last
    }

    fn lower_expr(&mut self, e: &Expr) -> Operand {
        let span = e.span;
        match &e.kind {
            ExprKind::Nil => Operand::NilConst,
            ExprKind::True => Operand::TrueConst,
            ExprKind::False => Operand::FalseConst,
            ExprKind::SelfExpr => Operand::SelfRef,
            ExprKind::Int(n) => Operand::IntConst(*n),
            ExprKind::Float(x) => Operand::FloatConst(*x),
            ExprKind::Sym(s) => Operand::SymConst(s.clone()),
            ExprKind::Str(parts) => {
                if parts.len() == 1 {
                    if let StrPart::Lit(s) = &parts[0] {
                        return Operand::StrConst(s.clone());
                    }
                }
                let mut pieces = Vec::new();
                for p in parts {
                    match p {
                        StrPart::Lit(s) => pieces.push(StrPiece::Lit(s.clone())),
                        StrPart::Interp(e) => {
                            let v = self.lower_expr(e);
                            pieces.push(StrPiece::Dyn(v));
                        }
                    }
                }
                self.assign_temp(Rvalue::StrInterp(pieces), span)
            }
            ExprKind::Local(n) => Operand::Local(n.clone()),
            ExprKind::IVar(n) => self.assign_temp(Rvalue::IVar(n.clone()), span),
            ExprKind::CVar(n) => self.assign_temp(Rvalue::CVar(n.clone()), span),
            ExprKind::GVar(n) => self.assign_temp(Rvalue::GVar(n.clone()), span),
            ExprKind::Const(path) => self.assign_temp(Rvalue::ConstRef(path.clone()), span),
            ExprKind::Array(elems) => {
                let ops: Vec<Operand> = elems.iter().map(|e| self.lower_expr(e)).collect();
                self.assign_temp(Rvalue::ArrayLit(ops), span)
            }
            ExprKind::Hash(pairs) => {
                let ops: Vec<(Operand, Operand)> = pairs
                    .iter()
                    .map(|(k, v)| {
                        let k = self.lower_expr(k);
                        let v = self.lower_expr(v);
                        (k, v)
                    })
                    .collect();
                self.assign_temp(Rvalue::HashLit(ops), span)
            }
            ExprKind::Range { lo, hi, exclusive } => {
                let lo = self.lower_expr(lo);
                let hi = self.lower_expr(hi);
                self.assign_temp(
                    Rvalue::RangeLit {
                        lo,
                        hi,
                        exclusive: *exclusive,
                    },
                    span,
                )
            }
            ExprKind::Assign { target, value } => {
                let v = self.lower_expr(value);
                self.lower_lhs_write(target, v.clone(), span);
                v
            }
            ExprKind::OpAssign { target, op, value } => {
                self.lower_op_assign(target, op, value, span)
            }
            ExprKind::Call {
                recv,
                name,
                args,
                block,
            } => self.lower_call(recv.as_deref(), name, args, block.as_ref(), span),
            ExprKind::Yield(args) => {
                let ops: Vec<Operand> = args.iter().map(|a| self.lower_expr(a)).collect();
                self.assign_temp(Rvalue::Yield(ops), span)
            }
            ExprKind::Super { args } => {
                let ops = args
                    .as_ref()
                    .map(|args| args.iter().map(|a| self.lower_expr(a)).collect::<Vec<_>>());
                self.assign_temp(Rvalue::Super { args: ops }, span)
            }
            ExprKind::And(l, r) => {
                // `a && b` evaluates to `a` when falsy, else `b`.
                let a = self.lower_expr(l);
                let res = self.temp();
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join = self.new_block();
                self.terminate_explicit(Terminator::Branch {
                    cond: a.clone(),
                    then_bb,
                    else_bb,
                });
                self.cur = then_bb.0 as usize;
                let b = self.lower_expr(r);
                self.push(
                    InstrKind::Assign {
                        local: res.clone(),
                        rv: Rvalue::Use(b),
                    },
                    span,
                );
                self.terminate_explicit(Terminator::Goto(join));
                self.cur = else_bb.0 as usize;
                self.push(
                    InstrKind::Assign {
                        local: res.clone(),
                        rv: Rvalue::Use(a),
                    },
                    span,
                );
                self.terminate_explicit(Terminator::Goto(join));
                self.cur = join.0 as usize;
                Operand::Local(res)
            }
            ExprKind::Or(l, r) => {
                let a = self.lower_expr(l);
                let res = self.temp();
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join = self.new_block();
                self.terminate_explicit(Terminator::Branch {
                    cond: a.clone(),
                    then_bb,
                    else_bb,
                });
                self.cur = then_bb.0 as usize;
                self.push(
                    InstrKind::Assign {
                        local: res.clone(),
                        rv: Rvalue::Use(a),
                    },
                    span,
                );
                self.terminate_explicit(Terminator::Goto(join));
                self.cur = else_bb.0 as usize;
                let b = self.lower_expr(r);
                self.push(
                    InstrKind::Assign {
                        local: res.clone(),
                        rv: Rvalue::Use(b),
                    },
                    span,
                );
                self.terminate_explicit(Terminator::Goto(join));
                self.cur = join.0 as usize;
                Operand::Local(res)
            }
            ExprKind::Not(x) => {
                let v = self.lower_expr(x);
                self.assign_temp(Rvalue::Not(v), span)
            }
            ExprKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.lower_expr(cond);
                let res = self.temp();
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join = self.new_block();
                self.terminate_explicit(Terminator::Branch {
                    cond: c,
                    then_bb,
                    else_bb,
                });
                self.cur = then_bb.0 as usize;
                let tv = self.lower_body(then_body);
                self.push(
                    InstrKind::Assign {
                        local: res.clone(),
                        rv: Rvalue::Use(tv),
                    },
                    span,
                );
                self.terminate_explicit(Terminator::Goto(join));
                self.cur = else_bb.0 as usize;
                let ev = self.lower_body(else_body);
                self.push(
                    InstrKind::Assign {
                        local: res.clone(),
                        rv: Rvalue::Use(ev),
                    },
                    span,
                );
                self.terminate_explicit(Terminator::Goto(join));
                self.cur = join.0 as usize;
                Operand::Local(res)
            }
            ExprKind::While { cond, body } => {
                let cond_bb = self.new_block();
                let body_bb = self.new_block();
                let exit_bb = self.new_block();
                self.terminate_explicit(Terminator::Goto(cond_bb));
                self.cur = cond_bb.0 as usize;
                let c = self.lower_expr(cond);
                self.terminate_explicit(Terminator::Branch {
                    cond: c,
                    then_bb: body_bb,
                    else_bb: exit_bb,
                });
                self.cur = body_bb.0 as usize;
                self.loops.push(LoopCtx {
                    break_to: exit_bb,
                    next_to: cond_bb,
                });
                self.lower_body(body);
                self.loops.pop();
                self.terminate_explicit(Terminator::Goto(cond_bb));
                self.cur = exit_bb.0 as usize;
                Operand::NilConst
            }
            ExprKind::Case {
                scrutinee,
                whens,
                else_body,
            } => self.lower_case(scrutinee.as_deref(), whens, else_body, span),
            ExprKind::Begin {
                body,
                rescues,
                ensure_body,
            } => self.lower_begin(body, rescues, ensure_body, span),
            ExprKind::Return(v) => {
                let val = match v {
                    Some(v) => self.lower_expr(v),
                    None => Operand::NilConst,
                };
                if self.in_block {
                    self.terminate(Terminator::MethodReturn(val));
                } else {
                    self.terminate(Terminator::Return(val));
                }
                Operand::NilConst
            }
            ExprKind::Break(v) => {
                let val = match v {
                    Some(v) => self.lower_expr(v),
                    None => Operand::NilConst,
                };
                match self.loops.last() {
                    Some(l) => {
                        let target = l.break_to;
                        self.terminate(Terminator::Goto(target));
                    }
                    // `break` at the top of a block literal: approximated as
                    // the block returning (see DESIGN.md).
                    None => self.terminate(Terminator::Return(val)),
                }
                Operand::NilConst
            }
            ExprKind::Next(v) => {
                let val = match v {
                    Some(v) => self.lower_expr(v),
                    None => Operand::NilConst,
                };
                match self.loops.last() {
                    Some(l) => {
                        let target = l.next_to;
                        self.terminate(Terminator::Goto(target));
                    }
                    None => self.terminate(Terminator::Return(val)),
                }
                Operand::NilConst
            }
            // Definitions evaluate to nil at run time; their bodies are
            // checked when called (paper rule (TDef)/(TType)).
            ExprKind::MethodDef(_) | ExprKind::ClassDef { .. } | ExprKind::ModuleDef { .. } => {
                Operand::NilConst
            }
        }
    }

    fn lower_lhs_read(&mut self, lhs: &Lhs, span: Span) -> Operand {
        match lhs {
            Lhs::Local(n) => Operand::Local(n.clone()),
            Lhs::IVar(n) => self.assign_temp(Rvalue::IVar(n.clone()), span),
            Lhs::CVar(n) => self.assign_temp(Rvalue::CVar(n.clone()), span),
            Lhs::GVar(n) => self.assign_temp(Rvalue::GVar(n.clone()), span),
            Lhs::Const(p) => self.assign_temp(Rvalue::ConstRef(p.clone()), span),
            Lhs::Index(recv, idx) => {
                let r = self.lower_expr(recv);
                let args: Vec<CallArg> = idx
                    .iter()
                    .map(|a| CallArg::Pos(self.lower_expr(a)))
                    .collect();
                self.assign_temp(
                    Rvalue::Call {
                        recv: Some(r),
                        name: "[]".to_string(),
                        args,
                        block: None,
                    },
                    span,
                )
            }
            Lhs::Attr(recv, name) => {
                let r = self.lower_expr(recv);
                self.assign_temp(
                    Rvalue::Call {
                        recv: Some(r),
                        name: name.clone(),
                        args: vec![],
                        block: None,
                    },
                    span,
                )
            }
        }
    }

    fn lower_lhs_write(&mut self, lhs: &Lhs, value: Operand, span: Span) {
        match lhs {
            Lhs::Local(n) => self.push(
                InstrKind::Assign {
                    local: n.clone(),
                    rv: Rvalue::Use(value),
                },
                span,
            ),
            Lhs::IVar(n) => self.push(
                InstrKind::SetIVar {
                    name: n.clone(),
                    value,
                },
                span,
            ),
            Lhs::CVar(n) => self.push(
                InstrKind::SetCVar {
                    name: n.clone(),
                    value,
                },
                span,
            ),
            Lhs::GVar(n) => self.push(
                InstrKind::SetGVar {
                    name: n.clone(),
                    value,
                },
                span,
            ),
            Lhs::Const(p) => self.push(
                InstrKind::SetConst {
                    path: p.clone(),
                    value,
                },
                span,
            ),
            Lhs::Index(recv, idx) => {
                let r = self.lower_expr(recv);
                let mut args: Vec<CallArg> = idx
                    .iter()
                    .map(|a| CallArg::Pos(self.lower_expr(a)))
                    .collect();
                args.push(CallArg::Pos(value));
                let t = self.temp();
                self.push(
                    InstrKind::Assign {
                        local: t,
                        rv: Rvalue::Call {
                            recv: Some(r),
                            name: "[]=".to_string(),
                            args,
                            block: None,
                        },
                    },
                    span,
                );
            }
            Lhs::Attr(recv, name) => {
                let r = self.lower_expr(recv);
                let t = self.temp();
                self.push(
                    InstrKind::Assign {
                        local: t,
                        rv: Rvalue::Call {
                            recv: Some(r),
                            name: format!("{name}="),
                            args: vec![CallArg::Pos(value)],
                            block: None,
                        },
                    },
                    span,
                );
            }
        }
    }

    fn lower_op_assign(&mut self, target: &Lhs, op: &str, value: &Expr, span: Span) -> Operand {
        if op == "||" || op == "&&" {
            // `x ||= v` — short-circuit: only assign when the read is falsy
            // (truthy for `&&=`).
            let cur = self.lower_lhs_read(target, span);
            let res = self.temp();
            let assign_bb = self.new_block();
            let keep_bb = self.new_block();
            let join = self.new_block();
            let (then_bb, else_bb) = if op == "||" {
                (keep_bb, assign_bb)
            } else {
                (assign_bb, keep_bb)
            };
            self.terminate_explicit(Terminator::Branch {
                cond: cur.clone(),
                then_bb,
                else_bb,
            });
            self.cur = assign_bb.0 as usize;
            let v = self.lower_expr(value);
            self.lower_lhs_write(target, v.clone(), span);
            self.push(
                InstrKind::Assign {
                    local: res.clone(),
                    rv: Rvalue::Use(v),
                },
                span,
            );
            self.terminate_explicit(Terminator::Goto(join));
            self.cur = keep_bb.0 as usize;
            self.push(
                InstrKind::Assign {
                    local: res.clone(),
                    rv: Rvalue::Use(cur),
                },
                span,
            );
            self.terminate_explicit(Terminator::Goto(join));
            self.cur = join.0 as usize;
            Operand::Local(res)
        } else {
            let cur = self.lower_lhs_read(target, span);
            let v = self.lower_expr(value);
            let combined = self.assign_temp(
                Rvalue::Call {
                    recv: Some(cur),
                    name: op.to_string(),
                    args: vec![CallArg::Pos(v)],
                    block: None,
                },
                span,
            );
            self.lower_lhs_write(target, combined.clone(), span);
            combined
        }
    }

    fn lower_call(
        &mut self,
        recv: Option<&Expr>,
        name: &str,
        args: &[Arg],
        block: Option<&BlockArg>,
        span: Span,
    ) -> Operand {
        // `value.rdl_cast("T")` with a literal type string becomes a Cast
        // (paper §4 "Type Casts").
        if name == "rdl_cast" && args.len() == 1 && block.is_none() {
            if let (Some(r), Arg::Pos(a)) = (recv, &args[0]) {
                if let ExprKind::Str(parts) = &a.kind {
                    if let [StrPart::Lit(ty)] = parts.as_slice() {
                        let v = self.lower_expr(r);
                        return self.assign_temp(
                            Rvalue::Cast {
                                value: v,
                                ty: ty.clone(),
                            },
                            span,
                        );
                    }
                }
            }
        }
        let recv_op = recv.map(|r| self.lower_expr(r));
        let mut il_args = Vec::new();
        for a in args {
            match a {
                Arg::Pos(e) => {
                    let v = self.lower_expr(e);
                    il_args.push(CallArg::Pos(v));
                }
                Arg::Splat(e) => {
                    let v = self.lower_expr(e);
                    il_args.push(CallArg::Splat(v));
                }
                Arg::BlockPass(e) => {
                    let v = self.lower_expr(e);
                    il_args.push(CallArg::BlockPass(v));
                }
            }
        }
        let block_id = block.map(|b| {
            let cfg = lower_block_body(&b.params, &b.body, b.span);
            let mut params = Vec::new();
            for p in &b.params {
                let kind = match &p.kind {
                    ParamKind::Required => IlParamKind::Required,
                    ParamKind::Optional(_) => IlParamKind::Optional,
                    ParamKind::Rest => IlParamKind::Rest,
                    ParamKind::Block => IlParamKind::Block,
                };
                params.push(IlParam {
                    name: p.name.clone(),
                    kind,
                });
            }
            self.block_lits.push(BlockLit { params, cfg });
            BlockLitId((self.block_lits.len() - 1) as u32)
        });
        self.assign_temp(
            Rvalue::Call {
                recv: recv_op,
                name: name.to_string(),
                args: il_args,
                block: block_id,
            },
            span,
        )
    }

    fn lower_case(
        &mut self,
        scrutinee: Option<&Expr>,
        whens: &[(Vec<Expr>, Vec<Expr>)],
        else_body: &[Expr],
        span: Span,
    ) -> Operand {
        let scrut = scrutinee.map(|s| self.lower_expr(s));
        let res = self.temp();
        let join = self.new_block();
        for (pats, body) in whens {
            // One test chain per when-arm; any matching pattern enters the
            // body.
            let body_bb = self.new_block();
            let mut next_test = None;
            for (i, pat) in pats.iter().enumerate() {
                if let Some(bb) = next_test {
                    self.cur = bb;
                }
                let c = match (&scrut, pat) {
                    (Some(s), p) => {
                        let pv = self.lower_expr(p);
                        // Ruby uses `===` for case dispatch.
                        self.assign_temp(
                            Rvalue::Call {
                                recv: Some(pv),
                                name: "===".to_string(),
                                args: vec![CallArg::Pos(s.clone())],
                                block: None,
                            },
                            span,
                        )
                    }
                    (None, p) => self.lower_expr(p),
                };
                let fall = self.new_block();
                self.terminate_explicit(Terminator::Branch {
                    cond: c,
                    then_bb: body_bb,
                    else_bb: fall,
                });
                next_test = Some(fall.0 as usize);
                if i == pats.len() - 1 {
                    self.cur = fall.0 as usize;
                }
            }
            let after = self.cur;
            self.cur = body_bb.0 as usize;
            let v = self.lower_body(body);
            self.push(
                InstrKind::Assign {
                    local: res.clone(),
                    rv: Rvalue::Use(v),
                },
                span,
            );
            self.terminate_explicit(Terminator::Goto(join));
            self.cur = after;
        }
        let v = self.lower_body(else_body);
        self.push(
            InstrKind::Assign {
                local: res.clone(),
                rv: Rvalue::Use(v),
            },
            span,
        );
        self.terminate_explicit(Terminator::Goto(join));
        self.cur = join.0 as usize;
        Operand::Local(res)
    }

    fn lower_begin(
        &mut self,
        body: &[Expr],
        rescues: &[Rescue],
        ensure_body: &[Expr],
        span: Span,
    ) -> Operand {
        let res = self.temp();
        let body_bb = self.new_block();
        let join = self.new_block();
        // The protected body may raise anywhere, so every rescue head is
        // reachable from the entry environment via nondeterministic edges.
        let mut dispatch = self.cur;
        for (i, r) in rescues.iter().enumerate() {
            let head_bb = self.new_block();
            self.cur = dispatch;
            if i == rescues.len() - 1 {
                self.terminate_explicit(Terminator::Branch {
                    cond: Operand::Nondet,
                    then_bb: body_bb,
                    else_bb: head_bb,
                });
            } else {
                let next_dispatch = self.new_block();
                self.terminate_explicit(Terminator::Branch {
                    cond: Operand::Nondet,
                    then_bb: head_bb,
                    else_bb: next_dispatch,
                });
                dispatch = next_dispatch.0 as usize;
            }
            self.cur = head_bb.0 as usize;
            if let Some(var) = &r.var {
                let classes: Vec<String> = r
                    .classes
                    .iter()
                    .filter_map(|c| match &c.kind {
                        ExprKind::Const(p) => Some(p.join("::")),
                        _ => None,
                    })
                    .collect();
                self.push(
                    InstrKind::Assign {
                        local: var.clone(),
                        rv: Rvalue::RescueBind(classes),
                    },
                    span,
                );
            }
            let v = self.lower_body(&r.body);
            self.push(
                InstrKind::Assign {
                    local: res.clone(),
                    rv: Rvalue::Use(v),
                },
                span,
            );
            self.terminate_explicit(Terminator::Goto(join));
        }
        if rescues.is_empty() {
            self.cur = dispatch;
            self.terminate_explicit(Terminator::Goto(body_bb));
        }
        self.cur = body_bb.0 as usize;
        let v = self.lower_body(body);
        self.push(
            InstrKind::Assign {
                local: res.clone(),
                rv: Rvalue::Use(v),
            },
            span,
        );
        self.terminate_explicit(Terminator::Goto(join));
        self.cur = join.0 as usize;
        if !ensure_body.is_empty() {
            self.lower_body(ensure_body);
        }
        Operand::Local(res)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_syntax::parse_program;

    fn lower_first_method(src: &str) -> MethodCfg {
        let p = parse_program(src, "t.rb").unwrap();
        let defs = collect_method_defs(&p);
        assert!(!defs.is_empty(), "no method found in {src:?}");
        lower_method(&defs[0].def)
    }

    #[test]
    fn straight_line_method() {
        let cfg = lower_first_method("def m(x)\n y = x\n y\nend");
        assert_eq!(cfg.params.len(), 1);
        assert!(matches!(
            cfg.block(cfg.entry).term,
            Terminator::Return(Operand::Local(ref n)) if n == "y"
        ));
    }

    #[test]
    fn explicit_return() {
        let cfg = lower_first_method("def m(a, b)\n return a == b\nend");
        // First block ends in Return of the comparison temp.
        match &cfg.block(cfg.entry).term {
            Terminator::Return(Operand::Local(t)) => assert!(t.starts_with("%t")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_produces_branch_and_join() {
        let cfg = lower_first_method("def m(c)\n if c\n  1\n else\n  2\n end\nend");
        assert!(matches!(
            cfg.block(cfg.entry).term,
            Terminator::Branch { .. }
        ));
        // Both arms assign the same result temp.
        let assigns: Vec<&str> = cfg
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter_map(|i| match &i.kind {
                InstrKind::Assign { local, .. } if local.starts_with("%t") => Some(local.as_str()),
                _ => None,
            })
            .collect();
        assert!(assigns.len() >= 2);
    }

    #[test]
    fn while_loop_has_back_edge() {
        let cfg = lower_first_method("def m(n)\n i = 0\n while i < n\n  i = i + 1\n end\n i\nend");
        // Some block must branch, and some block must goto backwards.
        let has_branch = cfg
            .blocks
            .iter()
            .any(|b| matches!(b.term, Terminator::Branch { .. }));
        assert!(has_branch);
        let mut has_back_edge = false;
        for (i, b) in cfg.blocks.iter().enumerate() {
            if let Terminator::Goto(t) = &b.term {
                if (t.0 as usize) <= i {
                    has_back_edge = true;
                }
            }
        }
        assert!(has_back_edge);
    }

    #[test]
    fn break_goes_to_exit_next_to_cond() {
        let cfg = lower_first_method("def m(n)\n while true\n  break if n\n  next\n end\nend");
        // Must still be a well-formed CFG (every block reachable from the
        // break/next targets exists).
        for (i, _) in cfg.blocks.iter().enumerate() {
            for s in cfg.successors(BlockId(i as u32)) {
                assert!((s.0 as usize) < cfg.blocks.len());
            }
        }
    }

    #[test]
    fn and_or_short_circuit() {
        let cfg = lower_first_method("def m(a, b)\n a && b\nend");
        assert!(matches!(
            cfg.block(cfg.entry).term,
            Terminator::Branch { .. }
        ));
        let cfg = lower_first_method("def m(a, b)\n a || b\nend");
        assert!(matches!(
            cfg.block(cfg.entry).term,
            Terminator::Branch { .. }
        ));
    }

    #[test]
    fn op_assign_or_reads_then_branches() {
        let cfg = lower_first_method("def m\n @@cache ||= 1\n @@cache\nend");
        // Reads the class var, branches on it.
        let reads_cvar = cfg.blocks.iter().flat_map(|b| &b.instrs).any(
            |i| matches!(&i.kind, InstrKind::Assign { rv: Rvalue::CVar(n), .. } if n == "cache"),
        );
        assert!(reads_cvar);
        let writes_cvar = cfg
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(&i.kind, InstrKind::SetCVar { name, .. } if name == "cache"));
        assert!(writes_cvar);
    }

    #[test]
    fn arith_op_assign_desugars_to_call() {
        let cfg = lower_first_method("def m(x)\n x += 2\n x\nend");
        let has_plus = cfg.blocks.iter().flat_map(|b| &b.instrs).any(|i| {
            matches!(&i.kind, InstrKind::Assign { rv: Rvalue::Call { name, .. }, .. } if name == "+")
        });
        assert!(has_plus);
    }

    #[test]
    fn index_write_becomes_brackets_eq() {
        let cfg = lower_first_method("def m(h, v)\n h[:k] = v\nend");
        let has = cfg.blocks.iter().flat_map(|b| &b.instrs).any(|i| {
            matches!(&i.kind, InstrKind::Assign { rv: Rvalue::Call { name, .. }, .. } if name == "[]=")
        });
        assert!(has);
    }

    #[test]
    fn attr_write_becomes_setter_call() {
        let cfg = lower_first_method("def m(o)\n o.name = \"x\"\nend");
        let has = cfg.blocks.iter().flat_map(|b| &b.instrs).any(|i| {
            matches!(&i.kind, InstrKind::Assign { rv: Rvalue::Call { name, .. }, .. } if name == "name=")
        });
        assert!(has);
    }

    #[test]
    fn block_literal_lowered_into_block_lits() {
        let cfg = lower_first_method("def m(xs)\n xs.each do |x|\n  x + 1\n end\nend");
        assert_eq!(cfg.block_lits.len(), 1);
        assert_eq!(cfg.block_lits[0].params.len(), 1);
        assert!(cfg.block_lits[0].cfg.instr_count() >= 1);
    }

    #[test]
    fn nested_blocks_nest_in_inner_cfg() {
        let cfg = lower_first_method(
            "def m(xs)\n xs.each do |x|\n  x.each do |y|\n   y\n  end\n end\nend",
        );
        assert_eq!(cfg.block_lits.len(), 1);
        assert_eq!(cfg.block_lits[0].cfg.block_lits.len(), 1);
    }

    #[test]
    fn cast_is_recognised() {
        let cfg = lower_first_method("def m(a)\n a.rdl_cast(\"Array<Fixnum>\")\nend");
        let has_cast = cfg.blocks.iter().flat_map(|b| &b.instrs).any(|i| {
            matches!(&i.kind, InstrKind::Assign { rv: Rvalue::Cast { ty, .. }, .. } if ty == "Array<Fixnum>")
        });
        assert!(has_cast);
    }

    #[test]
    fn interpolation_lowers_pieces() {
        let cfg = lower_first_method("def m(name)\n \"is_#{name}?\"\nend");
        let has = cfg.blocks.iter().flat_map(|b| &b.instrs).any(|i| {
            matches!(&i.kind, InstrKind::Assign { rv: Rvalue::StrInterp(ps), .. } if ps.len() == 3)
        });
        assert!(has);
    }

    #[test]
    fn case_lowers_to_threequal_chain() {
        let cfg = lower_first_method(
            "def m(x)\n case x\n when 1 then \"a\"\n when 2, 3 then \"b\"\n else \"c\"\n end\nend",
        );
        let eqs = cfg
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| {
                matches!(&i.kind, InstrKind::Assign { rv: Rvalue::Call { name, .. }, .. } if name == "===")
            })
            .count();
        assert_eq!(eqs, 3);
    }

    #[test]
    fn rescue_produces_nondet_edges_and_bind() {
        let cfg =
            lower_first_method("def m\n begin\n  work\n rescue ArgumentError => e\n  e\n end\nend");
        let has_nondet_branch = cfg.blocks.iter().any(|b| {
            matches!(
                &b.term,
                Terminator::Branch {
                    cond: Operand::Nondet,
                    ..
                }
            )
        });
        assert!(has_nondet_branch);
        let has_bind = cfg.blocks.iter().flat_map(|b| &b.instrs).any(|i| {
            matches!(&i.kind, InstrKind::Assign { rv: Rvalue::RescueBind(cs), .. } if cs == &vec!["ArgumentError".to_string()])
        });
        assert!(has_bind);
    }

    #[test]
    fn optional_param_default_on_nondet_branch() {
        let cfg = lower_first_method("def m(a, b = 1)\n b\nend");
        assert!(matches!(
            cfg.block(cfg.entry).term,
            Terminator::Branch {
                cond: Operand::Nondet,
                ..
            }
        ));
        assert_eq!(cfg.params[1].kind, IlParamKind::Optional);
    }

    #[test]
    fn collect_method_defs_walks_nesting() {
        let p = parse_program(
            "class A\n def m\n end\n def self.s\n end\nend\nmodule B::C\n def n\n end\nend\ndef top\nend",
            "t.rb",
        )
        .unwrap();
        let defs = collect_method_defs(&p);
        let summary: Vec<(String, String, bool)> = defs
            .iter()
            .map(|d| (d.owner.clone(), d.name.clone(), d.self_method))
            .collect();
        assert_eq!(
            summary,
            vec![
                ("A".to_string(), "m".to_string(), false),
                ("A".to_string(), "s".to_string(), true),
                ("B::C".to_string(), "n".to_string(), false),
                ("Object".to_string(), "top".to_string(), false),
            ]
        );
    }

    #[test]
    fn same_shape_detects_body_change() {
        let a = lower_first_method("def m\n 1\nend");
        let b = lower_first_method("def m\n 2\nend");
        let a2 = lower_first_method("def m\n 1\nend");
        assert!(!a.same_shape(&b));
        assert!(a.same_shape(&a2));
    }

    #[test]
    fn code_after_return_is_dropped() {
        let cfg = lower_first_method("def m\n return 1\n unreachable_call\nend");
        // The unreachable call must not appear in any reachable block.
        let mut reachable = vec![false; cfg.blocks.len()];
        let mut stack = vec![cfg.entry];
        while let Some(b) = stack.pop() {
            if reachable[b.0 as usize] {
                continue;
            }
            reachable[b.0 as usize] = true;
            stack.extend(cfg.successors(b));
        }
        for (i, b) in cfg.blocks.iter().enumerate() {
            if reachable[i] {
                for instr in &b.instrs {
                    if let InstrKind::Assign {
                        rv: Rvalue::Call { name, .. },
                        ..
                    } = &instr.kind
                    {
                        assert_ne!(name, "unreachable_call");
                    }
                }
            }
        }
    }
}
